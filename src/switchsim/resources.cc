#include "switchsim/resources.h"

namespace superfe {

SwitchResourceUsage EstimateSwitchResources(const CompiledPolicy& compiled,
                                            const MgpvConfig& config) {
  const SwitchProgram& sw = compiled.switch_program;
  SwitchResourceUsage usage;

  const uint32_t num_fields = static_cast<uint32_t>(sw.fields.size());
  const uint32_t extra_granularities = static_cast<uint32_t>(sw.chain.size()) - 1;
  const uint32_t filter_width = static_cast<uint32_t>(sw.filter.conjuncts.size());

  // Tables: L2/L3 parsing and forwarding (shared baseline), the policy
  // filter, cache index/lookup/update stages, stack management, aging
  // recirculation control, eviction/report generation, FG-table management.
  // The constant block is the MGPV engine measured on the P4-16 prototype.
  const uint32_t kBaseTables = 44;
  usage.tables = kBaseTables + (filter_width > 0 ? 1 + filter_width : 0) + 2 * num_fields +
                 3 * extra_granularities;

  // Stateful ALUs: the dominant consumer (§8.3): stack pointer (2, alloc +
  // release via resubmit), entry key compare-and-swap, last-access
  // timestamps, short/long fill counters, per-field cell storage and the
  // aging scan cursor. Calibrated so the four evaluation apps land at the
  // prototype's 68-78% band.
  const uint32_t kBaseSalus = 29;
  usage.salus = kBaseSalus + 2 * num_fields + extra_granularities +
                (config.multi_granularity ? 1 : 0);

  // SRAM: the cache arrays themselves, with a 2x packing/alignment factor
  // (Tofino register words are power-of-two sized and table RAM is
  // allocated in 128-bit units).
  usage.sram_bytes = config.MemoryFootprintBytes() * 2;

  return usage;
}

}  // namespace superfe
