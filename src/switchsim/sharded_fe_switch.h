// Sharded FE-Switch: N independent FeSwitch/MgpvCache instances keyed by the
// coarsest-granularity (CG) group hash, so a parallel replay driver can run
// one switch pipe per thread without any cross-shard locking.
//
// Routing invariant: ShardOf() uses the exact key derivation MgpvCache uses
// internally (GroupKey::ForPacket(pkt, cg).Hash()), so every packet of a CG
// group lands in the same shard and each shard's cache sees the same per-group
// packet sequence a single cache would. The NIC-side routing
// (MgpvReport::hash % members) composes with this: a shard only changes
// *which producer* emits a group's reports, never their per-group order.
#ifndef SUPERFE_SWITCHSIM_SHARDED_FE_SWITCH_H_
#define SUPERFE_SWITCHSIM_SHARDED_FE_SWITCH_H_

#include <memory>
#include <vector>

#include "switchsim/fe_switch.h"

namespace superfe {

struct ShardedSwitchOptions {
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  // Shard s records trace instants / residency clocks against trace lane
  // trace_lane_base + s (one lane per producer thread).
  uint32_t trace_lane_base = 0;
  bool latency = false;
  // Register {stage=...} cycle counters and measure switch-side stages.
  bool profile = false;
  // Auto-flush cadence of each shard's batch-local obs blocks, in packets
  // (1 = legacy per-packet registry cadence).
  uint32_t obs_batch_packets = 4096;
  // Fault-injection wiring (not owned): shard s's MGPV cache consults
  // injector->PoolExhausted(s, now) on long allocs. Null = no hooks.
  FaultInjector* injector = nullptr;
};

class ShardedFeSwitch {
 public:
  // One shard per sink. Cumulative metrics (superfe_switch_* counters with
  // {shard="<s>"} labels, shared superfe_mgpv_* counters) are registered so
  // the family totals equal an unsharded run's; only the live_entries gauge
  // gets a per-shard label (concurrent writers would tear a shared gauge).
  ShardedFeSwitch(const CompiledPolicy& compiled,
                  const std::vector<MgpvSink*>& shard_sinks,
                  const MgpvConfig& mgpv_overrides,
                  const ShardedSwitchOptions& options);

  size_t size() const { return shards_.size(); }
  FeSwitch& shard(size_t s) { return *shards_[s]; }
  const FeSwitch& shard(size_t s) const { return *shards_[s]; }

  // The shard that owns `pkt`'s CG group. Stable across the run; identical
  // to the derivation MgpvCache::Insert applies.
  uint32_t ShardOf(const PacketRecord& pkt) const;

  // Drains every shard's cache, in shard order. Call only after all replay
  // threads have joined (flush is not concurrency-safe against inserts).
  void Flush();

  // Rotates every shard's rolling epoch, in shard order (daemon mode).
  // Same quiescence requirement as Flush(); no state is evicted.
  std::vector<MgpvEpochInfo> RotateEpochs();

  // Exact sums over per-shard stats (integer adds, order-independent).
  FeSwitchStats AggregateSwitchStats() const;
  MgpvStats AggregateMgpvStats() const;

 private:
  Granularity cg_;
  std::vector<std::unique_ptr<FeSwitch>> shards_;
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_SHARDED_FE_SWITCH_H_
