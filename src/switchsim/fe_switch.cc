#include "switchsim/fe_switch.h"

#include "net/wire.h"

namespace superfe {

FeSwitchObs FeSwitchObs::Create(obs::MetricsRegistry* registry) {
  return Create(registry, {});
}

FeSwitchObs FeSwitchObs::Create(obs::MetricsRegistry* registry,
                                const obs::LabelSet& instance_labels) {
  FeSwitchObs o;
  if (registry == nullptr) {
    return o;
  }
  o.registry = registry;
  for (const auto& label : instance_labels) {
    o.block_name += "-" + label.first + "-" + label.second;
  }
  o.packets_seen = registry->GetCounter("superfe_switch_packets_seen_total", instance_labels,
                                        "Packets offered to the switch");
  o.packets_filtered =
      registry->GetCounter("superfe_switch_packets_filtered_total", instance_labels,
                           "Packets dropped by the policy filter");
  o.packets_batched =
      registry->GetCounter("superfe_switch_packets_batched_total", instance_labels,
                           "Packets that entered the MGPV cache");
  o.frames_unparseable =
      registry->GetCounter("superfe_switch_frames_unparseable_total", instance_labels,
                           "Raw frames rejected by the parser");
  return o;
}

MgpvConfig FeSwitch::DefaultConfig(const CompiledPolicy& compiled) {
  MgpvConfig config;
  config.cg = compiled.switch_program.cg();
  config.fg = compiled.switch_program.fg();
  config.multi_granularity = compiled.switch_program.multi_granularity();
  config.metadata_bytes_per_cell = compiled.switch_program.MetadataBytesPerPacket();
  return config;
}

FeSwitch::FeSwitch(const CompiledPolicy& compiled, MgpvSink* sink)
    : FeSwitch(compiled, sink, DefaultConfig(compiled)) {}

FeSwitch::FeSwitch(const CompiledPolicy& compiled, MgpvSink* sink,
                   const MgpvConfig& mgpv_overrides)
    : program_(compiled.switch_program) {
  MgpvConfig config = mgpv_overrides;
  // Policy-derived fields always win over experiment overrides.
  config.cg = program_.cg();
  config.fg = program_.fg();
  config.multi_granularity = program_.multi_granularity();
  config.metadata_bytes_per_cell = program_.MetadataBytesPerPacket();
  cache_ = std::make_unique<MgpvCache>(config, sink);
}

void FeSwitch::set_obs(const FeSwitchObs& obs) {
  obs_ = obs;
  block_.Init(obs.registry, obs.block_name, obs.flush_packets);
  local_ = LocalObs{};
  local_.packets_seen = block_.BindCounter(obs.packets_seen);
  local_.packets_filtered = block_.BindCounter(obs.packets_filtered);
  local_.packets_batched = block_.BindCounter(obs.packets_batched);
  local_.frames_unparseable = block_.BindCounter(obs.frames_unparseable);
}

void FeSwitch::OnPacket(const PacketRecord& pkt) {
  stats_.packets_seen++;
  obs::Inc(local_.packets_seen);
  if (!program_.filter.Matches(pkt)) {
    stats_.packets_filtered++;
    obs::Inc(local_.packets_filtered);
    block_.NotePacket();
    return;  // Still forwarded; just not batched for feature extraction.
  }
  stats_.packets_batched++;
  obs::Inc(local_.packets_batched);
  cache_->Insert(pkt);
  block_.NotePacket();
}

void FeSwitch::OnFrame(const uint8_t* data, size_t length, uint64_t timestamp_ns) {
  auto parsed = ParseFrame(data, length);
  if (!parsed.ok()) {
    stats_.packets_seen++;
    stats_.frames_unparseable++;
    obs::Inc(local_.packets_seen);
    obs::Inc(local_.frames_unparseable);
    block_.NotePacket();
    return;  // Still forwarded; nothing to batch.
  }
  PacketRecord pkt = std::move(parsed).value();
  pkt.timestamp_ns = timestamp_ns;
  const FiveTuple canonical = pkt.tuple.Canonical();
  const auto [it, inserted] = forward_orientation_.emplace(canonical, pkt.tuple);
  pkt.direction = pkt.tuple == it->second ? Direction::kForward : Direction::kBackward;
  OnPacket(pkt);
}

void FeSwitch::Flush() {
  cache_->Flush();
  block_.Flush();
}

}  // namespace superfe
