// Switch control plane (§7: "~4K lines of C for the control plane").
//
// The data-plane simulator (FeSwitch/MgpvCache) models what the ASIC does
// per packet; this control plane models what runs on the switch CPU:
// admission control against Tofino resources, materializing the policy
// filter into match-action table entries, reconfiguring the aging timeout
// at runtime, and draining/retiring a policy.
#ifndef SUPERFE_SWITCHSIM_CONTROL_PLANE_H_
#define SUPERFE_SWITCHSIM_CONTROL_PLANE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "switchsim/fe_switch.h"
#include "switchsim/resources.h"

namespace superfe {

// One installed match-action entry (as `bfrt` would show it).
struct TableEntry {
  std::string table;
  std::string match;
  std::string action;
  int priority = 0;

  std::string ToString() const;
};

class SwitchControlPlane {
 public:
  explicit SwitchControlPlane(const TofinoCapacity& capacity = {}) : capacity_(capacity) {}

  // Admission control + installation: verifies the compiled policy fits the
  // remaining switch resources, materializes its filter into table entries,
  // and brings up an FE-Switch instance bound to `sink`. At most one policy
  // per pipeline in this model (the paper's prototype likewise runs one
  // extraction program per switch).
  Result<FeSwitch*> InstallPolicy(const CompiledPolicy& compiled, MgpvSink* sink);
  Result<FeSwitch*> InstallPolicy(const CompiledPolicy& compiled, MgpvSink* sink,
                                  const MgpvConfig& overrides);

  // Runtime reconfiguration: adjusts the aging timeout (the paper tunes T
  // per traffic pattern, §8.4). Takes effect on the next installed cache;
  // the running cache cannot be resized on a live ASIC, but the timeout is
  // a register the control plane owns.
  Status SetAgingTimeout(uint64_t timeout_ns);

  // Drains the running policy: flushes MGPV, removes table entries, frees
  // resources. Safe to call when nothing is installed.
  void Drain();

  bool installed() const { return fe_switch_ != nullptr; }
  FeSwitch* fe_switch() { return fe_switch_.get(); }
  const std::vector<TableEntry>& entries() const { return entries_; }
  const SwitchResourceUsage& usage() const { return usage_; }
  const TofinoCapacity& capacity() const { return capacity_; }

  // Human-readable state dump (like `bfrt_python` inspection).
  std::string Dump() const;

 private:
  TofinoCapacity capacity_;
  SwitchResourceUsage usage_;
  std::vector<TableEntry> entries_;
  std::unique_ptr<FeSwitch> fe_switch_;
  uint64_t aging_timeout_ns_ = 10'000'000;
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_CONTROL_PLANE_H_
