// FE-Switch: the switch side of SuperFE (§5). Wires the compiled policy's
// filter (match-action table) in front of the MGPV batching cache and
// preserves baseline forwarding semantics (packets are counted as forwarded
// regardless of feature extraction).
#ifndef SUPERFE_SWITCHSIM_FE_SWITCH_H_
#define SUPERFE_SWITCHSIM_FE_SWITCH_H_

#include <memory>
#include <unordered_map>

#include "net/replay.h"
#include "policy/compile.h"
#include "switchsim/mgpv.h"

namespace superfe {

struct FeSwitchStats {
  uint64_t packets_seen = 0;      // All traffic (still forwarded).
  uint64_t packets_filtered = 0;  // Dropped by the policy filter.
  uint64_t packets_batched = 0;   // Entered the MGPV cache.
  uint64_t frames_unparseable = 0;  // Raw frames the parser rejected.
};

// Nullable observability handles mirroring FeSwitchStats (superfe_switch_*).
// `instance_labels` distinguishes multiple pipes (e.g. {shard="<i>"} per
// ShardedFeSwitch shard); the labeled children of a family sum to exactly
// the totals an unlabeled single-switch run records.
struct FeSwitchObs {
  obs::Counter* packets_seen = nullptr;
  obs::Counter* packets_filtered = nullptr;
  obs::Counter* packets_batched = nullptr;
  obs::Counter* frames_unparseable = nullptr;

  // Cold-tier identity for the switch's WorkerObsBlock (see MgpvObs).
  obs::MetricsRegistry* registry = nullptr;
  std::string block_name = "switch";
  uint32_t flush_packets = 4096;

  static FeSwitchObs Create(obs::MetricsRegistry* registry);
  static FeSwitchObs Create(obs::MetricsRegistry* registry,
                            const obs::LabelSet& instance_labels);
};

class FeSwitch : public PacketSink {
 public:
  // `mgpv_overrides` lets experiments change cache geometry / aging while
  // keeping the policy-derived fields (granularities, metadata layout).
  FeSwitch(const CompiledPolicy& compiled, MgpvSink* sink);
  FeSwitch(const CompiledPolicy& compiled, MgpvSink* sink, const MgpvConfig& mgpv_overrides);

  // PacketSink: the replayer feeds raw traffic here.
  void OnPacket(const PacketRecord& pkt) override;

  // Raw-frame entry point: parses an Ethernet frame exactly like the P4
  // parser (net/wire), stamps it with `timestamp_ns`, infers the flow
  // direction from first-seen orientation (the ASIC derives it from the
  // ingress port; a functional model has no ports), and processes it.
  // Unparseable frames are forwarded but not batched.
  void OnFrame(const uint8_t* data, size_t length, uint64_t timestamp_ns);

  // Drains the cache at end of run.
  void Flush();

  // Closes a rolling epoch (daemon mode): folds this switch's batch-local
  // obs deltas, then rotates the cache's epoch. No state is evicted. Call
  // at quiescence.
  MgpvEpochInfo RotateMgpvEpoch() {
    block_.Flush();
    return cache_->RotateEpoch();
  }

  const FeSwitchStats& stats() const { return stats_; }
  const MgpvCache& cache() const { return *cache_; }
  MgpvCache& mutable_cache() { return *cache_; }

  // Wiring-time setters (single-threaded, call before traffic). The MGPV
  // handles are forwarded to the cache.
  void set_obs(const FeSwitchObs& obs);
  void set_mgpv_obs(const MgpvObs& obs) { cache_->set_obs(obs); }
  const SwitchProgram& program() const { return program_; }

  // The MgpvConfig implied by a compiled policy (prototype defaults).
  static MgpvConfig DefaultConfig(const CompiledPolicy& compiled);

 private:
  // Batch-local delta cells for the superfe_switch_* counters.
  struct LocalObs {
    obs::WorkerObsBlock::CounterCell* packets_seen = nullptr;
    obs::WorkerObsBlock::CounterCell* packets_filtered = nullptr;
    obs::WorkerObsBlock::CounterCell* packets_batched = nullptr;
    obs::WorkerObsBlock::CounterCell* frames_unparseable = nullptr;
  };

  SwitchProgram program_;
  FeSwitchStats stats_;
  FeSwitchObs obs_;
  obs::WorkerObsBlock block_;
  LocalObs local_;
  std::unique_ptr<MgpvCache> cache_;
  // First-seen orientation per canonical flow, for the raw-frame path.
  std::unordered_map<FiveTuple, FiveTuple, FiveTupleHash> forward_orientation_;
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_FE_SWITCH_H_
