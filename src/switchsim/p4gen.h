// P4-16 code generation for FE-Switch (§7: the policy engine "extracts
// operators groupby and filter to configure the program of FE-Switch").
//
// Emits a complete Tofino-style P4-16 program implementing the compiled
// policy's switch side: header parsing, the policy filter as a match-action
// table, and the MGPV cache (short buffers, stack-allocated long buffers,
// FG-key table, aging via recirculation) as register arrays with the same
// geometry the simulator uses. The output is reference source for a real
// deployment; this repository executes the simulator instead.
#ifndef SUPERFE_SWITCHSIM_P4GEN_H_
#define SUPERFE_SWITCHSIM_P4GEN_H_

#include <string>

#include "policy/compile.h"
#include "switchsim/mgpv.h"

namespace superfe {

// Generates the P4-16 source for the compiled policy's FE-Switch program.
std::string GenerateP4(const CompiledPolicy& compiled, const MgpvConfig& config);

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_P4GEN_H_
