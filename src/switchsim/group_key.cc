#include "switchsim/group_key.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"

namespace superfe {
namespace {

void PutU32(GroupKey& key, size_t off, uint32_t v) {
  key.bytes[off] = static_cast<uint8_t>(v >> 24);
  key.bytes[off + 1] = static_cast<uint8_t>(v >> 16);
  key.bytes[off + 2] = static_cast<uint8_t>(v >> 8);
  key.bytes[off + 3] = static_cast<uint8_t>(v);
}

// Host key: the initiator's IP, so both directions of a flow share it.
GroupKey HostKey(uint32_t initiator_ip) {
  GroupKey key;
  key.granularity = Granularity::kHost;
  key.length = 4;
  PutU32(key, 0, initiator_ip);
  return key;
}

// Channel key: the *ordered* (initiator, responder) pair — not min/max
// canonicalized. Ordering by initiator keeps the granularity chain nested
// (host ⊇ channel ⊇ socket/flow): a min/max pair {A,B} could mix flows
// initiated from either end, whose host keys (A vs B) would route to
// different shards while the channel state expected them together.
GroupKey ChannelKey(uint32_t initiator_ip, uint32_t responder_ip) {
  GroupKey key;
  key.granularity = Granularity::kChannel;
  key.length = 8;
  PutU32(key, 0, initiator_ip);
  PutU32(key, 4, responder_ip);
  return key;
}

GroupKey TupleKey(const FiveTuple& tuple, Granularity granularity) {
  GroupKey key;
  key.granularity = granularity;
  key.length = 13;
  const auto bytes = tuple.ToBytes();
  std::copy(bytes.begin(), bytes.end(), key.bytes.begin());
  return key;
}

}  // namespace

FiveTuple GroupKey::InitiatorTuple(const PacketRecord& pkt) { return pkt.InitiatorTuple(); }

GroupKey GroupKey::ForPacket(const PacketRecord& pkt, Granularity granularity) {
  return FromFgTuple(InitiatorTuple(pkt), granularity);
}

GroupKey GroupKey::FromFgTuple(const FiveTuple& fg, Granularity granularity) {
  switch (granularity) {
    case Granularity::kHost:
      return HostKey(fg.src_ip);
    case Granularity::kChannel:
      return ChannelKey(fg.src_ip, fg.dst_ip);
    case Granularity::kSocket:
    case Granularity::kFlow:
      return TupleKey(fg, granularity);
  }
  return {};
}

uint32_t GroupKey::Hash() const {
  return Crc32(bytes.data(), length, static_cast<uint32_t>(granularity) * 0x1003fu);
}

std::string GroupKey::ToString() const {
  std::string out = GranularityName(granularity);
  out += ":";
  for (int i = 0; i < length; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x", bytes[i]);
    out += buf;
  }
  return out;
}

}  // namespace superfe
