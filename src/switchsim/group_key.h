// Group keys for the SuperFE granularities, in the byte layout the switch
// hash units consume.
//
// Every key is stored in *initiator orientation*: the finest-granularity
// (FG) key is the five-tuple as sent by the flow initiator, the channel key
// is the ordered (initiator, responder) IP pair, and the host key is the
// initiator's IP. Orienting the whole chain the same way means each coarser
// key is a prefix-projection of the FG key — both directions of a flow map
// to the same key at every granularity, so any coarser key is derivable
// from the FG key alone (no direction bit needed), which is what lets MGPV
// store each packet's metadata once and re-split on the NIC (§5.1). It also
// makes CG-hash routing exact under sharding: a group's packets can never
// straddle shards/members just because the two directions hashed apart.
#ifndef SUPERFE_SWITCHSIM_GROUP_KEY_H_
#define SUPERFE_SWITCHSIM_GROUP_KEY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "net/packet.h"
#include "policy/ast.h"

namespace superfe {

struct GroupKey {
  Granularity granularity = Granularity::kFlow;
  uint8_t length = 0;               // Valid bytes.
  std::array<uint8_t, 13> bytes{};  // Max = five-tuple.

  bool operator==(const GroupKey& other) const {
    return granularity == other.granularity && length == other.length &&
           std::memcmp(bytes.data(), other.bytes.data(), length) == 0;
  }
  bool operator!=(const GroupKey& other) const { return !(*this == other); }

  // The key of `granularity` for this packet (host = the initiator's IP;
  // channel = ordered initiator→responder IP pair; socket/flow =
  // initiator-oriented five-tuple).
  static GroupKey ForPacket(const PacketRecord& pkt, Granularity granularity);

  // The initiator-oriented five-tuple of the packet (the FG key stored in
  // the synchronized table).
  static FiveTuple InitiatorTuple(const PacketRecord& pkt);

  // Derives a coarser key from an initiator-oriented FG five-tuple. All
  // granularities project from the FG key alone — no direction needed.
  static GroupKey FromFgTuple(const FiveTuple& fg, Granularity granularity);

  // 32-bit CRC hash, as computed by the Tofino hash engine; the same value
  // is shipped to the NIC (hash-reuse optimization, §6.2).
  uint32_t Hash() const;

  std::string ToString() const;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const { return key.Hash(); }
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_GROUP_KEY_H_
