// The multi-granularity key-vector cache (MGPV, §5): the core FE-Switch
// data structure that batches per-packet feature metadata per coarsest-
// granularity group before shipping it to the SmartNIC.
//
// Structure (Fig 7): a hash-indexed array of short buffers (default 4 cells
// x 16384 entries), a stack-allocated pool of long buffers (20 cells x
// 4096), and a synchronized FG-group-key hash table (16384 slots). Eviction
// happens on hash collision, buffer overflow, or aging (§5.2).
//
// Configured with a single-granularity chain this degenerates to \*Flow's
// GPV, which is the Fig 13 baseline.
#ifndef SUPERFE_SWITCHSIM_MGPV_H_
#define SUPERFE_SWITCHSIM_MGPV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/worker_block.h"
#include "switchsim/evict.h"
#include "switchsim/group_key.h"

namespace superfe {

// Observability handles for one MGPV cache instance. All pointers may be
// null (metrics off); counters mirror MgpvStats exactly — they are bumped at
// the same sites — so exported totals always equal the RunReport fields.
struct MgpvObs {
  obs::Counter* packets_in = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* reports_out = nullptr;
  obs::Counter* cells_out = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* fg_syncs = nullptr;
  obs::Counter* fg_collisions = nullptr;
  obs::Counter* long_allocs = nullptr;
  obs::Counter* long_alloc_failures = nullptr;
  obs::Counter* evictions[5] = {};  // Indexed by EvictReason.
  obs::Histogram* report_cells = nullptr;
  obs::Gauge* live_entries = nullptr;  // Valid short-buffer entries, live.
  // Rolling-epoch counter of this cache instance (daemon mode); bumped by
  // RotateEpoch(). Per-instance like live_entries.
  obs::Gauge* epoch = nullptr;
  // Batch residency (first ingest -> eviction, trace-time ns) per eviction
  // cause; observed at the same site as the eviction counters, so each
  // cause's residency count equals its eviction count. Null unless latency
  // tracking is on.
  obs::LatencyHistogram* residency[5] = {};  // Indexed by EvictReason.
  // Measured switch-side MGPV cycles, superfe_cycles_total{stage="mgpv"}.
  // Null unless `profile` was set at Create time.
  obs::Counter* cycles = nullptr;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane = 0;

  // Cold-tier identity for the owning cache's WorkerObsBlock: where to
  // register the batching tier's meta-metrics, the {block=...} label value,
  // and the auto-flush cadence in packets (1 restores the legacy
  // per-packet registry cadence).
  obs::MetricsRegistry* registry = nullptr;
  std::string block_name = "mgpv";
  uint32_t flush_packets = 4096;

  // Registers the standard superfe_mgpv_* metrics (docs/OBSERVABILITY.md).
  // Null `registry`/`trace` leave the corresponding handles null; `latency`
  // additionally registers the superfe_latency_mgpv_residency_ns family and
  // `profile` the {stage="mgpv"} cycle counter.
  // `instance_labels` (e.g. {shard="<i>"}) applies only to the live_entries
  // gauge — a per-instance level that multiple writers would tear — while
  // every cumulative counter/histogram stays shared across instances, so a
  // sharded cache's superfe_mgpv_* totals are identical to an unsharded
  // run's and the {cause}-labeled latency lookups stay unchanged.
  static MgpvObs Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                        uint32_t trace_lane, bool latency = false,
                        const obs::LabelSet& instance_labels = {},
                        bool profile = false);
};

struct MgpvConfig {
  // Prototype defaults from §7.
  uint32_t short_buffers = 16384;
  uint32_t short_size = 4;
  uint32_t long_buffers = 4096;
  uint32_t long_size = 20;
  uint32_t fg_table_size = 16384;

  // Aging (§5.2): entries idle for more than this are recycled by the
  // recirculation scan; 0 disables aging. The default matches the paper's
  // bound on batching delay, which "does not exceed O(10) milliseconds"
  // (§8.4).
  uint64_t aging_timeout_ns = 10'000'000;  // 10 ms.
  // Entries examined by the recirculating "internal packets" per inserted
  // packet (models the recirculation-port scan frequency).
  uint32_t aging_scan_per_packet = 4;

  // From the compiled policy.
  Granularity cg = Granularity::kFlow;
  Granularity fg = Granularity::kFlow;
  bool multi_granularity = false;
  uint32_t metadata_bytes_per_cell = 7;

  // Graceful overload shedding (docs/ROBUSTNESS.md). Off by default so the
  // cache's eviction sequence stays byte-identical to the historical
  // behavior; fault-plan runs turn it on. While the long-buffer pool is
  // empty: (a) the aging scan tightens its timeout by
  // `pressure_aging_divisor` so idle batches drain sooner, and (b) a failed
  // long alloc first tries a priority eviction — scan up to
  // `pressure_evict_scan` entries and evict the stalest long-buffer holder
  // (counted in MgpvStats::pressure_evictions, cause kAging) — before
  // falling back to the short-full eviction.
  bool graceful_overload = false;
  uint32_t pressure_aging_divisor = 4;
  uint32_t pressure_evict_scan = 16;

  // Total switch SRAM footprint of this cache instance (Fig 13 metric).
  uint64_t MemoryFootprintBytes() const;
};

struct MgpvStats {
  uint64_t packets_in = 0;
  uint64_t bytes_in = 0;

  uint64_t reports_out = 0;
  uint64_t cells_out = 0;
  uint64_t bytes_out = 0;  // Reports + FG sync messages.
  uint64_t fg_syncs = 0;
  uint64_t fg_collisions = 0;

  uint64_t evictions[5] = {0, 0, 0, 0, 0};  // Indexed by EvictReason.

  uint64_t long_allocs = 0;
  uint64_t long_alloc_failures = 0;

  // Degraded-mode accounting (zero unless graceful_overload / a fault plan).
  uint64_t pressure_evictions = 0;      // Priority evictions under pool pressure.
  uint64_t injected_pool_failures = 0;  // Long allocs failed by fault injection.

  // Fraction of original packet *rate* still crossing to the NIC
  // (reports / packets). Fig 12's "receiving rate" metric.
  double MessageRatio() const {
    return packets_in == 0 ? 0.0 : static_cast<double>(reports_out) /
                                       static_cast<double>(packets_in);
  }
  // Fraction of original *bytes* crossing to the NIC. Fig 12's "receiving
  // throughput" metric; 1 - this is the paper's ">80% reduction".
  double ByteRatio() const {
    return bytes_in == 0 ? 0.0 : static_cast<double>(bytes_out) /
                                     static_cast<double>(bytes_in);
  }
};

// Snapshot taken at a rolling-epoch boundary (daemon mode). The epoch is an
// accounting boundary, NOT a flush: cached batches carry across it (bounded
// by construction — fixed buffers plus aging), which is what keeps
// concatenated epoch exports identical to a one-shot run.
struct MgpvEpochInfo {
  uint64_t epoch = 0;  // 1-based index of the epoch just closed.
  double occupancy = 0.0;
  uint64_t live_entries = 0;
  uint64_t free_long_buffers = 0;
  uint64_t trace_now_ns = 0;  // Trace-time position at rotation.
  MgpvStats stats;            // Cumulative (not per-epoch deltas).
};

class MgpvCache {
 public:
  MgpvCache(const MgpvConfig& config, MgpvSink* sink);

  // Inserts one (already filtered) packet; may trigger evictions into the
  // sink and advances the aging scan.
  void Insert(const PacketRecord& pkt);

  // Drains all cached metadata (end of run).
  void Flush();

  const MgpvStats& stats() const { return stats_; }
  const MgpvConfig& config() const { return config_; }

  // Installs observability handles and binds the cache's batch-local obs
  // block to them. Call before traffic; the cache is single-threaded, so
  // this is only a wiring-time setter.
  void set_obs(const MgpvObs& obs);

  // Fault-injection wiring (not owned; wiring-time setter). With an
  // injector, long allocs inside an injected pool-exhaustion window for
  // `shard` fail deterministically (counted in injected_pool_failures).
  void set_fault(FaultInjector* injector, uint32_t shard) {
    fault_ = injector;
    fault_shard_ = shard;
  }

  // Closes the current rolling epoch: folds the batch-local obs deltas into
  // the registry (so boundary reads are exact), bumps the epoch gauge, and
  // returns a state snapshot. Deliberately does NOT evict anything — see
  // MgpvEpochInfo. Call at quiescence (the cache is single-threaded).
  MgpvEpochInfo RotateEpoch();

  uint64_t epoch() const { return epoch_; }

  // Occupied entries / total entries.
  double Occupancy() const;

  // Fraction of occupied entries accessed within `window_ns` of the current
  // time — Fig 14's "buffer efficiency" (active flows in MGPV buffers).
  double BufferEfficiency(uint64_t window_ns) const;

 private:
  struct Entry {
    bool valid = false;
    GroupKey key;
    uint32_t hash = 0;
    uint64_t last_access_ns = 0;
    // Trace-time arrival of the current batch's first cell. Every eviction
    // clears both buffers, so "short_cells is empty" identifies batch start.
    uint64_t batch_start_ns = 0;
    int32_t long_index = -1;  // -1 = no long buffer owned.
    std::vector<MgpvCell> short_cells;
  };

  struct FgSlot {
    bool valid = false;
    FiveTuple key;
  };

  // Emits the entry's cells (short then long, i.e. chronological order) and
  // releases its long buffer. The entry's buffers are cleared; validity is
  // managed by the caller.
  void EvictCells(Entry& entry, EvictReason reason);

  // Looks up / installs the FG key, emitting a sync message on writes.
  uint16_t FgIndexFor(const FiveTuple& fg_tuple);

  // Advances the recirculation aging scan by config_.aging_scan_per_packet
  // entries.
  void AgeScan();

  // Graceful-overload priority eviction: scans up to pressure_evict_scan
  // entries and evicts the stalest long-buffer holder other than `current`,
  // freeing its long buffer for reuse. Returns true when one was evicted.
  bool PressureEvict(const Entry& current);

  // Batch-local delta cells bound to obs_'s shared handles (null when the
  // corresponding handle is null). All per-packet bumps go through these;
  // block_ folds them into the registry per flush_packets and at Flush().
  struct LocalObs {
    obs::WorkerObsBlock::CounterCell* packets_in = nullptr;
    obs::WorkerObsBlock::CounterCell* bytes_in = nullptr;
    obs::WorkerObsBlock::CounterCell* reports_out = nullptr;
    obs::WorkerObsBlock::CounterCell* cells_out = nullptr;
    obs::WorkerObsBlock::CounterCell* bytes_out = nullptr;
    obs::WorkerObsBlock::CounterCell* fg_syncs = nullptr;
    obs::WorkerObsBlock::CounterCell* fg_collisions = nullptr;
    obs::WorkerObsBlock::CounterCell* long_allocs = nullptr;
    obs::WorkerObsBlock::CounterCell* long_alloc_failures = nullptr;
    obs::WorkerObsBlock::CounterCell* evictions[5] = {};
    obs::WorkerObsBlock::HistogramCell* report_cells = nullptr;
    obs::WorkerObsBlock::GaugeCell* live_entries = nullptr;
    obs::WorkerObsBlock::LatencyCell* residency[5] = {};
    obs::WorkerObsBlock::CounterCell* cycles = nullptr;
  };

  MgpvConfig config_;
  MgpvSink* sink_;
  MgpvStats stats_;
  MgpvObs obs_;
  obs::WorkerObsBlock block_;
  LocalObs local_;
  uint64_t live_entries_ = 0;  // Valid entries, tracked for the gauge.

  std::vector<Entry> entries_;
  std::vector<std::vector<MgpvCell>> long_buffers_;
  std::vector<uint32_t> free_long_;  // Stack of free long-buffer indices.
  std::vector<FgSlot> fg_table_;

  uint64_t now_ns_ = 0;
  uint64_t epoch_ = 0;
  uint32_t scan_cursor_ = 0;
  uint32_t pressure_cursor_ = 0;  // Separate cursor for PressureEvict scans.

  FaultInjector* fault_ = nullptr;
  uint32_t fault_shard_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_MGPV_H_
