#include "switchsim/mgpv.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "obs/cycles.h"

namespace superfe {

const char* EvictReasonName(EvictReason reason) {
  switch (reason) {
    case EvictReason::kCollision:
      return "collision";
    case EvictReason::kShortFull:
      return "short_full";
    case EvictReason::kLongFull:
      return "long_full";
    case EvictReason::kAging:
      return "aging";
    case EvictReason::kFlush:
      return "flush";
  }
  return "?";
}

MgpvObs MgpvObs::Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                        uint32_t trace_lane, bool latency,
                        const obs::LabelSet& instance_labels, bool profile) {
  MgpvObs o;
  o.trace = trace;
  o.trace_lane = trace_lane;
  if (registry == nullptr) {
    return o;
  }
  o.registry = registry;
  for (const auto& label : instance_labels) {
    o.block_name += "-" + label.first + "-" + label.second;
  }
  o.packets_in = registry->GetCounter("superfe_mgpv_packets_in_total", {},
                                      "Packets inserted into the MGPV cache");
  o.bytes_in = registry->GetCounter("superfe_mgpv_bytes_in_total", {},
                                    "Wire bytes of packets inserted into MGPV");
  o.reports_out = registry->GetCounter("superfe_mgpv_reports_out_total", {},
                                       "MGPV reports evicted to the NIC");
  o.cells_out = registry->GetCounter("superfe_mgpv_cells_out_total", {},
                                     "MGPV cells evicted to the NIC");
  o.bytes_out = registry->GetCounter("superfe_mgpv_bytes_out_total", {},
                                     "Switch->NIC wire bytes (reports + FG syncs)");
  o.fg_syncs = registry->GetCounter("superfe_mgpv_fg_syncs_total", {},
                                    "FG-key-table synchronization messages");
  o.fg_collisions = registry->GetCounter("superfe_mgpv_fg_collisions_total", {},
                                         "FG-table slot overwrites");
  o.long_allocs = registry->GetCounter("superfe_mgpv_long_allocs_total", {},
                                       "Long buffers taken from the pool");
  o.long_alloc_failures = registry->GetCounter("superfe_mgpv_long_alloc_failures_total", {},
                                               "Long-buffer requests that found the pool empty");
  for (int i = 0; i < 5; ++i) {
    o.evictions[i] =
        registry->GetCounter("superfe_mgpv_evictions_total",
                             {{"cause", EvictReasonName(static_cast<EvictReason>(i))}},
                             "MGPV evictions by cause");
  }
  o.report_cells = registry->GetHistogram("superfe_mgpv_report_cells", {1, 2, 4, 8, 16, 32},
                                          {}, "Cells per evicted MGPV report");
  if (latency) {
    for (int i = 0; i < 5; ++i) {
      o.residency[i] = registry->GetLatencyHistogram(
          "superfe_latency_mgpv_residency_ns",
          {{"cause", EvictReasonName(static_cast<EvictReason>(i))}},
          "Batch residency in the MGPV slot (first ingest to eviction, trace-time ns)");
    }
  }
  o.live_entries = registry->GetGauge("superfe_mgpv_live_entries", instance_labels,
                                      "Occupied MGPV short-buffer entries");
  o.epoch = registry->GetGauge("superfe_mgpv_epoch", instance_labels,
                               "Rolling-epoch counter of this MGPV instance");
  if (profile) {
    o.cycles = registry->GetCounter("superfe_cycles_total", {{"stage", "mgpv"}},
                                    "Measured worker cycles by pipeline stage");
  }
  return o;
}

uint64_t MgpvConfig::MemoryFootprintBytes() const {
  const uint32_t cg_key_bytes = cg == Granularity::kHost      ? 4
                                : cg == Granularity::kChannel ? 8
                                                              : 13;
  // Per short entry: key + hash (4) + last-access timestamp (4) + long
  // pointer (2) + cell count (1) + the short cells themselves.
  const uint64_t per_entry =
      cg_key_bytes + 4 + 4 + 2 + 1 + static_cast<uint64_t>(short_size) * metadata_bytes_per_cell;
  uint64_t total = static_cast<uint64_t>(short_buffers) * per_entry;
  // Long buffer pool + the allocation stack (2-byte indices + top pointer).
  total += static_cast<uint64_t>(long_buffers) * long_size * metadata_bytes_per_cell;
  total += static_cast<uint64_t>(long_buffers) * 2 + 4;
  if (multi_granularity) {
    // FG key table: five-tuple keys.
    total += static_cast<uint64_t>(fg_table_size) * 13;
  }
  return total;
}

void MgpvCache::set_obs(const MgpvObs& obs) {
  obs_ = obs;
  block_.Init(obs.registry, obs.block_name, obs.flush_packets);
  local_ = LocalObs{};
  local_.packets_in = block_.BindCounter(obs.packets_in);
  local_.bytes_in = block_.BindCounter(obs.bytes_in);
  local_.reports_out = block_.BindCounter(obs.reports_out);
  local_.cells_out = block_.BindCounter(obs.cells_out);
  local_.bytes_out = block_.BindCounter(obs.bytes_out);
  local_.fg_syncs = block_.BindCounter(obs.fg_syncs);
  local_.fg_collisions = block_.BindCounter(obs.fg_collisions);
  local_.long_allocs = block_.BindCounter(obs.long_allocs);
  local_.long_alloc_failures = block_.BindCounter(obs.long_alloc_failures);
  for (int i = 0; i < 5; ++i) {
    local_.evictions[i] = block_.BindCounter(obs.evictions[i]);
    local_.residency[i] = block_.BindLatency(obs.residency[i]);
  }
  local_.report_cells = block_.BindHistogram(obs.report_cells);
  local_.live_entries = block_.BindGauge(obs.live_entries);
  local_.cycles = block_.BindCounter(obs.cycles);
}

MgpvCache::MgpvCache(const MgpvConfig& config, MgpvSink* sink)
    : config_(config), sink_(sink) {
  assert(sink != nullptr);
  assert(config.short_buffers > 0 && config.short_size > 0);
  entries_.resize(config_.short_buffers);
  long_buffers_.resize(config_.long_buffers);
  free_long_.reserve(config_.long_buffers);
  // Stack is initialized full; popping yields the highest index first.
  for (uint32_t i = 0; i < config_.long_buffers; ++i) {
    free_long_.push_back(i);
  }
  fg_table_.resize(config_.fg_table_size);
}

void MgpvCache::EvictCells(Entry& entry, EvictReason reason) {
  const size_t long_cells =
      entry.long_index >= 0 ? long_buffers_[entry.long_index].size() : 0;
  if (entry.short_cells.empty() && long_cells == 0) {
    // Nothing batched (possible right after a previous eviction); still
    // release the long buffer if owned.
    if (entry.long_index >= 0) {
      free_long_.push_back(static_cast<uint32_t>(entry.long_index));
      entry.long_index = -1;
    }
    return;
  }

  MgpvReport report;
  report.cg_key = entry.key;
  report.hash = entry.hash;
  report.reason = reason;
  report.cells.reserve(entry.short_cells.size() + long_cells);
  // Chronological order: the short buffer filled before the long buffer.
  for (const auto& cell : entry.short_cells) {
    report.cells.push_back(cell);
  }
  if (entry.long_index >= 0) {
    auto& long_buf = long_buffers_[entry.long_index];
    for (const auto& cell : long_buf) {
      report.cells.push_back(cell);
    }
    long_buf.clear();
    free_long_.push_back(static_cast<uint32_t>(entry.long_index));
    entry.long_index = -1;
  }
  entry.short_cells.clear();
  report.first_ingest_ns = entry.batch_start_ns;
  report.evict_ns = now_ns_;

  stats_.reports_out++;
  stats_.cells_out += report.cells.size();
  stats_.bytes_out += report.WireBytes(config_.metadata_bytes_per_cell);
  stats_.evictions[static_cast<int>(reason)]++;
  obs::Inc(local_.reports_out);
  obs::Inc(local_.cells_out, report.cells.size());
  obs::Inc(local_.bytes_out, report.WireBytes(config_.metadata_bytes_per_cell));
  obs::Inc(local_.evictions[static_cast<int>(reason)]);
  // Same site as the eviction counter bump: residency counts per cause
  // always equal eviction counts per cause.
  obs::Observe(local_.residency[static_cast<int>(reason)],
               now_ns_ - entry.batch_start_ns);
  obs::Observe(local_.report_cells, static_cast<double>(report.cells.size()));
  if (obs_.trace != nullptr) {
    obs_.trace->Instant(obs_.trace_lane, "mgpv", "evict", "cells", report.cells.size(),
                        "cause", EvictReasonName(reason));
  }
  sink_->OnMgpv(report);
}

uint16_t MgpvCache::FgIndexFor(const FiveTuple& fg_tuple) {
  const auto bytes = fg_tuple.ToBytes();
  const uint32_t hash = Crc32(bytes.data(), bytes.size(), 0xf60f60u);
  const uint16_t index = static_cast<uint16_t>(hash % config_.fg_table_size);
  FgSlot& slot = fg_table_[index];
  if (!slot.valid || !(slot.key == fg_tuple)) {
    if (slot.valid) {
      stats_.fg_collisions++;
      obs::Inc(local_.fg_collisions);
    }
    slot.valid = true;
    slot.key = fg_tuple;
    FgSyncMessage sync;
    sync.index = index;
    sync.key = fg_tuple;
    stats_.fg_syncs++;
    stats_.bytes_out += FgSyncMessage::kWireBytes;
    obs::Inc(local_.fg_syncs);
    obs::Inc(local_.bytes_out, FgSyncMessage::kWireBytes);
    if (obs_.trace != nullptr) {
      obs_.trace->Instant(obs_.trace_lane, "mgpv", "fg_sync", "index", index);
    }
    sink_->OnFgSync(sync);
  }
  return index;
}

void MgpvCache::AgeScan() {
  if (config_.aging_timeout_ns == 0) {
    return;
  }
  // Under pool pressure the graceful-overload mode tightens the aging
  // timeout so idle batches drain (and release long buffers) sooner.
  uint64_t timeout_ns = config_.aging_timeout_ns;
  if (config_.graceful_overload && free_long_.empty() &&
      config_.pressure_aging_divisor > 1) {
    timeout_ns /= config_.pressure_aging_divisor;
  }
  for (uint32_t i = 0; i < config_.aging_scan_per_packet; ++i) {
    Entry& entry = entries_[scan_cursor_];
    scan_cursor_ = (scan_cursor_ + 1) % config_.short_buffers;
    if (entry.valid && now_ns_ > entry.last_access_ns &&
        now_ns_ - entry.last_access_ns > timeout_ns) {
      EvictCells(entry, EvictReason::kAging);
      entry.valid = false;
      --live_entries_;
      obs::Set(local_.live_entries, static_cast<double>(live_entries_));
    }
  }
}

bool MgpvCache::PressureEvict(const Entry& current) {
  // Priority eviction: among the next pressure_evict_scan entries, evict the
  // stalest one that owns a long buffer (releasing it for the current,
  // actively growing batch). Deterministic — the cursor and staleness depend
  // only on the packet stream.
  Entry* victim = nullptr;
  for (uint32_t i = 0; i < config_.pressure_evict_scan; ++i) {
    Entry& entry = entries_[pressure_cursor_];
    pressure_cursor_ = (pressure_cursor_ + 1) % config_.short_buffers;
    if (entry.valid && entry.long_index >= 0 && &entry != &current &&
        (victim == nullptr || entry.last_access_ns < victim->last_access_ns)) {
      victim = &entry;
    }
  }
  if (victim == nullptr) {
    return false;
  }
  EvictCells(*victim, EvictReason::kAging);
  victim->valid = false;
  --live_entries_;
  obs::Set(local_.live_entries, static_cast<double>(live_entries_));
  stats_.pressure_evictions++;
  return true;
}

void MgpvCache::Insert(const PacketRecord& pkt) {
  // Bracket the whole insert (including evictions and their sink delivery)
  // for the {stage="mgpv"} cycle profile; skipped when profiling is off.
  const uint64_t cycles_start = local_.cycles != nullptr ? obs::ReadCycles() : 0;
  now_ns_ = std::max(now_ns_, pkt.timestamp_ns);
  stats_.packets_in++;
  stats_.bytes_in += pkt.wire_bytes;
  obs::Inc(local_.packets_in);
  obs::Inc(local_.bytes_in, pkt.wire_bytes);

  MgpvCell cell;
  cell.size = static_cast<uint16_t>(std::min<uint32_t>(pkt.wire_bytes, 0xffff));
  cell.tstamp = static_cast<uint32_t>(pkt.timestamp_ns);
  cell.direction = pkt.direction;
  cell.full_timestamp_ns = pkt.timestamp_ns;
  cell.fg_tuple = GroupKey::InitiatorTuple(pkt);
  if (config_.multi_granularity) {
    cell.fg_index = FgIndexFor(cell.fg_tuple);
  }

  const GroupKey key = GroupKey::ForPacket(pkt, config_.cg);
  const uint32_t hash = key.Hash();
  Entry& entry = entries_[hash % config_.short_buffers];

  if (!entry.valid) {
    entry.valid = true;
    entry.key = key;
    entry.hash = hash;
    entry.long_index = -1;
    entry.short_cells.clear();
    ++live_entries_;
    obs::Set(local_.live_entries, static_cast<double>(live_entries_));
  } else if (entry.key != key) {
    // Hash collision with a different group: evict the older entry first
    // (the collision-eviction policy approximates LRU, §5.2).
    EvictCells(entry, EvictReason::kCollision);
    entry.key = key;
    entry.hash = hash;
  }
  entry.last_access_ns = pkt.timestamp_ns;
  if (entry.short_cells.empty()) {
    // Every eviction clears both buffers, so an empty short buffer means
    // this packet starts a fresh batch.
    entry.batch_start_ns = pkt.timestamp_ns;
  }

  // Place the cell: short buffer first, then the long buffer.
  if (entry.short_cells.size() < config_.short_size) {
    entry.short_cells.push_back(cell);
    if (entry.short_cells.size() == config_.short_size && entry.long_index < 0) {
      // Short buffer just filled: likely a long flow; try to grab a long
      // buffer from the stack.
      if (fault_ != nullptr && fault_->PoolExhausted(fault_shard_, now_ns_)) {
        // Injected pool exhaustion: the alloc fails regardless of the real
        // pool state (deterministic — the window is trace-time).
        stats_.long_alloc_failures++;
        stats_.injected_pool_failures++;
        obs::Inc(local_.long_alloc_failures);
        fault_->NoteInjectedPoolExhaustion();
        EvictCells(entry, EvictReason::kShortFull);
      } else {
        if (free_long_.empty() && config_.graceful_overload) {
          // Real exhaustion: shed load gracefully — evict the stalest
          // long-buffer holder to free a buffer for this growing batch.
          PressureEvict(entry);
        }
        if (!free_long_.empty()) {
          entry.long_index = static_cast<int32_t>(free_long_.back());
          free_long_.pop_back();
          stats_.long_allocs++;
          obs::Inc(local_.long_allocs);
        } else {
          stats_.long_alloc_failures++;
          obs::Inc(local_.long_alloc_failures);
          EvictCells(entry, EvictReason::kShortFull);
        }
      }
    }
  } else if (entry.long_index >= 0) {
    auto& long_buf = long_buffers_[entry.long_index];
    long_buf.push_back(cell);
    if (long_buf.size() >= config_.long_size) {
      // Long buffer filled: short + long are evicted together so both can
      // be reused (§5.2).
      EvictCells(entry, EvictReason::kLongFull);
    }
  } else {
    // Short is full and no long buffer could be obtained earlier: the short
    // buffer was already evicted, so it has room again. (Reached only via
    // the eviction above resetting short_cells; defensive fallback.)
    entry.short_cells.push_back(cell);
  }

  AgeScan();
  if (local_.cycles != nullptr) {
    local_.cycles->delta += obs::ReadCycles() - cycles_start;
  }
  block_.NotePacket();
}

void MgpvCache::Flush() {
  for (auto& entry : entries_) {
    if (entry.valid) {
      EvictCells(entry, EvictReason::kFlush);
      entry.valid = false;
    }
  }
  live_entries_ = 0;
  obs::Set(local_.live_entries, 0.0);
  block_.Flush();
}

MgpvEpochInfo MgpvCache::RotateEpoch() {
  // Accounting boundary only: fold the hot-tier deltas so a boundary read
  // of the registry is exact, then snapshot. No evictions — the cache's
  // state is bounded by construction (fixed buffers + aging), so carrying
  // batches across epochs costs nothing and preserves one-shot exactness.
  block_.Flush();
  ++epoch_;
  obs::Set(obs_.epoch, static_cast<double>(epoch_));
  MgpvEpochInfo info;
  info.epoch = epoch_;
  info.occupancy = Occupancy();
  info.live_entries = live_entries_;
  info.free_long_buffers = free_long_.size();
  info.trace_now_ns = now_ns_;
  info.stats = stats_;
  return info;
}

double MgpvCache::Occupancy() const {
  uint64_t valid = 0;
  for (const auto& entry : entries_) {
    if (entry.valid) {
      ++valid;
    }
  }
  return static_cast<double>(valid) / static_cast<double>(entries_.size());
}

double MgpvCache::BufferEfficiency(uint64_t window_ns) const {
  uint64_t valid = 0;
  uint64_t active = 0;
  for (const auto& entry : entries_) {
    if (!entry.valid) {
      continue;
    }
    ++valid;
    if (now_ns_ - entry.last_access_ns <= window_ns) {
      ++active;
    }
  }
  return valid == 0 ? 1.0 : static_cast<double>(active) / static_cast<double>(valid);
}

}  // namespace superfe
