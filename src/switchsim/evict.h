// Switch -> NIC message formats: evicted MGPV batches and FG-key-table
// synchronization updates (§5).
#ifndef SUPERFE_SWITCHSIM_EVICT_H_
#define SUPERFE_SWITCHSIM_EVICT_H_

#include <cstdint>
#include <vector>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "switchsim/group_key.h"

namespace superfe {

// One MGPV cell: the batched feature metadata of a single packet. The wire
// layout is the compiled policy's metadata layout (2-byte size, 4-byte
// truncated timestamp, 1-byte direction, 2-byte FG index as applicable);
// `full_timestamp_ns` and `fg_tuple` are simulator shadow fields used to run
// the NIC pipeline bit-exactly — they are never counted as transferred
// bytes.
struct MgpvCell {
  uint16_t size = 0;
  uint32_t tstamp = 0;  // Truncated 32-bit ns, as batched on the wire.
  Direction direction = Direction::kForward;
  uint16_t fg_index = 0;

  uint64_t full_timestamp_ns = 0;  // Shadow.
  FiveTuple fg_tuple;              // Shadow: initiator-oriented five-tuple.
};

enum class EvictReason : uint8_t {
  kCollision,  // Hash collision with a different group (most common; ~LRU).
  kShortFull,  // Short buffer filled and no long buffer available.
  kLongFull,   // Long buffer filled; short+long evicted together.
  kAging,      // Recirculation scan found the entry idle for > T.
  kFlush,      // End-of-run drain.
};

const char* EvictReasonName(EvictReason reason);

// One evicted MGPV: a CG group key, the switch hash, and the batched cells.
struct MgpvReport {
  GroupKey cg_key;
  uint32_t hash = 0;  // Switch-computed; reused by the NIC (§6.2).
  EvictReason reason = EvictReason::kCollision;
  std::vector<MgpvCell> cells;

  // Trace-time latency stamps (simulator shadow, not wire bytes): when the
  // batch's first packet entered the MGPV slot and when the batch was
  // evicted. Downstream stages subtract these from the TraceClock to get
  // queue wait and end-to-end ingest->emit delay.
  uint64_t first_ingest_ns = 0;
  uint64_t evict_ns = 0;

  // Bytes on the switch->NIC wire: report header (key + hash + count) plus
  // `metadata_bytes_per_cell` per cell.
  uint32_t WireBytes(uint32_t metadata_bytes_per_cell) const {
    return 2 + cg_key.length + 4 + 2 +
           static_cast<uint32_t>(cells.size()) * metadata_bytes_per_cell;
  }
};

// FG-key-table synchronization message (switch keeps the NIC's copy of the
// table up to date whenever a slot is written, §5.1).
struct FgSyncMessage {
  uint16_t index = 0;
  FiveTuple key;

  static constexpr uint32_t kWireBytes = 2 + 13;
};

// Consumer of switch output (FE-NIC implements this).
class MgpvSink {
 public:
  virtual ~MgpvSink() = default;
  virtual void OnMgpv(const MgpvReport& report) = 0;
  virtual void OnFgSync(const FgSyncMessage& sync) = 0;
};

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_EVICT_H_
