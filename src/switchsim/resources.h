// Tofino resource estimation for a compiled policy (Table 4, switch
// columns): match-action tables, stateful ALUs, SRAM.
//
// We model a Tofino-1-class pipeline: 12 stages, 16 logical tables and 4
// stateful ALUs per stage, and an SRAM budget sized so the P4-16 prototype's
// reported utilization is reproduced. Structural terms (what consumes what)
// follow the MGPV design; the base constants are calibrated against the
// prototype's Table 4 numbers and documented inline.
#ifndef SUPERFE_SWITCHSIM_RESOURCES_H_
#define SUPERFE_SWITCHSIM_RESOURCES_H_

#include <cstdint>

#include "policy/compile.h"
#include "switchsim/mgpv.h"

namespace superfe {

struct TofinoCapacity {
  uint32_t stages = 12;
  uint32_t tables = 192;  // 16 logical tables per stage.
  uint32_t salus = 48;    // 4 stateful ALUs per stage.
  uint64_t sram_bytes = 14ull << 20;  // Usable SRAM for register/table data.
};

struct SwitchResourceUsage {
  uint32_t tables = 0;
  uint32_t salus = 0;
  uint64_t sram_bytes = 0;

  double TablesFraction(const TofinoCapacity& cap) const {
    return static_cast<double>(tables) / cap.tables;
  }
  double SalusFraction(const TofinoCapacity& cap) const {
    return static_cast<double>(salus) / cap.salus;
  }
  double SramFraction(const TofinoCapacity& cap) const {
    return static_cast<double>(sram_bytes) / static_cast<double>(cap.sram_bytes);
  }
};

// Estimates switch resources for the compiled policy with the given cache
// geometry.
SwitchResourceUsage EstimateSwitchResources(const CompiledPolicy& compiled,
                                            const MgpvConfig& config);

}  // namespace superfe

#endif  // SUPERFE_SWITCHSIM_RESOURCES_H_
