#include "switchsim/sharded_fe_switch.h"

#include <string>

namespace superfe {

ShardedFeSwitch::ShardedFeSwitch(const CompiledPolicy& compiled,
                                 const std::vector<MgpvSink*>& shard_sinks,
                                 const MgpvConfig& mgpv_overrides,
                                 const ShardedSwitchOptions& options)
    : cg_(compiled.switch_program.cg()) {
  shards_.reserve(shard_sinks.size());
  for (size_t s = 0; s < shard_sinks.size(); ++s) {
    auto sw = std::make_unique<FeSwitch>(compiled, shard_sinks[s], mgpv_overrides);
    const obs::LabelSet shard_label = {{"shard", std::to_string(s)}};
    FeSwitchObs sw_obs = FeSwitchObs::Create(options.metrics, shard_label);
    sw_obs.flush_packets = options.obs_batch_packets;
    sw->set_obs(sw_obs);
    MgpvObs mgpv_obs = MgpvObs::Create(options.metrics, options.trace,
                                       options.trace_lane_base + static_cast<uint32_t>(s),
                                       options.latency, shard_label, options.profile);
    mgpv_obs.flush_packets = options.obs_batch_packets;
    sw->set_mgpv_obs(mgpv_obs);
    if (options.injector != nullptr) {
      sw->mutable_cache().set_fault(options.injector, static_cast<uint32_t>(s));
    }
    shards_.push_back(std::move(sw));
  }
}

uint32_t ShardedFeSwitch::ShardOf(const PacketRecord& pkt) const {
  return GroupKey::ForPacket(pkt, cg_).Hash() % static_cast<uint32_t>(shards_.size());
}

void ShardedFeSwitch::Flush() {
  for (auto& shard : shards_) {
    shard->Flush();
  }
}

std::vector<MgpvEpochInfo> ShardedFeSwitch::RotateEpochs() {
  std::vector<MgpvEpochInfo> infos;
  infos.reserve(shards_.size());
  for (auto& shard : shards_) {
    infos.push_back(shard->RotateMgpvEpoch());
  }
  return infos;
}

FeSwitchStats ShardedFeSwitch::AggregateSwitchStats() const {
  FeSwitchStats total;
  for (const auto& shard : shards_) {
    const FeSwitchStats& s = shard->stats();
    total.packets_seen += s.packets_seen;
    total.packets_filtered += s.packets_filtered;
    total.packets_batched += s.packets_batched;
    total.frames_unparseable += s.frames_unparseable;
  }
  return total;
}

MgpvStats ShardedFeSwitch::AggregateMgpvStats() const {
  MgpvStats total;
  for (const auto& shard : shards_) {
    const MgpvStats& s = shard->cache().stats();
    total.packets_in += s.packets_in;
    total.bytes_in += s.bytes_in;
    total.reports_out += s.reports_out;
    total.cells_out += s.cells_out;
    total.bytes_out += s.bytes_out;
    total.fg_syncs += s.fg_syncs;
    total.fg_collisions += s.fg_collisions;
    for (int i = 0; i < 5; ++i) {
      total.evictions[i] += s.evictions[i];
    }
    total.long_allocs += s.long_allocs;
    total.long_alloc_failures += s.long_alloc_failures;
    total.pressure_evictions += s.pressure_evictions;
    total.injected_pool_failures += s.injected_pool_failures;
  }
  return total;
}

}  // namespace superfe
