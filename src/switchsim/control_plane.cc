#include "switchsim/control_plane.h"

#include <sstream>

namespace superfe {
namespace {

std::string MatchStringFor(const Predicate& pred) {
  return pred.ToString();
}

}  // namespace

std::string TableEntry::ToString() const {
  return table + " [" + match + "] -> " + action + " (prio " + std::to_string(priority) + ")";
}

Result<FeSwitch*> SwitchControlPlane::InstallPolicy(const CompiledPolicy& compiled,
                                                    MgpvSink* sink) {
  return InstallPolicy(compiled, sink, FeSwitch::DefaultConfig(compiled));
}

Result<FeSwitch*> SwitchControlPlane::InstallPolicy(const CompiledPolicy& compiled,
                                                    MgpvSink* sink,
                                                    const MgpvConfig& overrides) {
  if (fe_switch_ != nullptr) {
    return Status::ResourceExhausted(
        "a policy is already installed; Drain() it before installing another");
  }
  MgpvConfig config = overrides;
  config.aging_timeout_ns = aging_timeout_ns_;

  // Admission control against the pipeline's resources.
  const SwitchResourceUsage usage = EstimateSwitchResources(compiled, config);
  if (usage.tables > capacity_.tables) {
    return Status::ResourceExhausted("policy needs " + std::to_string(usage.tables) +
                                     " tables; pipeline has " +
                                     std::to_string(capacity_.tables));
  }
  if (usage.salus > capacity_.salus) {
    return Status::ResourceExhausted("policy needs " + std::to_string(usage.salus) +
                                     " stateful ALUs; pipeline has " +
                                     std::to_string(capacity_.salus));
  }
  if (usage.sram_bytes > capacity_.sram_bytes) {
    return Status::ResourceExhausted("policy needs " + std::to_string(usage.sram_bytes) +
                                     " bytes of SRAM; pipeline has " +
                                     std::to_string(capacity_.sram_bytes));
  }

  // Materialize the filter: one ternary/range entry per conjunct plus the
  // default drop-from-FE rule, exactly like the generated P4 table.
  entries_.clear();
  const auto& filter = compiled.switch_program.filter;
  if (filter.conjuncts.empty()) {
    entries_.push_back(TableEntry{"policy_filter", "ipv4.isValid()", "accept_to_fe", 10});
  } else {
    std::string match;
    for (size_t i = 0; i < filter.conjuncts.size(); ++i) {
      if (i != 0) {
        match += " && ";
      }
      match += MatchStringFor(filter.conjuncts[i]);
    }
    entries_.push_back(TableEntry{"policy_filter", match, "accept_to_fe", 10});
  }
  entries_.push_back(TableEntry{"policy_filter", "*", "drop_from_fe", 0});

  usage_ = usage;
  fe_switch_ = std::make_unique<FeSwitch>(compiled, sink, config);
  return fe_switch_.get();
}

Status SwitchControlPlane::SetAgingTimeout(uint64_t timeout_ns) {
  aging_timeout_ns_ = timeout_ns;
  return Status::Ok();
}

void SwitchControlPlane::Drain() {
  if (fe_switch_ != nullptr) {
    fe_switch_->Flush();
    fe_switch_.reset();
  }
  entries_.clear();
  usage_ = SwitchResourceUsage{};
}

std::string SwitchControlPlane::Dump() const {
  std::ostringstream out;
  out << "pipeline: " << (installed() ? "policy installed" : "idle") << "\n";
  out << "resources: tables " << usage_.tables << "/" << capacity_.tables << ", sALUs "
      << usage_.salus << "/" << capacity_.salus << ", SRAM " << usage_.sram_bytes << "/"
      << capacity_.sram_bytes << " bytes\n";
  for (const auto& entry : entries_) {
    out << "  " << entry.ToString() << "\n";
  }
  return out.str();
}

}  // namespace superfe
