#include "switchsim/p4gen.h"

#include <sstream>

namespace superfe {
namespace {

const char* PredFieldP4(PredField field) {
  switch (field) {
    case PredField::kProtocol:
      return "hdr.ipv4.protocol";
    case PredField::kSrcPort:
      return "meta.src_port";
    case PredField::kDstPort:
      return "meta.dst_port";
    case PredField::kSrcIp:
      return "hdr.ipv4.src_addr";
    case PredField::kDstIp:
      return "hdr.ipv4.dst_addr";
    case PredField::kSize:
      return "hdr.ipv4.total_len";
    case PredField::kTcpFlags:
      return "hdr.tcp.flags";
  }
  return "meta.unknown";
}

void EmitHeaders(std::ostringstream& out) {
  out << R"(header ethernet_h {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_h {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header tcp_h {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_h {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> len;
    bit<16> checksum;
}

struct headers_t {
    ethernet_h ethernet;
    ipv4_h     ipv4;
    tcp_h      tcp;
    udp_h      udp;
}

)";
}

void EmitParser(std::ostringstream& out) {
  out << R"(parser FeParser(packet_in pkt, out headers_t hdr, out metadata_t meta,
               out ingress_intrinsic_metadata_t ig_intr_md) {
    state start {
        pkt.extract(ig_intr_md);
        pkt.advance(PORT_METADATA_SIZE);
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        meta.src_port = hdr.tcp.src_port;
        meta.dst_port = hdr.tcp.dst_port;
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        meta.src_port = hdr.udp.src_port;
        meta.dst_port = hdr.udp.dst_port;
        transition accept;
    }
}

)";
}

void EmitFilter(std::ostringstream& out, const SwitchProgram& sw) {
  out << "    // ---- Policy filter (one match-action table; predicate ->\n"
         "    // rule, as in Section 5) ----\n";
  out << "    action drop_from_fe() { meta.fe_bypass = 1; }\n";
  out << "    action accept_to_fe() { meta.fe_bypass = 0; }\n";
  out << "    table policy_filter {\n        key = {\n";
  if (sw.filter.conjuncts.empty()) {
    out << "            hdr.ipv4.isValid() : exact;\n";
  } else {
    for (const auto& pred : sw.filter.conjuncts) {
      const bool range = pred.op != PredOp::kEq && pred.op != PredOp::kNe;
      out << "            " << PredFieldP4(pred.field) << " : "
          << (range ? "range" : "ternary") << ";  // " << pred.ToString() << "\n";
    }
  }
  out << R"(        }
        actions = { accept_to_fe; drop_from_fe; }
        default_action = drop_from_fe();
        size = 16;
    }

)";
}

void EmitMgpvRegisters(std::ostringstream& out, const SwitchProgram& sw,
                       const MgpvConfig& config) {
  const uint32_t key_words = (sw.CgKeyBytes() + 3) / 4;
  out << "    // ---- MGPV cache state (geometry from Section 7) ----\n";
  for (uint32_t w = 0; w < key_words; ++w) {
    out << "    Register<bit<32>, bit<32>>(" << config.short_buffers << ") cg_key_word_" << w
        << ";\n";
  }
  out << "    Register<bit<32>, bit<32>>(" << config.short_buffers << ") entry_last_access;\n";
  out << "    Register<bit<8>,  bit<32>>(" << config.short_buffers << ") entry_fill;\n";
  out << "    Register<bit<16>, bit<32>>(" << config.short_buffers << ") entry_long_ptr;\n";
  // One register array per metadata field per short-buffer slot.
  for (MetaField field : sw.fields) {
    for (uint32_t slot = 0; slot < config.short_size; ++slot) {
      out << "    Register<bit<32>, bit<32>>(" << config.short_buffers << ") short_"
          << MetaFieldName(field) << "_" << slot << ";\n";
    }
  }
  out << "    // Long buffers: " << config.long_buffers << " x " << config.long_size
      << " cells, stack-allocated (resubmit completes alloc/release, *Flow-style).\n";
  for (MetaField field : sw.fields) {
    out << "    Register<bit<32>, bit<32>>(" << config.long_buffers * config.long_size
        << ") long_" << MetaFieldName(field) << ";\n";
  }
  out << "    Register<bit<16>, bit<32>>(" << config.long_buffers << ") long_free_stack;\n";
  out << "    Register<bit<16>, bit<32>>(1) long_stack_top;\n";
  if (sw.multi_granularity()) {
    const uint32_t fg_words = (sw.FgKeyBytes() + 3) / 4;
    out << "    // FG group-key table, synchronized to the SmartNIC on write.\n";
    for (uint32_t w = 0; w < fg_words; ++w) {
      out << "    Register<bit<32>, bit<32>>(" << config.fg_table_size << ") fg_key_word_" << w
          << ";\n";
    }
  }
  out << "    // Aging scan cursor for the recirculated internal packets.\n";
  out << "    Register<bit<32>, bit<32>>(1) aging_cursor;\n\n";
}

// CG hash operands for the host/channel granularities. The simulator keys
// both on the flow *initiator* (group_key.cc: host = initiator IP, channel
// = ordered initiator->responder pair), but a stateless data plane cannot
// know which end initiated a flow, so the generated program falls back to
// min/max canonicalization of the IP pair — host hashes the smaller
// address, channel the sorted pair. Both directions of a flow still hash
// identically (the routing invariant holds on-target); the delta is that
// flows initiated from opposite ends of one IP pair, distinct groups in the
// simulator, share a canonical group on the switch (documented in
// docs/ARCHITECTURE.md, "P4 hash delta").
void EmitCanonicalPairHash(std::ostringstream& out, bool pair) {
  out << "        // Initiator unknown in-dataplane: min/max fallback (see\n"
         "        // docs/ARCHITECTURE.md, \"P4 hash delta\").\n";
  if (pair) {
    out << "        meta.cg_index = cg_hash.get({min(hdr.ipv4.src_addr, hdr.ipv4.dst_addr),\n"
           "                                     max(hdr.ipv4.src_addr, hdr.ipv4.dst_addr)});\n";
  } else {
    out << "        meta.cg_index = cg_hash.get({min(hdr.ipv4.src_addr, hdr.ipv4.dst_addr)});\n";
  }
}

void EmitIngress(std::ostringstream& out, const SwitchProgram& sw, const MgpvConfig& config) {
  out << "control FeIngress(inout headers_t hdr, inout metadata_t meta,\n"
         "                  in ingress_intrinsic_metadata_t ig_intr_md,\n"
         "                  inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {\n";
  EmitFilter(out, sw);
  EmitMgpvRegisters(out, sw, config);
  out << R"(    Hash<bit<32>>(HashAlgorithm_t.CRC32) cg_hash;

    apply {
        // Baseline forwarding is preserved; feature extraction is a
        // side effect (the switch is not a mirror, Section 3.2).
        ig_tm_md.ucast_egress_port = (PortId_t)meta.fwd_port;

        policy_filter.apply();
        if (meta.fe_bypass == 1) { exit; }

)";
  out << "        // CG = " << GranularityName(sw.cg()) << ", FG = "
      << GranularityName(sw.fg()) << ".\n";
  switch (sw.cg()) {
    case Granularity::kHost:
      EmitCanonicalPairHash(out, /*pair=*/false);
      break;
    case Granularity::kChannel:
      EmitCanonicalPairHash(out, /*pair=*/true);
      break;
    case Granularity::kSocket:
    case Granularity::kFlow:
      out << "        meta.cg_index = cg_hash.get({hdr.ipv4.src_addr, hdr.ipv4.dst_addr,\n"
             "                                     meta.src_port, meta.dst_port,\n"
             "                                     hdr.ipv4.protocol});\n";
      break;
  }
  out << "        meta.cg_index = meta.cg_index % " << config.short_buffers << ";\n\n";
  out << R"(        // Key compare-and-swap: mismatch => evict the older group
        // (collision eviction approximates LRU, Section 5.2), then take
        // over the slot. The fill counter chooses short cell / long-buffer
        // allocation / overflow eviction; the recirculated internal packet
        // advances aging_cursor and evicts entries idle longer than
)";
  out << "        // T = " << config.aging_timeout_ns / 1000000 << " ms.\n";
  out << "        // (Register actions elided: each array above is updated with one\n"
         "        //  RegisterAction at its pipeline stage, mirroring mgpv.cc.)\n";
  out << "    }\n}\n\n";
}

}  // namespace

std::string GenerateP4(const CompiledPolicy& compiled, const MgpvConfig& config) {
  const SwitchProgram& sw = compiled.switch_program;
  std::ostringstream out;
  out << "// FE-Switch program generated by SuperFE for policy '" << compiled.policy.name
      << "'.\n// Metadata batched per packet: ";
  for (size_t i = 0; i < sw.fields.size(); ++i) {
    out << (i != 0 ? ", " : "") << MetaFieldName(sw.fields[i]);
  }
  if (sw.multi_granularity()) {
    out << ", fg_index";
  }
  out << " (" << sw.MetadataBytesPerPacket() << " bytes).\n\n";
  out << "#include <core.p4>\n#include <tna.p4>\n\n";
  out << "struct metadata_t {\n"
         "    bit<16> src_port;\n"
         "    bit<16> dst_port;\n"
         "    bit<1>  fe_bypass;\n"
         "    bit<32> cg_index;\n"
         "    bit<16> fg_index;\n"
         "    bit<9>  fwd_port;\n"
         "}\n\n";
  EmitHeaders(out);
  EmitParser(out);
  EmitIngress(out, sw, config);
  out << "// Egress, deparser and pipeline declaration follow the standard TNA\n"
         "// skeleton; evicted MGPVs leave through the SmartNIC-facing ports.\n";
  return out.str();
}

}  // namespace superfe
