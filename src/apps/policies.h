// The ten state-of-the-art feature extractors of Table 3, re-implemented as
// SuperFE policies (§8.2). Each returns the policy DSL source plus the
// paper's reference numbers (feature dimension, LoC) for the Table 3 bench.
#ifndef SUPERFE_APPS_POLICIES_H_
#define SUPERFE_APPS_POLICIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "policy/ast.h"

namespace superfe {

struct AppPolicy {
  std::string name;
  std::string objective;      // "Website fingerprinting", ...
  uint32_t paper_dimension;   // Feature dimension reported in Table 3.
  uint32_t paper_loc;         // LoC reported in Table 3.
  Policy policy;
};

// Kitsune's damped-window lambdas (5 windows).
inline const std::vector<double>& KitsuneLambdas() {
  static const std::vector<double> lambdas = {5.0, 3.0, 1.0, 0.1, 0.01};
  return lambdas;
}

// Individual policies (parsed + validated; aborts on internal DSL errors,
// which are covered by tests).
Policy CumulPolicy();      // Website fingerprinting, 104 dims.
Policy AwfPolicy();        // Website fingerprinting, 5000 dims.
Policy DfPolicy();         // Website fingerprinting, 5000 dims.
Policy TfPolicy();         // Website fingerprinting, 5000 dims.
Policy PeerSharkPolicy();  // Botnet detection, 4 dims.
Policy NBaiotPolicy();     // Botnet detection, 65 dims.
Policy MptdPolicy();       // Covert channel detection, 166 dims.
Policy NpodPolicy();       // Covert channel detection, 37 dims.
Policy HeladPolicy();      // Intrusion detection, 100 dims.
Policy KitsunePolicy();    // Intrusion detection, 115 dims.

// All ten, in Table 3 order.
std::vector<AppPolicy> AllAppPolicies();

// Lookup by Table 3 name ("CUMUL", "Kitsune", ...).
Result<AppPolicy> AppPolicyByName(const std::string& name);

}  // namespace superfe

#endif  // SUPERFE_APPS_POLICIES_H_
