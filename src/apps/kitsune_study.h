// Shared harness for the Kitsune application study (§8.3, Figs 10-11):
// extracts 115-dim per-packet features through the full SuperFE pipeline,
// re-associates packet labels with emitted vectors, and trains/evaluates a
// KitNET detector.
#ifndef SUPERFE_APPS_KITSUNE_STUDY_H_
#define SUPERFE_APPS_KITSUNE_STUDY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feature_vector.h"
#include "net/attack_gen.h"

namespace superfe {

// Associates emitted feature vectors with the original packets' labels.
// Per-socket packet order is preserved end to end (MGPV is order-preserving
// within a group, §5.1), so the i-th vector of a socket corresponds to the
// i-th packet of that socket.
class PacketLabelOracle {
 public:
  explicit PacketLabelOracle(const LabeledTrace& trace);

  // Label of the next vector for this FG group (consumes one slot).
  int NextLabel(const GroupKey& fg_key);

 private:
  std::map<std::string, std::vector<uint8_t>> labels_;
  std::map<std::string, size_t> cursor_;
};

struct DetectionResult {
  std::string attack;
  uint64_t train_vectors = 0;
  uint64_t test_vectors = 0;
  double auc = 0.0;
  double accuracy = 0.0;
  double f1 = 0.0;
  double threshold = 0.0;
};

struct KitsuneStudyConfig {
  size_t background_packets = 60000;
  size_t attack_packets = 15000;
  double train_fraction = 0.45;  // Attack starts at 0.5 of the timeline.
  uint64_t seed = 1234;
  // When false, extract features with exact software arithmetic instead of
  // the SuperFE pipeline (ablation).
  bool use_superfe = true;
};

// Runs the full study for one attack type.
Result<DetectionResult> RunKitsuneDetection(AttackType attack, const KitsuneStudyConfig& config);

// Extracts per-packet Kitsune features through SuperFE for a labeled trace;
// returns vectors paired with labels in emission order.
struct LabeledFeatures {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  std::vector<uint64_t> timestamps;
};
Result<LabeledFeatures> ExtractKitsuneFeatures(const LabeledTrace& trace, bool use_superfe);

}  // namespace superfe

#endif  // SUPERFE_APPS_KITSUNE_STUDY_H_
