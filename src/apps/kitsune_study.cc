#include "apps/kitsune_study.h"

#include <algorithm>
#include <cmath>

#include "apps/policies.h"
#include "core/runtime.h"
#include "core/software_extractor.h"
#include "ml/kitnet.h"
#include "ml/metrics.h"
#include "switchsim/group_key.h"

namespace superfe {
namespace {

std::string KeyString(const GroupKey& key) {
  return std::string(reinterpret_cast<const char*>(key.bytes.data()), key.length);
}

}  // namespace

PacketLabelOracle::PacketLabelOracle(const LabeledTrace& trace) {
  for (size_t i = 0; i < trace.trace.size(); ++i) {
    const PacketRecord& pkt = trace.trace.packets()[i];
    const GroupKey fg = GroupKey::ForPacket(pkt, Granularity::kSocket);
    labels_[KeyString(fg)].push_back(trace.labels[i]);
  }
}

int PacketLabelOracle::NextLabel(const GroupKey& fg_key) {
  const std::string key = KeyString(fg_key);
  const auto it = labels_.find(key);
  if (it == labels_.end()) {
    return 0;
  }
  size_t& cursor = cursor_[key];
  if (cursor >= it->second.size()) {
    return it->second.empty() ? 0 : it->second.back();
  }
  return it->second[cursor++];
}

Result<LabeledFeatures> ExtractKitsuneFeatures(const LabeledTrace& trace, bool use_superfe) {
  const Policy policy = KitsunePolicy();

  struct LabelingSink : public FeatureSink {
    PacketLabelOracle* oracle = nullptr;
    LabeledFeatures out;
    void OnFeatureVector(FeatureVector&& vector) override {
      out.features.push_back(std::move(vector.values));
      out.labels.push_back(oracle->NextLabel(vector.group));
      out.timestamps.push_back(vector.timestamp_ns);
    }
  };

  PacketLabelOracle oracle(trace);
  LabelingSink sink;
  sink.oracle = &oracle;

  if (use_superfe) {
    auto runtime = SuperFeRuntime::Create(policy, RuntimeConfig{});
    if (!runtime.ok()) {
      return runtime.status();
    }
    (*runtime)->Run(trace.trace, &sink);
  } else {
    auto compiled = Compile(policy);
    if (!compiled.ok()) {
      return compiled.status();
    }
    auto extractor = SoftwareExtractor::Create(*compiled);
    if (!extractor.ok()) {
      return extractor.status();
    }
    (*extractor)->Run(trace.trace, &sink, SoftwareDeployment{});
  }

  // Vectors arrive in MGPV-eviction order; restore timeline order so the
  // detector trains on the clean prefix.
  std::vector<size_t> order(sink.out.features.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sink.out.timestamps[a] < sink.out.timestamps[b];
  });
  LabeledFeatures sorted;
  sorted.features.reserve(order.size());
  sorted.labels.reserve(order.size());
  sorted.timestamps.reserve(order.size());
  for (size_t idx : order) {
    sorted.features.push_back(std::move(sink.out.features[idx]));
    sorted.labels.push_back(sink.out.labels[idx]);
    sorted.timestamps.push_back(sink.out.timestamps[idx]);
  }
  return sorted;
}

Result<DetectionResult> RunKitsuneDetection(AttackType attack,
                                            const KitsuneStudyConfig& config) {
  AttackConfig attack_config;
  attack_config.type = attack;
  attack_config.attack_packets = config.attack_packets;
  attack_config.start_fraction = 0.5;
  const LabeledTrace trace = GenerateAttackTrace(attack_config, EnterpriseProfile(),
                                                 config.background_packets, config.seed);

  auto features = ExtractKitsuneFeatures(trace, config.use_superfe);
  if (!features.ok()) {
    return features.status();
  }
  const size_t total = features->features.size();
  if (total < 100) {
    return Status::Internal("too few feature vectors for a detection study");
  }
  const size_t train_end = static_cast<size_t>(config.train_fraction * total);

  DetectionResult result;
  result.attack = AttackTypeName(attack);
  result.train_vectors = train_end;
  result.test_vectors = total - train_end;

  KitNetConfig net_config;
  net_config.feature_map_samples = static_cast<int>(std::min<size_t>(2000, train_end / 2));
  net_config.max_cluster_size = 10;
  net_config.learning_rate = 0.1;
  KitNet net(static_cast<int>(features->features.front().size()), net_config);

  // Phase 1: train on the (clean) prefix. Two passes: the synthetic traces
  // are far shorter than Kitsune's original captures, so a second epoch
  // substitutes for the missing stream length. Training scores from the
  // final pass calibrate the detection threshold.
  std::vector<double> train_scores;
  for (int epoch = 0; epoch < 2; ++epoch) {
    train_scores.clear();
    for (size_t i = 0; i < train_end; ++i) {
      const double score = net.Train(features->features[i]);
      if (net.mapped() && score > 0.0) {
        train_scores.push_back(score);
      }
    }
  }
  double mean = 0.0;
  for (double s : train_scores) {
    mean += s;
  }
  mean /= std::max<size_t>(train_scores.size(), 1);
  double var = 0.0;
  for (double s : train_scores) {
    var += (s - mean) * (s - mean);
  }
  var /= std::max<size_t>(train_scores.size(), 1);
  // Threshold on |rmse - train_mean|: the p99.5 deviation of the training
  // phase (train scores are heavy-tailed; a Gaussian 3-sigma rule both
  // over- and under-shoots depending on the trace).
  std::vector<double> deviations;
  deviations.reserve(train_scores.size());
  for (double s : train_scores) {
    deviations.push_back(std::fabs(s - mean));
  }
  std::sort(deviations.begin(), deviations.end());
  result.threshold = deviations.empty()
                         ? 0.0
                         : deviations[static_cast<size_t>(0.995 * (deviations.size() - 1))];

  // Phase 2: score the remainder. The anomaly score is the *deviation* of
  // the reconstruction RMSE from the trained profile: attack traffic can
  // reconstruct either worse (novel patterns) or suspiciously better
  // (degenerate patterns like single-SYN spoofed flows) than benign.
  std::vector<int> truth;
  std::vector<double> scores;
  std::vector<int> predicted;
  for (size_t i = train_end; i < total; ++i) {
    const double rmse = net.Score(features->features[i]);
    const double deviation = std::fabs(rmse - mean);
    truth.push_back(features->labels[i]);
    scores.push_back(deviation);
    predicted.push_back(deviation > result.threshold ? 1 : 0);
  }
  result.auc = RocAuc(truth, scores);
  const BinaryMetrics metrics = EvaluateBinary(truth, predicted);
  result.accuracy = metrics.Accuracy();
  result.f1 = metrics.F1();
  return result;
}

}  // namespace superfe
