#include "apps/policies.h"

#include <cstdio>
#include <cstdlib>

#include "policy/parser.h"

namespace superfe {
namespace {

// Parses a policy and aborts on failure: the sources below are library
// constants, so a parse error is a programming bug (tests cover each one).
Policy MustParse(const std::string& name, const std::string& source) {
  auto parsed = ParsePolicy(name, source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "internal policy error: %s\n", parsed.status().ToString().c_str());
    std::abort();
  }
  return std::move(parsed).value();
}

std::string FormatLambda(double lambda) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", lambda);
  return buf;
}

}  // namespace

Policy CumulPolicy() {
  // CUMUL (Panchenko et al., NDSS'16): 4 base features (packet/byte counts,
  // net direction counts) + 100 interpolation points of the cumulative
  // directional byte trace.
  return MustParse("CUMUL", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(dirone, one, f_direction)
  .map(dirsize, size, f_direction)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum])
  .reduce(dirone, [f_sum])
  .reduce(dirsize, [f_sum])
  .reduce(dirsize, [f_array{5000}])
  .synthesize(f_marker(dirsize.f_array))
  .synthesize(ft_sample(dirsize.f_array, 100))
  .collect(flow)
)");
}

namespace {

// AWF / DF / TF share the Fig 5 direction-sequence policy (fixed-length
// 5000 sequence of +-1).
Policy DirectionSequencePolicy(const std::string& name) {
  return MustParse(name, R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(direction, one, f_direction)
  .reduce(direction, [f_array{5000}])
  .collect(flow)
)");
}

}  // namespace

Policy AwfPolicy() { return DirectionSequencePolicy("AWF"); }
Policy DfPolicy() { return DirectionSequencePolicy("DF"); }
Policy TfPolicy() { return DirectionSequencePolicy("TF"); }

Policy PeerSharkPolicy() {
  // PeerShark (Narang et al.): per-IP-pair conversation features — packet
  // count, mean payload size, median-ish inter-arrival, conversation span.
  return MustParse("PeerShark", R"(
pktstream
  .groupby(channel)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_mean])
  .reduce(ipt, [f_mean, f_max])
  .collect(channel)
)");
}

Policy NBaiotPolicy() {
  // N-BaIoT (Meidan et al.): damped-window statistics at host and channel
  // granularity over 5 decay windows; 13 features per window = 65.
  std::string source = R"(
pktstream
  .groupby(host, channel)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
)";
  for (double lambda : KitsuneLambdas()) {
    const std::string l = FormatLambda(lambda);
    source += "  .reduce(one, [f_sum{decay=" + l + "}], host)\n";
    source += "  .reduce(size, [f_mean{decay=" + l + "}, f_std{decay=" + l + "}], host)\n";
    source += "  .reduce(one, [f_sum{decay=" + l + "}], channel)\n";
    source += "  .reduce(size, [f_mean{decay=" + l + "}, f_std{decay=" + l + "}, f_mag{decay=" +
              l + "}, f_radius{decay=" + l + "}, f_cov{decay=" + l + "}, f_pcc{decay=" + l +
              "}], channel)\n";
    source += "  .reduce(ipt, [f_mean{decay=" + l + "}, f_std{decay=" + l + "}, f_sum{decay=" +
              l + "}], channel)\n";
  }
  source += "  .collect(pkt)\n";
  return MustParse("N-BaIoT", source);
}

Policy MptdPolicy() {
  // MPTD (Barradas et al., USENIX Sec'18): rich per-flow statistics of
  // packet sizes, inter-arrival times and instantaneous rate — moments,
  // extrema, deciles and 64-bucket frequency distributions (166 features).
  std::string source = R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .map(speed, size, f_speed)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_mean, f_var, f_std, f_min, f_max, f_skew, f_kur])
  .reduce(ipt, [f_mean, f_var, f_std, f_min, f_max, f_skew, f_kur])
  .reduce(speed, [f_mean, f_var, f_min, f_max])
)";
  for (int d = 1; d <= 9; ++d) {
    char line[64];
    std::snprintf(line, sizeof(line), "  .reduce(size, [ft_percent{0.%d}])\n", d);
    source += line;
  }
  for (int d = 1; d <= 9; ++d) {
    char line[64];
    std::snprintf(line, sizeof(line), "  .reduce(ipt, [ft_percent{0.%d}])\n", d);
    source += line;
  }
  source += R"(
  .reduce(size, [ft_hist{24, 64}])
  .reduce(ipt, [ft_hist{250000, 64}])
  .collect(flow)
)";
  return MustParse("MPTD", source);
}

Policy NpodPolicy() {
  // NPOD (Wang et al., CCS'15): packet-size and inter-arrival frequency
  // distributions per flow plus basic statistics (37 features); Fig 4.
  return MustParse("NPOD", R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [ft_hist{100, 16}])
  .reduce(ipt, [ft_hist{10000, 16}])
  .reduce(size, [f_mean, f_std])
  .reduce(ipt, [f_mean, f_std])
  .collect(flow)
)");
}

namespace {

// Kitsune-style damped-window policy over a granularity chain.
//   host:    weight + size mean/std                          (3)
//   channel: weight + size mean/std + 2D stats [+ jitter]    (7 or 10)
//   socket:  weight + size mean/std + 2D stats + jitter      (10)
Policy DampedChainPolicy(const std::string& name, bool channel_jitter, bool with_socket) {
  std::string source = "\npktstream\n  .groupby(host, channel";
  if (with_socket) {
    source += ", socket";
  }
  source += ")\n  .map(one, _, f_one)\n  .map(ipt, tstamp, f_ipt)\n";
  for (double lambda : KitsuneLambdas()) {
    const std::string l = FormatLambda(lambda);
    auto stats_block = [&](const std::string& gran, bool jitter) {
      source += "  .reduce(one, [f_sum{decay=" + l + "}], " + gran + ")\n";
      if (gran == "host") {
        source += "  .reduce(size, [f_mean{decay=" + l + "}, f_std{decay=" + l + "}], host)\n";
        return;
      }
      source += "  .reduce(size, [f_mean{decay=" + l + "}, f_std{decay=" + l +
                "}, f_mag{decay=" + l + "}, f_radius{decay=" + l + "}, f_cov{decay=" + l +
                "}, f_pcc{decay=" + l + "}], " + gran + ")\n";
      if (jitter) {
        source += "  .reduce(ipt, [f_sum{decay=" + l + "}, f_mean{decay=" + l +
                  "}, f_std{decay=" + l + "}], " + gran + ")\n";
      }
    };
    stats_block("host", false);
    stats_block("channel", channel_jitter);
    if (with_socket) {
      stats_block("socket", true);
    }
  }
  source += "  .collect(pkt)\n";
  return MustParse(name, source);
}

}  // namespace

Policy HeladPolicy() {
  // HELAD (Zhong et al.): Kitsune-like damped statistics at host / channel /
  // socket without channel jitter: (3 + 7 + 10) x 5 = 100 features.
  return DampedChainPolicy("HELAD", /*channel_jitter=*/false, /*with_socket=*/true);
}

Policy KitsunePolicy() {
  // Kitsune (Mirsky et al., NDSS'18): damped incremental statistics over
  // host / channel / socket with jitter: (3 + 10 + 10) x 5 = 115 features.
  return DampedChainPolicy("Kitsune", /*channel_jitter=*/true, /*with_socket=*/true);
}

std::vector<AppPolicy> AllAppPolicies() {
  return {
      {"CUMUL", "Website fingerprinting", 104, 29, CumulPolicy()},
      {"AWF", "Website fingerprinting", 5000, 9, AwfPolicy()},
      {"DF", "Website fingerprinting", 5000, 9, DfPolicy()},
      {"TF", "Website fingerprinting", 5000, 9, TfPolicy()},
      {"PeerShark", "Botnet detection", 4, 22, PeerSharkPolicy()},
      {"N-BaIoT", "Botnet detection", 65, 34, NBaiotPolicy()},
      {"MPTD", "Covert channel detection", 166, 101, MptdPolicy()},
      {"NPOD", "Covert channel detection", 37, 24, NpodPolicy()},
      {"HELAD", "Intrusion detection", 100, 49, HeladPolicy()},
      {"Kitsune", "Intrusion detection", 115, 49, KitsunePolicy()},
  };
}

Result<AppPolicy> AppPolicyByName(const std::string& name) {
  for (auto& app : AllAppPolicies()) {
    if (app.name == name) {
      return app;
    }
  }
  return Status::NotFound("no Table 3 application named '" + name + "'");
}

}  // namespace superfe
