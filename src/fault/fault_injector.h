// FaultInjector: the runtime half of the fault framework. One injector is
// shared by every pipeline stage that has injection hooks compiled in
// (NicCluster routing/workers, BoundedMpscQueue saturation, MgpvCache pool,
// ParallelReplay clock lanes) plus the failover/degraded-mode accounting
// that makes chaos runs reconcile exactly.
//
// Determinism contract (docs/ROBUSTNESS.md): every decision that affects
// *which* reports are processed/shed/lost — RouteFor, QueueSaturated,
// PoolExhausted, ClockSkewNs — is a pure function of (plan, trace-time
// timestamp). The wall-clock-facing pieces (worker stalls, watchdog events,
// flush deadlines) affect only diagnostics, never packet accounting, so
// FaultStats' reconciliation fields are bit-identical across repeats of a
// seeded run while watchdog_stall_events may vary with scheduling.
//
// Thread safety: all query methods are lock-free reads of state frozen at
// BeginRun(); accounting methods use relaxed atomics, except the
// distinct-group sets which take a small mutex (off the hot path — only
// reports actually hit by a fault touch them).
#ifndef SUPERFE_FAULT_FAULT_INJECTOR_H_
#define SUPERFE_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/metrics.h"

namespace superfe {

// Degraded-mode accounting. The reconciliation invariant the chaos tests
// assert (cells, the packet-level unit):
//
//   cells_offered == processed + cells_shed + cells_lost_to_failover
//                    + overflow-dropped (legacy drop_on_overflow / timeout)
//
// where `processed` is the cluster's AggregateStats().cells. Reports that
// *failed over* are processed (by a survivor), so they appear on both the
// offered and processed sides — failed_over counts them separately for
// visibility, it is not a loss bucket.
struct FaultStats {
  // Reconciliation fields — deterministic for a seeded plan.
  uint64_t reports_offered = 0;
  uint64_t cells_offered = 0;
  uint64_t reports_shed = 0;  // No live destination / injected saturation.
  uint64_t cells_shed = 0;
  uint64_t reports_lost_to_failover = 0;  // In the crash-detection window.
  uint64_t cells_lost_to_failover = 0;
  uint64_t reports_failed_over = 0;  // Rerouted to a survivor (processed).
  uint64_t cells_failed_over = 0;
  uint64_t groups_lost_in_flight = 0;   // Distinct groups with >=1 lost report.
  uint64_t groups_failed_over = 0;      // Distinct groups rerouted.
  uint64_t groups_abandoned = 0;        // Dead members' live groups at flush.
  uint64_t members_crashed = 0;         // Members dead by end of run.
  uint64_t injected_pool_exhaustions = 0;  // MGPV long allocs failed by fault.
  uint64_t saturated_pushes = 0;  // Push attempts rejected by injected saturation.
  uint64_t failover_fences = 0;   // Order-preserving handoff fences issued.
  // Wall-clock diagnostics — excluded from the determinism contract.
  uint64_t stalls_injected = 0;
  uint64_t watchdog_stall_events = 0;
  uint64_t flush_deadline_exceeded = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // Resolves at_packet triggers to trace time: `time_of(i)` must return the
  // post-speedup timestamp of the i-th replayed packet (runtime.cc supplies
  // the same arithmetic the replayer uses). Out-of-range indices saturate
  // past the trace (the event never fires). Call before BeginRun().
  void ResolvePacketTriggers(uint64_t replayed_packets,
                             const std::function<uint64_t(uint64_t)>& time_of);

  // Freezes per-member crash tables for `members` cluster members and
  // resets all run-mutable state (stats, consumed stalls, group sets). Call
  // once per Run before any traffic.
  void BeginRun(uint32_t members);

  // ---- Routing-side hooks (producer threads; deterministic) ----

  struct RouteDecision {
    enum class Action : uint8_t {
      kPrimary,  // No fault: deliver to the primary member.
      kReroute,  // Primary dead & detected: deliver to `target` (survivor).
      kLost,     // Primary dead, crash not yet detected: lost in flight.
      kShed,     // No live member can take it: shed at the switch.
    };
    Action action = Action::kPrimary;
    uint32_t target = 0;
  };

  // Route for a report with CG hash `group_hash` whose primary member is
  // `primary`, evicted at trace-time `evict_ns`, in a cluster of `members`.
  // Rendezvous (HRW) hashing over the members alive at evict_ns picks the
  // failover target, so each dead member's CG-hash range spreads across all
  // survivors and stays stable for the rest of the run.
  RouteDecision RouteFor(uint32_t primary, uint32_t group_hash, uint64_t evict_ns,
                         uint32_t members);

  // True when `member`'s ingest queue is saturated (by injection) at
  // evict_ns: the cluster runs its bounded retry/backoff loop and sheds.
  bool QueueSaturated(uint32_t member, uint64_t evict_ns) const;

  // True while `member` is crashed at `t` (after its earliest crash point).
  bool MemberCrashedAt(uint32_t member, uint64_t t_ns) const;

  // True when `member` died within the observed run: its crash point is at
  // or before the latest eviction the router saw. Used at flush time to
  // abandon (not emit) the dead member's residual state.
  bool MemberDeadAtFlush(uint32_t member) const;

  // Fast guard: false when the plan has no member-level faults at all, so
  // the per-report routing hook is one predictable branch.
  bool AnyMemberFaults() const { return any_member_faults_; }

  // ---- Worker-side hook ----

  // Wall-clock milliseconds this worker should stall before processing a
  // report evicted at `evict_ns`. Each stall event fires once (consume-once
  // semantics); 0 = no stall pending. Single consumer per member.
  uint64_t TakeStallMs(uint32_t member, uint64_t evict_ns);

  // ---- MGPV-side hook ----

  // True while shard `shard`'s long-buffer pool is forced empty at `now_ns`.
  bool PoolExhausted(uint32_t shard, uint64_t now_ns) const;

  // ---- Replay-side hook ----

  // Sum of active clock-skew offsets for `shard` at trace time `ts`.
  int64_t ClockSkewNs(uint32_t shard, uint64_t ts) const;

  // ---- Accounting (called by the pipeline at the decision sites) ----

  void NoteOffered(uint64_t reports, uint64_t cells);
  void NoteShed(uint64_t reports, uint64_t cells);
  void NoteLost(uint64_t reports, uint64_t cells, uint32_t group_hash);
  void NoteFailover(uint64_t reports, uint64_t cells, uint32_t group_hash);
  void NoteFence();
  void NoteStall();
  void NoteWatchdogStall();
  void NoteFlushDeadline();
  void NoteAbandonedGroups(uint64_t groups);
  void NoteMemberCrashed();
  void NoteInjectedPoolExhaustion();
  void NoteSaturatedPush(uint64_t attempts);

  // Consistent copy (relaxed reads; exact at quiescence).
  FaultStats Snapshot() const;

  // Mirrors the counters into superfe_fault_* metrics (docs/OBSERVABILITY.md)
  // when a registry is present. Wiring-time setter; call before traffic.
  void set_obs(obs::MetricsRegistry* registry);

 private:
  struct MemberCrash {
    uint64_t crash_ns = UINT64_MAX;   // Earliest crash point; MAX = never.
    uint64_t detect_ns = UINT64_MAX;  // crash_ns + detection latency.
  };

  FaultPlan plan_;
  bool any_member_faults_ = false;
  bool any_queue_sat_ = false;
  bool any_pool_exhaust_ = false;
  bool any_clock_skew_ = false;
  bool any_stalls_ = false;

  std::vector<MemberCrash> crashes_;  // Indexed by member; frozen at BeginRun.
  // Latest eviction timestamp the router has seen: the deterministic "end
  // of observed trace" watermark MemberDeadAtFlush compares against.
  std::atomic<uint64_t> evict_watermark_{0};
  // One consume-once flag per plan event (only stalls use theirs).
  std::unique_ptr<std::atomic<bool>[]> consumed_;

  FaultStats stats_;  // Plain; mutated only via the atomics below.
  std::atomic<uint64_t> reports_offered_{0}, cells_offered_{0};
  std::atomic<uint64_t> reports_shed_{0}, cells_shed_{0};
  std::atomic<uint64_t> reports_lost_{0}, cells_lost_{0};
  std::atomic<uint64_t> reports_failed_over_{0}, cells_failed_over_{0};
  std::atomic<uint64_t> groups_abandoned_{0};
  std::atomic<uint64_t> members_crashed_{0};
  std::atomic<uint64_t> injected_pool_exhaustions_{0};
  std::atomic<uint64_t> saturated_pushes_{0};
  std::atomic<uint64_t> fences_{0};
  std::atomic<uint64_t> stalls_injected_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};
  std::atomic<uint64_t> flush_deadlines_{0};

  // Distinct-group tracking (cold path: only fault-affected reports).
  mutable std::mutex groups_mu_;
  std::unordered_set<uint32_t> lost_groups_;
  std::unordered_set<uint32_t> failed_over_groups_;

  // Nullable metric mirrors (superfe_fault_*).
  obs::Counter* obs_shed_cells_ = nullptr;
  obs::Counter* obs_lost_cells_ = nullptr;
  obs::Counter* obs_failover_reports_ = nullptr;
  obs::Counter* obs_fences_ = nullptr;
  obs::Counter* obs_watchdog_stalls_ = nullptr;
  obs::Counter* obs_pool_exhaustions_ = nullptr;
  obs::Counter* obs_saturated_pushes_ = nullptr;
};

}  // namespace superfe

#endif  // SUPERFE_FAULT_FAULT_INJECTOR_H_
