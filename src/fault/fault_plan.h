// Deterministic fault plans for the SuperFE pipeline (docs/ROBUSTNESS.md).
//
// A FaultPlan is a seeded, fully explicit list of fault events — member
// crashes, worker stalls, queue saturation, MGPV buffer-pool exhaustion,
// clock skew — each armed at a trace-time or packet-count point. Faults are
// *modeled in trace time*: every injection decision is a pure function of
// the plan and the report/packet timestamps flowing through the pipeline,
// never of wall-clock scheduling. That is what makes chaos runs
// bit-reproducible across repeats and thread interleavings (the acceptance
// bar for the chaos matrix in tests/fault_test.cc).
//
// Plans come from three places: FaultPlan::Parse (the `--fault-plan FILE`
// text format), FaultPlan::Random (seeded generation for fuzz-style chaos
// sweeps), or programmatic Add() in tests.
#ifndef SUPERFE_FAULT_FAULT_PLAN_H_
#define SUPERFE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace superfe {

enum class FaultKind : uint8_t {
  kMemberCrash,      // NIC-cluster member fail-stops (link down from the switch).
  kWorkerStall,      // Worker thread sleeps (wall clock) — watchdog fodder.
  kQueueSaturation,  // Member's ingest rejects pushes for a trace-time window.
  kPoolExhaustion,   // MGPV long-buffer pool reads as empty for a window.
  kClockSkew,        // Shard's trace-clock lane publishes offset timestamps.
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  // Sentinel: "no packet trigger" (the event uses at_ns directly).
  static constexpr uint64_t kNoPacket = UINT64_MAX;

  FaultKind kind = FaultKind::kMemberCrash;
  // Cluster member index (crash / stall / queue saturation) or switch shard
  // index (pool exhaustion / clock skew). Out-of-range targets are inert.
  uint32_t target = 0;
  // Trace-time (post-speedup, base-relative) trigger point.
  uint64_t at_ns = 0;
  // Packet-count trigger: resolved to at_ns against the replayed trace
  // before the run (FaultInjector::ResolvePacketTriggers). Takes precedence
  // over at_ns when set.
  uint64_t at_packet = kNoPacket;
  // Window length for queue saturation / pool exhaustion; 0 = open-ended.
  uint64_t duration_ns = 0;
  // Crash detection latency: reports evicted in [at_ns, at_ns + detect_ns)
  // are lost in flight; later ones fail over to survivors.
  uint64_t detect_ns = 0;
  // Wall-clock stall length (worker stall only; wall clock by design — the
  // stall exists to exercise the wall-clock watchdog).
  uint64_t stall_wall_ms = 0;
  // Signed lane offset (clock skew only).
  int64_t skew_ns = 0;

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && target == o.target && at_ns == o.at_ns &&
           at_packet == o.at_packet && duration_ns == o.duration_ns &&
           detect_ns == o.detect_ns && stall_wall_ms == o.stall_wall_ms &&
           skew_ns == o.skew_ns;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Parses the line-oriented plan format ('#' comments, blank lines ok):
  //
  //   crash      member=1 at_packet=5000 detect_ms=2
  //   stall      member=0 at_ms=10 wall_ms=50
  //   queue_sat  member=2 at_packet=2000 dur_ms=5
  //   pool_exhaust shard=0 at_ms=1 dur_ms=5
  //   clock_skew shard=1 at_ms=0 skew_us=300
  //
  // Keys: member=/shard= (target), at_ns=/at_us=/at_ms=/at_s=/at_packet=,
  // dur_*=, detect_*=, wall_ms=, skew_*= (signed). Unknown kinds or keys are
  // errors; targets default to 0.
  static Result<FaultPlan> Parse(const std::string& text);

  // Seeded random plan: `events` faults drawn uniformly over the kinds,
  // member/shard ranges, and [0, horizon_ns) trigger times. Deterministic
  // for a given argument tuple (common/rng.h xoshiro).
  static FaultPlan Random(uint64_t seed, uint32_t members, uint32_t shards,
                          uint64_t horizon_ns, uint32_t events = 4);

  // Round-trips through Parse (modulo comments/whitespace).
  std::string ToString() const;

  void Add(const FaultEvent& event) { events_.push_back(event); }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  std::vector<FaultEvent>& mutable_events() { return events_; }

  bool operator==(const FaultPlan& o) const { return events_ == o.events_; }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace superfe

#endif  // SUPERFE_FAULT_FAULT_PLAN_H_
