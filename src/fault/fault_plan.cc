#include "fault/fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "common/rng.h"

namespace superfe {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemberCrash:
      return "crash";
    case FaultKind::kWorkerStall:
      return "stall";
    case FaultKind::kQueueSaturation:
      return "queue_sat";
    case FaultKind::kPoolExhaustion:
      return "pool_exhaust";
    case FaultKind::kClockSkew:
      return "clock_skew";
  }
  return "?";
}

namespace {

bool ParseKind(const std::string& word, FaultKind* kind) {
  for (const FaultKind k :
       {FaultKind::kMemberCrash, FaultKind::kWorkerStall, FaultKind::kQueueSaturation,
        FaultKind::kPoolExhaustion, FaultKind::kClockSkew}) {
    if (word == FaultKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

// "at_ms" + 3 suffix scales; returns 0 multiplier when `key` doesn't start
// with `prefix` followed by a recognized unit.
uint64_t UnitScale(const std::string& key, const std::string& prefix) {
  if (key.size() <= prefix.size() + 1 || key.compare(0, prefix.size(), prefix) != 0 ||
      key[prefix.size()] != '_') {
    return 0;
  }
  const std::string unit = key.substr(prefix.size() + 1);
  if (unit == "ns") return 1;
  if (unit == "us") return 1000;
  if (unit == "ms") return 1000000;
  if (unit == "s") return 1000000000;
  return 0;
}

bool ParseU64(const std::string& value, uint64_t* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseI64(const std::string& value, int64_t* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) {
      continue;  // Blank / comment-only line.
    }
    FaultEvent event;
    if (!ParseKind(word, &event.kind)) {
      return Status::InvalidArgument("fault plan line " + std::to_string(line_no) +
                                     ": unknown fault kind '" + word + "'");
    }
    while (words >> word) {
      const size_t eq = word.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault plan line " + std::to_string(line_no) +
                                       ": expected key=value, got '" + word + "'");
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      uint64_t uval = 0;
      int64_t ival = 0;
      uint64_t scale = 0;
      const auto bad_value = [&] {
        return Status::InvalidArgument("fault plan line " + std::to_string(line_no) +
                                       ": bad value for '" + key + "'");
      };
      if (key == "member" || key == "shard") {
        if (!ParseU64(value, &uval)) return bad_value();
        event.target = static_cast<uint32_t>(uval);
      } else if (key == "at_packet") {
        if (!ParseU64(value, &uval)) return bad_value();
        event.at_packet = uval;
      } else if ((scale = UnitScale(key, "at")) != 0) {
        if (!ParseU64(value, &uval)) return bad_value();
        event.at_ns = uval * scale;
      } else if ((scale = UnitScale(key, "dur")) != 0) {
        if (!ParseU64(value, &uval)) return bad_value();
        event.duration_ns = uval * scale;
      } else if ((scale = UnitScale(key, "detect")) != 0) {
        if (!ParseU64(value, &uval)) return bad_value();
        event.detect_ns = uval * scale;
      } else if (key == "wall_ms") {
        if (!ParseU64(value, &uval)) return bad_value();
        event.stall_wall_ms = uval;
      } else if ((scale = UnitScale(key, "skew")) != 0) {
        if (!ParseI64(value, &ival)) return bad_value();
        event.skew_ns = ival * static_cast<int64_t>(scale);
      } else {
        return Status::InvalidArgument("fault plan line " + std::to_string(line_no) +
                                       ": unknown key '" + key + "'");
      }
    }
    plan.Add(event);
  }
  return plan;
}

FaultPlan FaultPlan::Random(uint64_t seed, uint32_t members, uint32_t shards,
                            uint64_t horizon_ns, uint32_t events) {
  FaultPlan plan;
  Rng rng(seed ^ 0xfa017edull);
  if (horizon_ns == 0) {
    horizon_ns = 1;
  }
  for (uint32_t i = 0; i < events; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(rng.UniformU64(5));
    event.at_ns = rng.UniformU64(horizon_ns);
    switch (event.kind) {
      case FaultKind::kMemberCrash:
        event.target = members > 0 ? static_cast<uint32_t>(rng.UniformU64(members)) : 0;
        event.detect_ns = rng.UniformU64(horizon_ns / 4 + 1);
        break;
      case FaultKind::kWorkerStall:
        event.target = members > 0 ? static_cast<uint32_t>(rng.UniformU64(members)) : 0;
        event.stall_wall_ms = 1 + rng.UniformU64(20);
        break;
      case FaultKind::kQueueSaturation:
        event.target = members > 0 ? static_cast<uint32_t>(rng.UniformU64(members)) : 0;
        event.duration_ns = rng.UniformU64(horizon_ns / 2 + 1);
        break;
      case FaultKind::kPoolExhaustion:
        event.target = shards > 0 ? static_cast<uint32_t>(rng.UniformU64(shards)) : 0;
        event.duration_ns = rng.UniformU64(horizon_ns / 2 + 1);
        break;
      case FaultKind::kClockSkew:
        event.target = shards > 0 ? static_cast<uint32_t>(rng.UniformU64(shards)) : 0;
        event.skew_ns = rng.UniformInt(-1000000, 1000000);
        break;
    }
    plan.Add(event);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  for (const FaultEvent& e : events_) {
    out << FaultKindName(e.kind);
    const bool shard_target =
        e.kind == FaultKind::kPoolExhaustion || e.kind == FaultKind::kClockSkew;
    out << (shard_target ? " shard=" : " member=") << e.target;
    if (e.at_packet != FaultEvent::kNoPacket) {
      out << " at_packet=" << e.at_packet;
    } else {
      out << " at_ns=" << e.at_ns;
    }
    if (e.duration_ns != 0) {
      out << " dur_ns=" << e.duration_ns;
    }
    if (e.detect_ns != 0) {
      out << " detect_ns=" << e.detect_ns;
    }
    if (e.stall_wall_ms != 0) {
      out << " wall_ms=" << e.stall_wall_ms;
    }
    if (e.skew_ns != 0) {
      out << " skew_ns=" << e.skew_ns;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace superfe
