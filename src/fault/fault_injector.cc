#include "fault/fault_injector.h"

#include <algorithm>

namespace superfe {

namespace {

// splitmix64 finalizer: the rendezvous score mixer. Must be stable — the
// failover target for a (group, member) pair is part of the deterministic
// run contract.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  consumed_ = std::make_unique<std::atomic<bool>[]>(std::max<size_t>(plan_.size(), 1));
  for (const FaultEvent& e : plan_.events()) {
    switch (e.kind) {
      case FaultKind::kMemberCrash:
        any_member_faults_ = true;
        break;
      case FaultKind::kQueueSaturation:
        any_queue_sat_ = true;
        break;
      case FaultKind::kWorkerStall:
        any_stalls_ = true;
        break;
      case FaultKind::kPoolExhaustion:
        any_pool_exhaust_ = true;
        break;
      case FaultKind::kClockSkew:
        any_clock_skew_ = true;
        break;
    }
  }
}

void FaultInjector::ResolvePacketTriggers(
    uint64_t replayed_packets, const std::function<uint64_t(uint64_t)>& time_of) {
  for (FaultEvent& e : plan_.mutable_events()) {
    if (e.at_packet == FaultEvent::kNoPacket) {
      continue;
    }
    if (replayed_packets == 0 || e.at_packet >= replayed_packets) {
      // Beyond the trace: the event never fires during the run.
      e.at_ns = UINT64_MAX;
    } else {
      e.at_ns = time_of(e.at_packet);
    }
  }
}

void FaultInjector::BeginRun(uint32_t members) {
  crashes_.assign(members, MemberCrash{});
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kMemberCrash || e.target >= members) {
      continue;
    }
    MemberCrash& c = crashes_[e.target];
    if (e.at_ns < c.crash_ns) {
      c.crash_ns = e.at_ns;
      c.detect_ns =
          e.at_ns >= UINT64_MAX - e.detect_ns ? UINT64_MAX : e.at_ns + e.detect_ns;
    }
  }
  evict_watermark_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < plan_.size(); ++i) {
    consumed_[i].store(false, std::memory_order_relaxed);
  }
  reports_offered_ = 0;
  cells_offered_ = 0;
  reports_shed_ = 0;
  cells_shed_ = 0;
  reports_lost_ = 0;
  cells_lost_ = 0;
  reports_failed_over_ = 0;
  cells_failed_over_ = 0;
  groups_abandoned_ = 0;
  members_crashed_ = 0;
  injected_pool_exhaustions_ = 0;
  saturated_pushes_ = 0;
  fences_ = 0;
  stalls_injected_ = 0;
  watchdog_stalls_ = 0;
  flush_deadlines_ = 0;
  std::lock_guard<std::mutex> lock(groups_mu_);
  lost_groups_.clear();
  failed_over_groups_.clear();
}

FaultInjector::RouteDecision FaultInjector::RouteFor(uint32_t primary,
                                                     uint32_t group_hash,
                                                     uint64_t evict_ns,
                                                     uint32_t members) {
  // Watermark: the latest trace time the router has observed, used as the
  // deterministic end-of-run point for MemberDeadAtFlush.
  uint64_t seen = evict_watermark_.load(std::memory_order_relaxed);
  while (evict_ns > seen && !evict_watermark_.compare_exchange_weak(
                                seen, evict_ns, std::memory_order_relaxed)) {
  }

  RouteDecision decision;
  decision.target = primary;
  if (!any_member_faults_ || primary >= crashes_.size()) {
    return decision;
  }
  const MemberCrash& c = crashes_[primary];
  if (evict_ns < c.crash_ns) {
    return decision;  // Primary still alive at this trace time.
  }
  if (evict_ns < c.detect_ns) {
    // Crash not yet detected: the report was sent down a dead link and is
    // lost in flight (counted, never processed).
    decision.action = RouteDecision::Action::kLost;
    return decision;
  }
  // Detected: rendezvous-hash over the members alive at evict_ns. Highest
  // score wins, so each group sticks to one survivor for the rest of the
  // run and a dead member's range spreads evenly across the others.
  uint64_t best_score = 0;
  uint32_t best_member = 0;
  bool found = false;
  for (uint32_t m = 0; m < members; ++m) {
    if (m < crashes_.size() && evict_ns >= crashes_[m].crash_ns) {
      continue;  // Dead (or dying) at this trace time.
    }
    const uint64_t score = Mix64((static_cast<uint64_t>(group_hash) << 32) | (m + 1));
    if (!found || score > best_score) {
      best_score = score;
      best_member = m;
      found = true;
    }
  }
  if (!found) {
    // Every member is down: shed at the switch with explicit accounting.
    decision.action = RouteDecision::Action::kShed;
    return decision;
  }
  decision.action = RouteDecision::Action::kReroute;
  decision.target = best_member;
  return decision;
}

bool FaultInjector::QueueSaturated(uint32_t member, uint64_t evict_ns) const {
  if (!any_queue_sat_) {
    return false;
  }
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kQueueSaturation || e.target != member) {
      continue;
    }
    if (evict_ns >= e.at_ns &&
        (e.duration_ns == 0 || evict_ns - e.at_ns < e.duration_ns)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::MemberCrashedAt(uint32_t member, uint64_t t_ns) const {
  return member < crashes_.size() && t_ns >= crashes_[member].crash_ns;
}

bool FaultInjector::MemberDeadAtFlush(uint32_t member) const {
  if (member >= crashes_.size()) {
    return false;
  }
  // Dead only if the crash point falls within the observed trace: a crash
  // scheduled past the last routed eviction never happened this run.
  return crashes_[member].crash_ns <= evict_watermark_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::TakeStallMs(uint32_t member, uint64_t evict_ns) {
  if (!any_stalls_) {
    return 0;
  }
  const auto& events = plan_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.kind != FaultKind::kWorkerStall || e.target != member ||
        evict_ns < e.at_ns || e.stall_wall_ms == 0) {
      continue;
    }
    bool expected = false;
    if (consumed_[i].compare_exchange_strong(expected, true,
                                             std::memory_order_relaxed)) {
      NoteStall();
      return e.stall_wall_ms;
    }
  }
  return 0;
}

bool FaultInjector::PoolExhausted(uint32_t shard, uint64_t now_ns) const {
  if (!any_pool_exhaust_) {
    return false;
  }
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kPoolExhaustion || e.target != shard) {
      continue;
    }
    if (now_ns >= e.at_ns && (e.duration_ns == 0 || now_ns - e.at_ns < e.duration_ns)) {
      return true;
    }
  }
  return false;
}

int64_t FaultInjector::ClockSkewNs(uint32_t shard, uint64_t ts) const {
  if (!any_clock_skew_) {
    return 0;
  }
  int64_t skew = 0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kClockSkew || e.target != shard || ts < e.at_ns) {
      continue;
    }
    if (e.duration_ns == 0 || ts - e.at_ns < e.duration_ns) {
      skew += e.skew_ns;
    }
  }
  return skew;
}

void FaultInjector::NoteOffered(uint64_t reports, uint64_t cells) {
  reports_offered_.fetch_add(reports, std::memory_order_relaxed);
  cells_offered_.fetch_add(cells, std::memory_order_relaxed);
}

void FaultInjector::NoteShed(uint64_t reports, uint64_t cells) {
  reports_shed_.fetch_add(reports, std::memory_order_relaxed);
  cells_shed_.fetch_add(cells, std::memory_order_relaxed);
  obs::Inc(obs_shed_cells_, cells);
}

void FaultInjector::NoteLost(uint64_t reports, uint64_t cells, uint32_t group_hash) {
  reports_lost_.fetch_add(reports, std::memory_order_relaxed);
  cells_lost_.fetch_add(cells, std::memory_order_relaxed);
  obs::Inc(obs_lost_cells_, cells);
  std::lock_guard<std::mutex> lock(groups_mu_);
  lost_groups_.insert(group_hash);
}

void FaultInjector::NoteFailover(uint64_t reports, uint64_t cells,
                                 uint32_t group_hash) {
  reports_failed_over_.fetch_add(reports, std::memory_order_relaxed);
  cells_failed_over_.fetch_add(cells, std::memory_order_relaxed);
  obs::Inc(obs_failover_reports_, reports);
  std::lock_guard<std::mutex> lock(groups_mu_);
  failed_over_groups_.insert(group_hash);
}

void FaultInjector::NoteFence() {
  fences_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs_fences_);
}

void FaultInjector::NoteStall() { stalls_injected_.fetch_add(1, std::memory_order_relaxed); }

void FaultInjector::NoteWatchdogStall() {
  watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs_watchdog_stalls_);
}

void FaultInjector::NoteFlushDeadline() {
  flush_deadlines_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::NoteAbandonedGroups(uint64_t groups) {
  groups_abandoned_.fetch_add(groups, std::memory_order_relaxed);
}

void FaultInjector::NoteMemberCrashed() {
  members_crashed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::NoteInjectedPoolExhaustion() {
  injected_pool_exhaustions_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs_pool_exhaustions_);
}

void FaultInjector::NoteSaturatedPush(uint64_t attempts) {
  saturated_pushes_.fetch_add(attempts, std::memory_order_relaxed);
  obs::Inc(obs_saturated_pushes_, attempts);
}

FaultStats FaultInjector::Snapshot() const {
  FaultStats s;
  s.reports_offered = reports_offered_.load(std::memory_order_relaxed);
  s.cells_offered = cells_offered_.load(std::memory_order_relaxed);
  s.reports_shed = reports_shed_.load(std::memory_order_relaxed);
  s.cells_shed = cells_shed_.load(std::memory_order_relaxed);
  s.reports_lost_to_failover = reports_lost_.load(std::memory_order_relaxed);
  s.cells_lost_to_failover = cells_lost_.load(std::memory_order_relaxed);
  s.reports_failed_over = reports_failed_over_.load(std::memory_order_relaxed);
  s.cells_failed_over = cells_failed_over_.load(std::memory_order_relaxed);
  s.groups_abandoned = groups_abandoned_.load(std::memory_order_relaxed);
  s.members_crashed = members_crashed_.load(std::memory_order_relaxed);
  s.injected_pool_exhaustions =
      injected_pool_exhaustions_.load(std::memory_order_relaxed);
  s.saturated_pushes = saturated_pushes_.load(std::memory_order_relaxed);
  s.failover_fences = fences_.load(std::memory_order_relaxed);
  s.stalls_injected = stalls_injected_.load(std::memory_order_relaxed);
  s.watchdog_stall_events = watchdog_stalls_.load(std::memory_order_relaxed);
  s.flush_deadline_exceeded = flush_deadlines_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(groups_mu_);
  s.groups_lost_in_flight = lost_groups_.size();
  s.groups_failed_over = failed_over_groups_.size();
  return s;
}

void FaultInjector::set_obs(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  obs_shed_cells_ = registry->GetCounter("superfe_fault_cells_shed_total", {},
                                         "Cells shed under injected overload/blackout");
  obs_lost_cells_ =
      registry->GetCounter("superfe_fault_cells_lost_failover_total", {},
                           "Cells lost in flight inside the crash-detection window");
  obs_failover_reports_ =
      registry->GetCounter("superfe_fault_reports_failed_over_total", {},
                           "Reports rerouted to a survivor via rendezvous hashing");
  obs_fences_ = registry->GetCounter("superfe_fault_failover_fences_total", {},
                                     "Order-preserving handoff fences issued");
  obs_watchdog_stalls_ =
      registry->GetCounter("superfe_fault_watchdog_stalls_total", {},
                           "Watchdog detections of a stalled worker (edge-triggered)");
  obs_pool_exhaustions_ =
      registry->GetCounter("superfe_fault_pool_exhaustions_total", {},
                           "MGPV long-buffer allocations failed by injection");
  obs_saturated_pushes_ =
      registry->GetCounter("superfe_fault_saturated_pushes_total", {},
                           "Queue push attempts rejected by injected saturation");
}

}  // namespace superfe
