// Fluent C++ builder for SuperFE policies, mirroring the text DSL:
//
//   Policy p = PolicyBuilder("covert")
//                  .Filter(FilterExpr::TcpOnly())
//                  .GroupBy(Granularity::kFlow)
//                  .Map("one", "_", MapFn::kOne)
//                  .Reduce("one", {{ReduceFn::kSum}})
//                  .Collect(Granularity::kFlow)
//                  .Build()
//                  .value();
//
// Build() validates the pipeline (ordering rules, field references,
// granularity-chain consistency) and returns a Status on error.
#ifndef SUPERFE_POLICY_BUILDER_H_
#define SUPERFE_POLICY_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "policy/ast.h"

namespace superfe {

class PolicyBuilder {
 public:
  explicit PolicyBuilder(std::string name);

  PolicyBuilder& Filter(FilterExpr expr);
  PolicyBuilder& GroupBy(Granularity g);
  PolicyBuilder& GroupBy(std::vector<Granularity> chain);
  PolicyBuilder& Map(std::string dst, std::string src, MapFn fn);
  PolicyBuilder& Reduce(std::string src, std::vector<ReduceSpec> specs);
  // Reduce restricted to one granularity of the chain.
  PolicyBuilder& ReduceAt(Granularity at, std::string src, std::vector<ReduceSpec> specs);
  PolicyBuilder& Synthesize(std::string src, SynthFn fn, double param0 = 0.0);
  PolicyBuilder& CollectPerPacket();
  PolicyBuilder& Collect(Granularity unit);

  // Validates and returns the policy.
  Result<Policy> Build() const;

 private:
  Policy policy_;
};

// Validates an assembled policy; used by both the builder and the parser.
// On success the policy may be normalized in place (granularity chain sorted
// coarse -> fine).
Status ValidatePolicy(Policy& policy);

// Field names that exist on every packet tuple before any map runs
// ("fgkey" is the finest-granularity group-key hash, enabling f_card of
// finer groups per coarse group).
bool IsBuiltinField(const std::string& name);

}  // namespace superfe

#endif  // SUPERFE_POLICY_BUILDER_H_
