#include "policy/builder.h"

#include <algorithm>
#include <optional>
#include <set>

namespace superfe {

PolicyBuilder::PolicyBuilder(std::string name) { policy_.name = std::move(name); }

PolicyBuilder& PolicyBuilder::Filter(FilterExpr expr) {
  policy_.ops.push_back(FilterOp{std::move(expr)});
  return *this;
}

PolicyBuilder& PolicyBuilder::GroupBy(Granularity g) {
  policy_.ops.push_back(GroupByOp{{g}});
  return *this;
}

PolicyBuilder& PolicyBuilder::GroupBy(std::vector<Granularity> chain) {
  policy_.ops.push_back(GroupByOp{std::move(chain)});
  return *this;
}

PolicyBuilder& PolicyBuilder::Map(std::string dst, std::string src, MapFn fn) {
  if (src == "_") {
    src.clear();
  }
  policy_.ops.push_back(MapOp{std::move(dst), std::move(src), fn});
  return *this;
}

PolicyBuilder& PolicyBuilder::Reduce(std::string src, std::vector<ReduceSpec> specs) {
  policy_.ops.push_back(ReduceOp{std::move(src), std::move(specs), std::nullopt});
  return *this;
}

PolicyBuilder& PolicyBuilder::ReduceAt(Granularity at, std::string src,
                                       std::vector<ReduceSpec> specs) {
  policy_.ops.push_back(ReduceOp{std::move(src), std::move(specs), at});
  return *this;
}

PolicyBuilder& PolicyBuilder::Synthesize(std::string src, SynthFn fn, double param0) {
  policy_.ops.push_back(SynthOp{std::move(src), fn, param0});
  return *this;
}

PolicyBuilder& PolicyBuilder::CollectPerPacket() {
  policy_.ops.push_back(CollectOp{true, Granularity::kFlow});
  return *this;
}

PolicyBuilder& PolicyBuilder::Collect(Granularity unit) {
  policy_.ops.push_back(CollectOp{false, unit});
  return *this;
}

Result<Policy> PolicyBuilder::Build() const {
  Policy policy = policy_;
  Status status = ValidatePolicy(policy);
  if (!status.ok()) {
    return status;
  }
  return policy;
}

bool IsBuiltinField(const std::string& name) {
  return name == "size" || name == "tstamp" || name == "direction" || name == "src_ip" ||
         name == "dst_ip" || name == "src_port" || name == "dst_port" || name == "proto";
}

Status ValidatePolicy(Policy& policy) {
  if (policy.ops.empty()) {
    return Status::InvalidArgument("policy has no operators");
  }

  bool seen_groupby = false;
  bool seen_compute = false;  // Any map/reduce/synthesize.
  bool seen_collect = false;
  // Collect may appear several times (Fig 3 collects after each reduce
  // block); every occurrence must use the same unit.
  std::optional<CollectOp> first_collect;
  std::set<std::string> fields = {"size", "tstamp", "direction", "fgkey"};
  std::set<std::string> features;  // Fields produced by reduce.
  GroupByOp* groupby = nullptr;

  for (auto& op : policy.ops) {
    if (auto* f = std::get_if<FilterOp>(&op)) {
      if (seen_groupby) {
        // Switch-side constraint (§4.1): filtering happens before grouping
        // in the match-action pipeline.
        return Status::InvalidArgument("filter must precede groupby");
      }
      (void)f;
    } else if (auto* g = std::get_if<GroupByOp>(&op)) {
      if (seen_groupby) {
        return Status::InvalidArgument("at most one groupby (use a granularity chain)");
      }
      if (g->chain.empty()) {
        return Status::InvalidArgument("groupby needs at least one granularity");
      }
      // Normalize the chain coarse -> fine and check it is a chain.
      std::sort(g->chain.begin(), g->chain.end(), [](Granularity a, Granularity b) {
        return static_cast<int>(a) < static_cast<int>(b);
      });
      g->chain.erase(std::unique(g->chain.begin(), g->chain.end()), g->chain.end());
      for (size_t i = 1; i < g->chain.size(); ++i) {
        if (!IsCoarserOrEqual(g->chain[i - 1], g->chain[i]) ||
            (g->chain[i - 1] == Granularity::kSocket && g->chain[i] == Granularity::kFlow)) {
          return Status::InvalidArgument("granularities do not form a dependency chain");
        }
      }
      seen_groupby = true;
      groupby = g;
    } else if (auto* m = std::get_if<MapOp>(&op)) {
      if (!seen_groupby) {
        return Status::InvalidArgument("map requires a preceding groupby");
      }
      if (m->dst.empty()) {
        return Status::InvalidArgument("map destination field is empty");
      }
      if (!m->src.empty() && fields.count(m->src) == 0) {
        return Status::InvalidArgument("map source field '" + m->src + "' is not defined");
      }
      fields.insert(m->dst);
      seen_compute = true;
    } else if (auto* r = std::get_if<ReduceOp>(&op)) {
      if (!seen_groupby) {
        return Status::InvalidArgument("reduce requires a preceding groupby");
      }
      if (fields.count(r->src) == 0) {
        return Status::InvalidArgument("reduce source field '" + r->src + "' is not defined");
      }
      if (r->specs.empty()) {
        return Status::InvalidArgument("reduce needs at least one reducing function");
      }
      if (r->at.has_value() && groupby != nullptr) {
        bool in_chain = false;
        for (Granularity g : groupby->chain) {
          if (g == *r->at) {
            in_chain = true;
            break;
          }
        }
        if (!in_chain) {
          return Status::InvalidArgument("reduce granularity restriction is not in the chain");
        }
      }
      for (const auto& spec : r->specs) {
        if (IsHistogramBased(spec.fn) && spec.fn != ReduceFn::kPercent &&
            (spec.param0 <= 0.0 || spec.param1 < 1.0)) {
          return Status::InvalidArgument(std::string(ReduceFnName(spec.fn)) +
                                         " requires positive {width, bins} parameters");
        }
        if (spec.fn == ReduceFn::kPercent && (spec.param0 < 0.0 || spec.param0 > 1.0)) {
          return Status::InvalidArgument("ft_percent quantile must be in [0, 1]");
        }
        if (spec.decay_lambda < 0.0) {
          return Status::InvalidArgument("decay lambda must be non-negative");
        }
        features.insert(r->src + "." + ReduceFnName(spec.fn));
      }
      seen_compute = true;
    } else if (auto* s = std::get_if<SynthOp>(&op)) {
      if (features.empty()) {
        return Status::InvalidArgument("synthesize requires a preceding reduce");
      }
      // The src names either "<field>.<fn>" or the reduce source field.
      bool found = features.count(s->src) > 0;
      if (!found) {
        for (const auto& f : features) {
          if (f.rfind(s->src + ".", 0) == 0) {
            found = true;
            break;
          }
        }
      }
      if (!found) {
        return Status::InvalidArgument("synthesize source '" + s->src +
                                       "' does not match any reduced feature");
      }
      if (s->fn == SynthFn::kSample && s->param0 < 1.0) {
        return Status::InvalidArgument("ft_sample needs a positive target length");
      }
      seen_compute = true;
    } else if (auto* c = std::get_if<CollectOp>(&op)) {
      if (!seen_compute) {
        return Status::InvalidArgument("collect requires preceding feature computation");
      }
      if (!c->per_packet && groupby != nullptr) {
        bool in_chain = false;
        for (Granularity g : groupby->chain) {
          if (g == c->unit) {
            in_chain = true;
            break;
          }
        }
        if (!in_chain) {
          return Status::InvalidArgument("collect unit is not in the groupby chain");
        }
      }
      if (first_collect.has_value()) {
        if (first_collect->per_packet != c->per_packet ||
            (!c->per_packet && first_collect->unit != c->unit)) {
          return Status::InvalidArgument("all collect operators must use the same unit");
        }
      } else {
        first_collect = *c;
      }
      seen_collect = true;
    }
  }

  if (!seen_groupby) {
    return Status::InvalidArgument("policy needs a groupby");
  }
  if (!seen_collect) {
    return Status::InvalidArgument("policy needs a collect");
  }
  return Status::Ok();
}

}  // namespace superfe
