// Cost/state metadata for every mapping/reducing/synthesizing function
// (Table 5). The compiler uses it to size group state (ILP placement, §6.2),
// the NIC cycle model uses the per-sample operation counts, and the resource
// estimator uses it for Table 4.
#ifndef SUPERFE_POLICY_FUNCTIONS_H_
#define SUPERFE_POLICY_FUNCTIONS_H_

#include <cstdint>

#include "policy/ast.h"

namespace superfe {

// Per-sample update cost and per-group state of a reducing function, as it
// executes on the NFP SoC cores.
struct ReduceCost {
  uint32_t state_bytes = 0;   // Persistent per-group state.
  uint16_t alu_ops = 0;       // Simple ALU operations per sample.
  uint16_t divisions = 0;     // Divisions per sample (1500 cycles each
                              // before the §6.2 elimination).
  uint16_t mem_words = 0;     // 32-bit state words touched per sample.
  uint32_t naive_bytes_per_sample = 0;  // Buffered-baseline growth (Fig 15).
};

ReduceCost CostOfReduce(const ReduceSpec& spec);

struct MapCost {
  uint32_t state_bytes = 0;
  uint16_t alu_ops = 0;
  uint16_t divisions = 0;
  uint16_t mem_words = 0;
};

MapCost CostOfMap(MapFn fn);

// Number of scalar outputs a reducing function contributes to the feature
// vector (histograms contribute their bin count, arrays their limit, 2D
// statistics one scalar each).
uint32_t OutputWidth(const ReduceSpec& spec);

}  // namespace superfe

#endif  // SUPERFE_POLICY_FUNCTIONS_H_
