// Parser for the SuperFE policy text DSL, the exact surface syntax of the
// paper's figures (Figs 3-5):
//
//   pktstream
//     .filter(tcp.exist)
//     .groupby(flow)
//     .map(ipt, tstamp, f_ipt)
//     .reduce(ipt, [ft_hist{10000, 100}])
//     .reduce(size, [f_mean, f_var, f_min, f_max])
//     .synthesize(f_norm(size.f_mean))
//     .collect(flow)
//
// Extensions over the figures (documented in DESIGN.md):
//   - named parameters in braces: f_mean{decay=1}, f_array{limit=5000}
//   - comparison predicates: .filter(dst_port == 443 && size > 100)
//   - granularity chains: .groupby(host, channel, socket)
//   - '#' line comments
#ifndef SUPERFE_POLICY_PARSER_H_
#define SUPERFE_POLICY_PARSER_H_

#include <string>

#include "common/status.h"
#include "policy/ast.h"

namespace superfe {

// Parses and validates a policy. `name` labels the policy; the source text
// is retained for Table 3 LoC accounting. Errors carry line/column context.
Result<Policy> ParsePolicy(const std::string& name, const std::string& source);

}  // namespace superfe

#endif  // SUPERFE_POLICY_PARSER_H_
