#include "policy/compile.h"

#include <algorithm>
#include <map>
#include <set>

#include "policy/builder.h"

namespace superfe {

uint32_t MetaFieldBytes(MetaField field) {
  switch (field) {
    case MetaField::kSize:
      return 2;
    case MetaField::kTimestamp:
      return 4;
    case MetaField::kDirection:
      return 1;
  }
  return 0;
}

const char* MetaFieldName(MetaField field) {
  switch (field) {
    case MetaField::kSize:
      return "size";
    case MetaField::kTimestamp:
      return "tstamp";
    case MetaField::kDirection:
      return "direction";
  }
  return "?";
}

uint32_t SwitchProgram::MetadataBytesPerPacket() const {
  uint32_t bytes = 0;
  for (MetaField f : fields) {
    bytes += MetaFieldBytes(f);
  }
  if (multi_granularity()) {
    bytes += 2;  // FG-key index into the synchronized hash table (§5.1).
  }
  return bytes;
}

namespace {

uint32_t KeyBytes(Granularity g) {
  switch (g) {
    case Granularity::kHost:
      return 4;  // Source IP.
    case Granularity::kChannel:
      return 8;  // IP pair.
    case Granularity::kSocket:
    case Granularity::kFlow:
      return 13;  // Five-tuple.
  }
  return 13;
}

}  // namespace

uint32_t SwitchProgram::CgKeyBytes() const { return KeyBytes(cg()); }
uint32_t SwitchProgram::FgKeyBytes() const { return KeyBytes(fg()); }

std::string FeatureSlot::Name() const {
  std::string name = std::string(GranularityName(granularity)) + "/" + field + "." +
                     ReduceFnName(spec.fn);
  for (const auto& step : synths) {
    name += std::string(".") + SynthFnName(step.fn);
  }
  return name;
}

uint32_t FeatureSlot::Width() const {
  uint32_t width = OutputWidth(spec);
  for (const auto& step : synths) {
    if (step.fn == SynthFn::kSample && step.param >= 1.0) {
      width = static_cast<uint32_t>(step.param);
    }
  }
  return width;
}

uint32_t NicProgram::StateBytesPerGroup() const {
  uint32_t bytes = 0;
  for (const auto& s : states) {
    bytes += s.bytes;
  }
  return bytes;
}

uint32_t NicProgram::FeatureDimension() const {
  uint32_t dim = 0;
  for (const auto& slot : layout) {
    dim += slot.Width();
  }
  return dim;
}

uint32_t NicProgram::AluOpsPerPacket() const {
  uint32_t ops = 0;
  const uint32_t instances = static_cast<uint32_t>(granularities.size());
  for (const auto& m : maps) {
    ops += CostOfMap(m.fn).alu_ops * instances;
  }
  for (const auto& r : reduces) {
    const uint32_t at = r.at.has_value() ? 1 : instances;
    for (const auto& spec : r.specs) {
      ops += CostOfReduce(spec).alu_ops * at;
    }
  }
  return ops;
}

uint32_t NicProgram::DivisionsPerPacket() const {
  // Divider invocations per packet. Statistics that mathematically divide
  // (mean, variance, moments, 2D correlations) share one reciprocal per
  // (granularity, source field) group update - the Micro-C implementation
  // computes 1/w or 1/n once and strength-reduces every feature of that
  // field to multiplies. Mapping functions (f_speed) divide per packet.
  uint32_t divs = 0;
  const uint32_t instances = static_cast<uint32_t>(granularities.size());
  for (const auto& m : maps) {
    divs += CostOfMap(m.fn).divisions * instances;
  }
  for (size_t gi = 0; gi < granularities.size(); ++gi) {
    std::set<std::string> div_fields;
    for (const auto& r : reduces) {
      if (r.at.has_value() && *r.at != granularities[gi]) {
        continue;
      }
      for (const auto& spec : r.specs) {
        if (CostOfReduce(spec).divisions > 0) {
          div_fields.insert(r.src);
          break;
        }
      }
    }
    divs += static_cast<uint32_t>(div_fields.size());
  }
  return divs;
}

uint32_t NicProgram::MemWordsPerPacket() const {
  uint32_t words = 0;
  const uint32_t instances = static_cast<uint32_t>(granularities.size());
  for (const auto& m : maps) {
    words += CostOfMap(m.fn).mem_words * instances;
  }
  for (const auto& r : reduces) {
    const uint32_t at = r.at.has_value() ? 1 : instances;
    for (const auto& spec : r.specs) {
      words += CostOfReduce(spec).mem_words * at;
    }
  }
  return words;
}

Result<CompiledPolicy> Compile(const Policy& input) {
  CompiledPolicy out;
  out.policy = input;
  Status status = ValidatePolicy(out.policy);
  if (!status.ok()) {
    return status;
  }
  const Policy& policy = out.policy;

  SwitchProgram& sw = out.switch_program;
  NicProgram& nic = out.nic_program;

  // ---- Extract the pipeline pieces ----
  // Which packet fields feed any map/reduce (directly or transitively).
  std::set<std::string> used_builtin_fields;
  std::map<std::string, MapFn> map_fn_of_field;

  auto note_source = [&](const std::string& field) {
    if (field == "size" || field == "tstamp" || field == "direction" || field == "fgkey") {
      used_builtin_fields.insert(field);
    }
    const auto it = map_fn_of_field.find(field);
    if (it != map_fn_of_field.end()) {
      // Transitive needs of mapping functions.
      switch (it->second) {
        case MapFn::kIpt:
        case MapFn::kSpeed:
          used_builtin_fields.insert("tstamp");
          if (it->second == MapFn::kSpeed) {
            used_builtin_fields.insert("size");
          }
          break;
        case MapFn::kBurst:
        case MapFn::kDirection:
          used_builtin_fields.insert("direction");
          break;
        case MapFn::kOne:
          break;
      }
    }
  };

  // Pending features: produced by reduce, waiting for a collect.
  struct Pending {
    std::string field;
    ReduceSpec spec;
    std::vector<SynthStep> synths;
    std::optional<Granularity> at;
  };
  std::vector<Pending> pending;
  std::vector<Pending> collected;

  for (const auto& op : policy.ops) {
    if (const auto* f = std::get_if<FilterOp>(&op)) {
      for (const auto& pred : f->expr.conjuncts) {
        sw.filter.conjuncts.push_back(pred);
      }
    } else if (const auto* g = std::get_if<GroupByOp>(&op)) {
      sw.chain = g->chain;
      nic.granularities = g->chain;
    } else if (const auto* m = std::get_if<MapOp>(&op)) {
      nic.maps.push_back(*m);
      map_fn_of_field[m->dst] = m->fn;
      if (!m->src.empty()) {
        note_source(m->src);
      }
      note_source(m->dst);
    } else if (const auto* r = std::get_if<ReduceOp>(&op)) {
      nic.reduces.push_back(*r);
      note_source(r->src);
      for (const auto& spec : r->specs) {
        if (IsBidirectional(spec.fn)) {
          used_builtin_fields.insert("direction");
        }
        pending.push_back(Pending{r->src, spec, {}, r->at});
      }
    } else if (const auto* s = std::get_if<SynthOp>(&op)) {
      nic.synths.push_back(*s);
      // Attach to the matching pending feature(s): exact "field.fn" match or
      // all pending features of a field.
      bool matched = false;
      for (auto& p : pending) {
        const std::string full = p.field + "." + ReduceFnName(p.spec.fn);
        if (full == s->src || p.field == s->src) {
          p.synths.push_back(SynthStep{s->fn, s->param0});
          matched = true;
        }
      }
      if (!matched) {
        return Status::InvalidArgument("synthesize source '" + s->src +
                                       "' has no pending feature");
      }
    } else if (const auto* c = std::get_if<CollectOp>(&op)) {
      nic.collect = *c;
      for (auto& p : pending) {
        collected.push_back(std::move(p));
      }
      pending.clear();
    }
  }

  if (sw.chain.empty()) {
    return Status::Internal("validated policy lost its groupby");
  }
  if (collected.empty()) {
    return Status::InvalidArgument("collect captured no features");
  }

  // ---- Switch metadata layout ----
  // Deterministic order: size, tstamp, direction.
  if (used_builtin_fields.count("size") != 0) {
    sw.fields.push_back(MetaField::kSize);
  }
  if (used_builtin_fields.count("tstamp") != 0) {
    sw.fields.push_back(MetaField::kTimestamp);
  }
  if (used_builtin_fields.count("direction") != 0) {
    sw.fields.push_back(MetaField::kDirection);
  }
  if (sw.fields.empty()) {
    // Even pure counting policies batch the packet size (cheapest witness
    // of the packet's existence).
    sw.fields.push_back(MetaField::kSize);
  }

  // ---- Feature layout: per granularity x collected feature (respecting
  // per-reduce granularity restrictions) ----
  for (Granularity g : nic.granularities) {
    for (const auto& p : collected) {
      if (p.at.has_value() && *p.at != g) {
        continue;
      }
      FeatureSlot slot;
      slot.granularity = g;
      slot.field = p.field;
      slot.spec = p.spec;
      slot.synths = p.synths;
      nic.layout.push_back(std::move(slot));
    }
  }

  // ---- State items, expanded per granularity instance ----
  for (Granularity g : nic.granularities) {
    const std::string prefix = std::string(GranularityName(g)) + "/";
    std::set<std::string> map_states_done;
    for (const auto& m : nic.maps) {
      const MapCost cost = CostOfMap(m.fn);
      if (cost.state_bytes == 0) {
        continue;
      }
      const std::string name = prefix + "map:" + MapFnName(m.fn);
      if (!map_states_done.insert(name).second) {
        continue;  // ipt/speed share the last-timestamp state.
      }
      nic.states.push_back(StateItem{name, cost.state_bytes, cost.mem_words});
    }
    for (const auto& r : nic.reduces) {
      if (r.at.has_value() && *r.at != g) {
        continue;
      }
      for (const auto& spec : r.specs) {
        const ReduceCost cost = CostOfReduce(spec);
        nic.states.push_back(StateItem{prefix + r.src + "." + ReduceFnName(spec.fn),
                                       cost.state_bytes, cost.mem_words});
      }
    }
  }

  return out;
}

}  // namespace superfe
