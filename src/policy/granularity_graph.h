// Granularity dependency graphs (§9 "More complex granularity dependency
// relationships"): future applications may relate granularities as a DAG
// rather than a chain. The paper's proposed solution — implemented here —
// splits the DAG into a minimum number of dependency chains and allocates
// one MGPV instance per chain.
//
// Minimum chain cover of a DAG equals (by Dilworth/Mirsky via the
// Fulkerson construction) a minimum path cover of its transitive closure,
// solved with bipartite matching.
#ifndef SUPERFE_POLICY_GRANULARITY_GRAPH_H_
#define SUPERFE_POLICY_GRANULARITY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace superfe {

// A DAG over custom granularities. Nodes are user-defined grouping keys
// (named for diagnostics); an edge u -> v means "v refines u" (every
// v-group is contained in exactly one u-group).
class GranularityGraph {
 public:
  // Adds a node; returns its index.
  int AddNode(std::string name);

  // Adds a refinement edge coarse -> fine.
  Status AddEdge(int coarse, int fine);

  int node_count() const { return static_cast<int>(names_.size()); }
  const std::string& name(int node) const { return names_[node]; }
  const std::vector<std::vector<int>>& adjacency() const { return adjacency_; }

  // True if the graph is acyclic.
  bool IsDag() const;

  // Splits the graph into the minimum number of chains (each chain is a
  // sequence coarse -> ... -> fine along transitive refinements). Every
  // node appears in exactly one chain. Fails if the graph has a cycle.
  Result<std::vector<std::vector<int>>> SplitIntoMinimumChains() const;

  // Lower bound check: by Dilworth's theorem the minimum number of chains
  // equals the maximum antichain; exposed for tests/diagnostics.
  int MinimumChainCount() const;

 private:
  // Transitive closure reach[u][v] = v refines u (directly or not).
  std::vector<std::vector<bool>> TransitiveClosure() const;

  std::vector<std::string> names_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace superfe

#endif  // SUPERFE_POLICY_GRANULARITY_GRAPH_H_
