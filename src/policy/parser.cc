#include "policy/parser.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

#include "policy/builder.h"

namespace superfe {
namespace {

// ---- Lexer ----

enum class TokKind {
  kIdent,
  kNumber,
  kDot,
  kComma,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kOp,   // == != < <= > >= && =
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(LexNumber());
        continue;
      }
      Token t;
      t.line = line_;
      switch (c) {
        case '.':
          t.kind = TokKind::kDot;
          break;
        case ',':
          t.kind = TokKind::kComma;
          break;
        case '(':
          t.kind = TokKind::kLParen;
          break;
        case ')':
          t.kind = TokKind::kRParen;
          break;
        case '[':
          t.kind = TokKind::kLBracket;
          break;
        case ']':
          t.kind = TokKind::kRBracket;
          break;
        case '{':
          t.kind = TokKind::kLBrace;
          break;
        case '}':
          t.kind = TokKind::kRBrace;
          break;
        case '=':
        case '!':
        case '<':
        case '>':
        case '&': {
          t.kind = TokKind::kOp;
          t.text = c;
          if (pos_ + 1 < src_.size()) {
            const char n = src_[pos_ + 1];
            if ((c == '&' && n == '&') || n == '=') {
              t.text += n;
              ++pos_;
            }
          }
          if (t.text == "!" ) {
            return Status::InvalidArgument(Where() + "stray '!'");
          }
          break;
        }
        default:
          return Status::InvalidArgument(Where() + "unexpected character '" +
                                         std::string(1, c) + "'");
      }
      ++pos_;
      tokens.push_back(std::move(t));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.line = line_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  Token LexIdent() {
    Token t;
    t.kind = TokKind::kIdent;
    t.line = line_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
      t.text += src_[pos_++];
    }
    return t;
  }

  Token LexNumber() {
    Token t;
    t.kind = TokKind::kNumber;
    t.line = line_;
    std::string text;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E')))) {
      // Stop a trailing '.' that is actually an operator chain: "100." only
      // consumes the dot if a digit follows.
      if (src_[pos_] == '.' &&
          (pos_ + 1 >= src_.size() ||
           !std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        break;
      }
      text += src_[pos_++];
    }
    t.text = text;
    t.number = std::strtod(text.c_str(), nullptr);
    return t;
  }

  std::string Where() const { return "line " + std::to_string(line_) + ": "; }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---- Parser ----

const std::map<std::string, Granularity>& GranularityTable() {
  static const std::map<std::string, Granularity> table = {
      {"host", Granularity::kHost},
      {"channel", Granularity::kChannel},
      {"socket", Granularity::kSocket},
      {"flow", Granularity::kFlow},
  };
  return table;
}

const std::map<std::string, MapFn>& MapFnTable() {
  static const std::map<std::string, MapFn> table = {
      {"f_one", MapFn::kOne},           {"f_ipt", MapFn::kIpt},
      {"f_speed", MapFn::kSpeed},       {"f_burst", MapFn::kBurst},
      {"f_direction", MapFn::kDirection},
  };
  return table;
}

const std::map<std::string, ReduceFn>& ReduceFnTable() {
  static const std::map<std::string, ReduceFn> table = {
      {"f_sum", ReduceFn::kSum},       {"f_mean", ReduceFn::kMean},
      {"f_var", ReduceFn::kVar},       {"f_std", ReduceFn::kStd},
      {"f_max", ReduceFn::kMax},       {"f_min", ReduceFn::kMin},
      {"f_kur", ReduceFn::kKur},       {"f_skew", ReduceFn::kSkew},
      {"f_mag", ReduceFn::kMag},       {"f_radius", ReduceFn::kRadius},
      {"f_cov", ReduceFn::kCov},       {"f_pcc", ReduceFn::kPcc},
      {"f_card", ReduceFn::kCard},     {"f_array", ReduceFn::kArray},
      {"f_pdf", ReduceFn::kPdf},       {"f_cdf", ReduceFn::kCdf},
      {"ft_hist", ReduceFn::kHist},    {"ft_percent", ReduceFn::kPercent},
  };
  return table;
}

const std::map<std::string, SynthFn>& SynthFnTable() {
  static const std::map<std::string, SynthFn> table = {
      {"f_marker", SynthFn::kMarker},
      {"f_norm", SynthFn::kNorm},
      {"ft_sample", SynthFn::kSample},
  };
  return table;
}

const std::map<std::string, PredField>& PredFieldTable() {
  static const std::map<std::string, PredField> table = {
      {"proto", PredField::kProtocol},   {"src_port", PredField::kSrcPort},
      {"dst_port", PredField::kDstPort}, {"src_ip", PredField::kSrcIp},
      {"dst_ip", PredField::kDstIp},     {"size", PredField::kSize},
      {"tcp_flags", PredField::kTcpFlags},
  };
  return table;
}

class Parser {
 public:
  Parser(std::string name, const std::string& source, std::vector<Token> tokens)
      : name_(std::move(name)), source_(source), tokens_(std::move(tokens)) {}

  Result<Policy> Run() {
    if (!AcceptIdent("pktstream")) {
      return Error("policy must start with 'pktstream'");
    }
    Policy policy;
    policy.name = name_;
    policy.source_text = source_;

    while (Peek().kind == TokKind::kDot) {
      Next();  // '.'
      const Token op = Next();
      if (op.kind != TokKind::kIdent) {
        return Error("expected operator name after '.'");
      }
      if (!Expect(TokKind::kLParen)) {
        return Error("expected '(' after ." + op.text);
      }
      Status status = Status::Ok();
      if (op.text == "filter") {
        status = ParseFilter(policy);
      } else if (op.text == "groupby") {
        status = ParseGroupBy(policy);
      } else if (op.text == "map") {
        status = ParseMap(policy);
      } else if (op.text == "reduce") {
        status = ParseReduce(policy);
      } else if (op.text == "synthesize") {
        status = ParseSynthesize(policy);
      } else if (op.text == "collect") {
        status = ParseCollect(policy);
      } else {
        return Error("unknown operator '" + op.text + "'");
      }
      if (!status.ok()) {
        return status;
      }
      if (!Expect(TokKind::kRParen)) {
        return Error("expected ')' to close ." + op.text);
      }
    }
    if (Peek().kind != TokKind::kEnd) {
      return Error("unexpected trailing input");
    }

    Status status = ValidatePolicy(policy);
    if (!status.ok()) {
      return Status(status.code(), "policy '" + name_ + "': " + status.message());
    }
    return policy;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Expect(TokKind kind) {
    if (Peek().kind == kind) {
      Next();
      return true;
    }
    return false;
  }
  bool AcceptIdent(const std::string& text) {
    if (Peek().kind == TokKind::kIdent && Peek().text == text) {
      Next();
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("policy '" + name_ + "' line " +
                                   std::to_string(Peek().line) + ": " + message);
  }

  Status ParseFilter(Policy& policy) {
    FilterExpr expr;
    for (;;) {
      const Token field_tok = Next();
      if (field_tok.kind != TokKind::kIdent) {
        return Error("expected predicate field name");
      }
      Predicate pred;
      // Shorthand: `tcp.exist` / `udp.exist` / `icmp.exist`.
      if (Peek().kind == TokKind::kDot) {
        Next();
        if (!AcceptIdent("exist")) {
          return Error("expected 'exist' after '" + field_tok.text + ".'");
        }
        pred.field = PredField::kProtocol;
        pred.op = PredOp::kEq;
        if (field_tok.text == "tcp") {
          pred.value = kProtoTcp;
        } else if (field_tok.text == "udp") {
          pred.value = kProtoUdp;
        } else if (field_tok.text == "icmp") {
          pred.value = kProtoIcmp;
        } else {
          return Error("unknown protocol '" + field_tok.text + "'");
        }
      } else {
        const auto field_it = PredFieldTable().find(field_tok.text);
        if (field_it == PredFieldTable().end()) {
          return Error("unknown predicate field '" + field_tok.text + "'");
        }
        pred.field = field_it->second;
        const Token op_tok = Next();
        if (op_tok.kind != TokKind::kOp) {
          return Error("expected comparison operator");
        }
        if (op_tok.text == "==") {
          pred.op = PredOp::kEq;
        } else if (op_tok.text == "!=") {
          pred.op = PredOp::kNe;
        } else if (op_tok.text == "<") {
          pred.op = PredOp::kLt;
        } else if (op_tok.text == "<=") {
          pred.op = PredOp::kLe;
        } else if (op_tok.text == ">") {
          pred.op = PredOp::kGt;
        } else if (op_tok.text == ">=") {
          pred.op = PredOp::kGe;
        } else {
          return Error("unknown comparison '" + op_tok.text + "'");
        }
        const Token value_tok = Next();
        if (value_tok.kind != TokKind::kNumber) {
          return Error("expected numeric predicate value");
        }
        pred.value = static_cast<uint64_t>(value_tok.number);
      }
      expr.conjuncts.push_back(pred);
      if (Peek().kind == TokKind::kOp && Peek().text == "&&") {
        Next();
        continue;
      }
      break;
    }
    policy.ops.push_back(FilterOp{std::move(expr)});
    return Status::Ok();
  }

  Status ParseGroupBy(Policy& policy) {
    GroupByOp op;
    for (;;) {
      const Token g = Next();
      if (g.kind != TokKind::kIdent) {
        return Error("expected granularity name");
      }
      const auto it = GranularityTable().find(g.text);
      if (it == GranularityTable().end()) {
        return Error("unknown granularity '" + g.text + "'");
      }
      op.chain.push_back(it->second);
      if (!Expect(TokKind::kComma)) {
        break;
      }
    }
    policy.ops.push_back(std::move(op));
    return Status::Ok();
  }

  Status ParseMap(Policy& policy) {
    const Token dst = Next();
    if (dst.kind != TokKind::kIdent) {
      return Error("expected map destination field");
    }
    if (!Expect(TokKind::kComma)) {
      return Error("expected ',' in map");
    }
    const Token src = Next();
    if (src.kind != TokKind::kIdent) {
      return Error("expected map source field (or '_')");
    }
    if (!Expect(TokKind::kComma)) {
      return Error("expected ',' before mapping function");
    }
    const Token fn = Next();
    const auto it = MapFnTable().find(fn.text);
    if (fn.kind != TokKind::kIdent || it == MapFnTable().end()) {
      return Error("unknown mapping function '" + fn.text + "'");
    }
    policy.ops.push_back(MapOp{dst.text, src.text == "_" ? "" : src.text, it->second});
    return Status::Ok();
  }

  Status ParseReduceSpec(ReduceSpec& spec) {
    const Token fn = Next();
    const auto it = ReduceFnTable().find(fn.text);
    if (fn.kind != TokKind::kIdent || it == ReduceFnTable().end()) {
      return Error("unknown reducing function '" + fn.text + "'");
    }
    spec.fn = it->second;
    if (Peek().kind != TokKind::kLBrace) {
      return Status::Ok();
    }
    Next();  // '{'
    int positional = 0;
    for (;;) {
      if (Peek().kind == TokKind::kIdent) {
        const std::string key = Next().text;
        if (!(Peek().kind == TokKind::kOp && Peek().text == "=")) {
          return Error("expected '=' after parameter name '" + key + "'");
        }
        Next();
        const Token value = Next();
        if (value.kind != TokKind::kNumber) {
          return Error("expected numeric value for parameter '" + key + "'");
        }
        if (key == "decay" || key == "lambda") {
          spec.decay_lambda = value.number;
        } else if (key == "width") {
          spec.param0 = value.number;
        } else if (key == "bins") {
          spec.param1 = value.number;
        } else if (key == "q") {
          spec.param0 = value.number;
        } else if (key == "limit") {
          spec.array_limit = static_cast<uint32_t>(value.number);
        } else {
          return Error("unknown parameter '" + key + "'");
        }
      } else if (Peek().kind == TokKind::kNumber) {
        const double v = Next().number;
        if (spec.fn == ReduceFn::kArray) {
          spec.array_limit = static_cast<uint32_t>(v);
        } else if (positional == 0) {
          spec.param0 = v;
        } else if (positional == 1) {
          spec.param1 = v;
        } else {
          return Error("too many positional parameters");
        }
        ++positional;
      } else {
        return Error("expected parameter in braces");
      }
      if (Expect(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (!Expect(TokKind::kRBrace)) {
      return Error("expected '}' after parameters");
    }
    return Status::Ok();
  }

  Status ParseReduce(Policy& policy) {
    const Token src = Next();
    if (src.kind != TokKind::kIdent) {
      return Error("expected reduce source field");
    }
    if (!Expect(TokKind::kComma)) {
      return Error("expected ',' in reduce");
    }
    ReduceOp op;
    op.src = src.text;
    if (!Expect(TokKind::kLBracket)) {
      return Error("expected '[' starting the reducing-function list");
    }
    for (;;) {
      ReduceSpec spec;
      Status status = ParseReduceSpec(spec);
      if (!status.ok()) {
        return status;
      }
      op.specs.push_back(spec);
      if (Expect(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (!Expect(TokKind::kRBracket)) {
      return Error("expected ']' closing the reducing-function list");
    }
    // Optional trailing granularity restriction: .reduce(size, [...], host).
    if (Expect(TokKind::kComma)) {
      const Token g = Next();
      const auto it = g.kind == TokKind::kIdent ? GranularityTable().find(g.text)
                                                : GranularityTable().end();
      if (it == GranularityTable().end()) {
        return Error("expected granularity after the reducing-function list");
      }
      op.at = it->second;
    }
    policy.ops.push_back(std::move(op));
    return Status::Ok();
  }

  Status ParseSynthesize(Policy& policy) {
    const Token fn = Next();
    const auto it = SynthFnTable().find(fn.text);
    if (fn.kind != TokKind::kIdent || it == SynthFnTable().end()) {
      return Error("unknown synthesizing function '" + fn.text + "'");
    }
    SynthOp op;
    op.fn = it->second;
    if (!Expect(TokKind::kLParen)) {
      return Error("expected '(' after synthesizing function");
    }
    // Source feature: ident or ident.ident ("size.f_mean").
    const Token src = Next();
    if (src.kind != TokKind::kIdent) {
      return Error("expected source feature for synthesize");
    }
    op.src = src.text;
    if (Peek().kind == TokKind::kDot) {
      Next();
      const Token sub = Next();
      if (sub.kind != TokKind::kIdent) {
        return Error("expected function name after '.' in synthesize source");
      }
      op.src += "." + sub.text;
    }
    if (Expect(TokKind::kComma)) {
      const Token n = Next();
      if (n.kind != TokKind::kNumber) {
        return Error("expected numeric synthesize parameter");
      }
      op.param0 = n.number;
    }
    if (!Expect(TokKind::kRParen)) {
      return Error("expected ')' closing synthesize source");
    }
    policy.ops.push_back(std::move(op));
    return Status::Ok();
  }

  Status ParseCollect(Policy& policy) {
    const Token unit = Next();
    if (unit.kind != TokKind::kIdent) {
      return Error("expected collect unit");
    }
    CollectOp op;
    if (unit.text == "pkt") {
      op.per_packet = true;
    } else {
      const auto it = GranularityTable().find(unit.text);
      if (it == GranularityTable().end()) {
        return Error("unknown collect unit '" + unit.text + "'");
      }
      op.unit = it->second;
    }
    policy.ops.push_back(op);
    return Status::Ok();
  }

  std::string name_;
  const std::string& source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Policy> ParsePolicy(const std::string& name, const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.Run();
  if (!tokens.ok()) {
    return Status(tokens.status().code(), "policy '" + name + "': " + tokens.status().message());
  }
  Parser parser(name, source, std::move(tokens).value());
  return parser.Run();
}

}  // namespace superfe
