// Value: the dynamically-typed payload of SuperFE key-value tuples (scalar
// feature values and array-valued features such as direction sequences).
#ifndef SUPERFE_POLICY_VALUE_H_
#define SUPERFE_POLICY_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace superfe {

class Value {
 public:
  Value() : data_(0.0) {}
  Value(double v) : data_(v) {}                       // NOLINT(google-explicit-constructor)
  Value(int64_t v) : data_(static_cast<double>(v)) {} // NOLINT(google-explicit-constructor)
  Value(std::vector<double> v) : data_(std::move(v)) {} // NOLINT(google-explicit-constructor)

  bool is_scalar() const { return std::holds_alternative<double>(data_); }
  bool is_array() const { return !is_scalar(); }

  double AsScalar() const { return is_scalar() ? std::get<double>(data_) : 0.0; }
  const std::vector<double>& AsArray() const {
    static const std::vector<double> kEmpty;
    return is_array() ? std::get<std::vector<double>>(data_) : kEmpty;
  }

  // Flattens to doubles (scalar -> 1 element).
  std::vector<double> Flatten() const {
    if (is_scalar()) {
      return {AsScalar()};
    }
    return AsArray();
  }

  std::string ToString() const;

 private:
  std::variant<double, std::vector<double>> data_;
};

}  // namespace superfe

#endif  // SUPERFE_POLICY_VALUE_H_
