// Abstract syntax of SuperFE feature-extraction policies (§4, Tables 1 & 5).
//
// A policy is an ordered pipeline of dataflow operators applied to
// `pktstream`: filter -> groupby -> map* -> reduce* -> synthesize* -> collect.
// The compiler (policy/compile.h) partitions it across FE-Switch and FE-NIC.
#ifndef SUPERFE_POLICY_AST_H_
#define SUPERFE_POLICY_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/packet.h"

namespace superfe {

// ---- Granularities (Table 5) ----
//
// Grouping keys ordered coarse -> fine. `host` groups by source IP; `channel`
// by the IP pair; `socket` by the five-tuple with direction recorded; `flow`
// by the five-tuple. Dependency chains (§5.1) require the listed order.
enum class Granularity : uint8_t {
  kHost = 0,
  kChannel = 1,
  kSocket = 2,
  kFlow = 3,
};

const char* GranularityName(Granularity g);

// True if `coarse` is equal to or strictly coarser than `fine` on the
// host -> channel -> socket/flow dependency chain.
bool IsCoarserOrEqual(Granularity coarse, Granularity fine);

// ---- Filter predicates ----

enum class PredField : uint8_t {
  kProtocol,
  kSrcPort,
  kDstPort,
  kSrcIp,
  kDstIp,
  kSize,
  kTcpFlags,
};

enum class PredOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Predicate {
  PredField field = PredField::kProtocol;
  PredOp op = PredOp::kEq;
  uint64_t value = 0;

  bool Matches(const PacketRecord& pkt) const;
  std::string ToString() const;
};

// Conjunction of predicates; empty means "accept everything".
struct FilterExpr {
  std::vector<Predicate> conjuncts;

  bool Matches(const PacketRecord& pkt) const;
  std::string ToString() const;

  static FilterExpr TcpOnly();
  static FilterExpr UdpOnly();
};

// ---- Mapping functions (Table 5) ----

enum class MapFn : uint8_t {
  kOne,        // f_one: constant 1.
  kIpt,        // f_ipt: inter-packet time within the group (ns).
  kSpeed,      // f_speed: size / inter-packet time (bytes per second).
  kBurst,      // f_burst: length of the current same-direction run.
  kDirection,  // f_direction: src value multiplied by the direction sign.
};

const char* MapFnName(MapFn fn);

// ---- Reducing functions (Table 5) ----

enum class ReduceFn : uint8_t {
  kSum,
  kMean,
  kVar,
  kStd,
  kMax,
  kMin,
  kKur,
  kSkew,
  kMag,      // Magnitude of bidirectional sequences.
  kRadius,   // Radius of bidirectional sequences.
  kCov,      // Covariance between bidirectional sequences.
  kPcc,      // Correlation coefficient of bidirectional sequences.
  kCard,     // Cardinality (HyperLogLog).
  kArray,    // Pack values as an array.
  kPdf,      // Probability density estimate (histogram-based).
  kCdf,      // Cumulative distribution estimate (histogram-based).
  kHist,     // ft_hist{width, bins}.
  kPercent,  // ft_percent{q} quantile estimate.
};

const char* ReduceFnName(ReduceFn fn);

// True for the bidirectional 2D statistics (mag/radius/cov/pcc), which split
// the source stream by packet direction.
bool IsBidirectional(ReduceFn fn);

// True for histogram-backed functions that need width/bins parameters.
bool IsHistogramBased(ReduceFn fn);

// One reducing function application with its parameters.
struct ReduceSpec {
  ReduceFn fn = ReduceFn::kSum;
  // ft_hist / f_pdf / f_cdf: bucket width and count. ft_percent: param0 = q.
  double param0 = 0.0;
  double param1 = 0.0;
  // f_array: maximum packed length (0 = unbounded).
  uint32_t array_limit = 0;
  // Damped-window extension: 2^(-lambda dt) decay; 0 disables (plain
  // streaming statistics). See DESIGN.md §5.
  double decay_lambda = 0.0;

  std::string ToString() const;
};

// ---- Synthesizing functions (Table 5) ----

enum class SynthFn : uint8_t {
  kMarker,  // Direction-change markers over an array feature (CUMUL-style).
  kNorm,    // Normalize an array to [-1, 1] by its max magnitude.
  kSample,  // ft_sample{n}: resample an array to fixed length n.
};

const char* SynthFnName(SynthFn fn);

// ---- Operators (Table 1) ----

struct FilterOp {
  FilterExpr expr;
};

// groupby with a dependency chain of one or more granularities; subsequent
// map/reduce ops apply at every granularity in the chain (the Kitsune /
// HELAD pattern of identical features per granularity).
struct GroupByOp {
  std::vector<Granularity> chain;  // Sorted coarse -> fine by the validator.
};

struct MapOp {
  std::string dst;  // New field name.
  std::string src;  // Source field name, or "_" for none.
  MapFn fn = MapFn::kOne;
};

struct ReduceOp {
  std::string src;                // Field to aggregate.
  std::vector<ReduceSpec> specs;  // The [rf] list.
  // Restricts this reduce to one granularity of the chain; unset = apply at
  // every granularity (extension; Kitsune computes different feature sets
  // per granularity, §8.2).
  std::optional<Granularity> at;
};

struct SynthOp {
  std::string src;  // Feature field produced by an earlier reduce.
  SynthFn fn = SynthFn::kNorm;
  double param0 = 0.0;  // ft_sample: target length.
};

// collect(u): u is either per-packet or per-group-of-granularity.
struct CollectOp {
  bool per_packet = false;
  Granularity unit = Granularity::kFlow;  // Meaningful when !per_packet.
};

using Operator = std::variant<FilterOp, GroupByOp, MapOp, ReduceOp, SynthOp, CollectOp>;

// ---- Policy ----

struct Policy {
  std::string name;
  std::vector<Operator> ops;
  // Original DSL text when parsed from text (used for the Table 3 LoC
  // accounting); empty for builder-constructed policies.
  std::string source_text;

  // Number of non-empty source lines (Table 3 metric); falls back to the
  // operator count for builder-made policies.
  int LinesOfCode() const;

  // Pretty-prints the pipeline (normalized DSL form).
  std::string ToString() const;
};

}  // namespace superfe

#endif  // SUPERFE_POLICY_AST_H_
