#include "policy/granularity_graph.h"

#include <algorithm>
#include <functional>

namespace superfe {

int GranularityGraph::AddNode(std::string name) {
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return static_cast<int>(names_.size()) - 1;
}

Status GranularityGraph::AddEdge(int coarse, int fine) {
  if (coarse < 0 || coarse >= node_count() || fine < 0 || fine >= node_count()) {
    return Status::OutOfRange("granularity edge references an unknown node");
  }
  if (coarse == fine) {
    return Status::InvalidArgument("a granularity cannot refine itself");
  }
  adjacency_[coarse].push_back(fine);
  return Status::Ok();
}

bool GranularityGraph::IsDag() const {
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(node_count(), 0);
  std::function<bool(int)> visit = [&](int u) {
    color[u] = 1;
    for (int v : adjacency_[u]) {
      if (color[v] == 1 || (color[v] == 0 && !visit(v))) {
        return false;
      }
    }
    color[u] = 2;
    return true;
  };
  for (int u = 0; u < node_count(); ++u) {
    if (color[u] == 0 && !visit(u)) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<bool>> GranularityGraph::TransitiveClosure() const {
  const int n = node_count();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int u = 0; u < n; ++u) {
    for (int v : adjacency_[u]) {
      reach[u][v] = true;
    }
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reach[i][k]) {
        continue;
      }
      for (int j = 0; j < n; ++j) {
        if (reach[k][j]) {
          reach[i][j] = true;
        }
      }
    }
  }
  return reach;
}

Result<std::vector<std::vector<int>>> GranularityGraph::SplitIntoMinimumChains() const {
  if (!IsDag()) {
    return Status::InvalidArgument("granularity dependencies contain a cycle");
  }
  const int n = node_count();
  const auto reach = TransitiveClosure();

  // Minimum path cover on the transitive closure via Kuhn's bipartite
  // matching: left copy u matched to right copy v means v directly follows
  // u in some chain.
  std::vector<int> match_right(n, -1);  // Right node -> left node.
  std::vector<int> match_left(n, -1);   // Left node -> right node.
  std::function<bool(int, std::vector<bool>&)> augment = [&](int u, std::vector<bool>& used) {
    for (int v = 0; v < n; ++v) {
      if (!reach[u][v] || used[v]) {
        continue;
      }
      used[v] = true;
      if (match_right[v] < 0 || augment(match_right[v], used)) {
        match_right[v] = u;
        match_left[u] = v;
        return true;
      }
    }
    return false;
  };
  for (int u = 0; u < n; ++u) {
    std::vector<bool> used(n, false);
    augment(u, used);
  }

  // Chains start at nodes that are nobody's successor.
  std::vector<bool> is_successor(n, false);
  for (int v = 0; v < n; ++v) {
    if (match_right[v] >= 0) {
      is_successor[v] = true;
    }
  }
  std::vector<std::vector<int>> chains;
  for (int u = 0; u < n; ++u) {
    if (is_successor[u]) {
      continue;
    }
    std::vector<int> chain;
    for (int cur = u; cur >= 0; cur = match_left[cur]) {
      chain.push_back(cur);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

int GranularityGraph::MinimumChainCount() const {
  auto chains = SplitIntoMinimumChains();
  return chains.ok() ? static_cast<int>(chains->size()) : -1;
}

}  // namespace superfe
