#include "policy/functions.h"

#include <algorithm>

namespace superfe {

ReduceCost CostOfReduce(const ReduceSpec& spec) {
  ReduceCost c;
  const uint32_t bins = std::max<uint32_t>(static_cast<uint32_t>(spec.param1), 1);
  switch (spec.fn) {
    case ReduceFn::kSum:
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      c = {/*state*/ 4, /*alu*/ 1, /*div*/ 0, /*mem*/ 1, /*naive*/ 0};
      break;
    case ReduceFn::kMean:
      c = {12, 4, 1, 3, 8};
      break;
    case ReduceFn::kVar:
      c = {12, 8, 2, 3, 8};
      break;
    case ReduceFn::kStd:
      // Variance plus an integer square root at emission; amortized here.
      c = {12, 10, 2, 3, 8};
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      // Third/fourth central moments (Pébay updates).
      c = {20, 18, 4, 5, 8};
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
      // Two Welford states (one per direction).
      c = {24, 10, 2, 6, 16};
      break;
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      // Two Welford states + residual-product accumulator.
      c = {28, 14, 3, 7, 16};
      break;
    case ReduceFn::kCard:
      // HyperLogLog with 64 one-byte buckets; hash is reused from the
      // switch so only clz + max remain.
      c = {64, 4, 0, 2, 8};
      break;
    case ReduceFn::kArray: {
      const uint32_t limit = spec.array_limit != 0 ? spec.array_limit : 5000;
      c = {limit * 2, 1, 0, 1, 8};
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      // Bucket index: the FE-NIC rounds the bin width up to a power of two
      // internally, so indexing is a shift, never a division.
      c = {bins * 4, 3, 0, 1, 8};
      break;
    case ReduceFn::kPercent:
      // Log-scale 32-bucket histogram; index via clz, no division.
      c = {32 * 4, 3, 0, 1, 8};
      break;
  }
  if (spec.decay_lambda > 0.0) {
    // Damped variants additionally keep the last timestamp and apply the
    // 2^(-lambda dt) factor (shift + multiply on fixed point).
    c.state_bytes += 4;
    c.alu_ops += 4;
    c.mem_words += 1;
  }
  return c;
}

MapCost CostOfMap(MapFn fn) {
  switch (fn) {
    case MapFn::kOne:
      return {0, 1, 0, 0};
    case MapFn::kIpt:
      return {4, 2, 0, 1};  // Last-timestamp state.
    case MapFn::kSpeed:
      return {4, 3, 1, 1};  // size / ipt.
    case MapFn::kBurst:
      return {8, 3, 0, 2};  // Direction + run length.
    case MapFn::kDirection:
      return {0, 1, 0, 0};
  }
  return {};
}

uint32_t OutputWidth(const ReduceSpec& spec) {
  switch (spec.fn) {
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      return std::max<uint32_t>(static_cast<uint32_t>(spec.param1), 1);
    case ReduceFn::kArray:
      return spec.array_limit != 0 ? spec.array_limit : 5000;
    default:
      return 1;
  }
}

}  // namespace superfe
