// Policy compiler: partitions a validated policy across FE-Switch and
// FE-NIC (§4.1 "Natural support to SuperFE architecture").
//
// filter + groupby compile to the switch program (match-action filter rule,
// granularity dependency chain, per-packet metadata layout); map / reduce /
// synthesize / collect compile to the NIC program (per-granularity feature
// pipeline, group-state requirements for ILP placement, feature-vector
// layout).
#ifndef SUPERFE_POLICY_COMPILE_H_
#define SUPERFE_POLICY_COMPILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "policy/ast.h"
#include "policy/functions.h"

namespace superfe {

// Per-packet metadata fields the switch must batch for the NIC.
enum class MetaField : uint8_t {
  kSize,       // 2 bytes.
  kTimestamp,  // 4 bytes (32-bit truncated ns, as on Tofino).
  kDirection,  // 1 byte.
};

uint32_t MetaFieldBytes(MetaField field);
const char* MetaFieldName(MetaField field);

struct SwitchProgram {
  FilterExpr filter;
  std::vector<Granularity> chain;  // Coarse -> fine.
  std::vector<MetaField> fields;

  Granularity cg() const { return chain.front(); }
  Granularity fg() const { return chain.back(); }
  bool multi_granularity() const { return chain.size() > 1; }

  // Bytes of feature metadata batched per packet: the listed fields plus a
  // 2-byte FG-key index when the chain has several granularities (§5.1).
  uint32_t MetadataBytesPerPacket() const;

  // Bytes of the CG group key (4 for host, 8 for channel, 13 for 5-tuples).
  uint32_t CgKeyBytes() const;
  uint32_t FgKeyBytes() const;
};

// One synthesize application attached to a feature slot.
struct SynthStep {
  SynthFn fn = SynthFn::kNorm;
  double param = 0.0;
};

// One scalar-or-array slot of the final feature vector.
struct FeatureSlot {
  Granularity granularity = Granularity::kFlow;
  std::string field;  // Source field ("size", "ipt", ...).
  ReduceSpec spec;    // The reducing function that produces it.
  // Synthesizing post-processing chain, applied in order (e.g. CUMUL uses
  // f_marker followed by ft_sample).
  std::vector<SynthStep> synths;

  // "host/size.f_mean" (+ ".f_norm" per synth step).
  std::string Name() const;
  uint32_t Width() const;
};

// One item of per-group state for the ILP placement problem (§6.2): size in
// bytes and access count per packet.
struct StateItem {
  std::string name;
  uint32_t bytes = 0;
  uint32_t accesses_per_packet = 0;
};

struct NicProgram {
  std::vector<Granularity> granularities;  // Same chain as the switch.
  std::vector<MapOp> maps;                 // In pipeline order.
  std::vector<ReduceOp> reduces;
  std::vector<SynthOp> synths;
  CollectOp collect;                 // Unified unit (validator guarantees).
  std::vector<FeatureSlot> layout;   // Final feature-vector layout.
  std::vector<StateItem> states;     // Per-group state items (one
                                     // granularity instance each).

  // Total per-group state bytes across one granularity instance.
  uint32_t StateBytesPerGroup() const;

  // Expected feature-vector width (arrays/histograms at declared width).
  uint32_t FeatureDimension() const;

  // Aggregate per-packet costs over all maps and reduces (all granularities),
  // used by the cycle model.
  uint32_t AluOpsPerPacket() const;
  uint32_t DivisionsPerPacket() const;
  uint32_t MemWordsPerPacket() const;
};

struct CompiledPolicy {
  Policy policy;
  SwitchProgram switch_program;
  NicProgram nic_program;
};

// Validates (again, defensively) and compiles.
Result<CompiledPolicy> Compile(const Policy& policy);

}  // namespace superfe

#endif  // SUPERFE_POLICY_COMPILE_H_
