#include "policy/ast.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "policy/value.h"

namespace superfe {

std::string Value::ToString() const {
  if (is_scalar()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsScalar());
    return buf;
  }
  std::ostringstream out;
  out << "[";
  const auto& arr = AsArray();
  for (size_t i = 0; i < arr.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", arr[i]);
    out << buf;
    if (i >= 7 && arr.size() > 9) {
      out << ", ... (" << arr.size() << " total)";
      break;
    }
  }
  out << "]";
  return out.str();
}

const char* GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kHost:
      return "host";
    case Granularity::kChannel:
      return "channel";
    case Granularity::kSocket:
      return "socket";
    case Granularity::kFlow:
      return "flow";
  }
  return "?";
}

bool IsCoarserOrEqual(Granularity coarse, Granularity fine) {
  // host < channel < {socket, flow}; socket and flow are equally fine.
  auto rank = [](Granularity g) {
    switch (g) {
      case Granularity::kHost:
        return 0;
      case Granularity::kChannel:
        return 1;
      case Granularity::kSocket:
      case Granularity::kFlow:
        return 2;
    }
    return 2;
  };
  return rank(coarse) <= rank(fine);
}

namespace {

const char* PredFieldName(PredField f) {
  switch (f) {
    case PredField::kProtocol:
      return "proto";
    case PredField::kSrcPort:
      return "src_port";
    case PredField::kDstPort:
      return "dst_port";
    case PredField::kSrcIp:
      return "src_ip";
    case PredField::kDstIp:
      return "dst_ip";
    case PredField::kSize:
      return "size";
    case PredField::kTcpFlags:
      return "tcp_flags";
  }
  return "?";
}

const char* PredOpName(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "==";
    case PredOp::kNe:
      return "!=";
    case PredOp::kLt:
      return "<";
    case PredOp::kLe:
      return "<=";
    case PredOp::kGt:
      return ">";
    case PredOp::kGe:
      return ">=";
  }
  return "?";
}

uint64_t ExtractField(const PacketRecord& pkt, PredField field) {
  switch (field) {
    case PredField::kProtocol:
      return pkt.tuple.protocol;
    case PredField::kSrcPort:
      return pkt.tuple.src_port;
    case PredField::kDstPort:
      return pkt.tuple.dst_port;
    case PredField::kSrcIp:
      return pkt.tuple.src_ip;
    case PredField::kDstIp:
      return pkt.tuple.dst_ip;
    case PredField::kSize:
      return pkt.wire_bytes;
    case PredField::kTcpFlags:
      return pkt.tcp_flags;
  }
  return 0;
}

}  // namespace

bool Predicate::Matches(const PacketRecord& pkt) const {
  const uint64_t lhs = ExtractField(pkt, field);
  switch (op) {
    case PredOp::kEq:
      return lhs == value;
    case PredOp::kNe:
      return lhs != value;
    case PredOp::kLt:
      return lhs < value;
    case PredOp::kLe:
      return lhs <= value;
    case PredOp::kGt:
      return lhs > value;
    case PredOp::kGe:
      return lhs >= value;
  }
  return false;
}

std::string Predicate::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %s %llu", PredFieldName(field), PredOpName(op),
                (unsigned long long)value);
  return buf;
}

bool FilterExpr::Matches(const PacketRecord& pkt) const {
  for (const auto& p : conjuncts) {
    if (!p.Matches(pkt)) {
      return false;
    }
  }
  return true;
}

std::string FilterExpr::ToString() const {
  if (conjuncts.empty()) {
    return "true";
  }
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i != 0) {
      out += " && ";
    }
    out += conjuncts[i].ToString();
  }
  return out;
}

FilterExpr FilterExpr::TcpOnly() {
  return FilterExpr{{Predicate{PredField::kProtocol, PredOp::kEq, kProtoTcp}}};
}

FilterExpr FilterExpr::UdpOnly() {
  return FilterExpr{{Predicate{PredField::kProtocol, PredOp::kEq, kProtoUdp}}};
}

const char* MapFnName(MapFn fn) {
  switch (fn) {
    case MapFn::kOne:
      return "f_one";
    case MapFn::kIpt:
      return "f_ipt";
    case MapFn::kSpeed:
      return "f_speed";
    case MapFn::kBurst:
      return "f_burst";
    case MapFn::kDirection:
      return "f_direction";
  }
  return "?";
}

const char* ReduceFnName(ReduceFn fn) {
  switch (fn) {
    case ReduceFn::kSum:
      return "f_sum";
    case ReduceFn::kMean:
      return "f_mean";
    case ReduceFn::kVar:
      return "f_var";
    case ReduceFn::kStd:
      return "f_std";
    case ReduceFn::kMax:
      return "f_max";
    case ReduceFn::kMin:
      return "f_min";
    case ReduceFn::kKur:
      return "f_kur";
    case ReduceFn::kSkew:
      return "f_skew";
    case ReduceFn::kMag:
      return "f_mag";
    case ReduceFn::kRadius:
      return "f_radius";
    case ReduceFn::kCov:
      return "f_cov";
    case ReduceFn::kPcc:
      return "f_pcc";
    case ReduceFn::kCard:
      return "f_card";
    case ReduceFn::kArray:
      return "f_array";
    case ReduceFn::kPdf:
      return "f_pdf";
    case ReduceFn::kCdf:
      return "f_cdf";
    case ReduceFn::kHist:
      return "ft_hist";
    case ReduceFn::kPercent:
      return "ft_percent";
  }
  return "?";
}

bool IsBidirectional(ReduceFn fn) {
  return fn == ReduceFn::kMag || fn == ReduceFn::kRadius || fn == ReduceFn::kCov ||
         fn == ReduceFn::kPcc;
}

bool IsHistogramBased(ReduceFn fn) {
  return fn == ReduceFn::kHist || fn == ReduceFn::kPdf || fn == ReduceFn::kCdf ||
         fn == ReduceFn::kPercent;
}

std::string ReduceSpec::ToString() const {
  // Emits re-parseable DSL: positional histogram/quantile parameters first,
  // then named extensions.
  std::string out = ReduceFnName(fn);
  std::vector<std::string> params;
  char buf[48];
  if (IsHistogramBased(fn) && fn != ReduceFn::kPercent) {
    std::snprintf(buf, sizeof(buf), "%g", param0);
    params.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%g", param1);
    params.push_back(buf);
  } else if (fn == ReduceFn::kPercent) {
    std::snprintf(buf, sizeof(buf), "%g", param0);
    params.push_back(buf);
  }
  if (fn == ReduceFn::kArray && array_limit != 0) {
    std::snprintf(buf, sizeof(buf), "limit=%u", array_limit);
    params.push_back(buf);
  }
  if (decay_lambda > 0.0) {
    std::snprintf(buf, sizeof(buf), "decay=%g", decay_lambda);
    params.push_back(buf);
  }
  if (!params.empty()) {
    out += "{";
    for (size_t i = 0; i < params.size(); ++i) {
      out += (i != 0 ? ", " : "") + params[i];
    }
    out += "}";
  }
  return out;
}

const char* SynthFnName(SynthFn fn) {
  switch (fn) {
    case SynthFn::kMarker:
      return "f_marker";
    case SynthFn::kNorm:
      return "f_norm";
    case SynthFn::kSample:
      return "ft_sample";
  }
  return "?";
}

int Policy::LinesOfCode() const {
  if (source_text.empty()) {
    return static_cast<int>(ops.size()) + 1;  // +1 for pktstream.
  }
  int lines = 0;
  std::istringstream in(source_text);
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;  // Blank.
    }
    if (line[first] == '#') {
      continue;  // Comment.
    }
    ++lines;
  }
  return lines;
}

std::string Policy::ToString() const {
  std::ostringstream out;
  out << "pktstream";
  for (const auto& op : ops) {
    out << "\n  ";
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, FilterOp>) {
            out << ".filter(" << node.expr.ToString() << ")";
          } else if constexpr (std::is_same_v<T, GroupByOp>) {
            out << ".groupby(";
            for (size_t i = 0; i < node.chain.size(); ++i) {
              if (i != 0) {
                out << ", ";
              }
              out << GranularityName(node.chain[i]);
            }
            out << ")";
          } else if constexpr (std::is_same_v<T, MapOp>) {
            out << ".map(" << node.dst << ", " << (node.src.empty() ? "_" : node.src) << ", "
                << MapFnName(node.fn) << ")";
          } else if constexpr (std::is_same_v<T, ReduceOp>) {
            out << ".reduce(" << node.src << ", [";
            for (size_t i = 0; i < node.specs.size(); ++i) {
              if (i != 0) {
                out << ", ";
              }
              out << node.specs[i].ToString();
            }
            out << "]";
            if (node.at.has_value()) {
              out << ", " << GranularityName(*node.at);
            }
            out << ")";
          } else if constexpr (std::is_same_v<T, SynthOp>) {
            out << ".synthesize(" << SynthFnName(node.fn) << "(" << node.src;
            if (node.fn == SynthFn::kSample) {
              out << ", " << node.param0;
            }
            out << "))";
          } else if constexpr (std::is_same_v<T, CollectOp>) {
            out << ".collect(" << (node.per_packet ? "pkt" : GranularityName(node.unit)) << ")";
          }
        },
        op);
  }
  return out.str();
}

}  // namespace superfe
