// The output of SuperFE: feature vectors ready for a behavior detector.
#ifndef SUPERFE_CORE_FEATURE_VECTOR_H_
#define SUPERFE_CORE_FEATURE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "switchsim/group_key.h"

namespace superfe {

struct FeatureVector {
  // The group this vector describes (the collect unit's key), or the
  // packet's FG key for per-packet collection.
  GroupKey group;
  uint64_t timestamp_ns = 0;  // Emission time.
  std::vector<double> values;
};

// Consumer of feature vectors (the behavior detector side).
class FeatureSink {
 public:
  virtual ~FeatureSink() = default;
  virtual void OnFeatureVector(FeatureVector&& vector) = 0;
};

// Convenience sink that stores everything (tests, examples, detectors).
class CollectingFeatureSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&& vector) override {
    vectors_.push_back(std::move(vector));
  }

  const std::vector<FeatureVector>& vectors() const { return vectors_; }
  std::vector<FeatureVector>& mutable_vectors() { return vectors_; }

 private:
  std::vector<FeatureVector> vectors_;
};

}  // namespace superfe

#endif  // SUPERFE_CORE_FEATURE_VECTOR_H_
