// SuperFeRuntime: the top-level facade. Compiles a policy, wires FE-Switch
// to FE-NIC, replays traffic through the pair, and reports features plus the
// end-to-end performance model (Fig 9 / Fig 16).
//
//   auto runtime = SuperFeRuntime::Create(policy, {});
//   CollectingFeatureSink sink;
//   RunReport report = runtime->Run(trace, &sink);
#ifndef SUPERFE_CORE_RUNTIME_H_
#define SUPERFE_CORE_RUNTIME_H_

#include <memory>

#include "core/feature_vector.h"
#include "net/replay.h"
#include "nicsim/fe_nic.h"
#include "nicsim/nic_cluster.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"
#include "switchsim/resources.h"

namespace superfe {

struct RuntimeConfig {
  // Cache geometry / aging overrides; policy-derived fields are filled in.
  MgpvConfig mgpv;
  FeNicConfig nic;
  ReplayOptions replay;

  // Deployment for throughput reporting: two NFP-4000s (120 cores) behind
  // two 40GbE ports, fronted by a 3.3 Tb/s Tofino (§8.1).
  uint32_t nic_cores = 120;
  double switch_capacity_gbps = 3300.0;
  double switch_nic_link_gbps = 80.0;
  // NBI/DMA ingest ceiling across both SmartNICs (cells per second the
  // packet-engine front end can accept regardless of core count).
  double nic_ingest_mpps = 60.0;

  // Host-side execution parallelism for the replay itself. 0 runs the
  // reference serial path (one FeNic on the caller's thread, unchanged).
  // N > 0 runs a NicCluster of N members, one worker thread each, with
  // switch-hash load balancing (§8.5) — wall-clock scales with cores while
  // the feature multiset stays identical for a given routing. Lossless by
  // default (cluster.drop_on_overflow = false).
  uint32_t worker_threads = 0;
  // Tuning for the parallel pipeline; `parallel` is implied by
  // worker_threads > 0 and ignored here.
  NicClusterOptions cluster;
};

struct RunReport {
  ReplayReport offered;
  FeSwitchStats switch_stats;
  MgpvStats mgpv;
  FeNicStats nic;

  double avg_packet_bytes = 0.0;
  // Fraction of offered packets that pass the policy filter into MGPV.
  double filter_pass_fraction = 1.0;

  // Sustainable end-to-end rates, limited by (a) switch capacity, (b) the
  // switch->NIC links at the measured aggregation ratio, (c) NIC feature
  // computation at the configured core count.
  double sustainable_gbps = 0.0;
  double nic_limited_gbps = 0.0;
  double link_limited_gbps = 0.0;
  const char* bottleneck = "";

  // Feature-vector output rate (the ~Gbps "generate feature vectors" rate
  // of Fig 9), assuming 4-byte feature values.
  double feature_output_gbps = 0.0;
};

class SuperFeRuntime {
 public:
  static Result<std::unique_ptr<SuperFeRuntime>> Create(const Policy& policy,
                                                        const RuntimeConfig& config);
  ~SuperFeRuntime();  // Out of line: ForwardingSink is incomplete here.

  // Replays the trace through switch + NIC, flushes both, reports.
  RunReport Run(const Trace& trace, FeatureSink* sink);

  // Computes the report's throughput fields for an arbitrary core count
  // (Fig 16 sweeps cores without re-running the trace).
  double SustainableGbps(const RunReport& report, uint32_t cores) const;

  const CompiledPolicy& compiled() const { return compiled_; }
  const RuntimeConfig& config() const { return config_; }
  // Serial mode: the single FeNic. Parallel mode: the cluster's first
  // member (placement/plan are identical across members).
  const FeNic& nic() const { return cluster_ != nullptr ? cluster_->nic(0) : *nic_; }
  // Non-null only when config.worker_threads > 0.
  const NicCluster* cluster() const { return cluster_.get(); }
  const FeSwitch& fe_switch() const { return *switch_; }

  // Table 4 helpers.
  SwitchResourceUsage SwitchResources() const;
  double NicMemoryUtilization() const;

 private:
  SuperFeRuntime(CompiledPolicy compiled, const RuntimeConfig& config);

  // Accounted NIC work for throughput modeling: the serial NIC's model, or
  // the sum over cluster members (identical totals for the same stream).
  NicPerfModel NicPerf() const;

  CompiledPolicy compiled_;
  RuntimeConfig config_;
  std::unique_ptr<FeNic> nic_;          // Serial path; must outlive switch_.
  std::unique_ptr<NicCluster> cluster_;  // Parallel path; must outlive switch_.
  std::unique_ptr<FeSwitch> switch_;
  FeatureSink* user_sink_ = nullptr;

  // Internal forwarding sink: FeNic is created per Run with the user sink.
  class ForwardingSink;
  std::unique_ptr<ForwardingSink> forwarding_;
};

}  // namespace superfe

#endif  // SUPERFE_CORE_RUNTIME_H_
