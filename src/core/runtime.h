// SuperFeRuntime: the top-level facade. Compiles a policy, wires FE-Switch
// to FE-NIC, replays traffic through the pair, and reports features plus the
// end-to-end performance model (Fig 9 / Fig 16).
//
//   auto runtime = SuperFeRuntime::Create(policy, {});
//   CollectingFeatureSink sink;
//   RunReport report = runtime->Run(trace, &sink);
#ifndef SUPERFE_CORE_RUNTIME_H_
#define SUPERFE_CORE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/feature_vector.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/ingest.h"
#include "net/replay.h"
#include "nicsim/fe_nic.h"
#include "nicsim/nic_cluster.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "policy/compile.h"
#include "switchsim/fe_switch.h"
#include "switchsim/resources.h"
#include "switchsim/sharded_fe_switch.h"

namespace superfe {

struct RuntimeConfig {
  // Cache geometry / aging overrides; policy-derived fields are filled in.
  MgpvConfig mgpv;
  FeNicConfig nic;
  ReplayOptions replay;

  // Deployment for throughput reporting: two NFP-4000s (120 cores) behind
  // two 40GbE ports, fronted by a 3.3 Tb/s Tofino (§8.1).
  uint32_t nic_cores = 120;
  double switch_capacity_gbps = 3300.0;
  double switch_nic_link_gbps = 80.0;
  // NBI/DMA ingest ceiling across both SmartNICs (cells per second the
  // packet-engine front end can accept regardless of core count).
  double nic_ingest_mpps = 60.0;

  // Host-side execution parallelism for the replay itself. 0 runs the
  // reference serial path (one FeNic on the caller's thread, unchanged).
  // N > 0 runs a NicCluster of N members, one worker thread each, with
  // switch-hash load balancing (§8.5) — wall-clock scales with cores while
  // the feature multiset stays identical for a given routing. Lossless by
  // default (cluster.drop_on_overflow = false).
  uint32_t worker_threads = 0;
  // Tuning for the parallel pipeline; `parallel` is implied by
  // worker_threads > 0 and ignored here.
  NicClusterOptions cluster;

  // Switch-side sharding: N > 1 runs a ShardedFeSwitch of N independent
  // FE-Switch/MGPV pipes and a parallel replay driver — the trace is
  // partitioned by CG hash up front and each shard replays on its own
  // thread, so producer-side wall-clock scales with cores too. Per-group
  // packet order is preserved (a group never spans shards), so the feature
  // multiset is identical to the serial reference. 1 (default) keeps the
  // exactly-unchanged single-switch path as the oracle. Composes with
  // worker_threads: each shard feeds the NIC cluster through its own
  // producer handle. Clamped to obs::TraceClock::kMaxLanes.
  uint32_t switch_shards = 1;

  // CPU affinity for the parallel pipeline (--pin-threads): pin replay
  // shard s and NIC worker s to logical CPU s % CpuCount, so each shard
  // thread and the members its CG range feeds stay on the same core/NUMA
  // node. Best-effort (src/common/affinity): where pinning is unsupported
  // it degrades to a no-op with one logged warning — safe on any host,
  // including single-CPU CI runners. Forwards into replay.pin_threads and
  // cluster.pin_threads.
  bool pin_threads = false;

  // Deterministic fault injection + degraded-mode failover
  // (docs/ROBUSTNESS.md). A non-empty plan arms a FaultInjector shared by
  // every pipeline stage, turns on MGPV graceful overload, and makes Run()
  // fill RunReport::fault with exact loss accounting. An empty plan leaves
  // every hook a null-pointer branch: outputs are byte-identical to a build
  // without the framework.
  struct FaultConfig {
    FaultPlan plan;
    // Cluster flush-barrier / shutdown-join deadline (0 = wait forever).
    uint64_t flush_timeout_ms = 0;
    // Worker-liveness watchdog; 0 interval = off.
    uint32_t watchdog_interval_ms = 0;
    uint32_t watchdog_timeout_ms = 200;

    bool enabled() const { return !plan.empty(); }
  };
  FaultConfig fault;

  // Observability (src/obs). Everything defaults off: no registry, recorder,
  // or sampler is created, and the pipeline pays only null-handle branches.
  struct ObsConfig {
    // Create a MetricsRegistry and wire superfe_* counters/gauges through
    // replay, switch, MGPV, NIC(s), and cluster workers.
    bool metrics = false;
    // Create a TraceRecorder (one lane for the producer thread plus one per
    // worker) and emit pipeline spans/instants for Chrome/Perfetto.
    bool trace = false;
    uint32_t trace_capacity_per_lane = 65536;
    // Snapshot sampler period; 0 disables the sampler thread. The sampler
    // also refreshes the cluster queue-depth gauges before each capture.
    uint32_t sample_interval_ms = 0;
    // Per-stage latency tracking (docs/OBSERVABILITY.md, "Latency
    // observability"): propagate trace-time ingest timestamps through the
    // pipeline and record MGPV residency, queue wait, worker service, and
    // end-to-end distributions as superfe_latency_* histograms. Implies
    // `metrics`.
    bool latency = false;
    // Hot-tier flush cadence (docs/OBSERVABILITY.md, "Hot-path design"):
    // every per-packet instrumentation site accumulates into a thread-local
    // WorkerObsBlock and folds into the shared registry once per this many
    // packets (plus at every flush barrier, failover fence, and shutdown,
    // so quiescent totals stay exact). 1 restores the legacy per-packet
    // registry cadence; NIC workers additionally flush per dequeued batch.
    uint32_t batch_packets = 4096;
    // Per-stage cycle profiling: bracket dequeue, feature kernels, MGPV
    // insert, and sync broadcast with cycle-counter reads and export them
    // as superfe_cycles_total{stage=...}. Implies `metrics`. Off by
    // default: cycle reads cost a few ns per packet/report.
    bool profile = false;
    // Live telemetry plane (docs/OBSERVABILITY.md, "Live telemetry"): an
    // embedded HTTP server on 127.0.0.1 with GET /metrics (Prometheus
    // text), /healthz (health state machine), and /status (JSON run
    // summary). -1 (default) = off; 0 = kernel-assigned ephemeral port
    // (read it back via telemetry_port()); >0 = that port. Implies
    // `metrics` and turns the sampler on (default 2 ms) if it was off —
    // the RollingWindow and health epochs ride the sampler thread.
    int32_t telemetry_port = -1;
    // Rolling-window ring length in sampler epochs (window span =
    // sample_interval_ms * window_epochs; clamped to >= 2). Also the
    // /healthz decay hold: fault marks older than one window span stop
    // counting against health.
    uint32_t window_epochs = 32;
    // Human-readable description of the input (pcap path or synthetic
    // profile name), echoed in the metrics JSON "run" block and /status.
    std::string run_label;
  };
  ObsConfig obs;
};

struct RunReport {
  ReplayReport offered;
  FeSwitchStats switch_stats;
  MgpvStats mgpv;
  FeNicStats nic;
  // Cluster-aware cost accounting (worker_threads > 0 only; else disabled):
  // per-member DRAM-detour and load-imbalance deltas vs the single-NIC
  // model, for Fig 9/16-style sweeps that quote cluster numbers.
  ClusterCostReport cluster_cost;

  double avg_packet_bytes = 0.0;
  // Fraction of offered packets that pass the policy filter into MGPV.
  double filter_pass_fraction = 1.0;

  // Sustainable end-to-end rates, limited by (a) switch capacity, (b) the
  // switch->NIC links at the measured aggregation ratio, (c) NIC feature
  // computation at the configured core count.
  double sustainable_gbps = 0.0;
  double nic_limited_gbps = 0.0;
  double link_limited_gbps = 0.0;
  const char* bottleneck = "";

  // Feature-vector output rate (the ~Gbps "generate feature vectors" rate
  // of Fig 9), assuming 4-byte feature values.
  double feature_output_gbps = 0.0;

  // Fault-injection accounting (config.fault.enabled() only). The exact
  // reconciliation the chaos tests assert:
  //   stats.cells_offered == cells_processed + stats.cells_shed
  //                          + stats.cells_lost_to_failover
  //                          + overflow_cells_dropped
  struct FaultReport {
    bool enabled = false;
    FaultStats stats;
    uint64_t cells_processed = 0;        // Cluster AggregateStats().cells.
    uint64_t overflow_cells_dropped = 0;  // drop_on_overflow / push-timeout drops.
    bool reconciled = true;
    bool flush_deadline_exceeded = false;
    // Did any fault actually bite? (sheds, losses, crashes, abandoned
    // groups, injected pool failures, or a flush deadline.)
    bool degraded = false;
  };
  FaultReport fault;

  // Observability summary (all zero when config.obs is fully disabled).
  struct ObsSummary {
    bool metrics_enabled = false;
    bool trace_enabled = false;
    uint64_t trace_events_recorded = 0;
    uint64_t trace_events_dropped = 0;  // Ring wrap-around overwrites.
    uint64_t samples_captured = 0;
  };
  ObsSummary obs;

  // Consolidated per-stage latency breakdown (config.obs.latency). All
  // values are trace-time ns; quantiles are bucket-interpolated estimates
  // (exact to within one log-bucket, a 10^0.2 factor).
  struct ServiceShare {
    const char* family = "";  // Table-5 operator family.
    uint64_t cycles = 0;
    double fraction = 0.0;  // Of the total modeled NIC cycles.
  };
  struct LatencyBreakdown {
    bool enabled = false;
    obs::LatencyStageSummary mgpv_residency;  // All causes merged.
    obs::LatencyStageSummary residency_by_cause[5];  // Indexed by EvictReason.
    obs::LatencyStageSummary queue_wait;  // All workers merged; parallel only.
    std::vector<obs::LatencyStageSummary> queue_wait_by_worker;
    obs::LatencyStageSummary worker_service;
    obs::LatencyStageSummary end_to_end;
    // Worker-service attribution by operator family, from the NIC cycle
    // cost model (fractions sum to 1 when any work was accounted).
    std::vector<ServiceShare> service_shares;
    // Measured counterpart (config.obs.profile): wall cycles by pipeline
    // stage from the superfe_cycles_total brackets — a real profile of
    // where worker time went, next to the cost model's estimate. `family`
    // holds the stage name; fractions are of the measured total. Filled
    // whenever profiling ran, even if `enabled` (latency tracking) is off.
    std::vector<ServiceShare> measured_cycle_shares;
  };
  LatencyBreakdown latency;
};

// One closed rolling epoch of a daemon run (docs/ROBUSTNESS.md, "Daemon
// mode"). All cell counts are per-epoch deltas of the cumulative pipeline
// totals, snapshotted at a quiescent drain barrier — so the reconciliation
//   cells_offered == cells_processed + cells_shed + cells_lost
//                    + cells_overflow
// holds exactly at EVERY epoch boundary, not just at end of run. Packets
// shed at ingest (overload, before replay) never enter the pipeline and are
// accounted separately in `ingest_shed_packets`.
struct DaemonEpoch {
  uint64_t index = 0;  // 1-based; the final (flush) epoch has final_epoch set.
  uint64_t packets = 0;  // Replayed this epoch (post-amplification).
  uint64_t bytes = 0;
  uint64_t cells_offered = 0;  // MGPV cells evicted toward the NIC side.
  uint64_t cells_processed = 0;
  uint64_t cells_shed = 0;            // Fault-injected saturation sheds.
  uint64_t cells_lost = 0;            // Lost in a crash-detection window.
  uint64_t cells_overflow = 0;        // Queue-overflow drops (lossy mode).
  uint64_t vectors = 0;               // Feature vectors emitted this epoch.
  uint64_t ingest_shed_packets = 0;   // Overload-shed before replay.
  bool reconciled = true;
  // Any fault bit this epoch (sheds, losses, crashes, pool failures,
  // watchdog stalls) — feeds the health machine, one mark per epoch.
  bool fault_active = false;
  bool final_epoch = false;  // Closed by the end-of-run flush, not a rotation.
  double mgpv_occupancy = 0.0;  // Max over shards at the boundary.
  uint64_t mgpv_epoch = 0;      // Rolling-epoch counter after this boundary.
  double wall_ms = 0.0;         // Wall-clock span of this epoch.
};

// Knobs for SuperFeRuntime::RunDaemon. Epoch rotation is an accounting
// boundary, not a flush: MGPV/NIC state carries across it, so the
// concatenation of per-epoch feature exports is byte-identical (as a sorted
// multiset) to a one-shot Run() over the same stream.
struct DaemonConfig {
  // Ingest granularity: packets pulled from the PacketSource per chunk.
  size_t chunk_packets = 8192;
  // Rotate after this many replayed packets (post-amplification); 0 = no
  // packet-count rotation.
  uint64_t epoch_packets = 262144;
  // Also rotate when an epoch has been open this long (wall ms); 0 = off.
  // Time rotation fires even while the source is idle.
  uint64_t epoch_wall_ms = 0;
  // Stop ingesting after this much wall time / this many closed epochs
  // (0 = unlimited). The final flush epoch does not count toward max_epochs.
  uint64_t max_seconds = 0;
  uint64_t max_epochs = 0;
  // Signal flag (e.g. set from a SIGTERM handler): nonzero = stop ingesting
  // and drain. The value is reported as DaemonReport::signal.
  const std::atomic<int>* stop = nullptr;
  // Epoch drain-barrier deadline; 0 = the cluster's flush_timeout_ms.
  uint64_t drain_timeout_ms = 0;
  // Overload shedding: when > 0 and the streaming backlog reaches this many
  // chunks, newly ingested chunks are shed whole (counted per epoch and in
  // DaemonReport::packets_shed_ingest) instead of queued. 0 = lossless
  // backpressure (ingest blocks on the replay pipeline).
  size_t shed_backlog_chunks = 0;
  // Streaming-replay queue bound (chunks in flight per shard).
  size_t max_chunks_in_flight = 4;
  // Trace used to resolve at_packet/at_ms fault triggers with the replayer's
  // arithmetic (pass the first loop of a looped source so trigger times match
  // a one-shot run exactly). Null = triggers resolve against an empty trace
  // and packet-indexed triggers never fire.
  const Trace* fault_trigger_trace = nullptr;
  // Called synchronously on the ingest thread as each epoch closes (e.g. to
  // rotate the feature-CSV file). The pipeline is quiescent during the call.
  std::function<void(const DaemonEpoch&)> on_epoch;
};

struct DaemonReport {
  RunReport run;  // End-of-run totals, identical in shape to Run().
  std::vector<DaemonEpoch> epochs;  // Includes the final flush epoch.
  bool stopped_by_signal = false;
  int signal = 0;
  // Clean drain: the final flush barrier met its deadline and (with a fault
  // plan armed) the end-of-run accounting reconciled.
  bool drained = true;
  bool all_epochs_reconciled = true;
  uint64_t packets_ingested = 0;      // Pulled from the source (pre-shed).
  uint64_t packets_shed_ingest = 0;   // Overload-shed, never replayed.
  IngestStats ingest;                 // The source's own counters.
  double wall_ms = 0.0;
};

class SuperFeRuntime {
 public:
  static Result<std::unique_ptr<SuperFeRuntime>> Create(const Policy& policy,
                                                        const RuntimeConfig& config);
  ~SuperFeRuntime();  // Out of line: ForwardingSink is incomplete here.

  // Replays the trace through switch + NIC, flushes both, reports.
  RunReport Run(const Trace& trace, FeatureSink* sink);

  // Continuous-operation mode (docs/ROBUSTNESS.md, "Daemon mode"): pulls
  // chunks from `source` until it ends, a limit hits, or `daemon.stop` is
  // raised; closes rolling epochs at packet-count/wall-time boundaries with
  // an exact drain barrier at each one; then flushes and drains exactly like
  // Run(). Features flow to `sink` throughout (swap files per epoch via
  // daemon.on_epoch). Call FinishTelemetry() afterwards to wind down the
  // sampler/telemetry plane in order.
  DaemonReport RunDaemon(PacketSource& source, FeatureSink* sink,
                         const DaemonConfig& daemon);

  // Shutdown-ordering helper (and the daemon's final act): stops the sampler
  // (whose final capture folds the terminal window/health epoch), optionally
  // lingers with the telemetry endpoint still serving so a scraper can
  // observe the terminal state, then stops the server — the explicit
  // drain-then-linger sequence the destructor chain only implies. Idempotent;
  // safe with telemetry off. No registry mutation happens after the linger
  // starts, so a scrape in the window matches a prior metrics export byte
  // for byte.
  void FinishTelemetry(uint64_t linger_ms);

  // Computes the report's throughput fields for an arbitrary core count
  // (Fig 16 sweeps cores without re-running the trace).
  double SustainableGbps(const RunReport& report, uint32_t cores) const;

  const CompiledPolicy& compiled() const { return compiled_; }
  const RuntimeConfig& config() const { return config_; }
  // Serial mode: the single FeNic. Parallel mode: the cluster's first
  // member (placement/plan are identical across members).
  const FeNic& nic() const { return cluster_ != nullptr ? cluster_->nic(0) : *nic_; }
  // Non-null only when config.worker_threads > 0.
  const NicCluster* cluster() const { return cluster_.get(); }
  // Single-switch mode: the switch. Sharded mode: shard 0 (all shards share
  // program/config; per-shard stats differ — use sharded_switch()).
  const FeSwitch& fe_switch() const {
    return sharded_ != nullptr ? sharded_->shard(0) : *switch_;
  }
  // Non-null only when config.switch_shards > 1.
  const ShardedFeSwitch* sharded_switch() const { return sharded_.get(); }

  // Table 4 helpers.
  SwitchResourceUsage SwitchResources() const;
  double NicMemoryUtilization() const;

  // Non-null only when config.fault.enabled().
  FaultInjector* fault_injector() const { return injector_.get(); }

  // Observability access (null unless the matching ObsConfig flag is set).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::TraceRecorder* trace_recorder() const { return trace_.get(); }
  obs::TraceClock* latency_clock() const { return trace_clock_.get(); }

  // Live telemetry plane (obs.telemetry_port >= 0 only).
  obs::TelemetryServer* telemetry() const { return telemetry_.get(); }
  // The bound port (resolves an ephemeral request); 0 when disabled.
  uint16_t telemetry_port() const {
    return telemetry_ != nullptr ? telemetry_->port() : 0;
  }
  obs::HealthMachine* health() const { return health_.get(); }
  obs::RollingWindow* rolling_window() const { return window_.get(); }

  // The /status document: build info, health, uptime, run metadata,
  // pipeline totals, per-worker queue depths, windowed rates. Works
  // whenever metrics are on (the telemetry server is just one caller);
  // false (writes nothing) otherwise.
  bool WriteStatusJson(std::ostream& out) const;

  // Exports; each returns false (writes nothing) when the matching obs
  // subsystem is disabled. Call after Run() — the trace export in
  // particular requires quiescent writers.
  bool WriteMetricsProm(std::ostream& out) const;
  // {"metrics": [...], "series": {...}, "latency": {...}} — series only
  // with the sampler on, latency only with obs.latency.
  bool WriteMetricsJson(std::ostream& out) const;
  bool WriteTraceJson(std::ostream& out) const;
  // Standalone sampler time series ({"series": {...}}); false without a
  // completed sampled run.
  bool WriteSamplesJson(std::ostream& out) const;

 private:
  class SerialLatencySink;

  SuperFeRuntime(CompiledPolicy compiled, const RuntimeConfig& config);

  // Run()/RunDaemon() share one lifecycle, decomposed so the daemon can put
  // epoch boundaries between ingest and the final flush while keeping the
  // exact one-shot ordering (core/daemon.cc holds the daemon loop):
  //   SetSinkTarget -> BeginRunTelemetry -> ResolveFaultTriggers ->
  //   [replay] -> FlushPipeline -> FinishRun.
  void SetSinkTarget(FeatureSink* sink);
  void BeginRunTelemetry();
  // Resolves at_packet fault triggers against `trace` with the replayer's
  // own arithmetic; null or empty = packet triggers never fire. No-op
  // without an injector; always calls BeginRun when armed.
  void ResolveFaultTriggers(const Trace* trace);
  // End-of-run flush: switch caches, producers, then the NIC side (cluster
  // flush barrier with deadline, or serial FeNic::Flush), then the serial
  // latency shim. Returns the barrier status (deadline miss = not-ok).
  Status FlushPipeline();
  // Stops the sampler, detaches the sink, and builds the full RunReport
  // from the quiescent pipeline (including health OnRunComplete).
  RunReport FinishRun(const ReplayReport& offered, const Status& flush_status);

  // Summarizes the superfe_latency_* histograms plus the cost-model cycle
  // attribution. Meaningful after Run(); disabled breakdown otherwise.
  RunReport::LatencyBreakdown BuildLatencyBreakdown() const;

  // The shared "run" metadata block (build info, trace label, shard/worker
  // config, start time) emitted by both WriteMetricsJson and /status.
  void WriteRunBlockJson(JsonWriter& writer) const;

  // Accounted NIC work for throughput modeling: the serial NIC's model, or
  // the sum over cluster members (identical totals for the same stream).
  NicPerfModel NicPerf() const;

  CompiledPolicy compiled_;
  RuntimeConfig config_;
  // Obs objects precede the pipeline members so handles outlive their users.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::SnapshotSampler> sampler_;  // Per Run; kept for export.
  std::unique_ptr<obs::TraceClock> trace_clock_;   // obs.latency only.
  // Fault injector precedes the pipeline members that hold hooks into it.
  std::unique_ptr<FaultInjector> injector_;
  ReplayObs replay_obs_;
  std::vector<ReplayObs> shard_replay_obs_;  // One per shard; sharded mode.
  std::unique_ptr<FeNic> nic_;          // Serial path; must outlive switch_.
  std::unique_ptr<NicCluster> cluster_;  // Parallel path; must outlive switch_.
  // Per-shard feeding handles into the cluster (sharded + parallel mode);
  // declared after cluster_ so Close()-on-destroy still sees it alive.
  std::vector<std::unique_ptr<NicCluster::Producer>> shard_producers_;
  // Serial-path latency shim between MGPV and the FeNic (obs.latency with
  // worker_threads == 0); must outlive switch_, which holds a pointer.
  std::unique_ptr<SerialLatencySink> serial_latency_;
  std::unique_ptr<FeSwitch> switch_;          // switch_shards == 1.
  std::unique_ptr<ShardedFeSwitch> sharded_;  // switch_shards > 1.
  FeatureSink* user_sink_ = nullptr;

  // Internal forwarding sink: FeNic is created per Run with the user sink.
  class ForwardingSink;
  std::unique_ptr<ForwardingSink> forwarding_;

  // Live telemetry plane (obs.telemetry_port >= 0). The window and health
  // machine are fed from the sampler's pre-sample hook; the server's
  // handlers read the members above through `this`, so the server is
  // declared LAST — destroyed first, before anything a scrape touches.
  std::unique_ptr<obs::RollingWindow> window_;
  std::unique_ptr<obs::HealthMachine> health_;
  std::atomic<bool> run_active_{false};
  std::atomic<uint64_t> runs_completed_{0};
  std::atomic<uint64_t> run_start_unix_ms_{0};  // Latest Run() start.
  std::chrono::steady_clock::time_point created_at_;
  // Self-pointer for /status self-reporting: the listener thread is live
  // before `telemetry_` is assigned, so the handler reads this atomic
  // instead of racing the unique_ptr hand-off.
  std::atomic<obs::TelemetryServer*> telemetry_self_{nullptr};
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace superfe

#endif  // SUPERFE_CORE_RUNTIME_H_
