// Software-baseline feature extractor: the "mainstream" deployment the paper
// compares against (§2.2, Fig 9) — port mirroring into servers that run the
// original applications' feature extraction code.
//
// The extraction pipeline itself runs for real (same ExecPlan as FE-NIC,
// exact arithmetic), so the features are usable as the Fig 10 reference and
// the per-packet processing time is *measured*, not modeled. Deployment
// throughput then applies the documented overheads of the original stacks:
// kernel capture cost per mirrored packet and the interpreter slowdown of
// the original (Python/NumPy) implementations.
#ifndef SUPERFE_CORE_SOFTWARE_EXTRACTOR_H_
#define SUPERFE_CORE_SOFTWARE_EXTRACTOR_H_

#include <memory>

#include "core/feature_vector.h"
#include "nicsim/exec.h"
#include "nicsim/group_table.h"
#include "policy/compile.h"
#include "net/trace.h"

namespace superfe {

struct SoftwareDeployment {
  // Kernel/libpcap capture + mirroring overhead per packet.
  double capture_ns_per_packet = 1800.0;
  // Slowdown of the original implementation relative to our measured C++
  // pipeline (Kitsune's AfterImage, CUMUL's feature scripts and the WF
  // pipelines are Python/NumPy; 30x is charitable).
  double interpreter_factor = 30.0;
  // Server cores dedicated to extraction and their parallel efficiency.
  uint32_t cores = 16;
  double parallel_efficiency = 0.8;
};

struct SoftwareRunReport {
  uint64_t packets = 0;
  uint64_t vectors = 0;
  double measured_seconds = 0.0;     // Wall clock of the C++ pipeline.
  double measured_ns_per_packet = 0.0;

  // Deployment-model throughput of the original software stack.
  double deployed_pps = 0.0;
  double deployed_gbps = 0.0;

  // Throughput if the extractor were our C++ pipeline (upper bound for any
  // software implementation on this host).
  double cpp_pps = 0.0;
  double cpp_gbps = 0.0;
};

// Exact double-precision execution options (the software baseline).
inline ExecOptions ExactExecOptions() {
  ExecOptions options;
  options.nic_arithmetic = false;
  return options;
}

// Runs the compiled policy's NIC pipeline directly over raw packets (no
// switch batching), with exact double-precision arithmetic.
class SoftwareExtractor {
 public:
  // `options` defaults to exact double-precision arithmetic (the standard
  // feature definitions); pass damped_mode = kFloat32 to reproduce the
  // original Kitsune implementation's arithmetic (Fig 10).
  static Result<std::unique_ptr<SoftwareExtractor>> Create(
      const CompiledPolicy& compiled, const ExecOptions& options = ExactExecOptions());

  // Processes the trace; emits vectors per the policy's collect unit.
  SoftwareRunReport Run(const Trace& trace, FeatureSink* sink,
                        const SoftwareDeployment& deployment = {});

 private:
  SoftwareExtractor(const CompiledPolicy& compiled, ExecPlan plan, const ExecOptions& options);

  void ProcessPacket(const PacketRecord& pkt, FeatureSink* sink);
  void Flush(FeatureSink* sink);

  CompiledPolicy compiled_;
  ExecPlan plan_;
  ExecOptions options_;
  std::vector<std::unique_ptr<GroupTable<GroupState>>> tables_;
  uint64_t vectors_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_CORE_SOFTWARE_EXTRACTOR_H_
