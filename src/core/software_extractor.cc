#include "core/software_extractor.h"

#include <chrono>

namespace superfe {

Result<std::unique_ptr<SoftwareExtractor>> SoftwareExtractor::Create(
    const CompiledPolicy& compiled, const ExecOptions& options) {
  auto plan = ExecPlan::FromProgram(compiled.nic_program);
  if (!plan.ok()) {
    return plan.status();
  }
  return std::unique_ptr<SoftwareExtractor>(
      new SoftwareExtractor(compiled, std::move(plan).value(), options));
}

SoftwareExtractor::SoftwareExtractor(const CompiledPolicy& compiled, ExecPlan plan,
                                     const ExecOptions& options)
    : compiled_(compiled), plan_(std::move(plan)), options_(options) {
  for (size_t i = 0; i < compiled_.nic_program.granularities.size(); ++i) {
    tables_.push_back(std::make_unique<GroupTable<GroupState>>(65536, 8));
  }
}

void SoftwareExtractor::ProcessPacket(const PacketRecord& pkt, FeatureSink* sink) {
  if (!compiled_.switch_program.filter.Matches(pkt)) {
    return;
  }
  // Software path sees the raw packet; build the equivalent cell.
  MgpvCell cell;
  cell.size = static_cast<uint16_t>(std::min<uint32_t>(pkt.wire_bytes, 0xffff));
  cell.tstamp = static_cast<uint32_t>(pkt.timestamp_ns);
  cell.direction = pkt.direction;
  cell.full_timestamp_ns = pkt.timestamp_ns;
  cell.fg_tuple = GroupKey::InitiatorTuple(pkt);

  const auto& grans = compiled_.nic_program.granularities;
  std::array<GroupState*, 4> touched{};
  for (size_t gi = 0; gi < grans.size(); ++gi) {
    const GroupKey key = GroupKey::FromFgTuple(cell.fg_tuple, grans[gi]);
    bool via_dram = false;
    GroupState& group = tables_[gi]->FindOrCreate(
        key, key.Hash(), [&] { return GroupState::Make(plan_, gi, options_); }, via_dram);
    UpdateGroup(plan_, gi, group, cell);
    touched[gi] = &group;
  }

  if (compiled_.nic_program.collect.per_packet && sink != nullptr) {
    FeatureVector vector;
    vector.group = GroupKey::FromFgTuple(cell.fg_tuple, compiled_.switch_program.fg());
    vector.timestamp_ns = pkt.timestamp_ns;
    vector.values.reserve(compiled_.nic_program.FeatureDimension());
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      EmitGroupFeatures(plan_, gi, *touched[gi], vector.values);
    }
    ++vectors_;
    sink->OnFeatureVector(std::move(vector));
  }
}

void SoftwareExtractor::Flush(FeatureSink* sink) {
  if (!compiled_.nic_program.collect.per_packet) {
    const Granularity unit = compiled_.nic_program.collect.unit;
    const auto& grans = compiled_.nic_program.granularities;
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      if (grans[gi] != unit) {
        continue;
      }
      tables_[gi]->ForEach([&](const GroupKey& key, GroupState& group) {
        if (sink == nullptr) {
          return;
        }
        FeatureVector vector;
        vector.group = key;
        vector.timestamp_ns = group.last_seen_ns;
        vector.values.reserve(compiled_.nic_program.FeatureDimension());
        for (size_t gj = 0; gj < grans.size(); ++gj) {
          if (grans[gj] == unit) {
            EmitGroupFeatures(plan_, gj, group, vector.values);
            continue;
          }
          const GroupKey sibling_key = GroupKey::FromFgTuple(group.last_fg_tuple, grans[gj]);
          GroupState* sibling = tables_[gj]->Find(sibling_key, sibling_key.Hash());
          if (sibling != nullptr) {
            EmitGroupFeatures(plan_, gj, *sibling, vector.values);
          } else {
            vector.values.resize(vector.values.size() + GranularityFeatureWidth(plan_, gj), 0.0);
          }
        }
        ++vectors_;
        sink->OnFeatureVector(std::move(vector));
      });
    }
  }
  for (auto& table : tables_) {
    table->Clear();
  }
}

SoftwareRunReport SoftwareExtractor::Run(const Trace& trace, FeatureSink* sink,
                                         const SoftwareDeployment& deployment) {
  SoftwareRunReport report;
  vectors_ = 0;

  const auto start = std::chrono::steady_clock::now();
  for (const auto& pkt : trace.packets()) {
    ProcessPacket(pkt, sink);
  }
  Flush(sink);
  const auto end = std::chrono::steady_clock::now();

  report.packets = trace.size();
  report.vectors = vectors_;
  report.measured_seconds = std::chrono::duration<double>(end - start).count();
  if (report.packets > 0 && report.measured_seconds > 0.0) {
    report.measured_ns_per_packet = report.measured_seconds * 1e9 / report.packets;
  }

  const double avg_bytes =
      trace.empty() ? 0.0
                    : static_cast<double>(trace.ComputeStats().total_bytes) / trace.size();
  const double eff_cores = deployment.cores * deployment.parallel_efficiency;

  const double cpp_ns = report.measured_ns_per_packet;
  if (cpp_ns > 0.0) {
    report.cpp_pps = eff_cores * 1e9 / (cpp_ns + deployment.capture_ns_per_packet);
    report.cpp_gbps = report.cpp_pps * avg_bytes * 8.0 * 1e-9;

    const double original_ns = cpp_ns * deployment.interpreter_factor;
    report.deployed_pps = eff_cores * 1e9 / (original_ns + deployment.capture_ns_per_packet);
    report.deployed_gbps = report.deployed_pps * avg_bytes * 8.0 * 1e-9;
  }
  return report;
}

}  // namespace superfe
