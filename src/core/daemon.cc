// Continuous-operation daemon mode (docs/ROBUSTNESS.md, "Daemon mode").
//
// RunDaemon wires a PacketSource into a StreamingReplay and closes rolling
// MGPV epochs at packet-count / wall-time boundaries. An epoch boundary is
// an *accounting* fence, not a flush: the ingest thread waits for the
// streaming backlog to drain, closes the cluster producers, runs a
// drain-only barrier (queues empty, obs deltas folded — NIC/MGPV state kept),
// snapshots the cumulative pipeline totals, and rotates each MGPV cache's
// epoch counter. Because no state is evicted, the concatenation of per-epoch
// feature exports is exactly the one-shot output, and the reconciliation
//   cells_offered == cells_processed + cells_shed + cells_lost + overflow
// holds at every boundary (everything offered has either been processed or
// landed in one of the loss ledgers once the queues are empty).
#include <algorithm>
#include <chrono>
#include <thread>

#include "core/runtime.h"

namespace superfe {

namespace {

// Cumulative pipeline totals at a quiescent boundary; epoch records are
// deltas of successive snapshots.
struct PipelineTotals {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t cells_offered = 0;
  uint64_t cells_processed = 0;
  uint64_t cells_shed = 0;
  uint64_t cells_lost = 0;
  uint64_t cells_overflow = 0;
  uint64_t vectors = 0;
  // Fault-activity signals (zero without an injector).
  uint64_t members_crashed = 0;
  uint64_t groups_abandoned = 0;
  uint64_t pool_exhaustions = 0;
  uint64_t watchdog_stalls = 0;
};

uint64_t Delta(uint64_t now, uint64_t prev) { return now >= prev ? now - prev : 0; }

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

double WallMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

}  // namespace

DaemonReport SuperFeRuntime::RunDaemon(PacketSource& source, FeatureSink* sink,
                                       const DaemonConfig& daemon) {
  const auto wall_start = std::chrono::steady_clock::now();
  const size_t chunk_packets = std::max<size_t>(daemon.chunk_packets, 1);
  DaemonReport report;

  SetSinkTarget(sink);
  BeginRunTelemetry();
  // Packet-indexed fault triggers resolve against the caller-supplied axis
  // (the first loop of a looped source), with the same arithmetic Run()
  // uses — so a chaos plan bites at identical trace times in both modes.
  ResolveFaultTriggers(daemon.fault_trigger_trace);

  std::vector<PacketSink*> sinks;
  std::vector<const ReplayObs*> shard_obs;
  std::function<uint32_t(const PacketRecord&)> shard_of;
  if (sharded_ != nullptr) {
    sinks.reserve(sharded_->size());
    for (size_t s = 0; s < sharded_->size(); ++s) {
      sinks.push_back(&sharded_->shard(s));
    }
    for (const ReplayObs& o : shard_replay_obs_) {
      shard_obs.push_back(&o);
    }
    shard_of = [this](const PacketRecord& pkt) { return sharded_->ShardOf(pkt); };
  } else {
    sinks.push_back(switch_.get());
    shard_obs.push_back(config_.replay.obs);
    shard_of = [](const PacketRecord&) { return 0u; };
  }
  StreamingReplay stream(config_.replay, sinks, shard_obs, shard_of,
                         std::max<size_t>(daemon.max_chunks_in_flight, 1));

  // Everything this lambda reads is quiescent when it runs (WaitIdle +
  // producer close + drain barrier precede every call).
  const auto snapshot = [&]() {
    PipelineTotals t;
    const ReplayReport r = stream.Report();
    t.packets = r.packets;
    t.bytes = r.bytes;
    const MgpvStats mg =
        sharded_ != nullptr ? sharded_->AggregateMgpvStats() : switch_->cache().stats();
    const FeNicStats nic = cluster_ != nullptr ? cluster_->AggregateStats() : nic_->stats();
    t.cells_processed = nic.cells;
    t.vectors = nic.vectors_emitted;
    if (cluster_ != nullptr) {
      for (size_t i = 0; i < cluster_->size(); ++i) {
        t.cells_overflow += cluster_->worker_stats(i).cells_dropped;
      }
    }
    if (injector_ != nullptr) {
      const FaultStats fs = injector_->Snapshot();
      t.cells_offered = fs.cells_offered;
      t.cells_shed = fs.cells_shed;
      t.cells_lost = fs.cells_lost_to_failover;
      t.members_crashed = fs.members_crashed;
      t.groups_abandoned = fs.groups_abandoned;
      t.pool_exhaustions = fs.injected_pool_exhaustions;
      t.watchdog_stalls = fs.watchdog_stall_events;
    } else {
      // Without an injector nothing is shed or lost: everything MGPV evicts
      // is offered, and only lossy overflow can subtract from it.
      t.cells_offered = mg.cells_out;
    }
    return t;
  };

  PipelineTotals prev;  // Zero: the first epoch's delta is the cumulative total.
  auto epoch_start = wall_start;
  uint64_t epoch_start_packets = 0;
  uint64_t epoch_ingest_shed = 0;
  bool drain_barrier_ok = true;

  // Records the epoch spanning (prev, now]; `prev` advances to `now`.
  const auto close_epoch = [&](const PipelineTotals& now, bool final_epoch,
                               double occupancy, uint64_t mgpv_epoch) {
    DaemonEpoch e;
    e.index = report.epochs.size() + 1;
    e.packets = Delta(now.packets, prev.packets);
    e.bytes = Delta(now.bytes, prev.bytes);
    e.cells_offered = Delta(now.cells_offered, prev.cells_offered);
    e.cells_processed = Delta(now.cells_processed, prev.cells_processed);
    e.cells_shed = Delta(now.cells_shed, prev.cells_shed);
    e.cells_lost = Delta(now.cells_lost, prev.cells_lost);
    e.cells_overflow = Delta(now.cells_overflow, prev.cells_overflow);
    e.vectors = Delta(now.vectors, prev.vectors);
    e.ingest_shed_packets = epoch_ingest_shed;
    // The per-epoch reconciliation; deltas of an invariant that holds
    // cumulatively at both endpoints hold it too, but assert the delta form
    // directly so a single bad boundary cannot hide behind a later one.
    e.reconciled = e.cells_offered ==
                   e.cells_processed + e.cells_shed + e.cells_lost + e.cells_overflow;
    e.fault_active = e.cells_shed > 0 || e.cells_lost > 0 || e.cells_overflow > 0 ||
                     epoch_ingest_shed > 0 ||
                     Delta(now.members_crashed, prev.members_crashed) > 0 ||
                     Delta(now.groups_abandoned, prev.groups_abandoned) > 0 ||
                     Delta(now.pool_exhaustions, prev.pool_exhaustions) > 0 ||
                     Delta(now.watchdog_stalls, prev.watchdog_stalls) > 0;
    e.final_epoch = final_epoch;
    e.mgpv_occupancy = occupancy;
    e.mgpv_epoch = mgpv_epoch;
    e.wall_ms = WallMs(epoch_start);
    report.all_epochs_reconciled = report.all_epochs_reconciled && e.reconciled;
    if (!final_epoch && health_ != nullptr) {
      // One health mark per rotated epoch (FinishRun marks the final one):
      // a faulty epoch pushes /healthz to degraded until the mark decays.
      health_->OnRunComplete(e.fault_active, SteadyNowNs());
    }
    report.epochs.push_back(e);
    if (daemon.on_epoch) {
      daemon.on_epoch(e);
    }
    prev = now;
    epoch_start = std::chrono::steady_clock::now();
    epoch_start_packets = stream.packets_fed();
    epoch_ingest_shed = 0;
  };

  // Rotation boundary: drain to quiescence, snapshot, rotate the MGPV
  // epoch counters (no eviction), and record the closed epoch.
  const auto rotate = [&]() {
    stream.WaitIdle();
    for (auto& producer : shard_producers_) {
      producer->Close();  // Stage->queue + fold offered counts, then reopen.
    }
    if (cluster_ != nullptr) {
      const uint64_t timeout = daemon.drain_timeout_ms > 0
                                   ? daemon.drain_timeout_ms
                                   : cluster_->options().flush_timeout_ms;
      drain_barrier_ok = cluster_->DrainWithDeadline(timeout).ok() && drain_barrier_ok;
      cluster_->UpdateObsGauges();
    }
    const PipelineTotals now = snapshot();
    double occupancy = 0.0;
    uint64_t mgpv_epoch = 0;
    if (sharded_ != nullptr) {
      for (const MgpvEpochInfo& info : sharded_->RotateEpochs()) {
        occupancy = std::max(occupancy, info.occupancy);
        mgpv_epoch = info.epoch;
      }
    } else {
      const MgpvEpochInfo info = switch_->RotateMgpvEpoch();
      occupancy = info.occupancy;
      mgpv_epoch = info.epoch;
    }
    close_epoch(now, /*final_epoch=*/false, occupancy, mgpv_epoch);
  };

  const auto rotation_due = [&]() {
    if (daemon.epoch_packets > 0 &&
        stream.packets_fed() - epoch_start_packets >= daemon.epoch_packets) {
      return true;
    }
    return daemon.epoch_wall_ms > 0 &&
           WallMs(epoch_start) >= static_cast<double>(daemon.epoch_wall_ms);
  };

  std::vector<PacketRecord> chunk;
  uint64_t idle_backoff_ms = 1;
  for (;;) {
    if (daemon.stop != nullptr) {
      const int sig = daemon.stop->load(std::memory_order_relaxed);
      if (sig != 0) {
        report.stopped_by_signal = true;
        report.signal = sig;
        source.RequestStop();
        break;
      }
    }
    if (daemon.max_seconds > 0 &&
        WallMs(wall_start) >= static_cast<double>(daemon.max_seconds) * 1000.0) {
      source.RequestStop();
      break;
    }
    if (daemon.max_epochs > 0 && report.epochs.size() >= daemon.max_epochs) {
      source.RequestStop();
      break;
    }
    chunk.clear();
    const PacketSource::Next next = source.NextChunk(&chunk, chunk_packets);
    if (next == PacketSource::Next::kEnd) {
      break;
    }
    if (next == PacketSource::Next::kIdle) {
      // Time-based rotation keeps firing while the source is quiet, so a
      // stalled feed still produces (empty, reconciled) epoch records.
      if (daemon.epoch_wall_ms > 0 && rotation_due()) {
        rotate();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(idle_backoff_ms));
      idle_backoff_ms = std::min<uint64_t>(idle_backoff_ms * 2, 100);
      continue;
    }
    idle_backoff_ms = 1;
    report.packets_ingested += chunk.size();
    if (daemon.shed_backlog_chunks > 0 &&
        stream.Backlog() >= daemon.shed_backlog_chunks) {
      // Overload: drop the chunk whole at ingest rather than wedging the
      // feed behind a saturated pipeline. Shed packets never reach replay,
      // so they are invisible to the cell reconciliation by design.
      report.packets_shed_ingest += chunk.size();
      epoch_ingest_shed += chunk.size();
      continue;
    }
    stream.Feed(std::move(chunk));
    if (rotation_due()) {
      rotate();
    }
  }

  // Final epoch: identical drain, then the one-shot end-of-run flush
  // (cache eviction, NIC flush barrier, latency-shim fold).
  stream.WaitIdle();
  stream.Close();
  const ReplayReport offered = stream.Report();
  const Status flush_status = FlushPipeline();
  {
    const PipelineTotals now = snapshot();
    double occupancy = 0.0;  // Post-flush the caches are empty by contract.
    const uint64_t mgpv_epoch =
        (sharded_ != nullptr ? sharded_->shard(0) : *switch_).cache().epoch();
    close_epoch(now, /*final_epoch=*/true, occupancy, mgpv_epoch);
  }

  report.run = FinishRun(offered, flush_status);
  report.drained = flush_status.ok() && drain_barrier_ok &&
                   (injector_ == nullptr || report.run.fault.reconciled);
  report.ingest = source.stats();
  report.wall_ms = WallMs(wall_start);
  return report;
}

}  // namespace superfe
