#include "core/runtime.h"

#include <algorithm>
#include <functional>
#include <string>

#include "common/json_writer.h"

namespace superfe {

class SuperFeRuntime::ForwardingSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&& vector) override {
    if (target_ != nullptr) {
      target_->OnFeatureVector(std::move(vector));
    }
  }
  void set_target(FeatureSink* target) { target_ = target; }

 private:
  FeatureSink* target_ = nullptr;
};

Result<std::unique_ptr<SuperFeRuntime>> SuperFeRuntime::Create(const Policy& policy,
                                                               const RuntimeConfig& config) {
  auto compiled = Compile(policy);
  if (!compiled.ok()) {
    return compiled.status();
  }
  std::unique_ptr<SuperFeRuntime> runtime(
      new SuperFeRuntime(std::move(compiled).value(), config));

  if (config.obs.metrics) {
    runtime->metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  if (config.obs.trace) {
    // Lane 0 is the producer (replay/switch/MGPV); one lane per worker.
    const size_t lanes = 1 + config.worker_threads;
    runtime->trace_ = std::make_unique<obs::TraceRecorder>(
        std::max<uint32_t>(config.obs.trace_capacity_per_lane, 16), lanes);
    runtime->trace_->SetLaneName(0, "producer (replay+switch+mgpv)");
    for (uint32_t i = 0; i < config.worker_threads; ++i) {
      runtime->trace_->SetLaneName(1 + i, "nic-worker-" + std::to_string(i));
    }
  }

  MgpvSink* nic_side = nullptr;
  if (config.worker_threads > 0) {
    NicClusterOptions options = config.cluster;
    options.parallel = true;
    options.metrics = runtime->metrics_.get();
    options.trace = runtime->trace_.get();
    options.trace_lane_base = 0;
    auto cluster = NicCluster::Create(runtime->compiled_, config.nic, config.worker_threads,
                                      runtime->forwarding_.get(), options);
    if (!cluster.ok()) {
      return cluster.status();
    }
    runtime->cluster_ = std::move(cluster).value();
    nic_side = runtime->cluster_.get();
  } else {
    auto nic = FeNic::Create(runtime->compiled_, config.nic, runtime->forwarding_.get());
    if (!nic.ok()) {
      return nic.status();
    }
    runtime->nic_ = std::move(nic).value();
    if (runtime->metrics_ != nullptr) {
      runtime->nic_->set_obs(FeNicObs::Create(runtime->metrics_.get(), 0));
    }
    nic_side = runtime->nic_.get();
  }
  runtime->switch_ = std::make_unique<FeSwitch>(runtime->compiled_, nic_side, config.mgpv);
  if (runtime->metrics_ != nullptr || runtime->trace_ != nullptr) {
    runtime->switch_->set_obs(FeSwitchObs::Create(runtime->metrics_.get()));
    runtime->switch_->set_mgpv_obs(
        MgpvObs::Create(runtime->metrics_.get(), runtime->trace_.get(), /*trace_lane=*/0));
    runtime->replay_obs_ =
        ReplayObs::Create(runtime->metrics_.get(), runtime->trace_.get(), /*trace_lane=*/0);
    runtime->config_.replay.obs = &runtime->replay_obs_;
  }
  return runtime;
}

NicPerfModel SuperFeRuntime::NicPerf() const {
  return cluster_ != nullptr ? cluster_->MergedPerf() : nic_->perf();
}

SuperFeRuntime::SuperFeRuntime(CompiledPolicy compiled, const RuntimeConfig& config)
    : compiled_(std::move(compiled)),
      config_(config),
      forwarding_(std::make_unique<ForwardingSink>()) {}

SuperFeRuntime::~SuperFeRuntime() = default;

RunReport SuperFeRuntime::Run(const Trace& trace, FeatureSink* sink) {
  forwarding_->set_target(sink);
  sampler_.reset();  // A re-Run restarts the time series.
  if (metrics_ != nullptr && config_.obs.sample_interval_ms > 0) {
    std::function<void()> hook;
    if (cluster_ != nullptr) {
      hook = [this] { cluster_->UpdateObsGauges(); };
    }
    sampler_ = std::make_unique<obs::SnapshotSampler>(
        metrics_.get(), config_.obs.sample_interval_ms, std::move(hook));
    sampler_->Start();
  }
  RunReport report;
  report.offered = Replay(trace, config_.replay, *switch_);
  switch_->Flush();
  if (cluster_ != nullptr) {
    cluster_->Flush();  // Barrier: every queue drained, every member flushed.
    cluster_->UpdateObsGauges();
  } else {
    nic_->Flush();
  }
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
  forwarding_->set_target(nullptr);

  report.obs.metrics_enabled = metrics_ != nullptr;
  report.obs.trace_enabled = trace_ != nullptr;
  if (trace_ != nullptr) {
    report.obs.trace_events_recorded = trace_->events_recorded();
    report.obs.trace_events_dropped = trace_->events_dropped();
  }
  if (sampler_ != nullptr) {
    report.obs.samples_captured = sampler_->samples().size();
  }

  report.switch_stats = switch_->stats();
  report.mgpv = switch_->cache().stats();
  report.nic = cluster_ != nullptr ? cluster_->AggregateStats() : nic_->stats();
  report.avg_packet_bytes =
      report.offered.packets > 0
          ? static_cast<double>(report.offered.bytes) / report.offered.packets
          : 0.0;
  report.filter_pass_fraction =
      report.switch_stats.packets_seen > 0
          ? static_cast<double>(report.switch_stats.packets_batched) /
                report.switch_stats.packets_seen
          : 1.0;

  // Per-limit diagnostics at the configured core count.
  const double nic_pps =
      std::min(NicPerf().ThroughputPps(config_.nic_cores), config_.nic_ingest_mpps * 1e6);
  report.nic_limited_gbps =
      report.filter_pass_fraction > 0.0
          ? nic_pps / report.filter_pass_fraction * report.avg_packet_bytes * 8.0 * 1e-9
          : config_.switch_capacity_gbps;
  const double byte_ratio = report.mgpv.ByteRatio();
  report.link_limited_gbps = byte_ratio > 0.0 ? config_.switch_nic_link_gbps / byte_ratio
                                              : config_.switch_capacity_gbps;
  report.sustainable_gbps = SustainableGbps(report, config_.nic_cores);
  report.bottleneck = report.sustainable_gbps == report.nic_limited_gbps ? "nic-compute"
                      : report.sustainable_gbps == report.link_limited_gbps
                          ? "switch-nic-link"
                          : "switch-capacity";

  // Feature output rate, proportional to the sustained input rate.
  const double vector_bytes =
      static_cast<double>(compiled_.nic_program.FeatureDimension()) * 4.0;
  if (report.offered.duration_s > 0.0 && report.offered.offered_gbps > 0.0) {
    const double vectors_per_offered_bit =
        static_cast<double>(report.nic.vectors_emitted) /
        (static_cast<double>(report.offered.bytes) * 8.0);
    report.feature_output_gbps =
        report.sustainable_gbps * 1e9 * vectors_per_offered_bit * vector_bytes * 8.0 * 1e-9;
  }
  return report;
}

double SuperFeRuntime::SustainableGbps(const RunReport& report, uint32_t cores) const {
  // (a) NIC compute limit: cells/s the cores sustain (bounded by the NBI
  // ingest ceiling), mapped back to offered traffic (cells = filtered
  // packets).
  const double nic_pps =
      std::min(NicPerf().ThroughputPps(cores), config_.nic_ingest_mpps * 1e6);
  double nic_limited = 0.0;
  if (report.filter_pass_fraction > 0.0) {
    nic_limited = nic_pps / report.filter_pass_fraction * report.avg_packet_bytes * 8.0 * 1e-9;
  } else {
    nic_limited = config_.switch_capacity_gbps;  // Nothing reaches the NIC.
  }
  // (b) Switch->NIC link limit at the measured aggregation byte ratio.
  const double byte_ratio = report.mgpv.ByteRatio();
  const double link_limited = byte_ratio > 0.0
                                  ? config_.switch_nic_link_gbps / byte_ratio
                                  : config_.switch_capacity_gbps;
  // (c) Switch capacity.
  return std::min({nic_limited, link_limited, config_.switch_capacity_gbps});
}

bool SuperFeRuntime::WriteMetricsProm(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return false;
  }
  metrics_->WriteProm(out);
  return true;
}

bool SuperFeRuntime::WriteMetricsJson(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return false;
  }
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("metrics");
  metrics_->WriteJson(writer);
  if (sampler_ != nullptr) {
    writer.Key("series");
    sampler_->WriteJson(writer);
  }
  writer.EndObject();
  out << '\n';
  return true;
}

bool SuperFeRuntime::WriteTraceJson(std::ostream& out) const {
  if (trace_ == nullptr) {
    return false;
  }
  trace_->WriteChromeJson(out);
  return true;
}

SwitchResourceUsage SuperFeRuntime::SwitchResources() const {
  return EstimateSwitchResources(compiled_, switch_->cache().config());
}

double SuperFeRuntime::NicMemoryUtilization() const {
  const FeNic& member = nic();
  return member.placement().MemoryUtilization(member.placement_problem());
}

}  // namespace superfe
