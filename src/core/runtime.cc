#include "core/runtime.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "common/build_info.h"
#include "common/json_writer.h"
#include "obs/worker_block.h"

namespace superfe {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

class SuperFeRuntime::ForwardingSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&& vector) override {
    if (target_ != nullptr) {
      target_->OnFeatureVector(std::move(vector));
    }
  }
  void set_target(FeatureSink* target) { target_ = target; }

 private:
  FeatureSink* target_ = nullptr;
};

// Serial-path latency shim: with worker_threads == 0 there is no NicCluster
// between MGPV and the FeNic, so this wrapper measures the service and
// end-to-end stages around each report. On the producer thread the clock
// cannot advance mid-call, so service is 0 trace-time ns and end-to-end
// equals the MGPV residency — the same invariants the cluster's serial
// dispatch records. There is no queue, hence no queue-wait stage.
class SuperFeRuntime::SerialLatencySink : public MgpvSink {
 public:
  // `registry` non-null enables the hot tier (single replay thread only —
  // the block's cells are plain fields); null keeps the direct relaxed-
  // atomic observes, which are safe from any number of replay shards.
  SerialLatencySink(MgpvSink* target, obs::TraceClock* clock,
                    obs::LatencyHistogram* service, obs::LatencyHistogram* e2e,
                    obs::MetricsRegistry* registry, uint32_t batch_packets)
      : target_(target), clock_(clock), service_(service), e2e_(e2e) {
    block_.Init(registry, "serial-sink", batch_packets);
    service_cell_ = block_.BindLatency(service);
    e2e_cell_ = block_.BindLatency(e2e);
  }

  void OnMgpv(const MgpvReport& report) override {
    const uint64_t before_ns = clock_->Now();
    target_->OnMgpv(report);
    const uint64_t after_ns = clock_->Now();
    const uint64_t service_ns = after_ns - before_ns;
    const uint64_t e2e_ns = after_ns > report.first_ingest_ns
                                ? after_ns - report.first_ingest_ns
                                : 0;
    if (service_cell_ != nullptr) {
      obs::Observe(service_cell_, service_ns);
      obs::Observe(e2e_cell_, e2e_ns);
      block_.NotePackets(report.cells.size());
    } else {
      obs::Observe(service_, service_ns);
      obs::Observe(e2e_, e2e_ns);
    }
  }
  void OnFgSync(const FgSyncMessage& sync) override { target_->OnFgSync(sync); }

  // End-of-run fence: fold buffered deltas so post-run breakdown/sampler
  // reads see exact totals.
  void FlushObs() { block_.Flush(); }

 private:
  MgpvSink* target_;
  obs::TraceClock* clock_;
  obs::LatencyHistogram* service_;
  obs::LatencyHistogram* e2e_;
  obs::WorkerObsBlock block_;
  obs::WorkerObsBlock::LatencyCell* service_cell_ = nullptr;
  obs::WorkerObsBlock::LatencyCell* e2e_cell_ = nullptr;
};

Result<std::unique_ptr<SuperFeRuntime>> SuperFeRuntime::Create(const Policy& policy,
                                                               const RuntimeConfig& config) {
  auto compiled = Compile(policy);
  if (!compiled.ok()) {
    return compiled.status();
  }
  RuntimeConfig cfg = config;
  if (cfg.obs.latency || cfg.obs.profile) {
    cfg.obs.metrics = true;  // Latency/cycle instruments live in the registry.
  }
  if (cfg.obs.telemetry_port >= 0) {
    // The telemetry plane scrapes the registry and rides the sampler
    // thread for its window/health epochs, so both must exist.
    cfg.obs.metrics = true;
    if (cfg.obs.sample_interval_ms == 0) {
      cfg.obs.sample_interval_ms = 2;
    }
    cfg.obs.window_epochs = std::max<uint32_t>(cfg.obs.window_epochs, 2);
  }
  cfg.obs.batch_packets = std::max<uint32_t>(cfg.obs.batch_packets, 1);
  cfg.switch_shards = std::min(std::max<uint32_t>(cfg.switch_shards, 1),
                               obs::TraceClock::kMaxLanes);
  cfg.replay.pin_threads = cfg.replay.pin_threads || cfg.pin_threads;
  if (cfg.fault.enabled()) {
    // A fault plan implies degraded-mode survival: arm MGPV's graceful
    // overload response. (The default stays off so empty-plan runs are
    // byte-identical to a build without the fault framework.)
    cfg.mgpv.graceful_overload = true;
  }
  const uint32_t shards = cfg.switch_shards;
  std::unique_ptr<SuperFeRuntime> runtime(
      new SuperFeRuntime(std::move(compiled).value(), cfg));

  if (cfg.obs.metrics) {
    runtime->metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  if (cfg.fault.enabled()) {
    runtime->injector_ = std::make_unique<FaultInjector>(cfg.fault.plan);
    runtime->injector_->set_obs(runtime->metrics_.get());
  }
  if (cfg.obs.latency) {
    // One clock lane per replay shard (Now() = max over lanes).
    runtime->trace_clock_ = std::make_unique<obs::TraceClock>(shards);
  }
  if (cfg.obs.trace) {
    // Lanes 0..shards-1 are the producers (replay/switch/MGPV, one per
    // replay shard); one lane per NIC worker after that.
    const size_t lanes = shards + cfg.worker_threads;
    runtime->trace_ = std::make_unique<obs::TraceRecorder>(
        std::max<uint32_t>(cfg.obs.trace_capacity_per_lane, 16), lanes);
    if (shards == 1) {
      runtime->trace_->SetLaneName(0, "producer (replay+switch+mgpv)");
    } else {
      for (uint32_t s = 0; s < shards; ++s) {
        runtime->trace_->SetLaneName(
            s, "replay-shard-" + std::to_string(s) + " (replay+switch+mgpv)");
      }
    }
    for (uint32_t i = 0; i < cfg.worker_threads; ++i) {
      runtime->trace_->SetLaneName(shards + i, "nic-worker-" + std::to_string(i));
    }
  }

  MgpvSink* nic_side = nullptr;
  // Member-level fault routing and flush-time abandonment live in
  // NicCluster, so an armed injector routes even the worker_threads == 0
  // case through a single-member cluster in serial (inline-dispatch) mode.
  const bool serial_fault_cluster = cfg.worker_threads == 0 && runtime->injector_ != nullptr;
  if (cfg.worker_threads > 0 || serial_fault_cluster) {
    NicClusterOptions options = cfg.cluster;
    options.parallel = cfg.worker_threads > 0;
    options.pin_threads = options.pin_threads || cfg.pin_threads;
    options.metrics = runtime->metrics_.get();
    options.trace = runtime->trace_.get();
    options.trace_lane_base = 0;
    options.worker_lane_base = shards;  // == historical base+1 when shards==1.
    options.latency_clock = runtime->trace_clock_.get();
    options.injector = runtime->injector_.get();
    options.profile = cfg.obs.profile;
    options.obs_batch_packets = cfg.obs.batch_packets;
    if (cfg.fault.flush_timeout_ms > 0) {
      options.flush_timeout_ms = cfg.fault.flush_timeout_ms;
    }
    if (cfg.fault.watchdog_interval_ms > 0) {
      options.watchdog_interval_ms = cfg.fault.watchdog_interval_ms;
      options.watchdog_timeout_ms = cfg.fault.watchdog_timeout_ms;
    }
    auto cluster = NicCluster::Create(runtime->compiled_, cfg.nic,
                                      std::max<uint32_t>(cfg.worker_threads, 1),
                                      runtime->forwarding_.get(), options);
    if (!cluster.ok()) {
      return cluster.status();
    }
    runtime->cluster_ = std::move(cluster).value();
    if (shards > 1 && cfg.worker_threads > 0) {
      // One feeding handle per replay shard, each emitting on its own
      // producer trace lane; the cluster's built-in default producer stays
      // unused. (A serial fault cluster has no producers: replay shards
      // call the cluster's inline dispatch directly, which locks per NIC.)
      for (uint32_t s = 0; s < shards; ++s) {
        runtime->shard_producers_.push_back(runtime->cluster_->MakeProducer(s));
      }
    }
    nic_side = runtime->cluster_.get();
  } else {
    auto nic = FeNic::Create(runtime->compiled_, cfg.nic, runtime->forwarding_.get());
    if (!nic.ok()) {
      return nic.status();
    }
    runtime->nic_ = std::move(nic).value();
    if (runtime->metrics_ != nullptr) {
      FeNicObs nic_obs = FeNicObs::Create(runtime->metrics_.get(), 0, cfg.obs.profile);
      nic_obs.flush_packets = cfg.obs.batch_packets;
      runtime->nic_->set_obs(nic_obs);
    }
    nic_side = runtime->nic_.get();
    if (runtime->trace_clock_ != nullptr) {
      // Interpose the serial service/e2e measurement between MGPV and the
      // NIC (the cluster does this itself in the parallel path). The shim's
      // hot tier is single-owner, so it only batches when one replay thread
      // feeds it; sharded serial mode (shards > 1, workers == 0) shares the
      // shim across replay threads and keeps the direct atomic observes.
      runtime->serial_latency_ = std::make_unique<SerialLatencySink>(
          nic_side, runtime->trace_clock_.get(),
          runtime->metrics_->GetLatencyHistogram(
              "superfe_latency_worker_service_ns", {},
              "Trace-time elapsed while a NIC worker processed one report"),
          runtime->metrics_->GetLatencyHistogram(
              "superfe_latency_e2e_ns", {},
              "First packet ingest to feature emit, end to end (trace-time ns)"),
          shards == 1 ? runtime->metrics_.get() : nullptr, cfg.obs.batch_packets);
      nic_side = runtime->serial_latency_.get();
    }
  }
  if (shards > 1) {
    // Each shard feeds its own cluster producer handle, or — with
    // worker_threads == 0 — the shared serial NIC side (FeNic locks
    // internally; the latency shim's observations are wait-free).
    std::vector<MgpvSink*> sinks(shards, nic_side);
    for (size_t s = 0; s < runtime->shard_producers_.size(); ++s) {
      sinks[s] = runtime->shard_producers_[s].get();
    }
    ShardedSwitchOptions sw_options;
    sw_options.metrics = runtime->metrics_.get();
    sw_options.trace = runtime->trace_.get();
    sw_options.trace_lane_base = 0;
    sw_options.latency = cfg.obs.latency;
    sw_options.injector = runtime->injector_.get();
    sw_options.profile = cfg.obs.profile;
    sw_options.obs_batch_packets = cfg.obs.batch_packets;
    runtime->sharded_ = std::make_unique<ShardedFeSwitch>(runtime->compiled_, sinks,
                                                          cfg.mgpv, sw_options);
    runtime->shard_replay_obs_.reserve(shards);
    for (uint32_t s = 0; s < shards; ++s) {
      ReplayObs o =
          ReplayObs::Create(runtime->metrics_.get(), runtime->trace_.get(), /*trace_lane=*/s);
      o.clock = runtime->trace_clock_.get();
      o.clock_lane = s;
      o.injector = runtime->injector_.get();
      o.fault_shard = s;
      if (cfg.obs.telemetry_port >= 0) {
        // Live scraping: flush replay counters often enough that the
        // rolling window (spanning tens of ms) sees per-epoch movement —
        // an 8192-packet chunk per shard can exceed a whole window's
        // worth of traffic at moderate rates.
        o.span_packets = 1024;
      }
      runtime->shard_replay_obs_.push_back(o);
    }
  } else {
    runtime->switch_ = std::make_unique<FeSwitch>(runtime->compiled_, nic_side, cfg.mgpv);
    if (runtime->injector_ != nullptr) {
      runtime->switch_->mutable_cache().set_fault(runtime->injector_.get(), /*shard=*/0);
    }
    if (runtime->metrics_ != nullptr || runtime->trace_ != nullptr) {
      FeSwitchObs sw_obs = FeSwitchObs::Create(runtime->metrics_.get());
      sw_obs.flush_packets = cfg.obs.batch_packets;
      runtime->switch_->set_obs(sw_obs);
      MgpvObs mgpv_obs = MgpvObs::Create(runtime->metrics_.get(), runtime->trace_.get(),
                                         /*trace_lane=*/0, cfg.obs.latency,
                                         /*instance_labels=*/{}, cfg.obs.profile);
      mgpv_obs.flush_packets = cfg.obs.batch_packets;
      runtime->switch_->set_mgpv_obs(mgpv_obs);
      runtime->replay_obs_ =
          ReplayObs::Create(runtime->metrics_.get(), runtime->trace_.get(), /*trace_lane=*/0);
      runtime->replay_obs_.clock = runtime->trace_clock_.get();
      runtime->replay_obs_.injector = runtime->injector_.get();
      if (cfg.obs.telemetry_port >= 0) {
        runtime->replay_obs_.span_packets = 1024;  // See the sharded path.
      }
      runtime->config_.replay.obs = &runtime->replay_obs_;
    }
  }

  if (runtime->metrics_ != nullptr) {
    // Info-gauge idiom: the labels carry the payload, the value is 1.
    obs::Set(runtime->metrics_->GetGauge("superfe_build_info",
                                         {{"version", BuildVersion()},
                                          {"git_sha", BuildGitSha()},
                                          {"compiler", BuildCompiler()}},
                                         "Build identification; the value is always 1"),
             1.0);
  }
  if (cfg.obs.telemetry_port >= 0) {
    runtime->window_ = std::make_unique<obs::RollingWindow>(
        runtime->metrics_.get(), cfg.obs.window_epochs, cfg.obs.sample_interval_ms);
    // Health decay hold = one window span: a fault mark stops counting
    // against /healthz once it slides out of the rolling window.
    const uint64_t hold_ns =
        static_cast<uint64_t>(cfg.obs.sample_interval_ms) * cfg.obs.window_epochs * 1000000ull;
    runtime->health_ = std::make_unique<obs::HealthMachine>(std::max<uint64_t>(hold_ns, 1));
    obs::TelemetryOptions topt;
    topt.port = static_cast<uint16_t>(cfg.obs.telemetry_port);
    SuperFeRuntime* rt = runtime.get();
    topt.pre_scrape = [rt] {
      if (rt->cluster_ != nullptr) {
        rt->cluster_->UpdateObsGauges();
      }
    };
    topt.write_metrics = [rt](std::ostream& os) { rt->metrics_->WriteProm(os); };
    topt.write_status = [rt](std::ostream& os) { rt->WriteStatusJson(os); };
    topt.health = runtime->health_.get();
    auto server = obs::TelemetryServer::Start(std::move(topt));
    if (!server.ok()) {
      return server.status();
    }
    runtime->telemetry_ = std::move(server).value();
    runtime->telemetry_self_.store(runtime->telemetry_.get(), std::memory_order_release);
  }
  return runtime;
}

NicPerfModel SuperFeRuntime::NicPerf() const {
  return cluster_ != nullptr ? cluster_->MergedPerf() : nic_->perf();
}

SuperFeRuntime::SuperFeRuntime(CompiledPolicy compiled, const RuntimeConfig& config)
    : compiled_(std::move(compiled)),
      config_(config),
      forwarding_(std::make_unique<ForwardingSink>()),
      created_at_(std::chrono::steady_clock::now()) {}

SuperFeRuntime::~SuperFeRuntime() = default;

void SuperFeRuntime::SetSinkTarget(FeatureSink* sink) { forwarding_->set_target(sink); }

void SuperFeRuntime::BeginRunTelemetry() {
  run_active_.store(true, std::memory_order_relaxed);
  run_start_unix_ms_.store(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::system_clock::now().time_since_epoch())
                                .count()),
      std::memory_order_relaxed);
  sampler_.reset();  // A re-Run restarts the time series.
  if (metrics_ != nullptr && config_.obs.sample_interval_ms > 0) {
    std::function<void()> hook;
    if (cluster_ != nullptr || window_ != nullptr) {
      hook = [this] {
        if (cluster_ != nullptr) {
          cluster_->UpdateObsGauges();
        }
        if (window_ != nullptr) {
          // One telemetry epoch per capture: the window rates refresh and
          // the health machine sees the epoch's fault/watchdog totals.
          // Stop() takes a final post-flush capture, so the last epoch is
          // guaranteed to see the exact quiescent totals.
          window_->Tick(SteadyNowNs());
          if (health_ != nullptr) {
            const obs::RollingWindow::Totals t = window_->LatestTotals();
            health_->Update({t.fault_events, t.watchdog_stalls}, t.t_ns);
          }
        }
      };
    }
    sampler_ = std::make_unique<obs::SnapshotSampler>(
        metrics_.get(), config_.obs.sample_interval_ms, std::move(hook));
    sampler_->Start();
  }
}

void SuperFeRuntime::ResolveFaultTriggers(const Trace* trace) {
  if (injector_ == nullptr) {
    return;
  }
  if (trace == nullptr || trace->packets().empty()) {
    // No packet axis to resolve against: packet-indexed triggers never fire
    // (ResolvePacketTriggers(0, ...) marks them all unreachable).
    injector_->ResolvePacketTriggers(0, [](uint64_t) { return uint64_t{0}; });
  } else {
    // Resolve at_packet triggers to trace time with the replayer's own
    // arithmetic (post-speedup, replica-interleaved), so packet-count and
    // trace-time trigger points live on one deterministic axis.
    const auto& packets = trace->packets();
    const uint32_t amp = std::max<uint32_t>(config_.replay.amplification, 1);
    const double speedup = config_.replay.speedup > 0.0 ? config_.replay.speedup : 1.0;
    const uint64_t base_ts = packets.front().timestamp_ns;
    injector_->ResolvePacketTriggers(
        static_cast<uint64_t>(packets.size()) * amp, [&](uint64_t id) {
          const uint64_t scaled = static_cast<uint64_t>(
              static_cast<double>(packets[id / amp].timestamp_ns - base_ts) / speedup);
          return scaled + (id % amp) * 8;
        });
  }
  injector_->BeginRun(
      static_cast<uint32_t>(cluster_ != nullptr ? cluster_->size() : 1));
}

RunReport SuperFeRuntime::Run(const Trace& trace, FeatureSink* sink) {
  SetSinkTarget(sink);
  BeginRunTelemetry();
  ResolveFaultTriggers(&trace);
  ReplayReport offered;
  if (sharded_ != nullptr) {
    std::vector<PacketSink*> sinks;
    std::vector<const ReplayObs*> shard_obs;
    sinks.reserve(sharded_->size());
    shard_obs.reserve(shard_replay_obs_.size());
    for (size_t s = 0; s < sharded_->size(); ++s) {
      sinks.push_back(&sharded_->shard(s));
    }
    for (const ReplayObs& o : shard_replay_obs_) {
      shard_obs.push_back(&o);
    }
    offered =
        ParallelReplay(trace, config_.replay, sinks, shard_obs,
                       [this](const PacketRecord& pkt) { return sharded_->ShardOf(pkt); });
  } else {
    offered = Replay(trace, config_.replay, *switch_);
  }
  const Status flush_status = FlushPipeline();
  return FinishRun(offered, flush_status);
}

Status SuperFeRuntime::FlushPipeline() {
  if (sharded_ != nullptr) {
    sharded_->Flush();  // After join: replay threads are quiescent.
    for (auto& producer : shard_producers_) {
      producer->Close();  // Push staged batches before the cluster barrier.
    }
  } else {
    switch_->Flush();
  }
  Status flush_status = Status::Ok();
  if (cluster_ != nullptr) {
    // Barrier: every queue drained, every member flushed (or, with a fault
    // injector, dead members' residual state abandoned). A deadline hit is
    // reported in RunReport::fault, not fatal — workers keep draining and
    // the destructor completes the join.
    flush_status = cluster_->FlushWithDeadline(cluster_->options().flush_timeout_ms);
    cluster_->UpdateObsGauges();
  } else {
    nic_->Flush();
  }
  if (serial_latency_ != nullptr) {
    // Fold the shim's buffered latency deltas before the sampler's final
    // capture and the post-run breakdown read.
    serial_latency_->FlushObs();
  }
  return flush_status;
}

RunReport SuperFeRuntime::FinishRun(const ReplayReport& offered,
                                    const Status& flush_status) {
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
  forwarding_->set_target(nullptr);

  RunReport report;
  report.offered = offered;
  report.obs.metrics_enabled = metrics_ != nullptr;
  report.obs.trace_enabled = trace_ != nullptr;
  if (trace_ != nullptr) {
    report.obs.trace_events_recorded = trace_->events_recorded();
    report.obs.trace_events_dropped = trace_->events_dropped();
  }
  if (sampler_ != nullptr) {
    report.obs.samples_captured = sampler_->samples().size();
  }

  report.latency = BuildLatencyBreakdown();
  report.switch_stats =
      sharded_ != nullptr ? sharded_->AggregateSwitchStats() : switch_->stats();
  report.mgpv =
      sharded_ != nullptr ? sharded_->AggregateMgpvStats() : switch_->cache().stats();
  report.nic = cluster_ != nullptr ? cluster_->AggregateStats() : nic_->stats();
  report.fault.enabled = injector_ != nullptr;
  if (injector_ != nullptr) {
    report.fault.stats = injector_->Snapshot();
    report.fault.cells_processed = report.nic.cells;
    uint64_t overflow = 0;
    if (cluster_ != nullptr) {
      for (size_t i = 0; i < cluster_->size(); ++i) {
        overflow += cluster_->worker_stats(i).cells_dropped;
      }
    }
    report.fault.overflow_cells_dropped = overflow;
    report.fault.flush_deadline_exceeded = !flush_status.ok();
    const FaultStats& fs = report.fault.stats;
    report.fault.reconciled = fs.cells_offered == report.fault.cells_processed +
                                                      fs.cells_shed +
                                                      fs.cells_lost_to_failover + overflow;
    report.fault.degraded = fs.cells_shed > 0 || fs.cells_lost_to_failover > 0 ||
                            fs.members_crashed > 0 || fs.groups_abandoned > 0 ||
                            fs.injected_pool_exhaustions > 0 ||
                            report.fault.flush_deadline_exceeded;
  }
  if (cluster_ != nullptr) {
    report.cluster_cost = cluster_->CostReport(config_.nic.group_table_indices,
                                               config_.nic.group_table_width);
  }
  report.avg_packet_bytes =
      report.offered.packets > 0
          ? static_cast<double>(report.offered.bytes) / report.offered.packets
          : 0.0;
  report.filter_pass_fraction =
      report.switch_stats.packets_seen > 0
          ? static_cast<double>(report.switch_stats.packets_batched) /
                report.switch_stats.packets_seen
          : 1.0;

  // Per-limit diagnostics at the configured core count.
  const double nic_pps =
      std::min(NicPerf().ThroughputPps(config_.nic_cores), config_.nic_ingest_mpps * 1e6);
  report.nic_limited_gbps =
      report.filter_pass_fraction > 0.0
          ? nic_pps / report.filter_pass_fraction * report.avg_packet_bytes * 8.0 * 1e-9
          : config_.switch_capacity_gbps;
  const double byte_ratio = report.mgpv.ByteRatio();
  report.link_limited_gbps = byte_ratio > 0.0 ? config_.switch_nic_link_gbps / byte_ratio
                                              : config_.switch_capacity_gbps;
  report.sustainable_gbps = SustainableGbps(report, config_.nic_cores);
  report.bottleneck = report.sustainable_gbps == report.nic_limited_gbps ? "nic-compute"
                      : report.sustainable_gbps == report.link_limited_gbps
                          ? "switch-nic-link"
                          : "switch-capacity";

  // Feature output rate, proportional to the sustained input rate.
  const double vector_bytes =
      static_cast<double>(compiled_.nic_program.FeatureDimension()) * 4.0;
  if (report.offered.duration_s > 0.0 && report.offered.offered_gbps > 0.0) {
    const double vectors_per_offered_bit =
        static_cast<double>(report.nic.vectors_emitted) /
        (static_cast<double>(report.offered.bytes) * 8.0);
    report.feature_output_gbps =
        report.sustainable_gbps * 1e9 * vectors_per_offered_bit * vector_bytes * 8.0 * 1e-9;
  }
  if (health_ != nullptr) {
    // A degraded completion is fault activity: /healthz reports 503 until
    // the mark decays (one window span), then recovers to 200 on its own.
    health_->OnRunComplete(report.fault.degraded, SteadyNowNs());
  }
  runs_completed_.fetch_add(1, std::memory_order_relaxed);
  run_active_.store(false, std::memory_order_relaxed);
  return report;
}

void SuperFeRuntime::FinishTelemetry(uint64_t linger_ms) {
  if (sampler_ != nullptr) {
    // Idempotent; its Stop() already took one post-quiescence capture whose
    // pre-sample hook folded the terminal window/health epoch — no extra
    // Tick here, so a scrape during the linger stays byte-identical to a
    // metrics export written before it.
    sampler_->Stop();
  }
  if (telemetry_ == nullptr) {
    return;
  }
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  telemetry_self_.store(nullptr, std::memory_order_release);
  telemetry_->Stop();  // Idempotent; joins the listener thread.
}

RunReport::LatencyBreakdown SuperFeRuntime::BuildLatencyBreakdown() const {
  RunReport::LatencyBreakdown b;
  if (metrics_ != nullptr && config_.obs.profile) {
    // Measured per-stage cycle profile, independent of latency tracking.
    // Stages a mode never ran (e.g. dequeue in serial) report zero cycles.
    static const char* const kStages[] = {"dequeue", "mgpv", "feature_kernels",
                                          "sync_broadcast"};
    uint64_t stage_cycles[4] = {};
    uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
      const std::optional<double> v =
          metrics_->Value("superfe_cycles_total", {{"stage", kStages[i]}});
      stage_cycles[i] = v.has_value() ? static_cast<uint64_t>(*v) : 0;
      total += stage_cycles[i];
    }
    for (int i = 0; i < 4; ++i) {
      RunReport::ServiceShare s;
      s.family = kStages[i];
      s.cycles = stage_cycles[i];
      s.fraction =
          total > 0 ? static_cast<double>(stage_cycles[i]) / static_cast<double>(total)
                    : 0.0;
      b.measured_cycle_shares.push_back(s);
    }
  }
  if (trace_clock_ == nullptr || metrics_ == nullptr) {
    return b;
  }
  b.enabled = true;
  // The registry's get-or-create is idempotent: these lookups return the
  // exact histograms the pipeline observed into (or fresh empty ones for
  // stages that never ran, e.g. queue wait in serial mode).
  obs::LatencyHistogram::Snapshot residency_total;
  for (int i = 0; i < 5; ++i) {
    obs::LatencyHistogram* h = metrics_->GetLatencyHistogram(
        "superfe_latency_mgpv_residency_ns",
        {{"cause", EvictReasonName(static_cast<EvictReason>(i))}});
    if (h == nullptr) {
      continue;
    }
    const obs::LatencyHistogram::Snapshot snap = h->TakeSnapshot();
    b.residency_by_cause[i] = snap.Summarize();
    residency_total.Merge(snap);
  }
  b.mgpv_residency = residency_total.Summarize();

  obs::LatencyHistogram::Snapshot queue_wait_total;
  const size_t workers = cluster_ != nullptr ? cluster_->size() : 0;
  for (size_t i = 0; i < workers; ++i) {
    obs::LatencyHistogram* h = metrics_->GetLatencyHistogram(
        "superfe_latency_queue_wait_ns", {{"worker", std::to_string(i)}});
    if (h == nullptr) {
      continue;
    }
    const obs::LatencyHistogram::Snapshot snap = h->TakeSnapshot();
    b.queue_wait_by_worker.push_back(snap.Summarize());
    queue_wait_total.Merge(snap);
  }
  b.queue_wait = queue_wait_total.Summarize();

  if (obs::LatencyHistogram* h =
          metrics_->GetLatencyHistogram("superfe_latency_worker_service_ns")) {
    b.worker_service = h->TakeSnapshot().Summarize();
  }
  if (obs::LatencyHistogram* h = metrics_->GetLatencyHistogram("superfe_latency_e2e_ns")) {
    b.end_to_end = h->TakeSnapshot().Summarize();
  }

  // Table-5-style attribution: split the measured service stage by where
  // the modeled NIC cycles went.
  const NicCycleBreakdown cycles = NicPerf().breakdown();
  const uint64_t total = cycles.Total();
  const auto share = [total](const char* family, uint64_t c) {
    RunReport::ServiceShare s;
    s.family = family;
    s.cycles = c;
    s.fraction = total > 0 ? static_cast<double>(c) / static_cast<double>(total) : 0.0;
    return s;
  };
  b.service_shares = {share("dispatch", cycles.dispatch),
                      share("alu", cycles.alu),
                      share("division", cycles.division),
                      share("hash", cycles.hash),
                      share("report_overhead", cycles.report_overhead),
                      share("memory", cycles.memory)};
  return b;
}

double SuperFeRuntime::SustainableGbps(const RunReport& report, uint32_t cores) const {
  // (a) NIC compute limit: cells/s the cores sustain (bounded by the NBI
  // ingest ceiling), mapped back to offered traffic (cells = filtered
  // packets).
  const double nic_pps =
      std::min(NicPerf().ThroughputPps(cores), config_.nic_ingest_mpps * 1e6);
  double nic_limited = 0.0;
  if (report.filter_pass_fraction > 0.0) {
    nic_limited = nic_pps / report.filter_pass_fraction * report.avg_packet_bytes * 8.0 * 1e-9;
  } else {
    nic_limited = config_.switch_capacity_gbps;  // Nothing reaches the NIC.
  }
  // (b) Switch->NIC link limit at the measured aggregation byte ratio.
  const double byte_ratio = report.mgpv.ByteRatio();
  const double link_limited = byte_ratio > 0.0
                                  ? config_.switch_nic_link_gbps / byte_ratio
                                  : config_.switch_capacity_gbps;
  // (c) Switch capacity.
  return std::min({nic_limited, link_limited, config_.switch_capacity_gbps});
}

bool SuperFeRuntime::WriteMetricsProm(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return false;
  }
  metrics_->WriteProm(out);
  return true;
}

void SuperFeRuntime::WriteRunBlockJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.FieldStr("version", BuildVersion());
  writer.FieldStr("git_sha", BuildGitSha());
  writer.FieldStr("compiler", BuildCompiler());
  writer.FieldStr("trace", config_.obs.run_label);
  writer.FieldStr("policy", compiled_.policy.name);
  writer.FieldUint("switch_shards", config_.switch_shards);
  writer.FieldUint("workers", config_.worker_threads);
  writer.FieldUint("sample_interval_ms", config_.obs.sample_interval_ms);
  writer.FieldUint("obs_batch_packets", config_.obs.batch_packets);
  writer.FieldBool("fault_plan", config_.fault.enabled());
  writer.FieldBool("active", run_active_.load(std::memory_order_relaxed));
  writer.FieldUint("runs_completed", runs_completed_.load(std::memory_order_relaxed));
  writer.FieldUint("start_unix_ms", run_start_unix_ms_.load(std::memory_order_relaxed));
  writer.EndObject();
}

bool SuperFeRuntime::WriteStatusJson(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return false;
  }
  if (cluster_ != nullptr) {
    cluster_->UpdateObsGauges();  // Queue-depth gauges read below.
  }
  // One registry pass, summed across labels per family. Mid-run these are
  // the batch-flushed live totals (within one hot-tier batch of exact); at
  // quiescence they equal the RunReport exactly.
  uint64_t packets = 0, bytes = 0, cells_offered = 0, cells_processed = 0;
  uint64_t cells_shed = 0, cells_lost = 0, cells_overflow = 0, vectors = 0;
  double trace_now_ns = 0.0;
  for (const auto& m : metrics_->Collect()) {
    if (m.type == obs::MetricType::kCounter) {
      if (m.name == "superfe_replay_packets_total") {
        packets += m.uvalue;
      } else if (m.name == "superfe_replay_bytes_total") {
        bytes += m.uvalue;
      } else if (m.name == "superfe_mgpv_cells_out_total") {
        cells_offered += m.uvalue;
      } else if (m.name == "superfe_nic_cells_total") {
        cells_processed += m.uvalue;
      } else if (m.name == "superfe_fault_cells_shed_total") {
        cells_shed += m.uvalue;
      } else if (m.name == "superfe_fault_cells_lost_failover_total") {
        cells_lost += m.uvalue;
      } else if (m.name == "superfe_cluster_cells_dropped_total") {
        cells_overflow += m.uvalue;
      } else if (m.name == "superfe_nic_vectors_emitted_total") {
        vectors += m.uvalue;
      }
    } else if (m.type == obs::MetricType::kGauge &&
               m.name == "superfe_replay_trace_now_ns") {
      trace_now_ns = std::max(trace_now_ns, m.value);
    }
  }

  const uint64_t now_ns = SteadyNowNs();
  JsonWriter writer(out);
  writer.BeginObject();
  writer.FieldStr("service", "superfe");
  writer.FieldUint(
      "uptime_ms",
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - created_at_)
                                .count()));
  writer.Key("run");
  WriteRunBlockJson(writer);

  writer.Key("health");
  writer.BeginObject();
  if (health_ != nullptr) {
    writer.FieldStr("state", obs::HealthStateName(health_->Evaluate(now_ns)));
    writer.FieldUint("hold_ms", health_->hold_ns() / 1000000);
    writer.Key("transitions");
    writer.BeginArray();
    for (const auto& t : health_->Transitions()) {
      writer.BeginObject();
      writer.FieldStr("from", obs::HealthStateName(t.from));
      writer.FieldStr("to", obs::HealthStateName(t.to));
      writer.FieldUint("age_ms", t.t_ns <= now_ns ? (now_ns - t.t_ns) / 1000000 : 0);
      writer.EndObject();
    }
    writer.EndArray();
  } else {
    writer.FieldStr("state", "ok");
  }
  writer.EndObject();

  writer.Key("pipeline");
  writer.BeginObject();
  writer.FieldUint("packets_offered", packets);
  writer.FieldUint("bytes_offered", bytes);
  writer.FieldDouble("trace_now_ns", trace_now_ns);
  writer.FieldUint("cells_offered", cells_offered);
  writer.FieldUint("cells_processed", cells_processed);
  writer.FieldUint("cells_shed", cells_shed);
  writer.FieldUint("cells_lost_failover", cells_lost);
  writer.FieldUint("cells_dropped_overflow", cells_overflow);
  writer.FieldUint("vectors_emitted", vectors);
  writer.EndObject();

  writer.Key("queues");
  writer.BeginArray();
  if (cluster_ != nullptr) {
    for (size_t i = 0; i < cluster_->size(); ++i) {
      const obs::LabelSet worker = {{"worker", std::to_string(i)}};
      writer.BeginObject();
      writer.FieldUint("worker", i);
      writer.FieldDouble(
          "depth", metrics_->Value("superfe_cluster_queue_depth", worker).value_or(0.0));
      writer.FieldDouble(
          "high_watermark",
          metrics_->Value("superfe_cluster_queue_high_watermark", worker).value_or(0.0));
      writer.EndObject();
    }
  }
  writer.EndArray();

  writer.Key("window");
  writer.BeginObject();
  if (window_ != nullptr) {
    const obs::RollingWindow::Rates rates = window_->Current();
    writer.FieldStr("span", window_->window_label());
    writer.FieldBool("valid", rates.valid);
    writer.FieldDouble("span_s", rates.span_s);
    writer.FieldDouble("pps", rates.pps);
    writer.FieldDouble("drop_ratio", rates.drop_ratio);
    writer.FieldDouble("e2e_p50_ns", rates.e2e_p50_ns);
    writer.FieldDouble("e2e_p99_ns", rates.e2e_p99_ns);
  } else {
    writer.FieldBool("valid", false);
  }
  writer.EndObject();

  // Self-stats stay out of the registry so scrapes never perturb the
  // byte-equality contract; they are only visible here.
  if (const obs::TelemetryServer* server =
          telemetry_self_.load(std::memory_order_acquire)) {
    writer.Key("telemetry");
    writer.BeginObject();
    writer.FieldUint("port", server->port());
    writer.FieldUint("requests_served", server->requests_served());
    writer.FieldUint("requests_rejected", server->requests_rejected());
    writer.EndObject();
  }
  writer.EndObject();
  out << '\n';
  return true;
}

namespace {

void WriteStageSummaryJson(JsonWriter& writer, const obs::LatencyStageSummary& s) {
  writer.BeginObject();
  writer.FieldUint("count", s.count);
  writer.FieldUint("sum_ns", s.sum_ns);
  writer.FieldDouble("mean_ns", s.MeanNs());
  writer.FieldDouble("p50_ns", s.p50_ns);
  writer.FieldDouble("p90_ns", s.p90_ns);
  writer.FieldDouble("p99_ns", s.p99_ns);
  writer.FieldDouble("p999_ns", s.p999_ns);
  writer.EndObject();
}

void WriteLatencyBreakdownJson(JsonWriter& writer, const RunReport::LatencyBreakdown& b) {
  writer.BeginObject();
  writer.Key("mgpv_residency");
  WriteStageSummaryJson(writer, b.mgpv_residency);
  writer.Key("mgpv_residency_by_cause");
  writer.BeginObject();
  for (int i = 0; i < 5; ++i) {
    writer.Key(EvictReasonName(static_cast<EvictReason>(i)));
    WriteStageSummaryJson(writer, b.residency_by_cause[i]);
  }
  writer.EndObject();
  writer.Key("queue_wait");
  WriteStageSummaryJson(writer, b.queue_wait);
  writer.Key("queue_wait_by_worker");
  writer.BeginArray();
  for (const auto& w : b.queue_wait_by_worker) {
    WriteStageSummaryJson(writer, w);
  }
  writer.EndArray();
  writer.Key("worker_service");
  WriteStageSummaryJson(writer, b.worker_service);
  writer.Key("end_to_end");
  WriteStageSummaryJson(writer, b.end_to_end);
  writer.Key("service_shares");
  writer.BeginArray();
  for (const auto& s : b.service_shares) {
    writer.BeginObject();
    writer.FieldStr("family", s.family);
    writer.FieldUint("cycles", s.cycles);
    writer.FieldDouble("fraction", s.fraction);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("measured_cycle_shares");
  writer.BeginArray();
  for (const auto& s : b.measured_cycle_shares) {
    writer.BeginObject();
    writer.FieldStr("stage", s.family);
    writer.FieldUint("cycles", s.cycles);
    writer.FieldDouble("fraction", s.fraction);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace

bool SuperFeRuntime::WriteMetricsJson(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return false;
  }
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("run");
  WriteRunBlockJson(writer);
  writer.Key("metrics");
  metrics_->WriteJson(writer);
  if (sampler_ != nullptr) {
    writer.Key("series");
    sampler_->WriteJson(writer);
  }
  if (trace_clock_ != nullptr) {
    writer.Key("latency");
    WriteLatencyBreakdownJson(writer, BuildLatencyBreakdown());
  }
  writer.EndObject();
  out << '\n';
  return true;
}

bool SuperFeRuntime::WriteSamplesJson(std::ostream& out) const {
  if (sampler_ == nullptr) {
    return false;
  }
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("series");
  sampler_->WriteJson(writer);
  writer.EndObject();
  out << '\n';
  return true;
}

bool SuperFeRuntime::WriteTraceJson(std::ostream& out) const {
  if (trace_ == nullptr) {
    return false;
  }
  trace_->WriteChromeJson(out);
  return true;
}

SwitchResourceUsage SuperFeRuntime::SwitchResources() const {
  return EstimateSwitchResources(compiled_, fe_switch().cache().config());
}

double SuperFeRuntime::NicMemoryUtilization() const {
  const FeNic& member = nic();
  return member.placement().MemoryUtilization(member.placement_problem());
}

}  // namespace superfe
