#include "streaming/damped.h"

#include <cmath>

namespace superfe {
namespace {

constexpr double kFixedScale = 65536.0;  // 16.16 fixed point.

}  // namespace

double DampedStats::Quantize(double v) const {
  switch (mode_) {
    case DampedMode::kExactDouble:
      return v;
    case DampedMode::kNicFixedPoint: {
      // 32-bit fixed point with per-group block scaling: values below 2^24
      // live on the 16.16 grid; larger magnitudes shift the block exponent,
      // keeping a 24-bit mantissa.
      if (v == 0.0) {
        return 0.0;
      }
      const double abs_v = std::fabs(v);
      if (abs_v < 16777216.0) {  // 2^24.
        return std::nearbyint(v * kFixedScale) / kFixedScale;
      }
      const int exponent = std::ilogb(abs_v) - 23;
      const double scale = std::ldexp(1.0, exponent);
      return std::nearbyint(v / scale) * scale;
    }
    case DampedMode::kFloat32:
      return static_cast<float>(v);
  }
  return v;
}

double DampedStats::Factor(double dt) const {
  if (dt <= 0.0) {
    return 1.0;
  }
  switch (mode_) {
    case DampedMode::kExactDouble:
      return std::exp2(-lambda_ * dt);
    case DampedMode::kNicFixedPoint:
      // exp2 via a fractional LUT with linear interpolation, emitted on the
      // 16.16 grid; the exponent keeps full fixed-point precision.
      return std::nearbyint(std::exp2(-lambda_ * dt) * kFixedScale) / kFixedScale;
    case DampedMode::kFloat32:
      return static_cast<float>(std::exp2(-static_cast<float>(lambda_ * dt)));
  }
  return 1.0;
}

void DampedStats::DecayTo(double t_seconds) {
  if (!initialized_) {
    last_t_ = t_seconds;
    initialized_ = true;
    return;
  }
  const double factor = Factor(t_seconds - last_t_);
  if (mode_ == DampedMode::kNicFixedPoint) {
    // Welford-form state (§6.1): weight and central moment decay; the mean
    // is a location estimate and is decay-invariant.
    w_ = Quantize(w_ * factor);
    m2_ = Quantize(m2_ * factor);
  } else {
    w_ = Quantize(w_ * factor);
    ls_ = Quantize(ls_ * factor);
    ss_ = Quantize(ss_ * factor);
  }
  if (t_seconds > last_t_) {
    last_t_ = t_seconds;
  }
}

void DampedStats::AddWeighted(double x, double weight) {
  if (mode_ == DampedMode::kNicFixedPoint) {
    // Weighted damped Welford update: numerically stable (no SS/w - mean^2
    // cancellation), which is exactly why FE-NIC uses it (§6.1).
    const double new_w = Quantize(w_ + weight);
    if (new_w <= 0.0) {
      return;
    }
    const double delta = x - mean_;
    const double new_mean = Quantize(mean_ + weight * delta / new_w);
    m2_ = Quantize(m2_ + weight * delta * (x - new_mean));
    w_ = new_w;
    mean_ = new_mean;
    return;
  }
  // LS/SS form: the textbook decayed sums — and, in float32, the original
  // Kitsune implementation (AfterImage) whose variance cancels badly.
  w_ = Quantize(w_ + weight);
  ls_ = Quantize(ls_ + weight * x);
  ss_ = Quantize(ss_ + weight * x * x);
}

void DampedStats::Add(double x, double t_seconds) {
  if (initialized_ && t_seconds < last_t_) {
    // Late sample (MGPV delivers coarse groups in eviction order, so a
    // group's members can arrive out of timestamp order): decayed sums are
    // order-independent when the *incoming* sample is scaled by the decay
    // it would have accumulated since its own timestamp.
    AddWeighted(x, Factor(last_t_ - t_seconds));
    return;
  }
  DecayTo(t_seconds);
  AddWeighted(x, 1.0);
}

double DampedStats::mean() const {
  if (w_ <= 0.0) {
    return 0.0;
  }
  return mode_ == DampedMode::kNicFixedPoint ? mean_ : ls_ / w_;
}

double DampedStats::linear_sum() const {
  return mode_ == DampedMode::kNicFixedPoint ? mean_ * w_ : ls_;
}

double DampedStats::variance() const {
  if (w_ <= 0.0) {
    return 0.0;
  }
  if (mode_ == DampedMode::kNicFixedPoint) {
    const double v = m2_ / w_;
    return v < 0.0 ? 0.0 : v;
  }
  const double m = ls_ / w_;
  return std::fabs(ss_ / w_ - m * m);
}

double DampedStats::stddev() const { return std::sqrt(variance()); }

void DampedStats2D::DecayResidual(double t_seconds) {
  if (!initialized_) {
    last_t_ = t_seconds;
    initialized_ = true;
    return;
  }
  const double dt = t_seconds - last_t_;
  if (dt > 0.0) {
    sr_ *= std::exp2(-lambda_ * dt);
  }
  if (t_seconds > last_t_) {
    last_t_ = t_seconds;
  }
}

void DampedStats2D::AddA(double x, double t_seconds) {
  DecayResidual(t_seconds);
  b_.DecayTo(t_seconds);
  a_.Add(x, t_seconds);
  sr_ += (x - a_.mean()) * (0.0 - b_.mean());  // B contributes no sample now.
}

void DampedStats2D::AddB(double x, double t_seconds) {
  DecayResidual(t_seconds);
  a_.DecayTo(t_seconds);
  b_.Add(x, t_seconds);
  sr_ += (0.0 - a_.mean()) * (x - b_.mean());
}

double DampedStats2D::Magnitude() const {
  const double ma = a_.mean();
  const double mb = b_.mean();
  return std::sqrt(ma * ma + mb * mb);
}

double DampedStats2D::Radius() const {
  const double va = a_.variance();
  const double vb = b_.variance();
  return std::sqrt(va * va + vb * vb);
}

double DampedStats2D::Covariance() const {
  const double w = a_.weight() + b_.weight();
  return w > 0.0 ? sr_ / w : 0.0;
}

double DampedStats2D::CorrelationCoefficient() const {
  const double denom = a_.stddev() * b_.stddev();
  if (denom <= 0.0) {
    return 0.0;
  }
  const double cc = Covariance() / denom;
  if (cc > 1.0) {
    return 1.0;
  }
  if (cc < -1.0) {
    return -1.0;
  }
  return cc;
}

}  // namespace superfe
