// Naive (buffer-everything) feature computation, the baseline of Fig 15.
//
// The two-pass algorithms store the entire per-group data stream before
// computing statistics; memory therefore grows linearly with traffic while
// the streaming algorithms hold O(1) state per group.
#ifndef SUPERFE_STREAMING_NAIVE_H_
#define SUPERFE_STREAMING_NAIVE_H_

#include <cstdint>
#include <vector>

namespace superfe {

class NaiveStats {
 public:
  void Add(double x) { values_.push_back(x); }

  uint64_t count() const { return values_.size(); }
  double Sum() const;
  double Mean() const;      // First pass.
  double Variance() const;  // Second pass over the buffer.
  double Min() const;
  double Max() const;
  uint64_t DistinctCount() const;  // Exact cardinality via sort-unique.

  const std::vector<double>& values() const { return values_; }

  // Bytes buffered (8 per sample) — the Fig 15 memory metric.
  uint64_t MemoryBytes() const { return values_.size() * sizeof(double); }

 private:
  std::vector<double> values_;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_NAIVE_H_
