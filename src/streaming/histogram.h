// Histogram-based distribution features (§6.1): ft_hist is the base; f_pdf,
// f_cdf and ft_percent are derived from it. Supports the paper's fixed-width
// bins plus variable-width bins for better accuracy on skewed data.
#ifndef SUPERFE_STREAMING_HISTOGRAM_H_
#define SUPERFE_STREAMING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace superfe {

// Fixed-width histogram: `bins` buckets of `width` units starting at 0;
// values beyond the last edge clamp into the final bucket.
class FixedHistogram {
 public:
  FixedHistogram(double width, int bins);

  void Add(double x);
  // Bulk insert; bin-identical to n scalar Adds for all inputs on which
  // Add() is well defined (the division and truncation are exact).
  void AddBatch(const double* v, size_t n);

  uint64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  double width() const { return width_; }
  uint64_t count(int bin) const { return counts_[bin]; }

  // Normalized bucket frequencies (the feature vector form used by NPOD).
  std::vector<double> Pdf() const;
  // Cumulative distribution at bucket upper edges.
  std::vector<double> Cdf() const;
  // Fraction of samples <= x (ft_percent of a value).
  double PercentileOf(double x) const;
  // Approximate q-quantile (q in [0,1]) by linear interpolation in the
  // containing bucket.
  double Quantile(double q) const;

  uint32_t StateBytes() const { return static_cast<uint32_t>(counts_.size()) * 4; }

 private:
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Variable-width histogram over explicit bucket edges (ascending). Bucket i
// covers [edges[i], edges[i+1]); a catch-all final bucket covers the tail.
// SuperFE calibrates edges to the expected value distribution to improve
// accuracy (§6.1, "variable bin width").
class VariableHistogram {
 public:
  explicit VariableHistogram(std::vector<double> edges);

  // Builds edges as quantiles of a calibration sample, yielding
  // equal-probability buckets.
  static VariableHistogram FromCalibration(std::vector<double> sample, int bins);

  void Add(double x);

  uint64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  uint64_t count(int bin) const { return counts_[bin]; }
  const std::vector<double>& edges() const { return edges_; }

  std::vector<double> Pdf() const;
  double PercentileOf(double x) const;
  double Quantile(double q) const;

  uint32_t StateBytes() const { return static_cast<uint32_t>(counts_.size()) * 4; }

 private:
  std::vector<double> edges_;  // Size bins + 1 conceptually; last is +inf.
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_HISTOGRAM_H_
