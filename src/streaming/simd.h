// Runtime SIMD dispatch for the batch feature kernels.
//
// The batch kernels in streaming/batch.h are written against a fixed
// 4-virtual-lane accumulator contract (see batch.h), so every dispatch level
// produces bit-identical results; the level only changes how many lanes a
// hardware instruction carries per step. Detection is compile-time
// (x86_64 + !SUPERFE_DISABLE_SIMD) plus a one-time runtime probe
// (__builtin_cpu_supports), and the SUPERFE_NO_SIMD environment variable
// forces the portable scalar path for A/B verification.
#ifndef SUPERFE_STREAMING_SIMD_H_
#define SUPERFE_STREAMING_SIMD_H_

namespace superfe {

enum class SimdLevel {
  kScalar = 0,  // Portable C++ (also the SUPERFE_NO_SIMD / non-x86 path).
  kSse2 = 1,    // x86_64 baseline: two 2-wide double vectors per step.
  kAvx2 = 2,    // One 4-wide double vector per step.
};

// The level the batch kernels dispatch to. Cached after the first call
// (env + cpuid probed once); thread-safe.
SimdLevel ActiveSimdLevel();

// Test hook: pin the dispatch level (clamped to what the build/host
// supports — forcing kAvx2 on a non-AVX2 host stays at the detected level).
// Used by the fallback-parity property test to compare levels in-process.
void ForceSimdLevelForTest(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

}  // namespace superfe

#endif  // SUPERFE_STREAMING_SIMD_H_
