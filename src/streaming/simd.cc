#include "streaming/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace superfe {
namespace {

SimdLevel DetectSimdLevel() {
#if defined(SUPERFE_DISABLE_SIMD)
  return SimdLevel::kScalar;
#elif defined(__x86_64__)
  const char* env = std::getenv("SUPERFE_NO_SIMD");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    return SimdLevel::kScalar;
  }
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kSse2;  // SSE2 is part of the x86_64 baseline.
#else
  return SimdLevel::kScalar;
#endif
}

// -1 = not yet detected; otherwise holds a SimdLevel.
std::atomic<int> g_level{-1};

}  // namespace

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectSimdLevel());
    // Racing first calls all compute the same value; last store wins.
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

void ForceSimdLevelForTest(SimdLevel level) {
  const SimdLevel detected = DetectSimdLevel();
  if (static_cast<int>(level) > static_cast<int>(detected)) {
    level = detected;
  }
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace superfe
