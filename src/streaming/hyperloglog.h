// HyperLogLog cardinality estimation (§6.1, f_card).
//
// A 32-bit hash is computed per element: the first k bits index a bucket,
// the remaining 32-k bits feed a leading-zero count; the harmonic mean of
// bucket maxima yields the estimate, with the standard small/large range
// corrections from Flajolet et al.
#ifndef SUPERFE_STREAMING_HYPERLOGLOG_H_
#define SUPERFE_STREAMING_HYPERLOGLOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace superfe {

class HyperLogLog {
 public:
  // 2^index_bits buckets; 4 <= index_bits <= 16. The paper's FE-NIC keeps
  // 2^k one-byte states per group.
  explicit HyperLogLog(int index_bits = 10);

  // Adds an element by its 32-bit hash (the switch-computed hash can be
  // reused here, per the §6.2 optimization).
  void AddHash(uint32_t hash);

  // Convenience: hashes raw bytes with Murmur3 then adds.
  void Add(const void* data, size_t length);
  void AddU64(uint64_t value);

  // Bulk inserts, register-identical to elementwise Add calls (the register
  // max is order-independent); AddU64Batch vectorizes the Mix64 hashing.
  void AddHashBatch(const uint32_t* hashes, size_t n);
  void AddU64Batch(const uint64_t* values, size_t n);

  // Bias-corrected cardinality estimate.
  double Estimate() const;

  // Merges another sketch with identical geometry.
  void Merge(const HyperLogLog& other);

  int index_bits() const { return index_bits_; }
  uint32_t StateBytes() const { return static_cast<uint32_t>(registers_.size()); }

 private:
  int index_bits_;
  std::vector<uint8_t> registers_;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_HYPERLOGLOG_H_
