#include "streaming/hyperloglog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace superfe {

HyperLogLog::HyperLogLog(int index_bits) : index_bits_(index_bits) {
  assert(index_bits >= 4 && index_bits <= 16);
  registers_.assign(1u << index_bits, 0);
}

void HyperLogLog::AddHash(uint32_t hash) {
  const uint32_t index = hash >> (32 - index_bits_);
  const uint32_t tail = hash << index_bits_;
  // Leading-zero count of the remaining bits, +1 (rank of first set bit).
  const int value_bits = 32 - index_bits_;
  uint8_t rank;
  if (tail == 0) {
    rank = static_cast<uint8_t>(value_bits + 1);
  } else {
    rank = static_cast<uint8_t>(std::min(__builtin_clz(tail) + 1, value_bits + 1));
  }
  registers_[index] = std::max(registers_[index], rank);
}

void HyperLogLog::Add(const void* data, size_t length) {
  AddHash(Murmur3(data, length, 0x9c0ffee1u));
}

void HyperLogLog::AddU64(uint64_t value) {
  AddHash(static_cast<uint32_t>(Mix64(value) >> 32));
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  switch (index_bits_) {
    case 4:
      alpha = 0.673;
      break;
    case 5:
      alpha = 0.697;
      break;
    case 6:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / m);
      break;
  }

  double inverse_sum = 0.0;
  int zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::exp2(-static_cast<double>(r));
    if (r == 0) {
      ++zeros;
    }
  }
  double estimate = alpha * m * m / inverse_sum;

  if (estimate <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting.
    estimate = m * std::log(m / static_cast<double>(zeros));
  } else if (estimate > (1.0 / 30.0) * 4294967296.0) {
    // Large-range correction for 32-bit hashes.
    estimate = -4294967296.0 * std::log1p(-estimate / 4294967296.0);
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(other.index_bits_ == index_bits_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace superfe
