#include "streaming/welford.h"

#include <cmath>
#include <cstdlib>

namespace superfe {

void WelfordStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double WelfordStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Floor of log2 for positive values.
inline int ILog2(uint64_t v) { return 63 - __builtin_clzll(v); }

// Division-free update: drains `acc` into `target` in power-of-two
// quotient steps (q * den <= |acc|), leaving the residue in `acc`. This is
// the §6.2 division elimination: only comparisons, shifts and subtracts.
void DrainResidue(int64_t& acc, int64_t den, int64_t& target) {
  while (acc >= den) {
    // clz-derived shift; can overshoot by one, corrected by the compare.
    const int shift = ILog2(static_cast<uint64_t>(acc)) - ILog2(static_cast<uint64_t>(den));
    int64_t q = int64_t{1} << shift;
    if (q * den > acc) {
      q >>= 1;
    }
    target += q;
    acc -= q * den;
  }
  while (-acc >= den) {
    int shift = ILog2(static_cast<uint64_t>(-acc)) - ILog2(static_cast<uint64_t>(den));
    int64_t q = int64_t{1} << shift;
    if (q * den > -acc) {
      q >>= 1;
    }
    target -= q;
    acc += q * den;
  }
}

}  // namespace

void NicWelfordStats::Add(int64_t x) {
  ++n_;
  const int64_t n = static_cast<int64_t>(n_);
  const int64_t delta = x - mean_;
  if (n_ <= kExactThreshold) {
    mean_ += delta / n;
    ++divisions_;
    const int64_t delta2 = x - mean_;
    var_ += (delta * delta2 - var_) / n;
    ++divisions_;
    return;
  }
  // Division elimination (§6.2): accumulate the residue and apply it in
  // power-of-two steps; the mean then tracks within one unit of the exact
  // integer Welford recurrence without any divider use.
  mean_acc_ += delta;
  DrainResidue(mean_acc_, n, mean_);
  const int64_t delta2 = x - mean_;
  var_acc_ += delta * delta2 - var_;
  DrainResidue(var_acc_, n, var_);
}

}  // namespace superfe
