#include "streaming/naive.h"

#include <algorithm>

namespace superfe {

double NaiveStats::Sum() const {
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum;
}

double NaiveStats::Mean() const {
  return values_.empty() ? 0.0 : Sum() / static_cast<double>(values_.size());
}

double NaiveStats::Variance() const {
  if (values_.empty()) {
    return 0.0;
  }
  const double mean = Mean();
  double sum = 0.0;
  for (double v : values_) {
    sum += (v - mean) * (v - mean);
  }
  return sum / static_cast<double>(values_.size());
}

double NaiveStats::Min() const {
  return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
}

double NaiveStats::Max() const {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

uint64_t NaiveStats::DistinctCount() const {
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

}  // namespace superfe
