// Damped-window incremental statistics (Kitsune's incStat), used by the
// intrusion-detection applications (Kitsune, HELAD) whose features are
// computed over exponentially decaying windows.
//
// State per stream: weight w, linear sum LS, squared sum SS; all decayed by
// 2^(-lambda * dt) before each insert. 2D statistics additionally keep a
// decayed sum of residual products for covariance/correlation.
//
// Three arithmetic modes support the Fig 10 accuracy comparison:
//  - kExactDouble:   IEEE double (the standard feature definition).
//  - kNicFixedPoint: what FE-NIC runs — 16.16 fixed point with the decay
//                    exponent quantized to 1/16 steps (no FPU on the NFP).
//  - kFloat32:       the original Kitsune implementation's single-precision
//                    arithmetic (its |SS/w - mean^2| variance cancels badly).
//
// Table 5 does not list damped variants explicitly; SuperFE supports them as
// a `decay` parameter on reduce (documented in DESIGN.md §5).
#ifndef SUPERFE_STREAMING_DAMPED_H_
#define SUPERFE_STREAMING_DAMPED_H_

#include <cstddef>
#include <cstdint>

namespace superfe {

enum class DampedMode : uint8_t {
  kExactDouble = 0,
  kNicFixedPoint = 1,
  kFloat32 = 2,
};

// One-dimensional damped statistics.
class DampedStats {
 public:
  // lambda in 1/seconds of the 2^(-lambda*dt) decay (Kitsune uses
  // lambda in {5, 3, 1, 0.1, 0.01}).
  explicit DampedStats(double lambda, DampedMode mode = DampedMode::kExactDouble)
      : lambda_(lambda), mode_(mode) {}

  // Inserts value x observed at time t (seconds).
  void Add(double x, double t_seconds);
  // Bulk insert of n (value, time) pairs; bit-identical to n scalar Adds.
  void AddBatch(const double* x, const double* t_seconds, size_t n);

  // Decays state to time t without inserting.
  void DecayTo(double t_seconds);

  double weight() const { return w_; }
  double linear_sum() const;
  double mean() const;
  double variance() const;
  double stddev() const;
  double lambda() const { return lambda_; }
  double last_time() const { return last_t_; }
  DampedMode mode() const { return mode_; }

  // NIC state: w, LS, SS as 32-bit fixed point + last timestamp.
  static constexpr uint32_t kNicStateBytes = 16;

 private:
  // Applies the mode's rounding to a freshly computed state value.
  double Quantize(double v) const;
  // Decay factor 2^(-lambda dt) under the mode's arithmetic.
  double Factor(double dt) const;
  // Inserts a (possibly decayed) sample with the given weight.
  void AddWeighted(double x, double weight);

  double lambda_;
  DampedMode mode_;
  double w_ = 0.0;
  // kExactDouble / kFloat32 state: decayed linear and squared sums (the
  // original Kitsune AfterImage representation).
  double ls_ = 0.0;
  double ss_ = 0.0;
  // kNicFixedPoint state: Welford-form mean and decayed central moment
  // (numerically stable; what FE-NIC runs, §6.1).
  double mean_ = 0.0;
  double m2_ = 0.0;
  double last_t_ = 0.0;
  bool initialized_ = false;
};

// Two-dimensional damped statistics over a pair of streams (e.g. the two
// directions of a channel). Provides Kitsune's 2D features: magnitude,
// radius, approximate covariance and correlation coefficient.
class DampedStats2D {
 public:
  explicit DampedStats2D(double lambda, DampedMode mode = DampedMode::kExactDouble)
      : a_(lambda, mode), b_(lambda, mode), lambda_(lambda), mode_(mode) {}

  // Inserts a value into stream A or B at time t; the residual product uses
  // the other stream's current mean (Kitsune's incStat2D update).
  void AddA(double x, double t_seconds);
  void AddB(double x, double t_seconds);
  // Bulk insert: dir_sign[i] >= 0 routes to AddA, < 0 to AddB (matching the
  // exec direction-sign column); bit-identical to n scalar adds.
  void AddBatch(const double* x, const double* t_seconds,
                const double* dir_sign, size_t n);

  const DampedStats& a() const { return a_; }
  const DampedStats& b() const { return b_; }

  // sqrt(mean_a^2 + mean_b^2)
  double Magnitude() const;
  // sqrt(var_a^2 + var_b^2)
  double Radius() const;
  // Approximate covariance: SR / (w_a + w_b).
  double Covariance() const;
  // Correlation coefficient: cov / (std_a * std_b); 0 when degenerate.
  double CorrelationCoefficient() const;

  static constexpr uint32_t kNicStateBytes = 2 * DampedStats::kNicStateBytes + 8;

 private:
  void DecayResidual(double t_seconds);

  DampedStats a_;
  DampedStats b_;
  double lambda_;
  DampedMode mode_;
  double sr_ = 0.0;  // Decayed sum of residual products.
  double last_t_ = 0.0;
  bool initialized_ = false;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_DAMPED_H_
