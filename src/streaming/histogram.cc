#include "streaming/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace superfe {

FixedHistogram::FixedHistogram(double width, int bins) : width_(width) {
  assert(width > 0.0 && bins > 0);
  counts_.assign(bins, 0);
}

void FixedHistogram::Add(double x) {
  int bin = x <= 0.0 ? 0 : static_cast<int>(x / width_);
  bin = std::min(bin, bins() - 1);
  ++counts_[bin];
  ++total_;
}

std::vector<double> FixedHistogram::Pdf() const {
  std::vector<double> pdf(counts_.size(), 0.0);
  if (total_ == 0) {
    return pdf;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    pdf[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return pdf;
}

std::vector<double> FixedHistogram::Cdf() const {
  std::vector<double> cdf = Pdf();
  for (size_t i = 1; i < cdf.size(); ++i) {
    cdf[i] += cdf[i - 1];
  }
  return cdf;
}

double FixedHistogram::PercentileOf(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t below = 0;
  const int limit = std::min(x <= 0.0 ? 0 : static_cast<int>(x / width_), bins());
  for (int i = 0; i < limit; ++i) {
    below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double FixedHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (int i = 0; i < bins(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + frac) * width_;
    }
    cumulative = next;
  }
  return static_cast<double>(bins()) * width_;
}

VariableHistogram::VariableHistogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(!edges_.empty());
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  counts_.assign(edges_.size(), 0);  // Last bucket is the tail catch-all.
}

VariableHistogram VariableHistogram::FromCalibration(std::vector<double> sample, int bins) {
  assert(bins > 0);
  std::sort(sample.begin(), sample.end());
  std::vector<double> edges;
  edges.reserve(bins);
  edges.push_back(sample.empty() ? 0.0 : sample.front());
  for (int i = 1; i < bins; ++i) {
    const double q = static_cast<double>(i) / bins;
    const size_t idx =
        sample.empty() ? 0 : std::min(static_cast<size_t>(q * sample.size()), sample.size() - 1);
    const double edge = sample.empty() ? static_cast<double>(i) : sample[idx];
    if (edge > edges.back()) {
      edges.push_back(edge);
    }
  }
  return VariableHistogram(std::move(edges));
}

void VariableHistogram::Add(double x) {
  // First bucket whose lower edge exceeds x, minus one.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  size_t bin = it == edges_.begin() ? 0 : static_cast<size_t>(it - edges_.begin() - 1);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

std::vector<double> VariableHistogram::Pdf() const {
  std::vector<double> pdf(counts_.size(), 0.0);
  if (total_ == 0) {
    return pdf;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    pdf[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return pdf;
}

double VariableHistogram::PercentileOf(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t below = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double upper = i + 1 < edges_.size() ? edges_[i + 1] : INFINITY;
    if (upper <= x) {
      below += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double VariableHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double lo = edges_[i];
      const double hi = i + 1 < edges_.size() ? edges_[i + 1] : lo * 2.0 + 1.0;
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return edges_.back();
}

}  // namespace superfe
