// One-pass central moments up to order 4 (Pébay's update formulas),
// providing the f_skew and f_kur reducing functions of Table 5.
#ifndef SUPERFE_STREAMING_MOMENTS_H_
#define SUPERFE_STREAMING_MOMENTS_H_

#include <cstddef>
#include <cstdint>

namespace superfe {

class StreamingMoments {
 public:
  void Add(double x);
  // Bulk insert: two-pass chunk central powers merged with Pébay's order-4
  // formulas; ULP-level divergence from n scalar Adds (usually *more*
  // accurate). `compensated` uses Neumaier summation for the chunk pass.
  void AddBatch(const double* v, size_t n, bool compensated = false);

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  // Fisher skewness m3 / m2^1.5 (population).
  double skewness() const;
  // Kurtosis m4 / m2^2 (population, not excess).
  double kurtosis() const;

  static constexpr uint32_t kNicStateBytes = 20;  // n + 4 moments as 32-bit.

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

// One-pass co-moment over paired samples: exact streaming covariance and
// Pearson correlation (f_cov / f_pcc for bidirectional sequences aligned by
// sample index).
class StreamingCovariance {
 public:
  void Add(double x, double y);

  uint64_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  double covariance() const { return n_ > 0 ? c2_ / static_cast<double>(n_) : 0.0; }
  double variance_x() const { return n_ > 0 ? m2x_ / static_cast<double>(n_) : 0.0; }
  double variance_y() const { return n_ > 0 ? m2y_ / static_cast<double>(n_) : 0.0; }
  double correlation() const;

  static constexpr uint32_t kNicStateBytes = 28;

 private:
  uint64_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
  double c2_ = 0.0;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_MOMENTS_H_
