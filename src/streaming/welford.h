// Welford's single-pass mean/variance (§6.1, equations 1-2), plus the
// integer-arithmetic variant the FE-NIC actually runs after the
// division-elimination optimization (§6.2).
#ifndef SUPERFE_STREAMING_WELFORD_H_
#define SUPERFE_STREAMING_WELFORD_H_

#include <cstddef>
#include <cstdint>

namespace superfe {

// Exact one-pass mean/variance (floating point).
class WelfordStats {
 public:
  void Add(double x);
  // Bulk insert: two-pass chunk statistics merged with Chan's formulas
  // (vectorized, see streaming/batch.h). Result can differ from n scalar
  // Adds in the last few ULPs; `compensated` uses Neumaier summation to
  // close most of that gap at scalar speed.
  void AddBatch(const double* v, size_t n, bool compensated = false);

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  // Population variance (matches the paper's recurrence).
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

  // State footprint when offloaded: n, mean, variance as 32-bit registers.
  static constexpr uint32_t kNicStateBytes = 12;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Sum of squared deviations.
};

// The NFP variant: no FPU and a 1500-cycle software divider, so all state is
// integer and the per-sample division by n is eliminated (§6.2). A residue
// accumulator is drained into the mean in power-of-two quotient steps
// (comparisons + shifts only), which keeps the integer mean within one unit
// of the exact recurrence and still tracks non-stationary streams. The
// integer rounding is the (small) error Fig 10 measures for SuperFE.
class NicWelfordStats {
 public:
  void Add(int64_t x);
  // Bulk insert, bit-identical to n scalar Adds (the integer residue drain
  // is order-dependent by construction); amortizes reducer dispatch.
  void AddBatch(const int64_t* v, size_t n);
  // Same, rounding each double with llround first (the exec-path coercion).
  void AddBatchRounded(const double* v, size_t n);

  uint64_t count() const { return n_; }
  double mean() const { return static_cast<double>(mean_); }
  double variance() const { return var_ < 0 ? 0.0 : static_cast<double>(var_); }

  // Hardware divisions issued so far (feeds the cycle model; only the short
  // warm-up uses the divider).
  uint64_t divisions_issued() const { return divisions_; }

 private:
  // Below this count a real division is used; beyond it the residue
  // accumulator takes over.
  static constexpr uint64_t kExactThreshold = 64;

  uint64_t n_ = 0;
  int64_t mean_ = 0;
  int64_t var_ = 0;
  int64_t mean_acc_ = 0;
  int64_t var_acc_ = 0;
  uint64_t divisions_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_WELFORD_H_
