#include "streaming/moments.h"

#include <cmath>

namespace superfe {

void StreamingMoments::Add(double x) {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;

  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

double StreamingMoments::skewness() const {
  if (n_ == 0 || m2_ <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double StreamingMoments::kurtosis() const {
  if (n_ == 0 || m2_ <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_);
}

void StreamingCovariance::Add(double x, double y) {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  mean_x_ += dx / n;
  m2x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / n;
  m2y_ += dy * (y - mean_y_);
  c2_ += dx * (y - mean_y_);
}

double StreamingCovariance::correlation() const {
  const double sx = std::sqrt(variance_x());
  const double sy = std::sqrt(variance_y());
  if (sx <= 0.0 || sy <= 0.0) {
    return 0.0;
  }
  double r = covariance() / (sx * sy);
  if (r > 1.0) {
    r = 1.0;
  }
  if (r < -1.0) {
    r = -1.0;
  }
  return r;
}

}  // namespace superfe
