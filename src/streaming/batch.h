// Batch (SoA) primitives backing the AddBatch() bulk APIs of the §6.1
// streaming kernels.
//
// Determinism contract: every floating-point primitive here accumulates in
// exactly FOUR virtual lanes — lane l sums the elements with index ≡ l
// (mod 4) — and combines them as (l0+l1)+(l2+l3). The scalar fallback
// simulates the four lanes, SSE2 carries them as two 2-wide vectors, AVX2 as
// one 4-wide vector, so all dispatch levels (see streaming/simd.h) produce
// bit-identical results for the same input span. The containing translation
// unit is compiled with -ffp-contract=off so the scalar lanes cannot fuse
// into FMAs the vector paths don't issue.
//
// Order sensitivity: lane assignment depends on the span, so summing a
// stream in two AddBatch chunks can differ from one chunk in the last few
// ULPs (documented bound; see docs/ARCHITECTURE.md "Batch feature
// kernels"). Integer-domain primitives (Log2Bucket, HashU64Batch, min/max,
// histogram binning) are exact and split-invariant.
#ifndef SUPERFE_STREAMING_BATCH_H_
#define SUPERFE_STREAMING_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace superfe {
namespace batchkern {

// 4-lane sum of v[0..n).
double Sum(const double* v, size_t n);

// Sequential Neumaier-compensated sum: slower, but split-invariant to well
// under 1 ULP of the condition-free bound. Selected by
// ExecOptions::compensated_batch.
double SumCompensated(const double* v, size_t n);

// Sums of centered powers: m2 += (v-center)^2 and, when m3_out/m4_out are
// non-null, m3 += (v-center)^3, m4 += (v-center)^4. 4-lane (or sequential
// Neumaier when `compensated`). Outputs are overwritten, not accumulated.
void CentralPowers(const double* v, size_t n, double center, bool compensated,
                   double* m2_out, double* m3_out, double* m4_out);

// Min and max of v[0..n). No-op when n == 0. Exact (order-independent).
void MinMax(const double* v, size_t n, double* min_out, double* max_out);

// ft_percent log2 bucketer: 0 for v < 1 (and NaN), else
// min(floor(log2(v)) + 1, 31), computed from the IEEE-754 exponent field —
// exact at power-of-two boundaries where std::log2 rounding can misbucket.
inline int Log2Bucket(double v) {
  if (!(v >= 1.0)) {
    return 0;
  }
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int exponent = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  return exponent >= 31 ? 31 : exponent + 1;
}

// out[i] = Log2Bucket(v[i]); AVX2-vectorized bit extraction.
void Log2BucketBatch(const double* v, size_t n, int32_t* out);

// out[i] = the 32-bit HyperLogLog hash of v[i] (Mix64 finalizer, top half),
// matching HyperLogLog::AddU64 element-wise.
void HashU64Batch(const uint64_t* v, size_t n, uint32_t* out);

}  // namespace batchkern
}  // namespace superfe

#endif  // SUPERFE_STREAMING_BATCH_H_
