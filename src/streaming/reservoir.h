// Reservoir sampling (Vitter's algorithm R) backing the ft_sample
// synthesizing function of Table 5.
#ifndef SUPERFE_STREAMING_RESERVOIR_H_
#define SUPERFE_STREAMING_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace superfe {

template <typename T>
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed) : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void Add(const T& value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    const uint64_t idx = rng_.UniformU64(seen_);
    if (idx < capacity_) {
      sample_[idx] = value;
    }
  }

  uint64_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return sample_; }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace superfe

#endif  // SUPERFE_STREAMING_RESERVOIR_H_
