// Implementations of the batch primitives (batch.h) and the AddBatch()
// members of the streaming kernels. This TU is compiled with
// -ffp-contract=off (see CMakeLists.txt) so the scalar 4-lane loops round
// exactly like the SSE2/AVX2 paths — the determinism contract in batch.h
// depends on it.
#include "streaming/batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/hash.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/simd.h"
#include "streaming/welford.h"

#if defined(__x86_64__) && !defined(SUPERFE_DISABLE_SIMD)
#include <immintrin.h>
#define SUPERFE_X86_SIMD 1
#endif

namespace superfe {
namespace batchkern {
namespace {

// ---------------------------------------------------------------------------
// Sum
// ---------------------------------------------------------------------------

double SumScalar(const double* v, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += v[i];
    l1 += v[i + 1];
    l2 += v[i + 2];
    l3 += v[i + 3];
  }
  if (i < n) l0 += v[i++];
  if (i < n) l1 += v[i++];
  if (i < n) l2 += v[i];
  return (l0 + l1) + (l2 + l3);
}

#ifdef SUPERFE_X86_SIMD
double SumSse2(const double* v, size_t n) {
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a01 = _mm_add_pd(a01, _mm_loadu_pd(v + i));
    a23 = _mm_add_pd(a23, _mm_loadu_pd(v + i + 2));
  }
  double lanes[4];
  _mm_storeu_pd(lanes, a01);
  _mm_storeu_pd(lanes + 2, a23);
  for (int l = 0; i < n; ++i, ++l) lanes[l] += v[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) double SumAvx2(const double* v, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int l = 0; i < n; ++i, ++l) lanes[l] += v[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}
#endif  // SUPERFE_X86_SIMD

// ---------------------------------------------------------------------------
// Central powers
// ---------------------------------------------------------------------------

void CentralM2Scalar(const double* v, size_t n, double c, double* m2_out) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = v[i] - c;
    const double d1 = v[i + 1] - c;
    const double d2 = v[i + 2] - c;
    const double d3 = v[i + 3] - c;
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  if (i < n) {
    const double d = v[i++] - c;
    l0 += d * d;
  }
  if (i < n) {
    const double d = v[i++] - c;
    l1 += d * d;
  }
  if (i < n) {
    const double d = v[i] - c;
    l2 += d * d;
  }
  *m2_out = (l0 + l1) + (l2 + l3);
}

void CentralM234Scalar(const double* v, size_t n, double c, double* m2_out,
                       double* m3_out, double* m4_out) {
  double a2[4] = {0.0, 0.0, 0.0, 0.0};
  double a3[4] = {0.0, 0.0, 0.0, 0.0};
  double a4[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double d = v[i + l] - c;
      const double d2 = d * d;
      a2[l] += d2;
      a3[l] += d2 * d;
      a4[l] += d2 * d2;
    }
  }
  for (int l = 0; i < n; ++i, ++l) {
    const double d = v[i] - c;
    const double d2 = d * d;
    a2[l] += d2;
    a3[l] += d2 * d;
    a4[l] += d2 * d2;
  }
  *m2_out = (a2[0] + a2[1]) + (a2[2] + a2[3]);
  *m3_out = (a3[0] + a3[1]) + (a3[2] + a3[3]);
  *m4_out = (a4[0] + a4[1]) + (a4[2] + a4[3]);
}

#ifdef SUPERFE_X86_SIMD
void CentralM2Sse2(const double* v, size_t n, double c, double* m2_out) {
  const __m128d cc = _mm_set1_pd(c);
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(v + i), cc);
    const __m128d d23 = _mm_sub_pd(_mm_loadu_pd(v + i + 2), cc);
    a01 = _mm_add_pd(a01, _mm_mul_pd(d01, d01));
    a23 = _mm_add_pd(a23, _mm_mul_pd(d23, d23));
  }
  double lanes[4];
  _mm_storeu_pd(lanes, a01);
  _mm_storeu_pd(lanes + 2, a23);
  for (int l = 0; i < n; ++i, ++l) {
    const double d = v[i] - c;
    lanes[l] += d * d;
  }
  *m2_out = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) void CentralM2Avx2(const double* v, size_t n,
                                                  double c, double* m2_out) {
  const __m256d cc = _mm256_set1_pd(c);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v + i), cc);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int l = 0; i < n; ++i, ++l) {
    const double d = v[i] - c;
    lanes[l] += d * d;
  }
  *m2_out = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) void CentralM234Avx2(const double* v, size_t n,
                                                     double c, double* m2_out,
                                                     double* m3_out,
                                                     double* m4_out) {
  const __m256d cc = _mm256_set1_pd(c);
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  __m256d acc4 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v + i), cc);
    const __m256d d2 = _mm256_mul_pd(d, d);
    acc2 = _mm256_add_pd(acc2, d2);
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d2, d));
    acc4 = _mm256_add_pd(acc4, _mm256_mul_pd(d2, d2));
  }
  double l2[4], l3[4], l4[4];
  _mm256_storeu_pd(l2, acc2);
  _mm256_storeu_pd(l3, acc3);
  _mm256_storeu_pd(l4, acc4);
  for (int l = 0; i < n; ++i, ++l) {
    const double d = v[i] - c;
    const double d2 = d * d;
    l2[l] += d2;
    l3[l] += d2 * d;
    l4[l] += d2 * d2;
  }
  *m2_out = (l2[0] + l2[1]) + (l2[2] + l2[3]);
  *m3_out = (l3[0] + l3[1]) + (l3[2] + l3[3]);
  *m4_out = (l4[0] + l4[1]) + (l4[2] + l4[3]);
}
#endif  // SUPERFE_X86_SIMD

// Sequential Neumaier accumulator for the compensated variants.
struct Neumaier {
  double sum = 0.0;
  double comp = 0.0;
  void Add(double x) {
    const double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  double Result() const { return sum + comp; }
};

// ---------------------------------------------------------------------------
// Min / max
// ---------------------------------------------------------------------------

void MinMaxScalar(const double* v, size_t n, double* min_out, double* max_out) {
  double lo = v[0];
  double hi = v[0];
  for (size_t i = 1; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  *min_out = lo;
  *max_out = hi;
}

#ifdef SUPERFE_X86_SIMD
__attribute__((target("avx2"))) void MinMaxAvx2(const double* v, size_t n,
                                                double* min_out,
                                                double* max_out) {
  __m256d lo = _mm256_set1_pd(v[0]);
  __m256d hi = lo;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    lo = _mm256_min_pd(lo, x);
    hi = _mm256_max_pd(hi, x);
  }
  double lolanes[4], hilanes[4];
  _mm256_storeu_pd(lolanes, lo);
  _mm256_storeu_pd(hilanes, hi);
  double mn = lolanes[0], mx = hilanes[0];
  for (int l = 1; l < 4; ++l) {
    mn = lolanes[l] < mn ? lolanes[l] : mn;
    mx = hilanes[l] > mx ? hilanes[l] : mx;
  }
  for (; i < n; ++i) {
    mn = v[i] < mn ? v[i] : mn;
    mx = v[i] > mx ? v[i] : mx;
  }
  *min_out = mn;
  *max_out = mx;
}
#endif  // SUPERFE_X86_SIMD

// ---------------------------------------------------------------------------
// Log2 bucketer / HLL hashing (integer domain — exact at every level)
// ---------------------------------------------------------------------------

#ifdef SUPERFE_X86_SIMD
__attribute__((target("avx2"))) void Log2BucketBatchAvx2(const double* v,
                                                         size_t n,
                                                         int32_t* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256i exp_mask = _mm256_set1_epi64x(0x7ff);
  const __m256i bias_minus_one = _mm256_set1_epi64x(1022);
  const __m256i cap_e = _mm256_set1_epi64x(1053);  // e > 1053 => bucket > 31.
  const __m256i thirty_one = _mm256_set1_epi64x(31);
  const __m256i pack_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256i bits = _mm256_castpd_si256(x);
    const __m256i e =
        _mm256_and_si256(_mm256_srli_epi64(bits, 52), exp_mask);
    __m256i bucket = _mm256_sub_epi64(e, bias_minus_one);
    bucket = _mm256_blendv_epi8(bucket, thirty_one,
                                _mm256_cmpgt_epi64(e, cap_e));
    // Zero the lanes where !(x >= 1) — covers x < 1, negatives, and NaN.
    bucket = _mm256_and_si256(
        bucket, _mm256_castpd_si256(_mm256_cmp_pd(x, one, _CMP_GE_OQ)));
    const __m128i packed = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(bucket, pack_even));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    out[i] = Log2Bucket(v[i]);
  }
}

// Low 64 bits of a 64x64 multiply, four lanes at a time.
__attribute__((target("avx2"))) inline __m256i Mul64Lo(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void HashU64BatchAvx2(const uint64_t* v,
                                                      size_t n,
                                                      uint32_t* out) {
  // Mix64 is the splitmix64 finalizer; constants must match common/hash.cc.
  const __m256i inc = _mm256_set1_epi64x(0x9e3779b97f4a7c15ull);
  const __m256i mul1 = _mm256_set1_epi64x(0xbf58476d1ce4e5b9ull);
  const __m256i mul2 = _mm256_set1_epi64x(0x94d049bb133111ebull);
  const __m256i pack_odd = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    x = _mm256_add_epi64(x, inc);
    x = Mul64Lo(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), mul1);
    x = Mul64Lo(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), mul2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    // The HLL hash is the top 32 bits: the odd dwords of each 64-bit lane.
    const __m128i packed =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(x, pack_odd));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint32_t>(Mix64(v[i]) >> 32);
  }
}
#endif  // SUPERFE_X86_SIMD

}  // namespace

double Sum(const double* v, size_t n) {
#ifdef SUPERFE_X86_SIMD
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return SumAvx2(v, n);
    case SimdLevel::kSse2:
      return SumSse2(v, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return SumScalar(v, n);
}

double SumCompensated(const double* v, size_t n) {
  Neumaier acc;
  for (size_t i = 0; i < n; ++i) {
    acc.Add(v[i]);
  }
  return acc.Result();
}

void CentralPowers(const double* v, size_t n, double center, bool compensated,
                   double* m2_out, double* m3_out, double* m4_out) {
  if (compensated) {
    Neumaier a2, a3, a4;
    for (size_t i = 0; i < n; ++i) {
      const double d = v[i] - center;
      const double d2 = d * d;
      a2.Add(d2);
      if (m3_out != nullptr) {
        a3.Add(d2 * d);
        a4.Add(d2 * d2);
      }
    }
    *m2_out = a2.Result();
    if (m3_out != nullptr) {
      *m3_out = a3.Result();
      *m4_out = a4.Result();
    }
    return;
  }
  if (m3_out == nullptr) {
#ifdef SUPERFE_X86_SIMD
    switch (ActiveSimdLevel()) {
      case SimdLevel::kAvx2:
        CentralM2Avx2(v, n, center, m2_out);
        return;
      case SimdLevel::kSse2:
        CentralM2Sse2(v, n, center, m2_out);
        return;
      case SimdLevel::kScalar:
        break;
    }
#endif
    CentralM2Scalar(v, n, center, m2_out);
    return;
  }
#ifdef SUPERFE_X86_SIMD
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    CentralM234Avx2(v, n, center, m2_out, m3_out, m4_out);
    return;
  }
#endif
  CentralM234Scalar(v, n, center, m2_out, m3_out, m4_out);
}

void MinMax(const double* v, size_t n, double* min_out, double* max_out) {
  if (n == 0) {
    return;
  }
#ifdef SUPERFE_X86_SIMD
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    MinMaxAvx2(v, n, min_out, max_out);
    return;
  }
#endif
  MinMaxScalar(v, n, min_out, max_out);
}

void Log2BucketBatch(const double* v, size_t n, int32_t* out) {
#ifdef SUPERFE_X86_SIMD
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    Log2BucketBatchAvx2(v, n, out);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    out[i] = Log2Bucket(v[i]);
  }
}

void HashU64Batch(const uint64_t* v, size_t n, uint32_t* out) {
#ifdef SUPERFE_X86_SIMD
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    HashU64BatchAvx2(v, n, out);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(Mix64(v[i]) >> 32);
  }
}

}  // namespace batchkern

// ---------------------------------------------------------------------------
// AddBatch members: chunked two-pass + merge for the double kernels,
// bit-exact sequential application for the integer/fixed-point kernels
// (their speedup comes from amortizing per-cell dispatch, not reordering).
// ---------------------------------------------------------------------------

void WelfordStats::AddBatch(const double* v, size_t n, bool compensated) {
  if (n == 0) {
    return;
  }
  const double nb = static_cast<double>(n);
  const double sum =
      compensated ? batchkern::SumCompensated(v, n) : batchkern::Sum(v, n);
  const double mean_b = sum / nb;
  double m2_b = 0.0;
  batchkern::CentralPowers(v, n, mean_b, compensated, &m2_b, nullptr, nullptr);
  if (n_ == 0) {
    n_ = n;
    mean_ = mean_b;
    m2_ = m2_b;
    return;
  }
  // Chan et al. pairwise merge of (n_, mean_, m2_) with the chunk stats.
  const double na = static_cast<double>(n_);
  const double nt = na + nb;
  const double delta = mean_b - mean_;
  mean_ += delta * (nb / nt);
  m2_ += m2_b + delta * delta * (na * nb / nt);
  n_ += n;
}

void NicWelfordStats::AddBatch(const int64_t* v, size_t n) {
  // Integer residue-drain state is inherently sequential; the batch form is
  // bit-identical to n scalar Adds and exists to amortize reducer dispatch.
  for (size_t i = 0; i < n; ++i) {
    Add(v[i]);
  }
}

void NicWelfordStats::AddBatchRounded(const double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    Add(static_cast<int64_t>(std::llround(v[i])));
  }
}

void DampedStats::AddBatch(const double* x, const double* t_seconds,
                           size_t n) {
  // Decay factors depend on consecutive timestamp deltas — sequential and
  // bit-identical to n scalar Adds.
  for (size_t i = 0; i < n; ++i) {
    Add(x[i], t_seconds[i]);
  }
}

void DampedStats2D::AddBatch(const double* x, const double* t_seconds,
                             const double* dir_sign, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (dir_sign[i] >= 0.0) {
      AddA(x[i], t_seconds[i]);
    } else {
      AddB(x[i], t_seconds[i]);
    }
  }
}

void HyperLogLog::AddHashBatch(const uint32_t* hashes, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    AddHash(hashes[i]);
  }
}

void HyperLogLog::AddU64Batch(const uint64_t* values, size_t n) {
  constexpr size_t kChunk = 256;
  uint32_t hashes[kChunk];
  while (n > 0) {
    const size_t m = n < kChunk ? n : kChunk;
    batchkern::HashU64Batch(values, m, hashes);
    AddHashBatch(hashes, m);
    values += m;
    n -= m;
  }
}

namespace {

#ifdef SUPERFE_X86_SIMD
__attribute__((target("avx2"))) void HistogramAvx2(const double* v, size_t n,
                                                   double width, int top_bin,
                                                   uint64_t* counts) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d w = _mm256_set1_pd(width);
  const __m128i top = _mm_set1_epi32(top_bin);
  const __m128i zero32 = _mm_setzero_si128();
  const __m256i pack_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  alignas(16) int32_t b[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    // Truncating convert == the scalar (int) cast; IEEE division is exact
    // either way. Overflow/NaN produce INT_MIN, removed by the lower clamp.
    const __m128i q = _mm256_cvttpd_epi32(_mm256_div_pd(x, w));
    __m128i bin = _mm_min_epi32(_mm_max_epi32(q, zero32), top);
    const __m256i le0 =
        _mm256_castpd_si256(_mm256_cmp_pd(x, zero, _CMP_LE_OQ));
    bin = _mm_andnot_si128(
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(le0, pack_even)),
        bin);
    _mm_store_si128(reinterpret_cast<__m128i*>(b), bin);
    ++counts[b[0]];
    ++counts[b[1]];
    ++counts[b[2]];
    ++counts[b[3]];
  }
  for (; i < n; ++i) {
    const double x = v[i];
    int bin = x <= 0.0 ? 0 : static_cast<int>(x / width);
    bin = bin > top_bin ? top_bin : (bin < 0 ? 0 : bin);
    ++counts[bin];
  }
}
#endif  // SUPERFE_X86_SIMD

}  // namespace

void FixedHistogram::AddBatch(const double* v, size_t n) {
  const int top_bin = bins() - 1;
  uint64_t* counts = counts_.data();
#ifdef SUPERFE_X86_SIMD
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    HistogramAvx2(v, n, width_, top_bin, counts);
    total_ += n;
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    const double x = v[i];
    int bin = x <= 0.0 ? 0 : static_cast<int>(x / width_);
    // Same clamp as Add() plus a lower clamp that only differs on inputs
    // where the scalar (int) cast is undefined (x / width > INT_MAX).
    bin = bin > top_bin ? top_bin : (bin < 0 ? 0 : bin);
    ++counts[bin];
  }
  total_ += n;
}

void StreamingMoments::AddBatch(const double* v, size_t n, bool compensated) {
  if (n == 0) {
    return;
  }
  const double nb = static_cast<double>(n);
  const double sum =
      compensated ? batchkern::SumCompensated(v, n) : batchkern::Sum(v, n);
  const double mean_b = sum / nb;
  double m2_b = 0.0, m3_b = 0.0, m4_b = 0.0;
  batchkern::CentralPowers(v, n, mean_b, compensated, &m2_b, &m3_b, &m4_b);
  if (n_ == 0) {
    n_ = n;
    mean_ = mean_b;
    m2_ = m2_b;
    m3_ = m3_b;
    m4_ = m4_b;
    return;
  }
  // Pébay's pairwise combination of central moments up to order 4.
  const double na = static_cast<double>(n_);
  const double nt = na + nb;
  const double delta = mean_b - mean_;
  const double d2 = delta * delta;
  const double na_nb_nt = na * nb / nt;
  const double m4n =
      m4_ + m4_b +
      d2 * d2 * na_nb_nt * (na * na - na * nb + nb * nb) / (nt * nt) +
      6.0 * d2 * (na * na * m2_b + nb * nb * m2_) / (nt * nt) +
      4.0 * delta * (na * m3_b - nb * m3_) / nt;
  const double m3n = m3_ + m3_b + delta * d2 * na_nb_nt * (na - nb) / nt +
                     3.0 * delta * (na * m2_b - nb * m2_) / nt;
  mean_ += delta * (nb / nt);
  m2_ += m2_b + d2 * na_nb_nt;
  m3_ = m3n;
  m4_ = m4n;
  n_ += n;
}

}  // namespace superfe
