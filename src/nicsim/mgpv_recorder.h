// MgpvRecorder: an MgpvSink that captures the switch's output stream
// (MGPV reports and FG-sync messages, in emission order) so it can be
// replayed into other sinks. Used by the parallel-cluster tests and bench
// to deliver a bit-identical message sequence to serial and multi-threaded
// pipelines and compare their outputs.
#ifndef SUPERFE_NICSIM_MGPV_RECORDER_H_
#define SUPERFE_NICSIM_MGPV_RECORDER_H_

#include <vector>

#include "switchsim/evict.h"

namespace superfe {

class MgpvRecorder : public MgpvSink {
 public:
  struct Message {
    enum class Kind { kReport, kSync };
    Kind kind = Kind::kReport;
    MgpvReport report;
    FgSyncMessage sync;
  };

  void OnMgpv(const MgpvReport& report) override {
    Message msg;
    msg.kind = Message::Kind::kReport;
    msg.report = report;
    messages_.push_back(std::move(msg));
    cells_ += report.cells.size();
  }

  void OnFgSync(const FgSyncMessage& sync) override {
    Message msg;
    msg.kind = Message::Kind::kSync;
    msg.sync = sync;
    messages_.push_back(std::move(msg));
  }

  // Replays the captured stream, preserving the report/sync interleaving.
  void DeliverTo(MgpvSink& sink) const {
    for (const auto& msg : messages_) {
      if (msg.kind == Message::Kind::kReport) {
        sink.OnMgpv(msg.report);
      } else {
        sink.OnFgSync(msg.sync);
      }
    }
  }

  const std::vector<Message>& messages() const { return messages_; }
  uint64_t cells() const { return cells_; }

 private:
  std::vector<Message> messages_;
  uint64_t cells_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_MGPV_RECORDER_H_
