#include "nicsim/nic_cluster.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/affinity.h"
#include "common/logging.h"
#include "obs/cycles.h"

namespace superfe {

namespace {

// Wall-clock steady timestamp for worker heartbeats / watchdog staleness.
uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Injected queue saturation: attempts before the report is shed. The
// saturation window is trace-time, so the retries deterministically fail
// inside it — the loop models bounded retry/backoff, not a real race.
constexpr int kSaturationRetries = 3;

}  // namespace

Result<std::unique_ptr<NicCluster>> NicCluster::Create(const CompiledPolicy& compiled,
                                                       const FeNicConfig& config,
                                                       size_t nic_count, FeatureSink* sink) {
  return Create(compiled, config, nic_count, sink, NicClusterOptions{});
}

Result<std::unique_ptr<NicCluster>> NicCluster::Create(const CompiledPolicy& compiled,
                                                       const FeNicConfig& config,
                                                       size_t nic_count, FeatureSink* sink,
                                                       const NicClusterOptions& options) {
  if (nic_count == 0) {
    return Status::InvalidArgument("a NIC cluster needs at least one member");
  }
  // Parallel members emit concurrently into the shared sink; interpose a
  // serializing wrapper so the user sink sees one call at a time.
  std::unique_ptr<SerializingSink> serializing;
  FeatureSink* member_sink = sink;
  if (options.parallel) {
    serializing = std::make_unique<SerializingSink>(sink);
    member_sink = serializing.get();
  }
  std::vector<std::unique_ptr<FeNic>> nics;
  nics.reserve(nic_count);
  for (size_t i = 0; i < nic_count; ++i) {
    auto nic = FeNic::Create(compiled, config, member_sink);
    if (!nic.ok()) {
      return nic.status();
    }
    nics.push_back(std::move(nic).value());
  }
  return std::unique_ptr<NicCluster>(
      new NicCluster(std::move(nics), options, std::move(serializing)));
}

NicCluster::NicCluster(std::vector<std::unique_ptr<FeNic>> nics,
                       const NicClusterOptions& options,
                       std::unique_ptr<SerializingSink> serializing_sink)
    : nics_(std::move(nics)),
      options_(options),
      serializing_sink_(std::move(serializing_sink)) {
  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < nics_.size(); ++i) {
      FeNicObs nic_obs =
          FeNicObs::Create(options_.metrics, static_cast<uint32_t>(i), options_.profile);
      nic_obs.flush_packets = options_.obs_batch_packets;
      nics_[i]->set_obs(nic_obs);
    }
    if (options_.latency_clock != nullptr) {
      lat_service_ = options_.metrics->GetLatencyHistogram(
          "superfe_latency_worker_service_ns", {},
          "Trace-time elapsed while a NIC worker processed one report");
      lat_e2e_ = options_.metrics->GetLatencyHistogram(
          "superfe_latency_e2e_ns", {},
          "First packet ingest to feature emit, end to end (trace-time ns)");
    }
  }
  if (!options_.parallel) {
    return;
  }
  if (options_.enqueue_batch == 0) {
    options_.enqueue_batch = 1;
  }
  if (options_.worker_lane_base == 0) {
    options_.worker_lane_base = options_.trace_lane_base + 1;  // Historical layout.
  }
  workers_.reserve(nics_.size());
  for (size_t i = 0; i < nics_.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_capacity));
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const obs::LabelSet labels = {{"worker", std::to_string(i)}};
      w.obs_batches = reg->GetCounter("superfe_cluster_batches_enqueued_total", labels,
                                      "Report batches enqueued to the worker");
      w.obs_reports = reg->GetCounter("superfe_cluster_reports_enqueued_total", labels,
                                      "Reports enqueued to the worker");
      w.obs_reports_dropped =
          reg->GetCounter("superfe_cluster_reports_dropped_total", labels,
                          "Report batches dropped on overflow (drop_on_overflow)");
      w.obs_cells_dropped = reg->GetCounter("superfe_cluster_cells_dropped_total", labels,
                                            "Cells inside dropped reports");
      w.obs_syncs = reg->GetCounter("superfe_cluster_syncs_enqueued_total", labels,
                                    "FG syncs broadcast to the worker");
      w.obs_queue_depth =
          reg->GetGauge("superfe_cluster_queue_depth", labels, "Live worker queue depth");
      w.obs_queue_watermark = reg->GetGauge("superfe_cluster_queue_high_watermark", labels,
                                            "Deepest the worker queue has been");
      w.queue.set_stall_counter(
          reg->GetCounter("superfe_cluster_queue_stalls_total", labels,
                          "Pushes that found the worker queue full and waited"));
      if (options_.latency_clock != nullptr) {
        w.obs_queue_wait = reg->GetLatencyHistogram(
            "superfe_latency_queue_wait_ns", labels,
            "Report wait from MGPV eviction to worker dequeue (trace-time ns)");
      }
    }
  }
  if (options_.metrics != nullptr) {
    obs_watchdog_stalls_ = options_.metrics->GetCounter(
        "superfe_cluster_watchdog_stalls_total", {},
        "Workers the watchdog saw with queued messages but no progress");
    if (options_.profile) {
      obs_cycles_dequeue_ =
          options_.metrics->GetCounter("superfe_cycles_total", {{"stage", "dequeue"}},
                                       "Measured worker cycles by pipeline stage");
    }
  }
  default_producer_.reset(new Producer(this, options_.trace_lane_base));
  // Spawn only after every queue exists: a worker never touches a sibling's
  // state, but WorkerLoop indexes workers_ which must be fully built.
  const uint64_t now_ns = SteadyNowNs();
  for (auto& worker : workers_) {
    worker->last_progress_ns.store(now_ns, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < nics_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
  if (options_.watchdog_interval_ms > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
}

NicCluster::~NicCluster() {
  if (watchdog_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }
  if (workers_.empty()) {
    return;
  }
  default_producer_->Close();
  // Release any survivor parked on a handoff fence whose mark will never be
  // processed (e.g. teardown after an abandoned flush): shutdown must not
  // wedge behind a fence.
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    fence_shutdown_.store(true, std::memory_order_relaxed);
  }
  fence_cv_.notify_all();
  for (auto& worker : workers_) {
    WorkerMessage stop;
    stop.kind = WorkerMessage::Kind::kStop;
    worker->queue.PushUnbounded(std::move(stop));
  }
  // Diagnose-then-join: the join itself must stay blocking (a detached
  // worker would touch freed cluster state), but with a flush timeout
  // configured we first wait that long for clean exits and dump per-worker
  // progress if any worker is still wedged, so a hung shutdown is at least
  // attributable.
  if (options_.flush_timeout_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.flush_timeout_ms);
    bool all_exited = false;
    while (!all_exited && std::chrono::steady_clock::now() < deadline) {
      all_exited = true;
      for (auto& worker : workers_) {
        if (!worker->exited.load(std::memory_order_acquire)) {
          all_exited = false;
          break;
        }
      }
      if (!all_exited) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (!all_exited) {
      DumpStallDiagnostics("shutdown join deadline exceeded");
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void NicCluster::WorkerLoop(size_t index) {
  if (options_.pin_threads) {
    PinCurrentThreadToCpu(static_cast<uint32_t>(index));
  }
  FeNic& nic = *nics_[index];
  Worker& self = *workers_[index];
  FaultInjector* injector = options_.injector;
  obs::TraceRecorder* trace = options_.trace;
  const size_t lane = options_.worker_lane_base + index;
  // Worker-local obs block: the latency observations below accumulate here
  // and fold into the shared histograms once per dequeued batch (manual
  // flush — cadence 0), at flush barriers, and at stop. The same block
  // carries the {stage="dequeue"} cycle counter, which brackets the
  // blocking Pop() and therefore includes idle wait — an idle worker shows
  // up as dequeue-dominated, which is exactly the signal wanted.
  obs::WorkerObsBlock block;
  block.Init(options_.metrics, "worker-" + std::to_string(index), 0);
  obs::WorkerObsBlock::LatencyCell* queue_wait = block.BindLatency(self.obs_queue_wait);
  obs::WorkerObsBlock::LatencyCell* service = block.BindLatency(lat_service_);
  obs::WorkerObsBlock::LatencyCell* e2e = block.BindLatency(lat_e2e_);
  obs::WorkerObsBlock::CounterCell* cycles_dequeue = block.BindCounter(obs_cycles_dequeue_);
  for (;;) {
    const uint64_t dequeue_start = cycles_dequeue != nullptr ? obs::ReadCycles() : 0;
    WorkerMessage msg = self.queue.Pop();
    if (cycles_dequeue != nullptr) {
      cycles_dequeue->delta += obs::ReadCycles() - dequeue_start;
    }
    switch (msg.kind) {
      case WorkerMessage::Kind::kReports: {
        if (injector != nullptr && !msg.reports.empty()) {
          // Injected stall: wall-clock sleep before processing. Affects
          // only scheduling (watchdog fodder), never which reports flow.
          const uint64_t stall_ms = injector->TakeStallMs(
              static_cast<uint32_t>(index), msg.reports.front().evict_ns);
          if (stall_ms > 0) {
            if (trace != nullptr) {
              trace->Instant(lane, "fault", "worker_stall", "ms", stall_ms);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
          }
        }
        obs::TraceRecorder::Span span(trace, lane, "worker", "process_batch");
        span.SetArg("reports", msg.reports.size());
        obs::TraceClock* clock = options_.latency_clock;
        if (clock == nullptr) {
          // One locked pass over the whole dequeued batch: with batch
          // kernels on, group runs span report boundaries (SoA path).
          nic.OnMgpvBatch(msg.reports.data(), msg.reports.size());
          block.NotePackets(msg.reports.size());
          block.Flush();  // Per-batch flush: the hot tier's defining cadence.
          break;
        }
        // All stages in trace time. The clock is monotone, the queue's
        // release/acquire edge orders it past the producer's value at push,
        // and the report's stamps were taken from the same running maximum —
        // so the subtractions below cannot underflow; the guards are
        // defensive only.
        const uint64_t dequeue_ns = clock->Now();
        for (const auto& report : msg.reports) {
          obs::Observe(queue_wait,
                       dequeue_ns > report.evict_ns ? dequeue_ns - report.evict_ns : 0);
          const uint64_t before_ns = clock->Now();
          nic.OnMgpv(report);
          const uint64_t after_ns = clock->Now();
          obs::Observe(service, after_ns - before_ns);
          obs::Observe(e2e, after_ns > report.first_ingest_ns
                                ? after_ns - report.first_ingest_ns
                                : 0);
        }
        block.NotePackets(msg.reports.size());
        block.Flush();  // Per-batch flush: the hot tier's defining cadence.
        break;
      }
      case WorkerMessage::Kind::kSync:
        nic.OnFgSync(msg.sync);
        break;
      case WorkerMessage::Kind::kFenceMark: {
        std::lock_guard<std::mutex> lock(fence_mu_);
        fence_marks_.insert(msg.fence_id);
        fence_cv_.notify_all();
        break;
      }
      case WorkerMessage::Kind::kFenceWait: {
        // Park until the dead member's worker has drained everything ahead
        // of the matching mark — then the failed-over range may flow here
        // without any group's reports overtaking each other. The wait-for
        // graph between members is acyclic (mutual failover would need each
        // member to crash before the other was detected), so this cannot
        // deadlock; fence_shutdown_ releases us at teardown regardless.
        std::unique_lock<std::mutex> lock(fence_mu_);
        fence_cv_.wait(lock, [&] {
          return fence_marks_.count(msg.fence_id) > 0 ||
                 fence_shutdown_.load(std::memory_order_relaxed);
        });
        fence_marks_.erase(msg.fence_id);
        break;
      }
      case WorkerMessage::Kind::kFlush: {
        if (msg.drain_only) {
          // Epoch-boundary barrier: the queue ahead of this marker is drained
          // (we are processing it), so just fold the obs deltas and release —
          // the member NIC's half-built groups carry into the next epoch.
          block.Flush();
          std::lock_guard<std::mutex> lock(flush_mu_);
          --flush_pending_;
          flush_cv_.notify_all();
          break;
        }
        {
          obs::TraceRecorder::Span span(trace, lane, "worker", "member_flush");
          if (msg.abandon) {
            // Crashed member: its residual half-built groups must not leak
            // partial vectors — discard and account instead of emitting.
            const uint64_t groups = nic.AbandonState();
            if (injector != nullptr) {
              injector->NoteAbandonedGroups(groups);
            }
          } else {
            nic.Flush();
          }
        }
        // Fold this worker's residual deltas before releasing the barrier:
        // a post-flush registry read must see exact totals.
        block.Flush();
        std::lock_guard<std::mutex> lock(flush_mu_);
        --flush_pending_;
        flush_cv_.notify_all();
        break;
      }
      case WorkerMessage::Kind::kStop:
        block.Flush();
        self.exited.store(true, std::memory_order_release);
        return;
    }
    self.messages_processed.fetch_add(1, std::memory_order_relaxed);
    self.last_progress_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  }
}

void NicCluster::EnqueueBatch(size_t i, std::vector<MgpvReport>&& batch,
                              uint32_t trace_lane) {
  if (batch.empty()) {
    return;
  }
  Worker& worker = *workers_[i];
  WorkerMessage msg;
  msg.kind = WorkerMessage::Kind::kReports;
  msg.reports = std::move(batch);
  const uint64_t batch_reports = msg.reports.size();
  uint64_t batch_cells = 0;
  for (const auto& report : msg.reports) {
    batch_cells += report.cells.size();
  }
  if (options_.drop_on_overflow) {
    if (!worker.queue.TryPush(std::move(msg))) {
      // Queue saturated: the batch is dropped, never silently — both the
      // report and cell counts land in the worker's drop counters.
      worker.reports_dropped.fetch_add(batch_reports, std::memory_order_relaxed);
      worker.cells_dropped.fetch_add(batch_cells, std::memory_order_relaxed);
      obs::Inc(worker.obs_reports_dropped, batch_reports);
      obs::Inc(worker.obs_cells_dropped, batch_cells);
      if (options_.trace != nullptr) {
        options_.trace->Instant(trace_lane, "cluster", "queue_drop", "reports",
                                batch_reports);
      }
      return;
    }
  } else if (options_.push_timeout_ms > 0) {
    // Bounded backpressure: wait for room up to the timeout, then drop into
    // the same overflow counters drop_on_overflow uses (the reconciliation
    // treats both as the overflow bucket).
    if (options_.trace != nullptr && worker.queue.size() >= worker.queue.capacity()) {
      options_.trace->Instant(trace_lane, "cluster", "queue_stall", "worker", i);
    }
    if (!worker.queue.PushBlockingFor(std::move(msg), options_.push_timeout_ms)) {
      worker.reports_dropped.fetch_add(batch_reports, std::memory_order_relaxed);
      worker.cells_dropped.fetch_add(batch_cells, std::memory_order_relaxed);
      obs::Inc(worker.obs_reports_dropped, batch_reports);
      obs::Inc(worker.obs_cells_dropped, batch_cells);
      SFE_WLOG() << "cluster: push to worker " << i << " timed out after "
                 << options_.push_timeout_ms << " ms; dropped " << batch_reports
                 << " reports (" << batch_cells << " cells)";
      if (options_.trace != nullptr) {
        options_.trace->Instant(trace_lane, "cluster", "queue_push_timeout", "reports",
                                batch_reports);
      }
      return;
    }
  } else {
    // Stall trace: the queue counts actual stalls precisely; the producer
    // can only observe "about to block" before the push, so the instant is
    // emitted on the same full-queue condition PushBlocking uses.
    if (options_.trace != nullptr && worker.queue.size() >= worker.queue.capacity()) {
      options_.trace->Instant(trace_lane, "cluster", "queue_stall", "worker", i);
    }
    worker.queue.PushBlocking(std::move(msg));
  }
  worker.batches_enqueued.fetch_add(1, std::memory_order_relaxed);
  worker.reports_enqueued.fetch_add(batch_reports, std::memory_order_relaxed);
  obs::Inc(worker.obs_batches);
  obs::Inc(worker.obs_reports, batch_reports);
  if (options_.trace != nullptr) {
    options_.trace->Instant(trace_lane, "cluster", "enqueue_batch", "reports",
                            batch_reports);
  }
}

void NicCluster::BroadcastSync(const FgSyncMessage& sync, uint32_t trace_lane) {
  // Syncs bypass the capacity bound — they are control plane and are never
  // dropped. The queue's barrier ticket orders each sync after the ring
  // items already claimed, so per-producer sync-before-dependent-report
  // ordering holds even with concurrent producers.
  if (options_.trace != nullptr) {
    options_.trace->Instant(trace_lane, "cluster", "sync_broadcast", "workers",
                            workers_.size());
  }
  for (auto& worker : workers_) {
    WorkerMessage msg;
    msg.kind = WorkerMessage::Kind::kSync;
    msg.sync = sync;
    worker->queue.PushUnbounded(std::move(msg));
    worker->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(worker->obs_syncs);
  }
}

NicCluster::Producer::Producer(NicCluster* cluster, uint32_t trace_lane)
    : cluster_(cluster), trace_lane_(trace_lane), pending_(cluster->nics_.size()) {}

std::unique_ptr<NicCluster::Producer> NicCluster::MakeProducer(uint32_t trace_lane) {
  if (workers_.empty()) {
    return nullptr;  // Serial mode dispatches inline; no staging to own.
  }
  return std::unique_ptr<Producer>(new Producer(this, trace_lane));
}

bool NicCluster::Producer::FaultRoute(const MgpvReport& report, size_t& target) {
  FaultInjector* injector = cluster_->options_.injector;
  const uint32_t members = static_cast<uint32_t>(cluster_->nics_.size());
  // Offered counts batch in the producer (no shared-cacheline traffic per
  // report) and fold into the injector at Close(); routing decisions never
  // read them, so batching cannot change which reports flow where.
  ++offered_reports_;
  offered_cells_ += report.cells.size();
  if (injector->AnyMemberFaults()) {
    const FaultInjector::RouteDecision decision = injector->RouteFor(
        static_cast<uint32_t>(target), report.hash, report.evict_ns, members);
    switch (decision.action) {
      case FaultInjector::RouteDecision::Action::kPrimary:
        break;
      case FaultInjector::RouteDecision::Action::kLost:
        // Crash not yet detected: the report was already "sent" to the dead
        // member — lost in flight, counted, never delivered.
        injector->NoteLost(1, report.cells.size(), report.hash);
        return false;
      case FaultInjector::RouteDecision::Action::kShed:
        injector->NoteShed(1, report.cells.size());
        return false;
      case FaultInjector::RouteDecision::Action::kReroute: {
        const uint64_t pair = static_cast<uint64_t>(target) * members + decision.target;
        if (fenced_.insert(pair).second) {
          // First handoff on this (from, to) edge: push out everything this
          // producer staged for either side, then fence, so the survivor
          // processes the dead member's backlog before any rerouted report.
          if (!pending_[target].empty()) {
            cluster_->EnqueueBatch(target, std::move(pending_[target]), trace_lane_);
            pending_[target].clear();
          }
          if (!pending_[decision.target].empty()) {
            cluster_->EnqueueBatch(decision.target, std::move(pending_[decision.target]),
                                   trace_lane_);
            pending_[decision.target].clear();
          }
          cluster_->PushFence(target, decision.target, trace_lane_);
          injector->NoteFence();
        }
        injector->NoteFailover(1, report.cells.size(), report.hash);
        target = decision.target;
        break;
      }
    }
  }
  if (injector->QueueSaturated(static_cast<uint32_t>(target), report.evict_ns)) {
    // The injected saturation window is trace-time, so every retry inside
    // it fails: bounded retry/backoff, then shed — never block unbounded.
    for (int attempt = 0; attempt < kSaturationRetries; ++attempt) {
      std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    }
    injector->NoteSaturatedPush(kSaturationRetries);
    injector->NoteShed(1, report.cells.size());
    return false;
  }
  return true;
}

void NicCluster::Producer::OnMgpv(const MgpvReport& report) {
  size_t target = report.hash % cluster_->nics_.size();
  if (cluster_->options_.injector != nullptr && !FaultRoute(report, target)) {
    return;
  }
  std::vector<MgpvReport>& pending = pending_[target];
  pending.push_back(report);
  if (pending.size() >= cluster_->options_.enqueue_batch) {
    cluster_->EnqueueBatch(target, std::move(pending), trace_lane_);
    pending.clear();
  }
}

void NicCluster::Producer::OnFgSync(const FgSyncMessage& sync) {
  // A sync must reach each member after the reports this producer staged
  // before it: flush our own staging first, then broadcast. Other
  // producers' staged reports are unrelated groups — unordered by design.
  Close();
  cluster_->BroadcastSync(sync, trace_lane_);
}

void NicCluster::Producer::Close() {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!pending_[i].empty()) {
      cluster_->EnqueueBatch(i, std::move(pending_[i]), trace_lane_);
      pending_[i].clear();
    }
  }
  if (offered_reports_ != 0) {
    cluster_->options_.injector->NoteOffered(offered_reports_, offered_cells_);
    offered_reports_ = 0;
    offered_cells_ = 0;
  }
}

void NicCluster::PushFence(size_t from, size_t to, uint32_t trace_lane) {
  const uint64_t id = next_fence_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  WorkerMessage mark;
  mark.kind = WorkerMessage::Kind::kFenceMark;
  mark.fence_id = id;
  workers_[from]->queue.PushUnbounded(std::move(mark));
  WorkerMessage wait;
  wait.kind = WorkerMessage::Kind::kFenceWait;
  wait.fence_id = id;
  workers_[to]->queue.PushUnbounded(std::move(wait));
  if (options_.trace != nullptr) {
    options_.trace->Instant(trace_lane, "fault", "failover_fence", "from", from);
  }
}

bool NicCluster::SerialFaultRoute(const MgpvReport& report, size_t& target) {
  // Same decisions as Producer::FaultRoute but without fences: inline
  // dispatch processes reports in arrival order, so the handoff is already
  // order-preserving.
  FaultInjector* injector = options_.injector;
  injector->NoteOffered(1, report.cells.size());
  if (injector->AnyMemberFaults()) {
    const FaultInjector::RouteDecision decision =
        injector->RouteFor(static_cast<uint32_t>(target), report.hash, report.evict_ns,
                           static_cast<uint32_t>(nics_.size()));
    switch (decision.action) {
      case FaultInjector::RouteDecision::Action::kPrimary:
        break;
      case FaultInjector::RouteDecision::Action::kLost:
        injector->NoteLost(1, report.cells.size(), report.hash);
        return false;
      case FaultInjector::RouteDecision::Action::kShed:
        injector->NoteShed(1, report.cells.size());
        return false;
      case FaultInjector::RouteDecision::Action::kReroute:
        injector->NoteFailover(1, report.cells.size(), report.hash);
        target = decision.target;
        break;
    }
  }
  if (injector->QueueSaturated(static_cast<uint32_t>(target), report.evict_ns)) {
    injector->NoteSaturatedPush(kSaturationRetries);
    injector->NoteShed(1, report.cells.size());
    return false;
  }
  return true;
}

void NicCluster::OnMgpv(const MgpvReport& report) {
  // Route by the switch-computed hash: every report of a CG group reaches
  // the same NIC, so per-group state never splits across members.
  if (workers_.empty()) {
    size_t target = report.hash % nics_.size();
    if (options_.injector != nullptr && !SerialFaultRoute(report, target)) {
      return;
    }
    obs::TraceClock* clock = options_.latency_clock;
    if (clock == nullptr) {
      nics_[target]->OnMgpv(report);
      return;
    }
    // Serial dispatch runs on the producer thread: there is no queue (no
    // queue-wait stage) and the clock cannot advance mid-call, so service
    // is 0 trace-time ns and end-to-end equals the MGPV residency.
    const uint64_t before_ns = clock->Now();
    nics_[target]->OnMgpv(report);
    const uint64_t after_ns = clock->Now();
    obs::Observe(lat_service_, after_ns - before_ns);
    obs::Observe(lat_e2e_, after_ns > report.first_ingest_ns
                               ? after_ns - report.first_ingest_ns
                               : 0);
    return;
  }
  default_producer_->OnMgpv(report);
}

void NicCluster::OnFgSync(const FgSyncMessage& sync) {
  if (workers_.empty()) {
    for (auto& nic : nics_) {
      nic->OnFgSync(sync);
    }
    return;
  }
  default_producer_->OnFgSync(sync);
}

void NicCluster::Flush() {
  const Status status = FlushWithDeadline(options_.flush_timeout_ms);
  if (!status.ok()) {
    SFE_WLOG() << "cluster flush: " << status.ToString();
  }
}

void NicCluster::AccountCrashedMembers() {
  FaultInjector* injector = options_.injector;
  if (injector == nullptr || crashes_accounted_.exchange(true)) {
    return;
  }
  for (size_t i = 0; i < nics_.size(); ++i) {
    if (injector->MemberDeadAtFlush(static_cast<uint32_t>(i))) {
      injector->NoteMemberCrashed();
    }
  }
}

Status NicCluster::FlushWithDeadline(uint64_t timeout_ms) {
  return BarrierWithDeadline(timeout_ms, /*drain_only=*/false);
}

Status NicCluster::DrainWithDeadline(uint64_t timeout_ms) {
  return BarrierWithDeadline(timeout_ms, /*drain_only=*/true);
}

Status NicCluster::BarrierWithDeadline(uint64_t timeout_ms, bool drain_only) {
  FaultInjector* injector = options_.injector;
  if (workers_.empty()) {
    if (drain_only) {
      return Status::Ok();  // Inline dispatch: nothing queued, nothing to drain.
    }
    AccountCrashedMembers();
    for (size_t i = 0; i < nics_.size(); ++i) {
      if (injector != nullptr && injector->MemberDeadAtFlush(static_cast<uint32_t>(i))) {
        const uint64_t groups = nics_[i]->AbandonState();
        injector->NoteAbandonedGroups(groups);
      } else {
        nics_[i]->Flush();
      }
    }
    return Status::Ok();
  }
  // Barrier: stage-out everything, append a flush marker to every queue,
  // and wait until each worker has drained its queue *and* run its member's
  // Flush(). Markers bypass the capacity bound so the barrier cannot wedge
  // behind a full queue.
  obs::TraceRecorder::Span span(options_.trace, options_.trace_lane_base, "cluster",
                                drain_only ? "drain_barrier" : "flush_barrier");
  default_producer_->Close();
  if (!drain_only) {
    AccountCrashedMembers();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    // A previous barrier that hit its deadline may still be draining; this
    // one starts from zero or gives up under the same deadline.
    if (timeout_ms == 0) {
      flush_cv_.wait(lock, [&] { return flush_pending_ == 0; });
    } else if (!flush_cv_.wait_until(lock, deadline, [&] { return flush_pending_ == 0; })) {
      lock.unlock();
      DumpStallDiagnostics("flush deadline exceeded (previous barrier still draining)");
      if (injector != nullptr) {
        injector->NoteFlushDeadline();
      }
      return Status::DeadlineExceeded("cluster flush barrier timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    flush_pending_ = workers_.size();
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerMessage msg;
    msg.kind = WorkerMessage::Kind::kFlush;
    msg.drain_only = drain_only;
    msg.abandon = !drain_only && injector != nullptr &&
                  injector->MemberDeadAtFlush(static_cast<uint32_t>(i));
    workers_[i]->queue.PushUnbounded(std::move(msg));
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  if (timeout_ms == 0) {
    flush_cv_.wait(lock, [&] { return flush_pending_ == 0; });
    return Status::Ok();
  }
  if (!flush_cv_.wait_until(lock, deadline, [&] { return flush_pending_ == 0; })) {
    lock.unlock();
    DumpStallDiagnostics("flush deadline exceeded");
    if (injector != nullptr) {
      injector->NoteFlushDeadline();
    }
    return Status::DeadlineExceeded("cluster flush barrier timed out after " +
                                    std::to_string(timeout_ms) + " ms");
  }
  return Status::Ok();
}

void NicCluster::WatchdogLoop() {
  std::vector<bool> latched(workers_.size(), false);
  const uint64_t timeout_ns =
      static_cast<uint64_t>(options_.watchdog_timeout_ms) * 1000000ull;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.watchdog_interval_ms));
    if (watchdog_stop_) {
      break;
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& worker = *workers_[i];
      const size_t depth = worker.queue.size();
      const uint64_t last = worker.last_progress_ns.load(std::memory_order_relaxed);
      const uint64_t now = SteadyNowNs();
      // A heartbeat lapse only matters while messages are queued: an idle
      // worker legitimately makes no progress.
      const bool stalled = depth > 0 && now > last && now - last > timeout_ns;
      if (stalled && !latched[i]) {
        latched[i] = true;  // Edge-triggered: one event per stall episode.
        SFE_WLOG() << "cluster watchdog: worker " << i << " stalled (queue depth "
                   << depth << ", no progress for " << (now - last) / 1000000ull
                   << " ms)";
        obs::Inc(obs_watchdog_stalls_);
        if (options_.injector != nullptr) {
          options_.injector->NoteWatchdogStall();
        }
        if (options_.trace != nullptr) {
          options_.trace->Instant(options_.trace_lane_base, "fault", "watchdog_stall",
                                  "worker", i);
        }
      } else if (!stalled) {
        latched[i] = false;
      }
    }
  }
}

void NicCluster::DumpStallDiagnostics(const char* why) {
  const uint64_t now = SteadyNowNs();
  SFE_WLOG() << "cluster diagnostics (" << why << "), " << workers_.size()
             << " workers:";
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& worker = *workers_[i];
    const uint64_t last = worker.last_progress_ns.load(std::memory_order_relaxed);
    SFE_WLOG() << "  worker " << i << ": queue depth " << worker.queue.size()
               << " (watermark " << worker.queue.high_watermark() << "), enqueued "
               << worker.reports_enqueued.load(std::memory_order_relaxed)
               << " reports / processed "
               << worker.messages_processed.load(std::memory_order_relaxed)
               << " messages, last progress "
               << (now > last ? (now - last) / 1000000ull : 0) << " ms ago"
               << (worker.exited.load(std::memory_order_acquire) ? ", exited" : "");
  }
}

void NicCluster::UpdateObsGauges() {
  for (auto& worker : workers_) {
    obs::Set(worker->obs_queue_depth, static_cast<double>(worker->queue.size()));
    obs::Set(worker->obs_queue_watermark,
             static_cast<double>(worker->queue.high_watermark()));
  }
}

NicWorkerStats NicCluster::worker_stats(size_t i) const {
  NicWorkerStats stats;
  if (workers_.empty()) {
    return stats;
  }
  const Worker& worker = *workers_[i];
  stats.batches_enqueued = worker.batches_enqueued.load(std::memory_order_relaxed);
  stats.reports_enqueued = worker.reports_enqueued.load(std::memory_order_relaxed);
  stats.reports_dropped = worker.reports_dropped.load(std::memory_order_relaxed);
  stats.cells_dropped = worker.cells_dropped.load(std::memory_order_relaxed);
  stats.syncs_enqueued = worker.syncs_enqueued.load(std::memory_order_relaxed);
  stats.backpressure_waits = worker.queue.blocked_pushes();
  stats.queue_high_watermark = worker.queue.high_watermark();
  return stats;
}

FeNicStats NicCluster::AggregateStats() const {
  FeNicStats total;
  for (const auto& nic : nics_) {
    const FeNicStats s = nic->Snapshot();
    total.reports += s.reports;
    total.cells += s.cells;
    total.fg_syncs += s.fg_syncs;
    total.vectors_emitted += s.vectors_emitted;
    total.dram_detours += s.dram_detours;
  }
  return total;
}

NicPerfModel NicCluster::MergedPerf() const {
  NicPerfModel merged = nics_[0]->PerfSnapshot();
  for (size_t i = 1; i < nics_.size(); ++i) {
    merged.Merge(nics_[i]->PerfSnapshot());
  }
  return merged;
}

double NicCluster::ThroughputPps(uint32_t cores_per_nic) const {
  // The cluster sustains N times the per-NIC rate only if load is balanced;
  // the slowest (most loaded) member gates the aggregate.
  std::vector<FeNicStats> snapshots;
  snapshots.reserve(nics_.size());
  uint64_t total_cells = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    snapshots.push_back(nic->Snapshot());
    total_cells += snapshots.back().cells;
    max_cells = std::max(max_cells, snapshots.back().cells);
  }
  if (total_cells == 0 || max_cells == 0) {
    return 0.0;
  }
  // The most-loaded NIC processes max_cells of every total_cells offered.
  const double gating_fraction = static_cast<double>(max_cells) / total_cells;
  double min_member_pps = 0.0;
  for (size_t i = 0; i < nics_.size(); ++i) {
    if (snapshots[i].cells == max_cells) {
      min_member_pps = nics_[i]->PerfSnapshot().ThroughputPps(cores_per_nic);
      break;
    }
  }
  return min_member_pps / gating_fraction;
}

ClusterCostReport NicCluster::CostReport(uint32_t single_nic_indices,
                                         uint32_t single_nic_width) const {
  ClusterCostReport report;
  report.enabled = true;
  report.members = nics_.size();
  report.load_imbalance = LoadImbalance();

  // Single-NIC baseline: one table per granularity holding the union of
  // the members' groups (sum of inserts — exact for the CG granularity,
  // whose groups are hash-partitioned and disjoint; an upper bound for
  // coarser granularities whose shards can overlap) at the same geometry.
  uint64_t total_cells = 0;
  uint64_t total_lookups = 0;
  uint64_t total_dram_lookups = 0;
  std::vector<uint64_t> granularity_inserts;
  std::vector<uint64_t> granularity_lookups;
  std::vector<std::vector<GroupTableStats>> member_tables;
  member_tables.reserve(nics_.size());
  for (const auto& nic : nics_) {
    member_tables.push_back(nic->TableStats());
    const auto& tables = member_tables.back();
    if (granularity_inserts.size() < tables.size()) {
      granularity_inserts.resize(tables.size(), 0);
      granularity_lookups.resize(tables.size(), 0);
    }
    for (size_t g = 0; g < tables.size(); ++g) {
      granularity_inserts[g] += tables[g].inserts;
      granularity_lookups[g] += tables[g].lookups;
      total_lookups += tables[g].lookups;
      total_dram_lookups += tables[g].dram_lookups;
    }
  }
  double modeled_dram_lookups = 0.0;
  for (size_t g = 0; g < granularity_inserts.size(); ++g) {
    modeled_dram_lookups +=
        static_cast<double>(granularity_lookups[g]) *
        ExpectedDramDetourRate(static_cast<double>(granularity_inserts[g]),
                               static_cast<double>(single_nic_indices),
                               static_cast<double>(single_nic_width));
  }
  report.single_nic_detour_rate =
      total_lookups > 0 ? modeled_dram_lookups / static_cast<double>(total_lookups) : 0.0;
  report.dram_detour_rate = total_lookups > 0 ? static_cast<double>(total_dram_lookups) /
                                                    static_cast<double>(total_lookups)
                                              : 0.0;
  report.dram_detour_delta = report.dram_detour_rate - report.single_nic_detour_rate;

  report.per_member.reserve(nics_.size());
  for (size_t i = 0; i < nics_.size(); ++i) {
    const FeNicStats s = nics_[i]->Snapshot();
    ClusterMemberCost member;
    member.cells = s.cells;
    member.reports = s.reports;
    member.vectors = s.vectors_emitted;
    member.dram_detours = s.dram_detours;
    total_cells += s.cells;
    report.dram_detours += s.dram_detours;
    uint64_t member_lookups = 0;
    uint64_t member_dram = 0;
    for (const auto& t : member_tables[i]) {
      member_lookups += t.lookups;
      member_dram += t.dram_lookups;
    }
    member.dram_detour_rate = member_lookups > 0 ? static_cast<double>(member_dram) /
                                                       static_cast<double>(member_lookups)
                                                 : 0.0;
    member.dram_detour_delta = member.dram_detour_rate - report.single_nic_detour_rate;
    report.per_member.push_back(member);
  }
  const double ideal_share = report.members > 0 ? 1.0 / report.members : 0.0;
  for (auto& member : report.per_member) {
    member.cells_share = total_cells > 0 ? static_cast<double>(member.cells) /
                                               static_cast<double>(total_cells)
                                         : 0.0;
    member.load_delta = member.cells_share - ideal_share;
  }
  return report;
}

double NicCluster::LoadImbalance() const {
  uint64_t total = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    const FeNicStats s = nic->Snapshot();
    total += s.cells;
    max_cells = std::max(max_cells, s.cells);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / nics_.size();
  return mean > 0.0 ? static_cast<double>(max_cells) / mean : 1.0;
}

}  // namespace superfe
