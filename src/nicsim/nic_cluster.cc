#include "nicsim/nic_cluster.h"

#include <algorithm>
#include <string>

namespace superfe {

Result<std::unique_ptr<NicCluster>> NicCluster::Create(const CompiledPolicy& compiled,
                                                       const FeNicConfig& config,
                                                       size_t nic_count, FeatureSink* sink) {
  return Create(compiled, config, nic_count, sink, NicClusterOptions{});
}

Result<std::unique_ptr<NicCluster>> NicCluster::Create(const CompiledPolicy& compiled,
                                                       const FeNicConfig& config,
                                                       size_t nic_count, FeatureSink* sink,
                                                       const NicClusterOptions& options) {
  if (nic_count == 0) {
    return Status::InvalidArgument("a NIC cluster needs at least one member");
  }
  // Parallel members emit concurrently into the shared sink; interpose a
  // serializing wrapper so the user sink sees one call at a time.
  std::unique_ptr<SerializingSink> serializing;
  FeatureSink* member_sink = sink;
  if (options.parallel) {
    serializing = std::make_unique<SerializingSink>(sink);
    member_sink = serializing.get();
  }
  std::vector<std::unique_ptr<FeNic>> nics;
  nics.reserve(nic_count);
  for (size_t i = 0; i < nic_count; ++i) {
    auto nic = FeNic::Create(compiled, config, member_sink);
    if (!nic.ok()) {
      return nic.status();
    }
    nics.push_back(std::move(nic).value());
  }
  return std::unique_ptr<NicCluster>(
      new NicCluster(std::move(nics), options, std::move(serializing)));
}

NicCluster::NicCluster(std::vector<std::unique_ptr<FeNic>> nics,
                       const NicClusterOptions& options,
                       std::unique_ptr<SerializingSink> serializing_sink)
    : nics_(std::move(nics)),
      options_(options),
      serializing_sink_(std::move(serializing_sink)) {
  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < nics_.size(); ++i) {
      nics_[i]->set_obs(FeNicObs::Create(options_.metrics, static_cast<uint32_t>(i)));
    }
    if (options_.latency_clock != nullptr) {
      lat_service_ = options_.metrics->GetLatencyHistogram(
          "superfe_latency_worker_service_ns", {},
          "Trace-time elapsed while a NIC worker processed one report");
      lat_e2e_ = options_.metrics->GetLatencyHistogram(
          "superfe_latency_e2e_ns", {},
          "First packet ingest to feature emit, end to end (trace-time ns)");
    }
  }
  if (!options_.parallel) {
    return;
  }
  if (options_.enqueue_batch == 0) {
    options_.enqueue_batch = 1;
  }
  if (options_.worker_lane_base == 0) {
    options_.worker_lane_base = options_.trace_lane_base + 1;  // Historical layout.
  }
  workers_.reserve(nics_.size());
  for (size_t i = 0; i < nics_.size(); ++i) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_capacity));
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const obs::LabelSet labels = {{"worker", std::to_string(i)}};
      w.obs_batches = reg->GetCounter("superfe_cluster_batches_enqueued_total", labels,
                                      "Report batches enqueued to the worker");
      w.obs_reports = reg->GetCounter("superfe_cluster_reports_enqueued_total", labels,
                                      "Reports enqueued to the worker");
      w.obs_reports_dropped =
          reg->GetCounter("superfe_cluster_reports_dropped_total", labels,
                          "Report batches dropped on overflow (drop_on_overflow)");
      w.obs_cells_dropped = reg->GetCounter("superfe_cluster_cells_dropped_total", labels,
                                            "Cells inside dropped reports");
      w.obs_syncs = reg->GetCounter("superfe_cluster_syncs_enqueued_total", labels,
                                    "FG syncs broadcast to the worker");
      w.obs_queue_depth =
          reg->GetGauge("superfe_cluster_queue_depth", labels, "Live worker queue depth");
      w.obs_queue_watermark = reg->GetGauge("superfe_cluster_queue_high_watermark", labels,
                                            "Deepest the worker queue has been");
      w.queue.set_stall_counter(
          reg->GetCounter("superfe_cluster_queue_stalls_total", labels,
                          "Pushes that found the worker queue full and waited"));
      if (options_.latency_clock != nullptr) {
        w.obs_queue_wait = reg->GetLatencyHistogram(
            "superfe_latency_queue_wait_ns", labels,
            "Report wait from MGPV eviction to worker dequeue (trace-time ns)");
      }
    }
  }
  default_producer_.reset(new Producer(this, options_.trace_lane_base));
  // Spawn only after every queue exists: a worker never touches a sibling's
  // state, but WorkerLoop indexes workers_ which must be fully built.
  for (size_t i = 0; i < nics_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

NicCluster::~NicCluster() {
  if (workers_.empty()) {
    return;
  }
  default_producer_->Close();
  for (auto& worker : workers_) {
    WorkerMessage stop;
    stop.kind = WorkerMessage::Kind::kStop;
    worker->queue.PushUnbounded(std::move(stop));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void NicCluster::WorkerLoop(size_t index) {
  FeNic& nic = *nics_[index];
  obs::TraceRecorder* trace = options_.trace;
  const size_t lane = options_.worker_lane_base + index;
  for (;;) {
    WorkerMessage msg = workers_[index]->queue.Pop();
    switch (msg.kind) {
      case WorkerMessage::Kind::kReports: {
        obs::TraceRecorder::Span span(trace, lane, "worker", "process_batch");
        span.SetArg("reports", msg.reports.size());
        obs::TraceClock* clock = options_.latency_clock;
        if (clock == nullptr) {
          for (const auto& report : msg.reports) {
            nic.OnMgpv(report);
          }
          break;
        }
        // All stages in trace time. The clock is monotone, the queue's
        // release/acquire edge orders it past the producer's value at push,
        // and the report's stamps were taken from the same running maximum —
        // so the subtractions below cannot underflow; the guards are
        // defensive only.
        const uint64_t dequeue_ns = clock->Now();
        for (const auto& report : msg.reports) {
          obs::Observe(workers_[index]->obs_queue_wait,
                       dequeue_ns > report.evict_ns ? dequeue_ns - report.evict_ns : 0);
          const uint64_t before_ns = clock->Now();
          nic.OnMgpv(report);
          const uint64_t after_ns = clock->Now();
          obs::Observe(lat_service_, after_ns - before_ns);
          obs::Observe(lat_e2e_, after_ns > report.first_ingest_ns
                                     ? after_ns - report.first_ingest_ns
                                     : 0);
        }
        break;
      }
      case WorkerMessage::Kind::kSync:
        nic.OnFgSync(msg.sync);
        break;
      case WorkerMessage::Kind::kFlush: {
        {
          obs::TraceRecorder::Span span(trace, lane, "worker", "member_flush");
          nic.Flush();
        }
        std::lock_guard<std::mutex> lock(flush_mu_);
        --flush_pending_;
        flush_cv_.notify_all();
        break;
      }
      case WorkerMessage::Kind::kStop:
        return;
    }
  }
}

void NicCluster::EnqueueBatch(size_t i, std::vector<MgpvReport>&& batch,
                              uint32_t trace_lane) {
  if (batch.empty()) {
    return;
  }
  Worker& worker = *workers_[i];
  WorkerMessage msg;
  msg.kind = WorkerMessage::Kind::kReports;
  msg.reports = std::move(batch);
  const uint64_t batch_reports = msg.reports.size();
  uint64_t batch_cells = 0;
  for (const auto& report : msg.reports) {
    batch_cells += report.cells.size();
  }
  if (options_.drop_on_overflow) {
    if (!worker.queue.TryPush(std::move(msg))) {
      // Queue saturated: the batch is dropped, never silently — both the
      // report and cell counts land in the worker's drop counters.
      worker.reports_dropped.fetch_add(batch_reports, std::memory_order_relaxed);
      worker.cells_dropped.fetch_add(batch_cells, std::memory_order_relaxed);
      obs::Inc(worker.obs_reports_dropped, batch_reports);
      obs::Inc(worker.obs_cells_dropped, batch_cells);
      if (options_.trace != nullptr) {
        options_.trace->Instant(trace_lane, "cluster", "queue_drop", "reports",
                                batch_reports);
      }
      return;
    }
  } else {
    // Stall trace: the queue counts actual stalls precisely; the producer
    // can only observe "about to block" before the push, so the instant is
    // emitted on the same full-queue condition PushBlocking uses.
    if (options_.trace != nullptr && worker.queue.size() >= worker.queue.capacity()) {
      options_.trace->Instant(trace_lane, "cluster", "queue_stall", "worker", i);
    }
    worker.queue.PushBlocking(std::move(msg));
  }
  worker.batches_enqueued.fetch_add(1, std::memory_order_relaxed);
  worker.reports_enqueued.fetch_add(batch_reports, std::memory_order_relaxed);
  obs::Inc(worker.obs_batches);
  obs::Inc(worker.obs_reports, batch_reports);
  if (options_.trace != nullptr) {
    options_.trace->Instant(trace_lane, "cluster", "enqueue_batch", "reports",
                            batch_reports);
  }
}

void NicCluster::BroadcastSync(const FgSyncMessage& sync, uint32_t trace_lane) {
  // Syncs bypass the capacity bound — they are control plane and are never
  // dropped. The queue's barrier ticket orders each sync after the ring
  // items already claimed, so per-producer sync-before-dependent-report
  // ordering holds even with concurrent producers.
  if (options_.trace != nullptr) {
    options_.trace->Instant(trace_lane, "cluster", "sync_broadcast", "workers",
                            workers_.size());
  }
  for (auto& worker : workers_) {
    WorkerMessage msg;
    msg.kind = WorkerMessage::Kind::kSync;
    msg.sync = sync;
    worker->queue.PushUnbounded(std::move(msg));
    worker->syncs_enqueued.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(worker->obs_syncs);
  }
}

NicCluster::Producer::Producer(NicCluster* cluster, uint32_t trace_lane)
    : cluster_(cluster), trace_lane_(trace_lane), pending_(cluster->nics_.size()) {}

std::unique_ptr<NicCluster::Producer> NicCluster::MakeProducer(uint32_t trace_lane) {
  if (workers_.empty()) {
    return nullptr;  // Serial mode dispatches inline; no staging to own.
  }
  return std::unique_ptr<Producer>(new Producer(this, trace_lane));
}

void NicCluster::Producer::OnMgpv(const MgpvReport& report) {
  const size_t target = report.hash % cluster_->nics_.size();
  std::vector<MgpvReport>& pending = pending_[target];
  pending.push_back(report);
  if (pending.size() >= cluster_->options_.enqueue_batch) {
    cluster_->EnqueueBatch(target, std::move(pending), trace_lane_);
    pending.clear();
  }
}

void NicCluster::Producer::OnFgSync(const FgSyncMessage& sync) {
  // A sync must reach each member after the reports this producer staged
  // before it: flush our own staging first, then broadcast. Other
  // producers' staged reports are unrelated groups — unordered by design.
  Close();
  cluster_->BroadcastSync(sync, trace_lane_);
}

void NicCluster::Producer::Close() {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!pending_[i].empty()) {
      cluster_->EnqueueBatch(i, std::move(pending_[i]), trace_lane_);
      pending_[i].clear();
    }
  }
}

void NicCluster::OnMgpv(const MgpvReport& report) {
  // Route by the switch-computed hash: every report of a CG group reaches
  // the same NIC, so per-group state never splits across members.
  if (workers_.empty()) {
    const size_t target = report.hash % nics_.size();
    obs::TraceClock* clock = options_.latency_clock;
    if (clock == nullptr) {
      nics_[target]->OnMgpv(report);
      return;
    }
    // Serial dispatch runs on the producer thread: there is no queue (no
    // queue-wait stage) and the clock cannot advance mid-call, so service
    // is 0 trace-time ns and end-to-end equals the MGPV residency.
    const uint64_t before_ns = clock->Now();
    nics_[target]->OnMgpv(report);
    const uint64_t after_ns = clock->Now();
    obs::Observe(lat_service_, after_ns - before_ns);
    obs::Observe(lat_e2e_, after_ns > report.first_ingest_ns
                               ? after_ns - report.first_ingest_ns
                               : 0);
    return;
  }
  default_producer_->OnMgpv(report);
}

void NicCluster::OnFgSync(const FgSyncMessage& sync) {
  if (workers_.empty()) {
    for (auto& nic : nics_) {
      nic->OnFgSync(sync);
    }
    return;
  }
  default_producer_->OnFgSync(sync);
}

void NicCluster::Flush() {
  if (workers_.empty()) {
    for (auto& nic : nics_) {
      nic->Flush();
    }
    return;
  }
  // Barrier: stage-out everything, append a flush marker to every queue,
  // and wait until each worker has drained its queue *and* run its member's
  // Flush(). Markers bypass the capacity bound so the barrier cannot wedge
  // behind a full queue.
  obs::TraceRecorder::Span span(options_.trace, options_.trace_lane_base, "cluster",
                                "flush_barrier");
  default_producer_->Close();
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_pending_ = workers_.size();
  }
  for (auto& worker : workers_) {
    WorkerMessage msg;
    msg.kind = WorkerMessage::Kind::kFlush;
    worker->queue.PushUnbounded(std::move(msg));
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] { return flush_pending_ == 0; });
}

void NicCluster::UpdateObsGauges() {
  for (auto& worker : workers_) {
    obs::Set(worker->obs_queue_depth, static_cast<double>(worker->queue.size()));
    obs::Set(worker->obs_queue_watermark,
             static_cast<double>(worker->queue.high_watermark()));
  }
}

NicWorkerStats NicCluster::worker_stats(size_t i) const {
  NicWorkerStats stats;
  if (workers_.empty()) {
    return stats;
  }
  const Worker& worker = *workers_[i];
  stats.batches_enqueued = worker.batches_enqueued.load(std::memory_order_relaxed);
  stats.reports_enqueued = worker.reports_enqueued.load(std::memory_order_relaxed);
  stats.reports_dropped = worker.reports_dropped.load(std::memory_order_relaxed);
  stats.cells_dropped = worker.cells_dropped.load(std::memory_order_relaxed);
  stats.syncs_enqueued = worker.syncs_enqueued.load(std::memory_order_relaxed);
  stats.backpressure_waits = worker.queue.blocked_pushes();
  stats.queue_high_watermark = worker.queue.high_watermark();
  return stats;
}

FeNicStats NicCluster::AggregateStats() const {
  FeNicStats total;
  for (const auto& nic : nics_) {
    const FeNicStats s = nic->Snapshot();
    total.reports += s.reports;
    total.cells += s.cells;
    total.fg_syncs += s.fg_syncs;
    total.vectors_emitted += s.vectors_emitted;
    total.dram_detours += s.dram_detours;
  }
  return total;
}

NicPerfModel NicCluster::MergedPerf() const {
  NicPerfModel merged = nics_[0]->PerfSnapshot();
  for (size_t i = 1; i < nics_.size(); ++i) {
    merged.Merge(nics_[i]->PerfSnapshot());
  }
  return merged;
}

double NicCluster::ThroughputPps(uint32_t cores_per_nic) const {
  // The cluster sustains N times the per-NIC rate only if load is balanced;
  // the slowest (most loaded) member gates the aggregate.
  std::vector<FeNicStats> snapshots;
  snapshots.reserve(nics_.size());
  uint64_t total_cells = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    snapshots.push_back(nic->Snapshot());
    total_cells += snapshots.back().cells;
    max_cells = std::max(max_cells, snapshots.back().cells);
  }
  if (total_cells == 0 || max_cells == 0) {
    return 0.0;
  }
  // The most-loaded NIC processes max_cells of every total_cells offered.
  const double gating_fraction = static_cast<double>(max_cells) / total_cells;
  double min_member_pps = 0.0;
  for (size_t i = 0; i < nics_.size(); ++i) {
    if (snapshots[i].cells == max_cells) {
      min_member_pps = nics_[i]->PerfSnapshot().ThroughputPps(cores_per_nic);
      break;
    }
  }
  return min_member_pps / gating_fraction;
}

ClusterCostReport NicCluster::CostReport(uint32_t single_nic_indices,
                                         uint32_t single_nic_width) const {
  ClusterCostReport report;
  report.enabled = true;
  report.members = nics_.size();
  report.load_imbalance = LoadImbalance();

  // Single-NIC baseline: one table per granularity holding the union of
  // the members' groups (sum of inserts — exact for the CG granularity,
  // whose groups are hash-partitioned and disjoint; an upper bound for
  // coarser granularities whose shards can overlap) at the same geometry.
  uint64_t total_cells = 0;
  uint64_t total_lookups = 0;
  uint64_t total_dram_lookups = 0;
  std::vector<uint64_t> granularity_inserts;
  std::vector<uint64_t> granularity_lookups;
  std::vector<std::vector<GroupTableStats>> member_tables;
  member_tables.reserve(nics_.size());
  for (const auto& nic : nics_) {
    member_tables.push_back(nic->TableStats());
    const auto& tables = member_tables.back();
    if (granularity_inserts.size() < tables.size()) {
      granularity_inserts.resize(tables.size(), 0);
      granularity_lookups.resize(tables.size(), 0);
    }
    for (size_t g = 0; g < tables.size(); ++g) {
      granularity_inserts[g] += tables[g].inserts;
      granularity_lookups[g] += tables[g].lookups;
      total_lookups += tables[g].lookups;
      total_dram_lookups += tables[g].dram_lookups;
    }
  }
  double modeled_dram_lookups = 0.0;
  for (size_t g = 0; g < granularity_inserts.size(); ++g) {
    modeled_dram_lookups +=
        static_cast<double>(granularity_lookups[g]) *
        ExpectedDramDetourRate(static_cast<double>(granularity_inserts[g]),
                               static_cast<double>(single_nic_indices),
                               static_cast<double>(single_nic_width));
  }
  report.single_nic_detour_rate =
      total_lookups > 0 ? modeled_dram_lookups / static_cast<double>(total_lookups) : 0.0;
  report.dram_detour_rate = total_lookups > 0 ? static_cast<double>(total_dram_lookups) /
                                                    static_cast<double>(total_lookups)
                                              : 0.0;
  report.dram_detour_delta = report.dram_detour_rate - report.single_nic_detour_rate;

  report.per_member.reserve(nics_.size());
  for (size_t i = 0; i < nics_.size(); ++i) {
    const FeNicStats s = nics_[i]->Snapshot();
    ClusterMemberCost member;
    member.cells = s.cells;
    member.reports = s.reports;
    member.vectors = s.vectors_emitted;
    member.dram_detours = s.dram_detours;
    total_cells += s.cells;
    report.dram_detours += s.dram_detours;
    uint64_t member_lookups = 0;
    uint64_t member_dram = 0;
    for (const auto& t : member_tables[i]) {
      member_lookups += t.lookups;
      member_dram += t.dram_lookups;
    }
    member.dram_detour_rate = member_lookups > 0 ? static_cast<double>(member_dram) /
                                                       static_cast<double>(member_lookups)
                                                 : 0.0;
    member.dram_detour_delta = member.dram_detour_rate - report.single_nic_detour_rate;
    report.per_member.push_back(member);
  }
  const double ideal_share = report.members > 0 ? 1.0 / report.members : 0.0;
  for (auto& member : report.per_member) {
    member.cells_share = total_cells > 0 ? static_cast<double>(member.cells) /
                                               static_cast<double>(total_cells)
                                         : 0.0;
    member.load_delta = member.cells_share - ideal_share;
  }
  return report;
}

double NicCluster::LoadImbalance() const {
  uint64_t total = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    const FeNicStats s = nic->Snapshot();
    total += s.cells;
    max_cells = std::max(max_cells, s.cells);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / nics_.size();
  return mean > 0.0 ? static_cast<double>(max_cells) / mean : 1.0;
}

}  // namespace superfe
