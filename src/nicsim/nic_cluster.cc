#include "nicsim/nic_cluster.h"

#include <algorithm>

namespace superfe {

Result<std::unique_ptr<NicCluster>> NicCluster::Create(const CompiledPolicy& compiled,
                                                       const FeNicConfig& config,
                                                       size_t nic_count, FeatureSink* sink) {
  if (nic_count == 0) {
    return Status::InvalidArgument("a NIC cluster needs at least one member");
  }
  std::vector<std::unique_ptr<FeNic>> nics;
  nics.reserve(nic_count);
  for (size_t i = 0; i < nic_count; ++i) {
    auto nic = FeNic::Create(compiled, config, sink);
    if (!nic.ok()) {
      return nic.status();
    }
    nics.push_back(std::move(nic).value());
  }
  return std::unique_ptr<NicCluster>(new NicCluster(std::move(nics)));
}

NicCluster::NicCluster(std::vector<std::unique_ptr<FeNic>> nics) : nics_(std::move(nics)) {}

void NicCluster::OnMgpv(const MgpvReport& report) {
  // Route by the switch-computed hash: every report of a CG group reaches
  // the same NIC, so per-group state never splits across members.
  nics_[report.hash % nics_.size()]->OnMgpv(report);
}

void NicCluster::OnFgSync(const FgSyncMessage& sync) {
  for (auto& nic : nics_) {
    nic->OnFgSync(sync);
  }
}

void NicCluster::Flush() {
  for (auto& nic : nics_) {
    nic->Flush();
  }
}

double NicCluster::ThroughputPps(uint32_t cores_per_nic) const {
  // The cluster sustains N times the per-NIC rate only if load is balanced;
  // the slowest (most loaded) member gates the aggregate.
  uint64_t total_cells = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    total_cells += nic->stats().cells;
    max_cells = std::max(max_cells, nic->stats().cells);
  }
  if (total_cells == 0 || max_cells == 0) {
    return 0.0;
  }
  // The most-loaded NIC processes max_cells of every total_cells offered.
  const double gating_fraction = static_cast<double>(max_cells) / total_cells;
  double min_member_pps = 0.0;
  for (const auto& nic : nics_) {
    const double pps = nic->perf().ThroughputPps(cores_per_nic);
    if (nic->stats().cells == max_cells) {
      min_member_pps = pps;
      break;
    }
  }
  return min_member_pps / gating_fraction;
}

double NicCluster::LoadImbalance() const {
  uint64_t total = 0;
  uint64_t max_cells = 0;
  for (const auto& nic : nics_) {
    total += nic->stats().cells;
    max_cells = std::max(max_cells, nic->stats().cells);
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / nics_.size();
  return mean > 0.0 ? static_cast<double>(max_cells) / mean : 1.0;
}

}  // namespace superfe
