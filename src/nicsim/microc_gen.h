// Micro-C code generation for FE-NIC (§7: the policy engine "assembles the
// program of FE-NIC by translating the rest of the operators").
//
// Emits a Netronome Micro-C program implementing the compiled policy's NIC
// side: MGPV report parsing, per-granularity group tables placed per the
// ILP solution, mapping-function state, and one update routine per reducing
// function using the §6.1 streaming algorithms with the §6.2 optimizations
// (hash reuse, division elimination). Reference source for a real NFP
// deployment; this repository executes the simulator instead.
#ifndef SUPERFE_NICSIM_MICROC_GEN_H_
#define SUPERFE_NICSIM_MICROC_GEN_H_

#include <string>

#include "nicsim/placement.h"
#include "policy/compile.h"

namespace superfe {

std::string GenerateMicroC(const CompiledPolicy& compiled, const PlacementResult& placement);

}  // namespace superfe

#endif  // SUPERFE_NICSIM_MICROC_GEN_H_
