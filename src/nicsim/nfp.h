// Architectural description of the Netronome NFP-4000 SoC SmartNIC (§6.2,
// Fig 8): islands of RISC microengines (8 hardware threads each, 800 MHz)
// over a hierarchical memory (CLS / CTM / IMEM / EMEM+DRAM) with a 512-bit
// data bus between cores and the memory subsystem.
#ifndef SUPERFE_NICSIM_NFP_H_
#define SUPERFE_NICSIM_NFP_H_

#include <array>
#include <cstdint>

namespace superfe {

enum class MemLevel : uint8_t {
  kCls = 0,   // Cluster Local Scratch (per island).
  kCtm = 1,   // Cluster Target Memory (per island).
  kImem = 2,  // Internal SRAM (shared).
  kEmem = 3,  // External memory: SRAM cache backed by DRAM (shared).
};
inline constexpr int kNumMemLevels = 4;

const char* MemLevelName(MemLevel level);

struct MemLevelSpec {
  MemLevel level = MemLevel::kCls;
  uint64_t capacity_bytes = 0;  // Aggregate across islands where per-island.
  uint32_t latency_cycles = 0;  // Read-modify-write round trip.
  uint32_t bus_bytes = 64;      // Max data moved per access (512-bit bus).
};

struct NfpArch {
  uint32_t islands = 5;
  uint32_t cores_per_island = 12;  // 60 MEs per NFP-4000.
  uint32_t threads_per_core = 8;
  double clock_ghz = 0.8;

  std::array<MemLevelSpec, kNumMemLevels> memories = {{
      {MemLevel::kCls, 5ull * 64 * 1024, 30, 64},     // 64 KB per island.
      {MemLevel::kCtm, 5ull * 256 * 1024, 60, 64},    // 256 KB per island.
      {MemLevel::kImem, 4ull * 1024 * 1024, 150, 64}, // 4 MB shared.
      {MemLevel::kEmem, 3ull * 1024 * 1024, 250, 64}, // 3 MB SRAM cache.
  }};
  // Accesses that miss EMEM's cache fall through to external DRAM.
  uint32_t dram_latency_cycles = 500;
  uint64_t dram_capacity_bytes = 2ull << 30;

  uint32_t total_cores() const { return islands * cores_per_island; }

  const MemLevelSpec& memory(MemLevel level) const {
    return memories[static_cast<int>(level)];
  }
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_NFP_H_
