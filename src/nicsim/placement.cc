#include "nicsim/placement.h"

#include <algorithm>
#include <numeric>

namespace superfe {
namespace {

struct LevelBudget {
  uint64_t bus_state_bytes = 0;  // Max per-group state bytes (bus constraint).
  uint64_t cap_state_bytes = 0;  // Max per-group state bytes (capacity).
  bool multi_beat = false;       // EMEM: bus constraint waived (multi-beat).
};

// Per-group state-byte budget for each level under eq. 5 and capacity.
std::array<LevelBudget, kNumMemLevels> ComputeBudgets(const PlacementProblem& p) {
  std::array<LevelBudget, kNumMemLevels> budgets{};
  const uint64_t groups =
      static_cast<uint64_t>(p.groups_per_granularity) * p.granularity_instances;
  for (int m = 0; m < kNumMemLevels; ++m) {
    const MemLevelSpec& spec = p.arch.memories[m];
    const uint32_t width = std::max<uint32_t>(p.table_width[m], 1);
    LevelBudget& b = budgets[m];
    b.multi_beat = spec.level == MemLevel::kEmem;
    if (b.multi_beat) {
      b.bus_state_bytes = UINT64_MAX;  // DRAM-backed; entries span beats.
    } else {
      const uint64_t per_entry = spec.bus_bytes / width;
      b.bus_state_bytes = per_entry > p.key_bytes ? per_entry - p.key_bytes : 0;
    }
    const uint64_t cap_per_group = groups > 0 ? spec.capacity_bytes / groups : UINT64_MAX;
    b.cap_state_bytes = cap_per_group > p.key_bytes ? cap_per_group - p.key_bytes : 0;
    if (b.multi_beat) {
      // EMEM spills to DRAM, so capacity is effectively the DRAM size.
      const uint64_t dram_per_group =
          groups > 0 ? p.arch.dram_capacity_bytes / groups : UINT64_MAX;
      b.cap_state_bytes = dram_per_group > p.key_bytes ? dram_per_group - p.key_bytes : 0;
    }
  }
  return budgets;
}

struct Solver {
  const PlacementProblem& problem;
  std::array<LevelBudget, kNumMemLevels> budgets;
  std::vector<size_t> order;  // State indices, most-accessed first.
  std::array<uint64_t, kNumMemLevels> used{};
  std::vector<int> assignment;       // Working assignment (by state index).
  std::vector<int> best_assignment;  // Best found.
  uint64_t best_cost = UINT64_MAX;
  uint64_t nodes = 0;
  static constexpr uint64_t kNodeBudget = 500000;

  bool Fits(size_t state_idx, int level) const {
    const uint64_t bytes = problem.states[state_idx].bytes;
    const LevelBudget& b = budgets[level];
    return used[level] + bytes <= b.bus_state_bytes && used[level] + bytes <= b.cap_state_bytes;
  }

  uint64_t StateCost(size_t state_idx, int level) const {
    const auto& s = problem.states[state_idx];
    const uint64_t accesses = std::max<uint32_t>(s.accesses_per_packet, 1);
    return accesses * problem.arch.memories[level].latency_cycles;
  }

  // Lower bound for the remaining states: every one at the cheapest level.
  uint64_t LowerBound(size_t depth) const {
    const uint32_t min_latency = problem.arch.memories[0].latency_cycles;
    uint64_t bound = 0;
    for (size_t i = depth; i < order.size(); ++i) {
      const auto& s = problem.states[order[i]];
      bound += static_cast<uint64_t>(std::max<uint32_t>(s.accesses_per_packet, 1)) * min_latency;
    }
    return bound;
  }

  void Dfs(size_t depth, uint64_t cost) {
    if (++nodes > kNodeBudget || cost >= best_cost) {
      return;
    }
    if (depth == order.size()) {
      best_cost = cost;
      best_assignment = assignment;
      return;
    }
    if (cost + LowerBound(depth) >= best_cost) {
      return;
    }
    const size_t idx = order[depth];
    for (int level = 0; level < kNumMemLevels; ++level) {
      if (!Fits(idx, level)) {
        continue;
      }
      used[level] += problem.states[idx].bytes;
      assignment[idx] = level;
      Dfs(depth + 1, cost + StateCost(idx, level));
      used[level] -= problem.states[idx].bytes;
      assignment[idx] = -1;
    }
  }
};

}  // namespace

uint64_t PlacementResult::LatencyPerPacket(const NfpArch& arch,
                                           const std::vector<StateItem>& states) const {
  // Per occupied level: latency x bus beats of the words the packet
  // actually touches there. accesses_per_packet counts touched 32-bit
  // words (arrays and histograms touch one element by index, never the
  // whole structure), so a level's beat count is
  // ceil(4 * touched_words / bus_bytes).
  std::array<uint64_t, kNumMemLevels> touched_words{};
  for (size_t i = 0; i < states.size() && i < assignment.size(); ++i) {
    touched_words[static_cast<int>(assignment[i])] +=
        std::max<uint32_t>(states[i].accesses_per_packet, 1);
  }
  uint64_t total = 0;
  for (int m = 0; m < kNumMemLevels; ++m) {
    if (level_bytes[m] == 0) {
      continue;
    }
    const MemLevelSpec& spec = arch.memories[m];
    const uint64_t bytes = touched_words[m] * 4;
    const uint64_t beats = std::max<uint64_t>((bytes + spec.bus_bytes - 1) / spec.bus_bytes, 1);
    total += spec.latency_cycles * beats;
  }
  return total;
}

std::array<uint32_t, kNumMemLevels> DefaultTableWidths(uint32_t state_bytes_per_group) {
  if (state_bytes_per_group <= 16) {
    return {4, 4, 2, 1};  // The paper's 16-byte-entry example fits width 4.
  }
  if (state_bytes_per_group <= 48) {
    return {2, 2, 1, 1};
  }
  return {1, 1, 1, 1};
}

uint64_t PlacementResult::TotalBytesUsed(const PlacementProblem& problem) const {
  const uint64_t groups =
      static_cast<uint64_t>(problem.groups_per_granularity) * problem.granularity_instances;
  uint64_t per_group = 0;
  int levels_used = 0;
  for (int m = 0; m < kNumMemLevels; ++m) {
    if (level_bytes[m] > 0) {
      per_group += level_bytes[m];
      ++levels_used;
    }
  }
  // Each occupied level's table stores its own key copy.
  per_group += static_cast<uint64_t>(levels_used) * problem.key_bytes;
  return per_group * groups;
}

double PlacementResult::MemoryUtilization(const PlacementProblem& problem) const {
  // On-chip (hierarchical SRAM) utilization: per level, usage is clamped at
  // the level's capacity — EMEM overflow spills to external DRAM, which is
  // not part of the Table 4 "Memory" column.
  const uint64_t groups =
      static_cast<uint64_t>(problem.groups_per_granularity) * problem.granularity_instances;
  uint64_t used = 0;
  uint64_t capacity = 0;
  for (int m = 0; m < kNumMemLevels; ++m) {
    const uint64_t cap = problem.arch.memories[m].capacity_bytes;
    capacity += cap;
    if (level_bytes[m] == 0) {
      continue;
    }
    const uint64_t level_used = (level_bytes[m] + problem.key_bytes) * groups;
    used += std::min(level_used, cap);
  }
  if (capacity == 0) {
    return 0.0;
  }
  return static_cast<double>(used) / static_cast<double>(capacity);
}

Result<PlacementResult> SolvePlacement(const PlacementProblem& problem) {
  PlacementResult result;
  result.assignment.assign(problem.states.size(), MemLevel::kEmem);
  if (problem.states.empty()) {
    return result;
  }

  Solver solver{problem, ComputeBudgets(problem), {}, {}, {}, {}, UINT64_MAX, 0};
  solver.order.resize(problem.states.size());
  std::iota(solver.order.begin(), solver.order.end(), 0);
  std::sort(solver.order.begin(), solver.order.end(), [&](size_t a, size_t b) {
    return problem.states[a].accesses_per_packet > problem.states[b].accesses_per_packet;
  });
  solver.assignment.assign(problem.states.size(), -1);
  solver.Dfs(0, 0);

  if (solver.best_cost == UINT64_MAX) {
    // Greedy fallback (also covers pathological instances): fastest feasible
    // level per state, EMEM as the escape hatch.
    auto budgets = ComputeBudgets(problem);
    std::array<uint64_t, kNumMemLevels> used{};
    result.optimal = false;
    result.objective = 0;
    for (size_t i : solver.order) {
      int chosen = static_cast<int>(MemLevel::kEmem);
      for (int level = 0; level < kNumMemLevels; ++level) {
        const uint64_t bytes = problem.states[i].bytes;
        if (used[level] + bytes <= budgets[level].bus_state_bytes &&
            used[level] + bytes <= budgets[level].cap_state_bytes) {
          chosen = level;
          break;
        }
      }
      used[chosen] += problem.states[i].bytes;
      result.assignment[i] = static_cast<MemLevel>(chosen);
      result.objective +=
          static_cast<uint64_t>(std::max<uint32_t>(problem.states[i].accesses_per_packet, 1)) *
          problem.arch.memories[chosen].latency_cycles;
    }
    for (size_t i = 0; i < problem.states.size(); ++i) {
      result.level_bytes[static_cast<int>(result.assignment[i])] += problem.states[i].bytes;
    }
    return result;
  }

  result.optimal = solver.nodes <= Solver::kNodeBudget;
  result.objective = solver.best_cost;
  for (size_t i = 0; i < problem.states.size(); ++i) {
    result.assignment[i] = static_cast<MemLevel>(solver.best_assignment[i]);
    result.level_bytes[solver.best_assignment[i]] += problem.states[i].bytes;
  }
  return result;
}

}  // namespace superfe
