#include "nicsim/cost_model.h"

#include <algorithm>
#include <cmath>

namespace superfe {

double ExpectedDramDetourRate(double groups, double indices, double width) {
  if (groups <= 0.0 || indices <= 0.0) {
    return 0.0;
  }
  // A random group shares its bucket with X ~ Poisson(lambda) other groups
  // (lambda = mean occupancy of the remaining groups). Its arrival rank in
  // the chain is uniform over the X + 1 occupants, so it lives in DRAM with
  // probability max(0, X + 1 - width) / (X + 1). Sum the pmf until the
  // tail mass is negligible.
  const double lambda = (groups > 1.0 ? groups - 1.0 : 0.0) / indices;
  const int limit =
      static_cast<int>(std::ceil(lambda + 12.0 * std::sqrt(lambda) + 32.0));
  double pmf = std::exp(-lambda);  // P(X = 0).
  double rate = 0.0;
  for (int k = 0; k <= limit; ++k) {
    const double occupants = static_cast<double>(k) + 1.0;
    if (occupants > width) {
      rate += pmf * (occupants - width) / occupants;
    }
    pmf *= lambda / (static_cast<double>(k) + 1.0);  // -> P(X = k + 1).
  }
  return std::min(rate, 1.0);
}

const char* MemLevelName(MemLevel level) {
  switch (level) {
    case MemLevel::kCls:
      return "CLS";
    case MemLevel::kCtm:
      return "CTM";
    case MemLevel::kImem:
      return "IMEM";
    case MemLevel::kEmem:
      return "EMEM";
  }
  return "?";
}

void NicPerfModel::AccountCell(const CellWork& work) {
  ++cells_;
  const uint64_t alu_cycles = static_cast<uint64_t>(work.alu_ops) * costs_.alu;
  const uint64_t division_cycles =
      static_cast<uint64_t>(work.divisions) *
      (opts_.eliminate_division ? costs_.division_opt : costs_.division);
  uint32_t hashes = work.hashes;
  if (opts_.reuse_switch_hash && hashes > 0) {
    --hashes;  // The switch-computed hash index rides along with the MGPV.
  }
  const uint64_t hash_cycles = static_cast<uint64_t>(hashes) * costs_.hash;
  compute_cycles_ += costs_.dispatch + alu_cycles + division_cycles + hash_cycles;
  memory_cycles_ += work.mem_latency_cycles;
  mem_accesses_ += work.mem_accesses;
  breakdown_.dispatch += costs_.dispatch;
  breakdown_.alu += alu_cycles;
  breakdown_.division += division_cycles;
  breakdown_.hash += hash_cycles;
  breakdown_.memory += work.mem_latency_cycles;
}

void NicPerfModel::AccountBatch(const BatchWork& work) {
  cells_ += work.cells;
  // Arithmetic is genuinely per cell — vectorization changes issue width,
  // not operation count — so the §6.2 ablation (division elimination vs
  // hash reuse) keeps its per-cell meaning.
  const uint64_t alu_cycles =
      static_cast<uint64_t>(work.per_cell.alu_ops) * costs_.alu * work.cells;
  const uint64_t division_cycles =
      static_cast<uint64_t>(work.per_cell.divisions) *
      (opts_.eliminate_division ? costs_.division_opt : costs_.division) *
      work.cells;
  // One full dispatch per group run (field/variant resolution, table
  // lookup) plus the residual per-cell lane issue.
  const uint64_t dispatch_cycles =
      work.runs * costs_.dispatch + work.cells * costs_.dispatch_batched;
  // One group-lookup hash per run; the switch-shipped hash covers the
  // coarse-granularity runs when reuse is on.
  uint64_t hashed_runs = work.runs;
  if (opts_.reuse_switch_hash) {
    hashed_runs -= std::min(work.cg_runs, hashed_runs);
  }
  const uint64_t hash_cycles = hashed_runs * costs_.hash;
  compute_cycles_ += dispatch_cycles + alu_cycles + division_cycles + hash_cycles;
  // State memory: the per-cell latency spans the whole granularity chain;
  // a run touches one granularity's state once, so charge the chain
  // latency once per `granularities` runs, plus the DRAM detours.
  const uint32_t chain = std::max(work.granularities, 1u);
  const uint64_t mem_cycles =
      work.per_cell.mem_latency_cycles * work.runs / chain +
      static_cast<uint64_t>(arch_.dram_latency_cycles) * work.dram_runs;
  memory_cycles_ += mem_cycles;
  mem_accesses_ +=
      std::max<uint64_t>(
          static_cast<uint64_t>(work.per_cell.mem_accesses) * work.runs / chain,
          work.runs) +
      work.dram_runs;
  breakdown_.dispatch += dispatch_cycles;
  breakdown_.alu += alu_cycles;
  breakdown_.division += division_cycles;
  breakdown_.hash += hash_cycles;
  breakdown_.memory += mem_cycles;
}

void NicPerfModel::AccountReport() {
  ++reports_;
  compute_cycles_ += costs_.report_overhead;
  breakdown_.report_overhead += costs_.report_overhead;
}

void NicPerfModel::Merge(const NicPerfModel& other) {
  cells_ += other.cells_;
  reports_ += other.reports_;
  compute_cycles_ += other.compute_cycles_;
  memory_cycles_ += other.memory_cycles_;
  mem_accesses_ += other.mem_accesses_;
  breakdown_.Merge(other.breakdown_);
}

uint64_t NicPerfModel::EffectiveCycles() const {
  if (!opts_.multithreading) {
    // Single thread per core: memory stalls serialize with compute.
    return compute_cycles_ + memory_cycles_;
  }
  // 8 threads per core hide memory latency: while one thread waits on a
  // state read, others compute. The core is busy for at least the compute
  // time plus a 2-cycle context switch per memory access; it can never beat
  // the aggregate memory pipeline divided across threads.
  const uint64_t switched = compute_cycles_ + mem_accesses_ * costs_.context_switch;
  const uint64_t mem_bound = memory_cycles_ / arch_.threads_per_core;
  return std::max(switched, mem_bound);
}

double NicPerfModel::ThroughputPps(uint32_t cores) const {
  if (cells_ == 0 || cores == 0) {
    return 0.0;
  }
  const double cycles_per_cell =
      static_cast<double>(EffectiveCycles()) / static_cast<double>(cells_);
  const double core_hz = arch_.clock_ghz * 1e9;
  // Near-linear NBI scaling with a small serialization term (shared DMA
  // descriptors), visible only at high core counts.
  const double scaling = static_cast<double>(cores) / (1.0 + 0.0008 * cores);
  return core_hz / cycles_per_cell * scaling;
}

double NicPerfModel::ThroughputGbps(uint32_t cores, double avg_packet_bytes) const {
  return ThroughputPps(cores) * avg_packet_bytes * 8.0 * 1e-9;
}

}  // namespace superfe
