#include "nicsim/fe_nic.h"

#include <algorithm>
#include <string>

#include "obs/cycles.h"

namespace superfe {

FeNicObs FeNicObs::Create(obs::MetricsRegistry* registry, uint32_t nic_index,
                          bool profile) {
  FeNicObs o;
  if (registry == nullptr) {
    return o;
  }
  o.registry = registry;
  o.block_name = "nic-" + std::to_string(nic_index);
  const obs::LabelSet labels = {{"nic", std::to_string(nic_index)}};
  o.reports = registry->GetCounter("superfe_nic_reports_total", labels,
                                   "MGPV reports consumed by the NIC");
  o.cells = registry->GetCounter("superfe_nic_cells_total", labels,
                                 "MGPV cells processed by the NIC");
  o.fg_syncs = registry->GetCounter("superfe_nic_fg_syncs_total", labels,
                                    "FG-table sync messages applied");
  o.vectors_emitted = registry->GetCounter("superfe_nic_vectors_emitted_total", labels,
                                           "Feature vectors emitted");
  o.dram_detours = registry->GetCounter("superfe_nic_dram_detours_total", labels,
                                        "Group lookups that spilled to DRAM");
  if (profile) {
    o.cycles_feature =
        registry->GetCounter("superfe_cycles_total", {{"stage", "feature_kernels"}},
                             "Measured worker cycles by pipeline stage");
    o.cycles_sync =
        registry->GetCounter("superfe_cycles_total", {{"stage", "sync_broadcast"}},
                             "Measured worker cycles by pipeline stage");
  }
  return o;
}

void FeNic::set_obs(const FeNicObs& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_ = obs;
  block_.Init(obs.registry, obs.block_name, obs.flush_packets);
  local_ = LocalObs{};
  local_.reports = block_.BindCounter(obs.reports);
  local_.cells = block_.BindCounter(obs.cells);
  local_.fg_syncs = block_.BindCounter(obs.fg_syncs);
  local_.vectors_emitted = block_.BindCounter(obs.vectors_emitted);
  local_.dram_detours = block_.BindCounter(obs.dram_detours);
  local_.cycles_feature = block_.BindCounter(obs.cycles_feature);
  local_.cycles_sync = block_.BindCounter(obs.cycles_sync);
}

Result<std::unique_ptr<FeNic>> FeNic::Create(const CompiledPolicy& compiled,
                                             const FeNicConfig& config, FeatureSink* sink) {
  auto plan = ExecPlan::FromProgram(compiled.nic_program);
  if (!plan.ok()) {
    return plan.status();
  }

  PlacementProblem problem;
  // States are already expanded per granularity instance by the compiler.
  problem.states = compiled.nic_program.states;
  problem.arch = config.arch;
  problem.groups_per_granularity = config.groups_hint;
  problem.granularity_instances = 1;
  problem.key_bytes = compiled.switch_program.FgKeyBytes();
  problem.table_width = DefaultTableWidths(compiled.nic_program.StateBytesPerGroup());
  auto placement = SolvePlacement(problem);
  if (!placement.ok()) {
    return placement.status();
  }

  return std::unique_ptr<FeNic>(new FeNic(compiled, config, sink, std::move(plan).value(),
                                          std::move(problem), std::move(placement).value()));
}

FeNic::FeNic(const CompiledPolicy& compiled, const FeNicConfig& config, FeatureSink* sink,
             ExecPlan plan, PlacementProblem problem, PlacementResult placement)
    : compiled_(compiled),
      config_(config),
      sink_(sink),
      plan_(std::move(plan)),
      placement_problem_(std::move(problem)),
      placement_(std::move(placement)),
      perf_(config.arch, config.optimizations) {
  const auto& grans = compiled_.nic_program.granularities;
  tables_.reserve(grans.size());
  for (size_t i = 0; i < grans.size(); ++i) {
    tables_.push_back(std::make_unique<GroupTable<GroupState>>(config_.group_table_indices,
                                                               config_.group_table_width));
  }

  // Precompute per-cell work from the compiled program and the placement
  // (state items are already expanded per granularity instance).
  base_cell_work_.alu_ops = compiled_.nic_program.AluOpsPerPacket();
  base_cell_work_.divisions = compiled_.nic_program.DivisionsPerPacket();
  base_cell_work_.mem_latency_cycles =
      placement_.LatencyPerPacket(config_.arch, placement_problem_.states);
  uint32_t levels_used = 0;
  for (uint64_t bytes : placement_.level_bytes) {
    if (bytes > 0) {
      ++levels_used;
    }
  }
  base_cell_work_.mem_accesses = std::max<uint32_t>(levels_used, 1);
  base_cell_work_.hashes = static_cast<uint32_t>(grans.size());
}

void FeNic::OnFgSync(const FgSyncMessage& sync) {
  // The NIC's table copy is modeled through the cells' shadow FG tuples;
  // the sync message itself costs a control-path update.
  (void)sync;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t cycles_start = local_.cycles_sync != nullptr ? obs::ReadCycles() : 0;
  stats_.fg_syncs++;
  obs::Inc(local_.fg_syncs);
  if (local_.cycles_sync != nullptr) {
    local_.cycles_sync->delta += obs::ReadCycles() - cycles_start;
  }
}

void FeNic::OnMgpv(const MgpvReport& report) { OnMgpvBatch(&report, 1); }

void FeNic::OnMgpvBatch(const MgpvReport* reports, size_t count) {
  if (count == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Bracket the batch (idle eviction + all feature kernels) for the
  // {stage="feature_kernels"} cycle profile; skipped when profiling is off.
  const uint64_t cycles_start = local_.cycles_feature != nullptr ? obs::ReadCycles() : 0;
  size_t total_cells = 0;
  for (size_t r = 0; r < count; ++r) {
    total_cells += reports[r].cells.size();
  }
  ProcessReportsLocked(reports, count);
  if (local_.cycles_feature != nullptr) {
    local_.cycles_feature->delta += obs::ReadCycles() - cycles_start;
  }
  // Cells count as packets for the auto-flush cadence.
  block_.NotePackets(total_cells);
}

void FeNic::ProcessReportsLocked(const MgpvReport* reports, size_t count) {
  // Per-packet collect policies emit a vector per cell in arrival order —
  // they stay on the per-cell reference path.
  if (!config_.batch_kernels || compiled_.nic_program.collect.per_packet) {
    for (size_t r = 0; r < count; ++r) {
      ProcessReportScalarLocked(reports[r]);
    }
    return;
  }
  if (config_.idle_timeout_ns > 0) {
    // Idle eviction is decided at report boundaries; batch per report so
    // eviction interleaves exactly like the scalar path.
    for (size_t r = 0; r < count; ++r) {
      ProcessBatchLocked(&reports[r], 1);
    }
    return;
  }
  ProcessBatchLocked(reports, count);
}

void FeNic::ProcessReportScalarLocked(const MgpvReport& report) {
  stats_.reports++;
  obs::Inc(local_.reports);
  perf_.AccountReport();
  if (!report.cells.empty()) {
    EvictIdleGroupsLocked(report.cells.back().full_timestamp_ns);
  }

  const auto& grans = compiled_.nic_program.granularities;
  const bool per_packet = compiled_.nic_program.collect.per_packet;

  for (const auto& cell : report.cells) {
    stats_.cells++;
    obs::Inc(local_.cells);
    CellWork work = base_cell_work_;

    // Locate and update the group at every granularity in the chain. The
    // cell's initiator-oriented FG tuple derives every key (§5.1).
    std::array<GroupState*, 4> touched{};
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      const GroupKey key = GroupKey::FromFgTuple(cell.fg_tuple, grans[gi]);
      const uint32_t hash = key.Hash();
      bool via_dram = false;
      GroupState& group = tables_[gi]->FindOrCreate(
          key, hash, [&] { return GroupState::Make(plan_, gi, config_.exec); }, via_dram);
      if (via_dram) {
        stats_.dram_detours++;
        obs::Inc(local_.dram_detours);
        work.mem_accesses += 1;
        work.mem_latency_cycles += config_.arch.dram_latency_cycles;
      }
      UpdateGroup(plan_, gi, group, cell);
      touched[gi] = &group;
    }
    perf_.AccountCell(work);

    if (per_packet) {
      FeatureVector vector;
      vector.group = GroupKey::FromFgTuple(cell.fg_tuple, compiled_.switch_program.fg());
      vector.timestamp_ns = cell.full_timestamp_ns;
      vector.values.reserve(compiled_.nic_program.FeatureDimension());
      for (size_t gi = 0; gi < grans.size(); ++gi) {
        EmitGroupFeatures(plan_, gi, *touched[gi], vector.values);
      }
      stats_.vectors_emitted++;
      obs::Inc(local_.vectors_emitted);
      sink_->OnFeatureVector(std::move(vector));
    }
  }
}

void FeNic::ProcessBatchLocked(const MgpvReport* reports, size_t count) {
  size_t total_cells = 0;
  for (size_t r = 0; r < count; ++r) {
    const MgpvReport& report = reports[r];
    stats_.reports++;
    obs::Inc(local_.reports);
    perf_.AccountReport();
    if (!report.cells.empty()) {
      EvictIdleGroupsLocked(report.cells.back().full_timestamp_ns);
    }
    total_cells += report.cells.size();
  }
  if (total_cells == 0) {
    return;
  }
  stats_.cells += total_cells;
  obs::Inc(local_.cells, total_cells);

  batch_.Assemble(reports, count);

  // Walk each granularity's contiguous runs of the sorted batch: one table
  // access and one bulk UpdateGroupBatch per (group, run) instead of per
  // cell. The coarse-granularity hash is still reusable from the switch
  // (one per CG run), mirroring the per-cell reuse_switch_hash credit.
  const auto& grans = compiled_.nic_program.granularities;
  const Granularity cg = reports[0].cg_key.granularity;
  uint64_t runs_total = 0;
  uint64_t cg_runs = 0;
  uint64_t dram_runs = 0;
  for (size_t gi = 0; gi < grans.size(); ++gi) {
    const int prefix = PacketBatchSoA::KeyPrefixBytes(grans[gi]);
    batch_.SortByPrefix(prefix);
    size_t begin = 0;
    while (begin < total_cells) {
      size_t end = begin + 1;
      while (end < total_cells && batch_.SamePrefix(begin, end, prefix)) {
        ++end;
      }
      const MgpvCell& first = *batch_.cells[begin];
      const GroupKey key = GroupKey::FromFgTuple(first.fg_tuple, grans[gi]);
      const uint32_t hash = key.Hash();
      bool via_dram = false;
      GroupState& group = tables_[gi]->FindOrCreate(
          key, hash, [&] { return GroupState::Make(plan_, gi, config_.exec); }, via_dram);
      if (via_dram) {
        stats_.dram_detours++;
        obs::Inc(local_.dram_detours);
        ++dram_runs;
      }
      UpdateGroupBatch(plan_, gi, group, batch_, begin, end);
      ++runs_total;
      if (grans[gi] == cg) {
        ++cg_runs;
      }
      begin = end;
    }
  }

  BatchWork work;
  work.per_cell = base_cell_work_;
  work.cells = total_cells;
  work.runs = runs_total;
  work.cg_runs = cg_runs;
  work.dram_runs = dram_runs;
  work.granularities = static_cast<uint32_t>(grans.size());
  perf_.AccountBatch(work);
}

void FeNic::EmitVector(const GroupKey& unit_key, const GroupState& unit_group) {
  const auto& grans = compiled_.nic_program.granularities;
  FeatureVector vector;
  vector.group = unit_key;
  vector.timestamp_ns = unit_group.last_seen_ns;
  vector.values.reserve(compiled_.nic_program.FeatureDimension());

  for (size_t gi = 0; gi < grans.size(); ++gi) {
    if (grans[gi] == unit_key.granularity) {
      EmitGroupFeatures(plan_, gi, unit_group, vector.values);
      continue;
    }
    // Sibling granularity: derive its key from the unit group's last packet.
    const GroupKey sibling_key = GroupKey::FromFgTuple(unit_group.last_fg_tuple, grans[gi]);
    GroupState* sibling = tables_[gi]->Find(sibling_key, sibling_key.Hash());
    if (sibling != nullptr) {
      EmitGroupFeatures(plan_, gi, *sibling, vector.values);
    } else {
      vector.values.resize(vector.values.size() + GranularityFeatureWidth(plan_, gi), 0.0);
    }
  }
  stats_.vectors_emitted++;
  obs::Inc(local_.vectors_emitted);
  sink_->OnFeatureVector(std::move(vector));
}

void FeNic::EvictIdleGroups(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictIdleGroupsLocked(now_ns);
}

void FeNic::EvictIdleGroupsLocked(uint64_t now_ns) {
  if (config_.idle_timeout_ns == 0 || compiled_.nic_program.collect.per_packet) {
    return;
  }
  const Granularity unit = compiled_.nic_program.collect.unit;
  const auto& grans = compiled_.nic_program.granularities;
  for (size_t gi = 0; gi < grans.size(); ++gi) {
    if (grans[gi] != unit) {
      continue;
    }
    std::vector<GroupKey> expired;
    tables_[gi]->ForEach([&](const GroupKey& key, GroupState& group) {
      if (now_ns > group.last_seen_ns &&
          now_ns - group.last_seen_ns > config_.idle_timeout_ns) {
        EmitVector(key, group);
        expired.push_back(key);
      }
    });
    for (const auto& key : expired) {
      tables_[gi]->Erase(key, key.Hash());
    }
  }
}

void FeNic::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!compiled_.nic_program.collect.per_packet) {
    const Granularity unit = compiled_.nic_program.collect.unit;
    const auto& grans = compiled_.nic_program.granularities;
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      if (grans[gi] != unit) {
        continue;
      }
      tables_[gi]->ForEach(
          [&](const GroupKey& key, GroupState& group) { EmitVector(key, group); });
    }
  }
  for (auto& table : tables_) {
    table->Clear();
  }
  block_.Flush();
}

uint64_t FeNic::AbandonState() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t abandoned = 0;
  if (!compiled_.nic_program.collect.per_packet) {
    const Granularity unit = compiled_.nic_program.collect.unit;
    const auto& grans = compiled_.nic_program.granularities;
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      if (grans[gi] == unit) {
        abandoned += tables_[gi]->size();
      }
    }
  }
  for (auto& table : tables_) {
    table->Clear();
  }
  block_.Flush();
  return abandoned;
}

FeNicStats FeNic::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

NicPerfModel FeNic::PerfSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return perf_;
}

std::vector<size_t> FeNic::GroupCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> counts;
  counts.reserve(tables_.size());
  for (const auto& table : tables_) {
    counts.push_back(table->size());
  }
  return counts;
}

std::vector<GroupTableStats> FeNic::TableStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GroupTableStats> stats;
  stats.reserve(tables_.size());
  for (const auto& table : tables_) {
    stats.push_back(table->stats());
  }
  return stats;
}

}  // namespace superfe
