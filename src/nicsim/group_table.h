// NIC group-state table (§6.2 "Group table implementation"): a hash table
// with fixed-length chaining sized to the 512-bit data bus — one bus access
// loads all `width` candidate entries of an index — plus external DRAM to
// absorb chain overflow.
//
// The table is generic over the state type; lookup statistics feed the cycle
// model (a DRAM detour costs an extra high-latency access).
#ifndef SUPERFE_NICSIM_GROUP_TABLE_H_
#define SUPERFE_NICSIM_GROUP_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "switchsim/group_key.h"

namespace superfe {

struct GroupTableStats {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t dram_lookups = 0;  // Chain overflow: search continued in DRAM.
  uint64_t dram_entries = 0;  // Entries currently living in DRAM.

  double DramRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(dram_lookups) /
                                    static_cast<double>(lookups);
  }
};

template <typename State>
class GroupTable {
 public:
  // `indices` hash buckets of `width` entries each.
  GroupTable(uint32_t indices, uint32_t width) : width_(width), buckets_(indices) {}

  // Finds the state for `key`, creating it with `make` if absent.
  // `via_dram` reports whether the access had to detour to DRAM.
  template <typename MakeFn>
  State& FindOrCreate(const GroupKey& key, uint32_t hash, MakeFn&& make, bool& via_dram) {
    ++stats_.lookups;
    via_dram = false;
    Bucket& bucket = buckets_[hash % buckets_.size()];
    for (auto& entry : bucket.entries) {
      if (entry.key == key) {
        return *entry.state;
      }
    }
    if (bucket.entries.size() < width_) {
      ++stats_.inserts;
      bucket.entries.push_back(Entry{key, std::make_unique<State>(make())});
      return *bucket.entries.back().state;
    }
    // Chain full: the entry lives in DRAM (§6.2 collision handling).
    via_dram = true;
    ++stats_.dram_lookups;
    auto it = dram_.find(key);
    if (it == dram_.end()) {
      ++stats_.inserts;
      ++stats_.dram_entries;
      it = dram_.emplace(key, std::make_unique<State>(make())).first;
    }
    return *it->second;
  }

  // Returns the state if present (no creation); nullptr otherwise.
  State* Find(const GroupKey& key, uint32_t hash) {
    Bucket& bucket = buckets_[hash % buckets_.size()];
    for (auto& entry : bucket.entries) {
      if (entry.key == key) {
        return entry.state.get();
      }
    }
    const auto it = dram_.find(key);
    return it == dram_.end() ? nullptr : it->second.get();
  }

  // Visits every (key, state) pair.
  template <typename Visitor>
  void ForEach(Visitor&& visit) {
    for (auto& bucket : buckets_) {
      for (auto& entry : bucket.entries) {
        visit(entry.key, *entry.state);
      }
    }
    for (auto& [key, state] : dram_) {
      visit(key, *state);
    }
  }

  // Removes one entry; returns true if it existed.
  bool Erase(const GroupKey& key, uint32_t hash) {
    Bucket& bucket = buckets_[hash % buckets_.size()];
    for (auto it = bucket.entries.begin(); it != bucket.entries.end(); ++it) {
      if (it->key == key) {
        bucket.entries.erase(it);
        return true;
      }
    }
    const auto it = dram_.find(key);
    if (it != dram_.end()) {
      dram_.erase(it);
      --stats_.dram_entries;
      return true;
    }
    return false;
  }

  void Clear() {
    for (auto& bucket : buckets_) {
      bucket.entries.clear();
    }
    dram_.clear();
    stats_.dram_entries = 0;
  }

  size_t size() const {
    size_t n = dram_.size();
    for (const auto& bucket : buckets_) {
      n += bucket.entries.size();
    }
    return n;
  }

  const GroupTableStats& stats() const { return stats_; }

 private:
  struct Entry {
    GroupKey key;
    std::unique_ptr<State> state;
  };
  struct Bucket {
    std::vector<Entry> entries;
  };

  uint32_t width_;
  std::vector<Bucket> buckets_;
  std::unordered_map<GroupKey, std::unique_ptr<State>, GroupKeyHash> dram_;
  GroupTableStats stats_;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_GROUP_TABLE_H_
