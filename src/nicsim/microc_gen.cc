#include "nicsim/microc_gen.h"

#include <map>
#include <sstream>

namespace superfe {
namespace {

const char* MemLevelMicroC(MemLevel level) {
  switch (level) {
    case MemLevel::kCls:
      return "__declspec(cls)";
    case MemLevel::kCtm:
      return "__declspec(ctm)";
    case MemLevel::kImem:
      return "__declspec(imem)";
    case MemLevel::kEmem:
      return "__declspec(emem)";
  }
  return "__declspec(emem)";
}

std::string SanitizeIdent(std::string name) {
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

void EmitStateStruct(std::ostringstream& out, const ReduceSpec& spec, const std::string& name) {
  out << "struct " << name << " {\n";
  switch (spec.fn) {
    case ReduceFn::kSum:
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      out << "    int32_t value;\n";
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (spec.decay_lambda > 0.0) {
        out << "    uint32_t w_fp;      /* 16.16 decayed weight */\n"
               "    int32_t  mean_fp;   /* 16.16 Welford mean */\n"
               "    uint32_t m2_fp;     /* 16.16 decayed central moment */\n"
               "    uint32_t last_ts;\n";
      } else {
        out << "    uint32_t n;\n"
               "    int32_t  mean;\n"
               "    int32_t  var;\n"
               "    int32_t  mean_acc;  /* division-elimination residue */\n"
               "    int32_t  var_acc;\n";
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      out << "    uint32_t n;\n    int32_t m1, m2, m3, m4;\n";
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      out << "    /* two directed sub-streams + decayed residual product */\n"
             "    uint32_t wa_fp, wb_fp;\n"
             "    int32_t  mean_a_fp, mean_b_fp;\n"
             "    uint32_t m2a_fp, m2b_fp;\n"
             "    int32_t  sr_fp;\n"
             "    uint32_t last_ts;\n";
      break;
    case ReduceFn::kCard:
      out << "    uint8_t hll[64];    /* HyperLogLog, 64 buckets */\n";
      break;
    case ReduceFn::kArray: {
      const uint32_t limit = spec.array_limit != 0 ? spec.array_limit : 5000;
      out << "    uint16_t count;\n    int16_t values[" << limit << "];\n";
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      out << "    uint32_t bins[" << static_cast<uint32_t>(spec.param1) << "];\n";
      break;
    case ReduceFn::kPercent:
      out << "    uint32_t log_bins[32];\n";
      break;
  }
  out << "};\n\n";
}

void EmitUpdate(std::ostringstream& out, const ReduceSpec& spec, const std::string& name) {
  out << "static __forceinline void update_" << name << "(struct " << name
      << " *st, int32_t x, uint32_t ts, int dir) {\n";
  switch (spec.fn) {
    case ReduceFn::kSum:
      out << "    st->value += x;\n";
      break;
    case ReduceFn::kMax:
      out << "    if (x > st->value) st->value = x;\n";
      break;
    case ReduceFn::kMin:
      out << "    if (x < st->value) st->value = x;\n";
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (spec.decay_lambda > 0.0) {
        out << "    /* decayed Welford: gamma = exp2_lut(-LAMBDA * (ts - st->last_ts)) */\n"
               "    uint32_t gamma = exp2_lut(LAMBDA_" << name << ", ts - st->last_ts);\n"
               "    st->w_fp  = fp_mul(st->w_fp,  gamma) + FP_ONE;\n"
               "    st->m2_fp = fp_mul(st->m2_fp, gamma);\n"
               "    { int32_t delta = (x << 16) - st->mean_fp;\n"
               "      /* delta / w via shift-quotient (no divider, Section 6.2) */\n"
               "      st->mean_fp += shift_div(delta, st->w_fp);\n"
               "      st->m2_fp   += fp_mul(delta, (x << 16) - st->mean_fp) >> 16; }\n"
               "    st->last_ts = ts;\n";
      } else {
        out << "    st->n++;\n"
               "    { int32_t delta = x - st->mean;\n"
               "      st->mean_acc += delta;\n"
               "      drain_residue(&st->mean_acc, st->n, &st->mean);\n"
               "      st->var_acc += delta * (x - st->mean) - st->var;\n"
               "      drain_residue(&st->var_acc, st->n, &st->var); }\n";
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      out << "    moments4_update(st, x);  /* Pebay one-pass central moments */\n";
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      out << "    if (dir == DIR_FWD) twod_update_a(st, x, ts);\n"
             "    else                twod_update_b(st, x, ts);\n";
      break;
    case ReduceFn::kCard:
      out << "    /* switch-computed hash rides in the MGPV header (hash reuse) */\n"
             "    { uint32_t h = mgpv_hash ^ (uint32_t)x;\n"
             "      uint32_t idx = h >> 26;                 /* 6 index bits */\n"
             "      uint8_t rank = clz32(h << 6) + 1;\n"
             "      if (rank > st->hll[idx]) st->hll[idx] = rank; }\n";
      break;
    case ReduceFn::kArray: {
      const uint32_t limit = spec.array_limit != 0 ? spec.array_limit : 5000;
      out << "    if (st->count < " << limit << ") st->values[st->count++] = (int16_t)x;\n";
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf: {
      const uint32_t bins = static_cast<uint32_t>(spec.param1);
      out << "    /* bin width rounded to a power of two: index is a shift */\n"
             "    { uint32_t b = (uint32_t)x >> WIDTH_SHIFT_" << name << ";\n"
             "      if (b >= " << bins << ") b = " << bins - 1 << ";\n"
             "      st->bins[b]++; }\n";
      break;
    }
    case ReduceFn::kPercent:
      out << "    st->log_bins[x > 0 ? 31 - clz32((uint32_t)x) + 1 : 0]++;\n";
      break;
  }
  out << "}\n\n";
}

}  // namespace

std::string GenerateMicroC(const CompiledPolicy& compiled, const PlacementResult& placement) {
  const NicProgram& nic = compiled.nic_program;
  std::ostringstream out;
  out << "/* FE-NIC program generated by SuperFE for policy '" << compiled.policy.name
      << "'.\n * Granularity chain:";
  for (Granularity g : nic.granularities) {
    out << " " << GranularityName(g);
  }
  out << "\n * Feature dimension: " << nic.FeatureDimension() << "\n */\n\n";
  out << "#include <nfp.h>\n#include <nfp/me.h>\n#include <nfp/mem_bulk.h>\n"
         "#include \"superfe_runtime.h\"  /* exp2_lut, shift_div, drain_residue, ... */\n\n";

  // State structs + update routines, deduplicated by shape.
  std::map<std::string, ReduceSpec> emitted;
  for (const auto& slot : nic.layout) {
    const std::string name = SanitizeIdent(slot.Name());
    if (emitted.emplace(name, slot.spec).second) {
      EmitStateStruct(out, slot.spec, name);
      EmitUpdate(out, slot.spec, name);
    }
  }

  // Group tables per granularity with ILP-assigned placement.
  out << "/* ---- Group tables (fixed-length chaining, bus-aligned entries;\n"
         " * placement solved per Section 6.2's ILP) ---- */\n";
  for (size_t gi = 0; gi < nic.granularities.size(); ++gi) {
    const char* gran = GranularityName(nic.granularities[gi]);
    // The coarsest-placed state of this granularity decides the table home.
    MemLevel level = MemLevel::kEmem;
    for (size_t s = 0; s < nic.states.size(); ++s) {
      if (nic.states[s].name.rfind(std::string(gran) + "/", 0) == 0) {
        level = placement.assignment[s];
        break;
      }
    }
    out << MemLevelMicroC(level) << " struct group_entry_" << gran << " table_" << gran
        << "[GROUP_TABLE_INDICES][GROUP_TABLE_WIDTH];\n";
  }
  out << "__declspec(emem) struct dram_overflow overflow;  /* chain spill */\n\n";

  // Main per-cell loop.
  out << R"(__forceinline static void process_cell(struct mgpv_cell *cell, uint32_t mgpv_hash) {
    /* One hardware thread per cell; ctx_swap() hides memory latency while
     * the other 7 threads of this ME keep computing (Section 6.2). */
)";
  for (size_t gi = 0; gi < nic.granularities.size(); ++gi) {
    const char* gran = GranularityName(nic.granularities[gi]);
    out << "    {\n        struct group_entry_" << gran << " *g = lookup_or_insert_" << gran
        << "(cell, mgpv_hash);\n";
    for (const auto& slot : nic.layout) {
      if (slot.granularity != nic.granularities[gi]) {
        continue;
      }
      const std::string name = SanitizeIdent(slot.Name());
      out << "        update_" << name << "(&g->" << name << ", cell->" << slot.field
          << ", cell->tstamp, cell->dir);\n";
    }
    out << "    }\n";
  }
  if (nic.collect.per_packet) {
    out << "    emit_feature_vector(cell);  /* collect(pkt) */\n";
  } else {
    out << "    /* collect(" << GranularityName(nic.collect.unit)
        << "): vectors emitted on group eviction/teardown */\n";
  }
  out << "}\n\n";

  out << R"(int main(void) {
    for (;;) {
        struct mgpv_report rep;
        mgpv_receive(&rep);              /* DMA from the switch-facing port */
        for (int i = 0; i < rep.cell_count; i++) {
            process_cell(&rep.cells[i], rep.hash);
        }
    }
}
)";
  return out.str();
}

}  // namespace superfe
