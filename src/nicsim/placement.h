// Group-table placement across the NFP memory hierarchy (§6.2, equations
// 3-5): assign each per-group state item to a memory level, minimizing total
// access latency subject to the 512-bit bus constraint and level capacity.
//
// The paper solves this with Gurobi; the instance is tiny (|S| <= a few
// dozen states, 4 levels), so we solve it exactly with branch-and-bound and
// fall back to a latency-greedy assignment if the node budget is exceeded.
#ifndef SUPERFE_NICSIM_PLACEMENT_H_
#define SUPERFE_NICSIM_PLACEMENT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nicsim/nfp.h"
#include "policy/compile.h"

namespace superfe {

struct PlacementProblem {
  std::vector<StateItem> states;  // From NicProgram::states.
  NfpArch arch;

  // Expected concurrent groups per granularity instance and the number of
  // instances (granularity-chain length); capacity constraints use their
  // product.
  uint32_t groups_per_granularity = 8192;
  uint32_t granularity_instances = 1;

  // Group-table width (entries per hash index) per level, n_m in eq. 5.
  // Wider tables lower the collision rate but tighten the bus constraint.
  std::array<uint32_t, kNumMemLevels> table_width = {4, 4, 2, 1};

  // Per-entry key bytes co-located with the states (eq. 5 counts them
  // against the bus budget).
  uint32_t key_bytes = 13;
};

struct PlacementResult {
  std::vector<MemLevel> assignment;            // Parallel to problem.states.
  std::array<uint64_t, kNumMemLevels> level_bytes{};  // Per-group state bytes.
  uint64_t objective = 0;  // Sum over states of accesses * latency.
  bool optimal = true;     // False if the greedy fallback was used.

  // Memory-latency cycles incurred per packet: per occupied level, one
  // read-modify-write of the words the packet actually touches there (bus
  // beats of 64 bytes). Spreading hot state across fast levels shortens
  // this; piling everything into EMEM pays multi-beat transfers.
  uint64_t LatencyPerPacket(const NfpArch& arch,
                            const std::vector<StateItem>& states) const;

  // Aggregate bytes used across the hierarchy for all groups.
  uint64_t TotalBytesUsed(const PlacementProblem& problem) const;

  // Fraction of total hierarchical memory in use (Table 4 NIC column).
  double MemoryUtilization(const PlacementProblem& problem) const;
};

Result<PlacementResult> SolvePlacement(const PlacementProblem& problem);

// Group-table widths (entries per hash index) appropriate for a per-group
// state footprint: wide tables (fast parallel lookup) for small states, as
// in the paper's 16-byte-entry example; width 1 once states outgrow the
// 512-bit bus budget.
std::array<uint32_t, kNumMemLevels> DefaultTableWidths(uint32_t state_bytes_per_group);

}  // namespace superfe

#endif  // SUPERFE_NICSIM_PLACEMENT_H_
