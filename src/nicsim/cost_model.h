// Cycle cost model for feature computation on NFP microengines, with the
// three §6.2 optimizations as switchable flags (the Fig 17 ablation):
//   1. reuse the switch-computed hash (skips per-cell hashing),
//   2. thread-level latency hiding (8 threads, 2-cycle context switch),
//   3. division elimination (1500-cycle software divide -> comparison).
#ifndef SUPERFE_NICSIM_COST_MODEL_H_
#define SUPERFE_NICSIM_COST_MODEL_H_

#include <cstdint>

#include "nicsim/nfp.h"

namespace superfe {

struct NicOptimizations {
  bool reuse_switch_hash = true;
  bool multithreading = true;
  bool eliminate_division = true;

  static NicOptimizations None() { return {false, false, false}; }
  static NicOptimizations All() { return {true, true, true}; }
};

struct CycleCosts {
  uint32_t alu = 1;
  uint32_t hash = 110;          // CRC over a five-tuple in software.
  uint32_t division = 1500;     // Compiler-provided soft divide (§6.2).
  uint32_t division_opt = 4;    // Comparison-trick replacement.
  uint32_t context_switch = 2;
  uint32_t dispatch = 24;       // Per-cell parse/dispatch overhead.
  // Residual per-cell dispatch under the SoA batch path: the reducer
  // variant/field resolution is hoisted to once per group run (costed at
  // `dispatch` per run), leaving only the vector-lane issue per cell.
  uint32_t dispatch_batched = 6;
  uint32_t report_overhead = 60;  // Per-MGPV-report DMA + header handling.
};

// Cycle totals split by operator family (the Table-5 categories): where a
// NIC's service time actually goes. Fractions of Total() attribute the
// measured worker-service latency per family.
struct NicCycleBreakdown {
  uint64_t dispatch = 0;         // Per-cell parse/dispatch.
  uint64_t alu = 0;              // Arithmetic feature updates.
  uint64_t division = 0;         // Soft divides (or their comparison trick).
  uint64_t hash = 0;             // Group-lookup hashing not covered by reuse.
  uint64_t report_overhead = 0;  // Per-report DMA + header handling.
  uint64_t memory = 0;           // State-memory access latency.

  uint64_t Total() const {
    return dispatch + alu + division + hash + report_overhead + memory;
  }
  void Merge(const NicCycleBreakdown& other) {
    dispatch += other.dispatch;
    alu += other.alu;
    division += other.division;
    hash += other.hash;
    report_overhead += other.report_overhead;
    memory += other.memory;
  }
};

// Expected fraction of group-table lookups that detour to DRAM when
// `groups` uniformly-hashed groups live in a table of `indices` bucket
// chains of `width` entries each (§6.2 collision handling). Poisson
// occupancy model: a group whose bucket holds more than `width` occupants
// spills to DRAM if it arrived after the chain filled; assuming lookups are
// spread uniformly over groups, the detour-lookup fraction equals the
// expected fraction of groups living in DRAM. The cluster cost report uses
// this as the single-NIC baseline a scale-out run is compared against.
double ExpectedDramDetourRate(double groups, double indices, double width);

// Per-cell work description, produced by the execution engine.
struct CellWork {
  uint32_t alu_ops = 0;
  uint32_t divisions = 0;
  uint32_t mem_accesses = 0;      // Distinct state-memory round trips.
  uint64_t mem_latency_cycles = 0;  // Sum of access latencies (placement-aware).
  // Group-lookup hash computations needed (one per granularity). With the
  // reuse optimization the switch-provided hash covers one of them.
  uint32_t hashes = 1;
};

// Work description for one SoA batch (amortized accounting): per-cell
// arithmetic stays per cell, but dispatch, hashing, and state-memory
// traffic are paid once per contiguous group *run* rather than per cell.
struct BatchWork {
  CellWork per_cell;
  uint64_t cells = 0;     // Total cells in the batch.
  uint64_t runs = 0;      // Group runs across all granularities.
  uint64_t cg_runs = 0;   // Runs at the coarse granularity (hash reusable).
  uint64_t dram_runs = 0;  // Runs whose group lookup detoured to DRAM.
  uint32_t granularities = 1;  // Chain length (per_cell spans the chain).
};

// Accumulates work and converts it to wall-clock throughput for a given
// core count.
class NicPerfModel {
 public:
  NicPerfModel(const NfpArch& arch, const NicOptimizations& opts)
      : arch_(arch), opts_(opts) {}

  void AccountCell(const CellWork& work);
  // Amortized accounting for one SoA batch; keeps cells() exact so
  // Table-5 shares and throughput remain per-cell meaningful.
  void AccountBatch(const BatchWork& work);
  void AccountReport();

  // Folds another model's accounted work into this one (cluster members
  // sum to the same totals a single NIC processing every cell would have).
  void Merge(const NicPerfModel& other);

  uint64_t cells() const { return cells_; }
  uint64_t compute_cycles() const { return compute_cycles_; }
  uint64_t memory_cycles() const { return memory_cycles_; }
  // Per-family cycle attribution; breakdown.Total() ==
  // compute_cycles() + memory_cycles().
  const NicCycleBreakdown& breakdown() const { return breakdown_; }

  // Effective core-cycles consumed, after thread-level latency hiding.
  uint64_t EffectiveCycles() const;

  // Packets (cells) per second achievable with `cores` microengines; the
  // NBI distributes per-IP so scaling is near-linear with a small
  // serialization term.
  double ThroughputPps(uint32_t cores) const;
  double ThroughputGbps(uint32_t cores, double avg_packet_bytes) const;

  const NicOptimizations& optimizations() const { return opts_; }
  const CycleCosts& costs() const { return costs_; }

 private:
  NfpArch arch_;
  NicOptimizations opts_;
  CycleCosts costs_;

  uint64_t cells_ = 0;
  uint64_t reports_ = 0;
  uint64_t compute_cycles_ = 0;
  uint64_t memory_cycles_ = 0;
  uint64_t mem_accesses_ = 0;
  NicCycleBreakdown breakdown_;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_COST_MODEL_H_
