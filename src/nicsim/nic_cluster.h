// Multi-SmartNIC scale-out (§8.5): "We can also add more SmartNICs to scale
// up FE-NIC further, with a simple load-balance mechanism implemented on
// the switch to distribute the MGPV traffic across them evenly."
//
// NicCluster is that mechanism: an MgpvSink that routes each report to one
// of N FE-NIC instances by the switch-computed CG hash (so a group's
// reports always land on the same NIC, preserving state locality), and
// broadcasts FG-key syncs to all members.
#ifndef SUPERFE_NICSIM_NIC_CLUSTER_H_
#define SUPERFE_NICSIM_NIC_CLUSTER_H_

#include <memory>
#include <vector>

#include "nicsim/fe_nic.h"

namespace superfe {

class NicCluster : public MgpvSink {
 public:
  // Creates `nic_count` FE-NIC instances sharing one feature sink.
  static Result<std::unique_ptr<NicCluster>> Create(const CompiledPolicy& compiled,
                                                    const FeNicConfig& config, size_t nic_count,
                                                    FeatureSink* sink);

  // MgpvSink: hash-routes reports, broadcasts syncs.
  void OnMgpv(const MgpvReport& report) override;
  void OnFgSync(const FgSyncMessage& sync) override;

  void Flush();

  size_t size() const { return nics_.size(); }
  const FeNic& nic(size_t i) const { return *nics_[i]; }

  // Aggregate throughput: the sum of per-NIC throughputs at `cores_per_nic`
  // each (each member runs its own SoC).
  double ThroughputPps(uint32_t cores_per_nic) const;

  // Load-balance quality: max over NICs of (cells on NIC / mean cells).
  double LoadImbalance() const;

 private:
  explicit NicCluster(std::vector<std::unique_ptr<FeNic>> nics);

  std::vector<std::unique_ptr<FeNic>> nics_;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_NIC_CLUSTER_H_
