// Multi-SmartNIC scale-out (§8.5): "We can also add more SmartNICs to scale
// up FE-NIC further, with a simple load-balance mechanism implemented on
// the switch to distribute the MGPV traffic across them evenly."
//
// NicCluster is that mechanism: an MgpvSink that routes each report to one
// of N FE-NIC instances by the switch-computed CG hash (so a group's
// reports always land on the same NIC, preserving state locality), and
// broadcasts FG-key syncs to all members.
//
// Execution modes:
//  - Serial (default): routing happens inline on the caller's thread — the
//    reference path, identical to the original implementation.
//  - Parallel (options.parallel): one worker thread per member, fed by a
//    bounded MPSC queue. The CG-hash routing is unchanged, so per-group
//    state locality and per-group report order are preserved (same hash →
//    same queue → FIFO). FG syncs are broadcast to every queue *after* the
//    producer's pending report batches are flushed, so a sync is always
//    ordered ahead of the reports that depend on it. Flush() is a barrier:
//    it drains every queue, runs FeNic::Flush() on each owner thread, and
//    returns only when all members are quiescent — after it returns,
//    stats()/vectors reads are race-free.
//
// With the same message stream, the parallel pipeline produces the exact
// same feature multiset as the serial one (only emission order differs):
// correctness depends only on per-group FIFO order, which the routing
// invariant guarantees.
#ifndef SUPERFE_NICSIM_NIC_CLUSTER_H_
#define SUPERFE_NICSIM_NIC_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "nicsim/fe_nic.h"
#include "nicsim/mpsc_queue.h"
#include "obs/trace.h"

namespace superfe {

struct NicClusterOptions {
  // Spawn one worker thread per member; false keeps inline serial dispatch.
  bool parallel = false;

  // Pin worker i to logical CPU (i % CpuCount) — the same slot the sharded
  // replay driver pins shard i's thread to, so a shard and the members its
  // CG range prefers share a core/NUMA node. Best-effort (common/affinity):
  // no-op with one logged warning where unsupported. Parallel mode only.
  bool pin_threads = false;

  // Bound on queued messages per worker. Control messages (FG syncs, flush
  // barriers) bypass the bound — only report batches are subject to it.
  size_t queue_capacity = 256;

  // Full-queue policy for report batches: false applies backpressure (the
  // producer blocks until the worker drains — lossless, the default so
  // parallel runs stay bit-identical to serial), true drops the batch and
  // counts it (models a NIC whose ingest buffers overflow).
  bool drop_on_overflow = false;

  // Producer-side batching: reports routed to the same member are enqueued
  // in chunks of up to this many, amortizing queue synchronization. Syncs
  // and Flush() force pending batches out first, so ordering is unaffected.
  size_t enqueue_batch = 32;

  // Observability wiring (nullable = off; neither is owned). With `metrics`,
  // every member NIC registers superfe_nic_* counters labeled {nic="<i>"}
  // and, in parallel mode, every worker registers superfe_cluster_*
  // counters/gauges labeled {worker="<i>"}. With `trace`, the default
  // producer emits on lane `trace_lane_base` and worker i on lane
  // `worker_lane_base + i` (lanes are single-writer). `worker_lane_base`
  // = 0 means the historical layout, `trace_lane_base + 1`; the sharded
  // replay driver sets it past its per-shard producer lanes.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane_base = 0;
  uint32_t worker_lane_base = 0;

  // Register superfe_cycles_total{stage=...} counters and bracket the
  // worker stages (dequeue, feature_kernels, sync_broadcast) with cycle
  // reads. Off = zero cycle reads on the hot path.
  bool profile = false;
  // Auto-flush cadence of each member NIC's batch-local obs block, in
  // processed cells (1 = legacy per-packet registry cadence). Worker-loop
  // blocks flush per dequeued batch regardless.
  uint32_t obs_batch_packets = 4096;

  // Trace-time clock published by the replay loop (see obs/latency.h). When
  // set together with `metrics`, the cluster records queue wait, worker
  // service time, and end-to-end ingest->emit latency — all in trace-time
  // ns, so they compose with the MGPV residency measurements.
  obs::TraceClock* latency_clock = nullptr;

  // Fault-injection + failover wiring (docs/ROBUSTNESS.md; not owned).
  // With an injector, producers consult RouteFor per report: crashed
  // members' CG-hash ranges fail over to survivors via rendezvous hashing
  // (order-preserving handoff fences), reports in the crash-detection window
  // are counted lost, and injected queue saturation runs a bounded
  // retry/backoff loop before shedding. Null = every hook compiles to one
  // predictable untaken branch.
  FaultInjector* injector = nullptr;

  // Flush()/FlushWithDeadline() barrier timeout in wall-clock ms; on expiry
  // the barrier dumps per-worker queue depths + last-progress ages and
  // returns Status::DeadlineExceeded. Also bounds the destructor's wait for
  // worker exit before it joins. 0 = wait forever (historical behavior).
  uint64_t flush_timeout_ms = 0;

  // Watchdog: with a nonzero interval a monitor thread checks each worker
  // every `watchdog_interval_ms`; a worker with queued messages and no
  // progress for `watchdog_timeout_ms` raises an edge-triggered stall event
  // (log + superfe_cluster_watchdog_stalls_total + FaultStats). 0 = off.
  uint32_t watchdog_interval_ms = 0;
  uint32_t watchdog_timeout_ms = 200;

  // Bounded producer push: instead of blocking indefinitely on a full
  // worker queue, wait at most this many ms and then drop the batch into
  // the overflow-drop counters (reports_dropped/cells_dropped). 0 keeps the
  // lossless unbounded PushBlocking. Ignored with drop_on_overflow.
  uint64_t push_timeout_ms = 0;
};

// Per-worker pipeline counters (MgpvStats-style; all zero in serial mode).
struct NicWorkerStats {
  uint64_t batches_enqueued = 0;
  uint64_t reports_enqueued = 0;
  uint64_t reports_dropped = 0;  // Only with drop_on_overflow.
  uint64_t cells_dropped = 0;    // Cells inside dropped reports.
  uint64_t syncs_enqueued = 0;
  // Pushes that stalled on a full queue (counted at stall entry, so a
  // currently-blocked producer is already visible here).
  uint64_t backpressure_waits = 0;
  uint64_t queue_high_watermark = 0;
};

// Per-member slice of the cluster cost report.
struct ClusterMemberCost {
  uint64_t cells = 0;
  uint64_t reports = 0;
  uint64_t vectors = 0;
  uint64_t dram_detours = 0;
  double cells_share = 0.0;        // cells / cluster cells.
  double load_delta = 0.0;         // cells_share - 1/N (0 = perfectly even).
  double dram_detour_rate = 0.0;   // DRAM lookups / table lookups.
  double dram_detour_delta = 0.0;  // dram_detour_rate - single-NIC model.
};

// Cluster-aware cost accounting vs the single-NIC model (§8.5 scale-out):
// how unevenly the CG hash spread the load, and how each member's
// DRAM-detour rate compares with what one NIC of the same table geometry
// holding the union of the groups would see (Poisson occupancy model,
// ExpectedDramDetourRate). Splitting tables across members usually *cuts*
// detours — each member hosts ~1/N of the groups in a full-size table — so
// the deltas are typically negative; Fig 9/16-style sweeps can quote them
// alongside the merged perf totals.
struct ClusterCostReport {
  bool enabled = false;
  size_t members = 0;
  double load_imbalance = 1.0;  // max member cells / mean (LoadImbalance()).
  uint64_t dram_detours = 0;    // Sum over members (== FeNicStats total).
  double dram_detour_rate = 0.0;        // Cluster-wide DRAM / total lookups.
  double single_nic_detour_rate = 0.0;  // Modeled one-NIC baseline rate.
  double dram_detour_delta = 0.0;       // Cluster rate - single-NIC rate.
  std::vector<ClusterMemberCost> per_member;
};

class NicCluster : public MgpvSink {
 public:
  // Creates `nic_count` FE-NIC instances sharing one feature sink. In
  // parallel mode the sink is wrapped so concurrent per-member emissions
  // are serialized; the user sink needs no locking of its own.
  static Result<std::unique_ptr<NicCluster>> Create(const CompiledPolicy& compiled,
                                                    const FeNicConfig& config, size_t nic_count,
                                                    FeatureSink* sink);
  static Result<std::unique_ptr<NicCluster>> Create(const CompiledPolicy& compiled,
                                                    const FeNicConfig& config, size_t nic_count,
                                                    FeatureSink* sink,
                                                    const NicClusterOptions& options);

  ~NicCluster() override;

  // One switch-side feeding thread's handle (parallel mode). The staging
  // batches are producer-owned state, so each concurrent feeder — e.g. one
  // replay shard — must push through its own Producer; the queues
  // themselves are multi-producer-safe. Ordering holds per producer: a
  // sync reaches every member after the reports this producer staged
  // before it and before any it stages after (cross-producer interleaving
  // is unordered, which per-group routing tolerates). Close() before the
  // cluster's Flush() barrier; the destructor closes too.
  class Producer : public MgpvSink {
   public:
    ~Producer() override { Close(); }
    void OnMgpv(const MgpvReport& report) override;
    void OnFgSync(const FgSyncMessage& sync) override;
    // Enqueues any staged batches. The handle remains usable afterwards.
    void Close();

   private:
    friend class NicCluster;
    Producer(NicCluster* cluster, uint32_t trace_lane);

    // Routes one report through the fault hooks (injector present). Returns
    // false when the report was consumed (lost / shed) and must not be
    // staged; otherwise `target` holds the (possibly failed-over) member.
    bool FaultRoute(const MgpvReport& report, size_t& target);

    NicCluster* cluster_;
    uint32_t trace_lane_;
    std::vector<std::vector<MgpvReport>> pending_;  // One batch per member.
    // Batched FaultStats offered-counts (hot tier of NoteOffered); folded
    // into the injector in Close(), which always precedes Snapshot reads.
    uint64_t offered_reports_ = 0;
    uint64_t offered_cells_ = 0;
    // (from, to) member pairs this producer has already fenced — one
    // handoff fence per pair is enough to order the whole failed-over range.
    std::unordered_set<uint64_t> fenced_;
  };

  // New feeding-thread handle emitting trace instants on `trace_lane`
  // (parallel mode only; returns null in serial mode).
  std::unique_ptr<Producer> MakeProducer(uint32_t trace_lane);

  // MgpvSink: hash-routes reports, broadcasts syncs, via a built-in default
  // Producer — the single-feeder path, call from one thread at a time.
  void OnMgpv(const MgpvReport& report) override;
  void OnFgSync(const FgSyncMessage& sync) override;

  // Drains all queues, flushes every member on its owner thread, and
  // returns once the whole cluster is quiescent (barrier in parallel mode).
  // Uses options().flush_timeout_ms; a deadline hit is logged and ignored.
  void Flush();

  // Flush() with an explicit wall-clock deadline (0 = wait forever). On
  // expiry: dumps per-worker queue depths / last-progress ages via SFE_WLOG,
  // records the event in FaultStats, and returns Status::DeadlineExceeded —
  // workers keep draining in the background; a later barrier (or the
  // destructor) picks up where this one gave up. With a fault injector,
  // members dead at flush time abandon their residual state instead of
  // emitting it (counted in groups_abandoned).
  Status FlushWithDeadline(uint64_t timeout_ms);

  // Barrier without the flush: drains every queue and folds worker-side obs
  // deltas so registry/stat reads are exact, but leaves each member NIC's
  // in-progress group state untouched (and does not abandon crashed-member
  // state — that accounting belongs to the final flush). Daemon mode runs
  // this at every rolling-epoch boundary; the final epoch uses
  // FlushWithDeadline() as always, which is what makes concatenated epoch
  // exports equal a one-shot run. Serial mode is a no-op (dispatch is
  // inline, nothing is queued).
  Status DrainWithDeadline(uint64_t timeout_ms);

  size_t size() const { return nics_.size(); }
  const FeNic& nic(size_t i) const { return *nics_[i]; }
  const NicClusterOptions& options() const { return options_; }

  // Consistent mid-run per-worker pipeline counters.
  NicWorkerStats worker_stats(size_t i) const;

  // Publishes each worker's live queue depth and high watermark into the
  // registry gauges. Safe from any thread (the queue accessors lock); the
  // snapshot sampler calls this as its pre-sample hook. No-op without
  // metrics or in serial mode.
  void UpdateObsGauges();

  // Sum of per-member stats snapshots (safe mid-run).
  FeNicStats AggregateStats() const;

  // Sum of per-member accounted work: equivalent to the model a single NIC
  // processing the full stream would build (modulo per-member DRAM-detour
  // differences from the split tables).
  NicPerfModel MergedPerf() const;

  // Aggregate throughput: the sum of per-NIC throughputs at `cores_per_nic`
  // each (each member runs its own SoC).
  double ThroughputPps(uint32_t cores_per_nic) const;

  // Load-balance quality: max over NICs of (cells on NIC / mean cells).
  double LoadImbalance() const;

  // Cluster-aware cost accounting after a run (see ClusterCostReport).
  // `single_nic_indices`/`single_nic_width` describe the baseline single
  // NIC's group-table geometry (normally the same FeNicConfig the members
  // use). Call at quiescence (after Flush()).
  ClusterCostReport CostReport(uint32_t single_nic_indices,
                               uint32_t single_nic_width) const;

 private:
  struct WorkerMessage {
    // kFenceMark / kFenceWait implement the order-preserving failover
    // handoff: the mark lands in the dead member's queue after every report
    // a producer routed there, the wait in the survivor's queue before any
    // rerouted report — the survivor parks until the mark is processed, so a
    // group's reports never overtake each other across the handoff.
    enum class Kind { kReports, kSync, kFlush, kStop, kFenceMark, kFenceWait };
    Kind kind = Kind::kReports;
    std::vector<MgpvReport> reports;
    FgSyncMessage sync;
    uint64_t fence_id = 0;  // kFenceMark / kFenceWait.
    bool abandon = false;   // kFlush: discard state instead of emitting.
    // kFlush: barrier-only — drain the queue and fold obs deltas, but do
    // NOT flush (or abandon) the member NIC's feature state. Daemon epoch
    // boundaries use this so partial groups carry across epochs.
    bool drain_only = false;
  };

  struct Worker {
    explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

    BoundedMpscQueue<WorkerMessage> queue;
    std::thread thread;

    // Worker-written liveness signals read by the watchdog / diagnostics.
    std::atomic<uint64_t> last_progress_ns{0};  // steady_clock ns.
    std::atomic<uint64_t> messages_processed{0};
    std::atomic<bool> exited{false};

    // Producer-written counters; atomics so worker_stats() can read them
    // mid-run without tearing (and so concurrent Producers compose).
    std::atomic<uint64_t> batches_enqueued{0};
    std::atomic<uint64_t> reports_enqueued{0};
    std::atomic<uint64_t> reports_dropped{0};
    std::atomic<uint64_t> cells_dropped{0};
    std::atomic<uint64_t> syncs_enqueued{0};

    // Nullable metric handles mirroring the atomics above (incremented at
    // the same sites). The stall counter lives in the queue itself.
    obs::Counter* obs_batches = nullptr;
    obs::Counter* obs_reports = nullptr;
    obs::Counter* obs_reports_dropped = nullptr;
    obs::Counter* obs_cells_dropped = nullptr;
    obs::Counter* obs_syncs = nullptr;
    obs::Gauge* obs_queue_depth = nullptr;
    obs::Gauge* obs_queue_watermark = nullptr;
    // Eviction -> dequeue wait (includes producer-side staging), observed
    // by the worker thread per dequeued report.
    obs::LatencyHistogram* obs_queue_wait = nullptr;
  };

  // Serializes concurrent OnFeatureVector calls from the worker threads
  // onto the single user sink.
  class SerializingSink : public FeatureSink {
   public:
    explicit SerializingSink(FeatureSink* target) : target_(target) {}
    void OnFeatureVector(FeatureVector&& vector) override {
      std::lock_guard<std::mutex> lock(mu_);
      target_->OnFeatureVector(std::move(vector));
    }

   private:
    std::mutex mu_;
    FeatureSink* target_;
  };

  NicCluster(std::vector<std::unique_ptr<FeNic>> nics, const NicClusterOptions& options,
             std::unique_ptr<SerializingSink> serializing_sink);

  void WorkerLoop(size_t index);
  void WatchdogLoop();
  // Logs every worker's queue depth, watermark, enqueue/process counts, and
  // last-progress age (flush-deadline and shutdown diagnostics).
  void DumpStallDiagnostics(const char* why);
  // Issues one order-preserving handoff fence from member `from` (dead) to
  // `to` (survivor). Multi-producer-safe; ids are globally unique.
  void PushFence(size_t from, size_t to, uint32_t trace_lane);
  // Counts members dead at flush into FaultStats exactly once per cluster.
  void AccountCrashedMembers();
  // Shared body of FlushWithDeadline / DrainWithDeadline.
  Status BarrierWithDeadline(uint64_t timeout_ms, bool drain_only);
  // Serial-mode fault routing (same decisions as Producer::FaultRoute,
  // minus fences — inline dispatch already preserves order).
  bool SerialFaultRoute(const MgpvReport& report, size_t& target);
  // Enqueues one producer's staged batch for member `i` (moves it out; the
  // caller's vector is left empty). Multi-producer-safe.
  void EnqueueBatch(size_t i, std::vector<MgpvReport>&& batch, uint32_t trace_lane);
  // Broadcasts one sync to every member queue (after the caller flushed
  // its own staging). Multi-producer-safe.
  void BroadcastSync(const FgSyncMessage& sync, uint32_t trace_lane);

  std::vector<std::unique_ptr<FeNic>> nics_;
  NicClusterOptions options_;
  std::unique_ptr<SerializingSink> serializing_sink_;  // Parallel mode only.
  std::vector<std::unique_ptr<Worker>> workers_;       // Parallel mode only.
  std::unique_ptr<Producer> default_producer_;         // Parallel mode only.

  // Latency stages recorded at report granularity (null = tracking off).
  // Shared across workers; LatencyHistogram::Observe is wait-free.
  obs::LatencyHistogram* lat_service_ = nullptr;
  obs::LatencyHistogram* lat_e2e_ = nullptr;

  // Flush-barrier rendezvous.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  size_t flush_pending_ = 0;

  // Failover fence rendezvous (separate from the flush barrier so a parked
  // survivor never interferes with flush accounting). `fence_shutdown_`
  // releases any parked waiter at destruction so shutdown cannot wedge.
  std::mutex fence_mu_;
  std::condition_variable fence_cv_;
  std::unordered_set<uint64_t> fence_marks_;
  std::atomic<uint64_t> next_fence_id_{0};
  std::atomic<bool> fence_shutdown_{false};

  // Watchdog monitor (parallel mode, watchdog_interval_ms > 0).
  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  obs::Counter* obs_watchdog_stalls_ = nullptr;
  // superfe_cycles_total{stage="dequeue"}; null unless options.profile.
  obs::Counter* obs_cycles_dequeue_ = nullptr;

  std::atomic<bool> crashes_accounted_{false};
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_NIC_CLUSTER_H_
