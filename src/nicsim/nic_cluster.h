// Multi-SmartNIC scale-out (§8.5): "We can also add more SmartNICs to scale
// up FE-NIC further, with a simple load-balance mechanism implemented on
// the switch to distribute the MGPV traffic across them evenly."
//
// NicCluster is that mechanism: an MgpvSink that routes each report to one
// of N FE-NIC instances by the switch-computed CG hash (so a group's
// reports always land on the same NIC, preserving state locality), and
// broadcasts FG-key syncs to all members.
//
// Execution modes:
//  - Serial (default): routing happens inline on the caller's thread — the
//    reference path, identical to the original implementation.
//  - Parallel (options.parallel): one worker thread per member, fed by a
//    bounded MPSC queue. The CG-hash routing is unchanged, so per-group
//    state locality and per-group report order are preserved (same hash →
//    same queue → FIFO). FG syncs are broadcast to every queue *after* the
//    producer's pending report batches are flushed, so a sync is always
//    ordered ahead of the reports that depend on it. Flush() is a barrier:
//    it drains every queue, runs FeNic::Flush() on each owner thread, and
//    returns only when all members are quiescent — after it returns,
//    stats()/vectors reads are race-free.
//
// With the same message stream, the parallel pipeline produces the exact
// same feature multiset as the serial one (only emission order differs):
// correctness depends only on per-group FIFO order, which the routing
// invariant guarantees.
#ifndef SUPERFE_NICSIM_NIC_CLUSTER_H_
#define SUPERFE_NICSIM_NIC_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nicsim/fe_nic.h"
#include "nicsim/mpsc_queue.h"
#include "obs/trace.h"

namespace superfe {

struct NicClusterOptions {
  // Spawn one worker thread per member; false keeps inline serial dispatch.
  bool parallel = false;

  // Bound on queued messages per worker. Control messages (FG syncs, flush
  // barriers) bypass the bound — only report batches are subject to it.
  size_t queue_capacity = 256;

  // Full-queue policy for report batches: false applies backpressure (the
  // producer blocks until the worker drains — lossless, the default so
  // parallel runs stay bit-identical to serial), true drops the batch and
  // counts it (models a NIC whose ingest buffers overflow).
  bool drop_on_overflow = false;

  // Producer-side batching: reports routed to the same member are enqueued
  // in chunks of up to this many, amortizing queue synchronization. Syncs
  // and Flush() force pending batches out first, so ordering is unaffected.
  size_t enqueue_batch = 32;

  // Observability wiring (nullable = off; neither is owned). With `metrics`,
  // every member NIC registers superfe_nic_* counters labeled {nic="<i>"}
  // and, in parallel mode, every worker registers superfe_cluster_*
  // counters/gauges labeled {worker="<i>"}. With `trace`, the producer
  // thread emits on lane `trace_lane_base` and worker i on lane
  // `trace_lane_base + 1 + i` (lanes are single-writer).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane_base = 0;

  // Trace-time clock published by the replay loop (see obs/latency.h). When
  // set together with `metrics`, the cluster records queue wait, worker
  // service time, and end-to-end ingest->emit latency — all in trace-time
  // ns, so they compose with the MGPV residency measurements.
  obs::TraceClock* latency_clock = nullptr;
};

// Per-worker pipeline counters (MgpvStats-style; all zero in serial mode).
struct NicWorkerStats {
  uint64_t batches_enqueued = 0;
  uint64_t reports_enqueued = 0;
  uint64_t reports_dropped = 0;  // Only with drop_on_overflow.
  uint64_t cells_dropped = 0;    // Cells inside dropped reports.
  uint64_t syncs_enqueued = 0;
  // Pushes that stalled on a full queue (counted at stall entry, so a
  // currently-blocked producer is already visible here).
  uint64_t backpressure_waits = 0;
  uint64_t queue_high_watermark = 0;
};

class NicCluster : public MgpvSink {
 public:
  // Creates `nic_count` FE-NIC instances sharing one feature sink. In
  // parallel mode the sink is wrapped so concurrent per-member emissions
  // are serialized; the user sink needs no locking of its own.
  static Result<std::unique_ptr<NicCluster>> Create(const CompiledPolicy& compiled,
                                                    const FeNicConfig& config, size_t nic_count,
                                                    FeatureSink* sink);
  static Result<std::unique_ptr<NicCluster>> Create(const CompiledPolicy& compiled,
                                                    const FeNicConfig& config, size_t nic_count,
                                                    FeatureSink* sink,
                                                    const NicClusterOptions& options);

  ~NicCluster() override;

  // MgpvSink: hash-routes reports, broadcasts syncs. Producer-side: called
  // from one feeding thread (the switch/replay thread).
  void OnMgpv(const MgpvReport& report) override;
  void OnFgSync(const FgSyncMessage& sync) override;

  // Drains all queues, flushes every member on its owner thread, and
  // returns once the whole cluster is quiescent (barrier in parallel mode).
  void Flush();

  size_t size() const { return nics_.size(); }
  const FeNic& nic(size_t i) const { return *nics_[i]; }
  const NicClusterOptions& options() const { return options_; }

  // Consistent mid-run per-worker pipeline counters.
  NicWorkerStats worker_stats(size_t i) const;

  // Publishes each worker's live queue depth and high watermark into the
  // registry gauges. Safe from any thread (the queue accessors lock); the
  // snapshot sampler calls this as its pre-sample hook. No-op without
  // metrics or in serial mode.
  void UpdateObsGauges();

  // Sum of per-member stats snapshots (safe mid-run).
  FeNicStats AggregateStats() const;

  // Sum of per-member accounted work: equivalent to the model a single NIC
  // processing the full stream would build (modulo per-member DRAM-detour
  // differences from the split tables).
  NicPerfModel MergedPerf() const;

  // Aggregate throughput: the sum of per-NIC throughputs at `cores_per_nic`
  // each (each member runs its own SoC).
  double ThroughputPps(uint32_t cores_per_nic) const;

  // Load-balance quality: max over NICs of (cells on NIC / mean cells).
  double LoadImbalance() const;

 private:
  struct WorkerMessage {
    enum class Kind { kReports, kSync, kFlush, kStop };
    Kind kind = Kind::kReports;
    std::vector<MgpvReport> reports;
    FgSyncMessage sync;
  };

  struct Worker {
    explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

    BoundedMpscQueue<WorkerMessage> queue;
    std::thread thread;

    // Producer-owned staging batch (only the feeding thread touches it).
    std::vector<MgpvReport> pending;

    // Producer-written counters; atomics so worker_stats() can read them
    // mid-run without tearing.
    std::atomic<uint64_t> batches_enqueued{0};
    std::atomic<uint64_t> reports_enqueued{0};
    std::atomic<uint64_t> reports_dropped{0};
    std::atomic<uint64_t> cells_dropped{0};
    std::atomic<uint64_t> syncs_enqueued{0};

    // Nullable metric handles mirroring the atomics above (incremented at
    // the same sites). The stall counter lives in the queue itself.
    obs::Counter* obs_batches = nullptr;
    obs::Counter* obs_reports = nullptr;
    obs::Counter* obs_reports_dropped = nullptr;
    obs::Counter* obs_cells_dropped = nullptr;
    obs::Counter* obs_syncs = nullptr;
    obs::Gauge* obs_queue_depth = nullptr;
    obs::Gauge* obs_queue_watermark = nullptr;
    // Eviction -> dequeue wait (includes producer-side staging), observed
    // by the worker thread per dequeued report.
    obs::LatencyHistogram* obs_queue_wait = nullptr;
  };

  // Serializes concurrent OnFeatureVector calls from the worker threads
  // onto the single user sink.
  class SerializingSink : public FeatureSink {
   public:
    explicit SerializingSink(FeatureSink* target) : target_(target) {}
    void OnFeatureVector(FeatureVector&& vector) override {
      std::lock_guard<std::mutex> lock(mu_);
      target_->OnFeatureVector(std::move(vector));
    }

   private:
    std::mutex mu_;
    FeatureSink* target_;
  };

  NicCluster(std::vector<std::unique_ptr<FeNic>> nics, const NicClusterOptions& options,
             std::unique_ptr<SerializingSink> serializing_sink);

  void WorkerLoop(size_t index);
  // Enqueues worker `i`'s staged batch (no-op when empty).
  void FlushPending(size_t i);
  void FlushAllPending();

  std::vector<std::unique_ptr<FeNic>> nics_;
  NicClusterOptions options_;
  std::unique_ptr<SerializingSink> serializing_sink_;  // Parallel mode only.
  std::vector<std::unique_ptr<Worker>> workers_;       // Parallel mode only.

  // Latency stages recorded at report granularity (null = tracking off).
  // Shared across workers; LatencyHistogram::Observe is wait-free.
  obs::LatencyHistogram* lat_service_ = nullptr;
  obs::LatencyHistogram* lat_e2e_ = nullptr;

  // Flush-barrier rendezvous.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  size_t flush_pending_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_NIC_CLUSTER_H_
