// Feature-computation engine: executes the NIC side of a compiled policy
// (map / reduce / synthesize) over MGPV cells, maintaining per-group state
// with the streaming algorithms of §6.1.
//
// The engine is shared by FE-NIC (which adds the NFP cost model on top) and
// by the software-baseline extractor (which runs it with exact arithmetic).
#ifndef SUPERFE_NICSIM_EXEC_H_
#define SUPERFE_NICSIM_EXEC_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/status.h"
#include "policy/compile.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/welford.h"
#include "switchsim/evict.h"

namespace superfe {

struct ExecOptions {
  // True: run the arithmetic the NFP actually uses (integer Welford with
  // division elimination, fixed-point damped windows). False: exact
  // double-precision (the standard feature definitions of Fig 10).
  bool nic_arithmetic = true;

  // Explicit damped-window arithmetic override; unset derives it from
  // nic_arithmetic. kFloat32 reproduces the original Kitsune implementation
  // for the Fig 10 comparison.
  std::optional<DampedMode> damped_mode;

  DampedMode EffectiveDampedMode() const {
    if (damped_mode.has_value()) {
      return *damped_mode;
    }
    return nic_arithmetic ? DampedMode::kNicFixedPoint : DampedMode::kExactDouble;
  }
};

namespace exec_internal {

struct SumAgg {
  double sum = 0.0;
};
struct MinMaxAgg {
  bool any = false;
  double value = 0.0;
};
struct ArrayAgg {
  uint32_t limit = 0;
  std::vector<double> values;
};
// Log2-bucketed histogram used by ft_percent (index via clz; §6.1).
// 32 buckets x 4 bytes, matching the cost registry and the generated
// Micro-C state layout.
struct LogHist {
  std::array<uint32_t, 32> buckets{};
  uint64_t total = 0;
};

}  // namespace exec_internal

// One reducing-function instance for one group.
//
// At direction-recording granularities (host/channel/socket, Table 5) the
// damped 1D statistics are *directional*: each direction's sub-stream is
// tracked separately (Kitsune's HH/HpHp semantics) and emission reports the
// current packet's side. Directed sub-streams also stay in timestamp order
// through MGPV, since each lives inside one coarse-granularity group.
class Reducer {
 public:
  Reducer(const ReduceSpec& spec, const ExecOptions& options, bool directional);

  // Feeds one sample. `t_seconds` is the packet time (damped windows);
  // `dir` routes bidirectional and directional statistics.
  void Update(double value, double t_seconds, Direction dir);

  // Appends this reducer's OutputWidth(spec) feature values. `dir` selects
  // the side of directional statistics (the emitting packet's direction).
  void Emit(std::vector<double>& out, Direction dir = Direction::kForward) const;

  const ReduceSpec& spec() const { return spec_; }

 private:
  ReduceSpec spec_;
  bool nic_ = true;
  bool directional_ = false;
  std::variant<exec_internal::SumAgg, exec_internal::MinMaxAgg, WelfordStats, NicWelfordStats,
               DampedStats, StreamingMoments, DampedStats2D, HyperLogLog,
               exec_internal::ArrayAgg, FixedHistogram, exec_internal::LogHist>
      impl_;
};

// Post-processing (synthesize) of an emitted feature block.
std::vector<double> ApplySynth(const SynthStep& step, std::vector<double> values);

// Index-compiled form of a NicProgram (field names resolved to slots).
// Reducer lists are per granularity: reduces may be restricted to one
// granularity of the chain (Kitsune computes different feature sets per
// granularity).
struct ExecPlan {
  static constexpr int kFieldSize = 0;
  static constexpr int kFieldTstamp = 1;     // Nanoseconds.
  static constexpr int kFieldDirection = 2;  // +1 / -1.
  // Hash of the packet's finest-granularity group key: lets f_card count
  // distinct finer groups per coarse group ("the number of TCP flows that
  // each IP address establishes", §4.1).
  static constexpr int kFieldFgKey = 3;

  struct MapStep {
    int dst = 0;
    int src = -1;  // -1 for "_".
    MapFn fn = MapFn::kOne;
  };
  struct ReduceStep {
    int src = 0;
    ReduceSpec spec;
  };
  struct GranularityPlan {
    Granularity granularity = Granularity::kFlow;
    std::vector<ReduceStep> reduces;  // In layout order.
    std::vector<FeatureSlot> slots;   // Parallel to reduces (synth chains).
  };

  int field_count = 4;
  std::vector<MapStep> maps;
  std::vector<GranularityPlan> per_granularity;  // Chain order.

  static Result<ExecPlan> FromProgram(const NicProgram& program);
};

// Per-group execution state.
struct GroupState {
  // Mapping-function state. Inter-packet time is tracked per direction:
  // directional jitter is Kitsune's semantics, and each direction's
  // sub-stream stays in timestamp order through MGPV (cells of one
  // direction share a coarse-granularity group).
  double last_tstamp_ns[2] = {-1.0, -1.0};  // Indexed by Direction.
  int last_dir = 0;
  double burst_len = 0.0;

  std::vector<Reducer> reducers;  // Parallel to the granularity plan's reduces.

  // Bookkeeping for emission.
  uint64_t packets = 0;
  uint64_t last_seen_ns = 0;
  FiveTuple last_fg_tuple;  // For deriving coarser keys at emission.
  Direction last_direction = Direction::kForward;

  // Creates state for granularity index `gi` of the plan's chain.
  static GroupState Make(const ExecPlan& plan, size_t gi, const ExecOptions& options);
};

// Updates one group (at granularity index `gi`) with one cell.
void UpdateGroup(const ExecPlan& plan, size_t gi, GroupState& group, const MgpvCell& cell);

// Emits the group's feature block for granularity index `gi`: reducer
// outputs with synthesize chains applied, appended to `out`.
void EmitGroupFeatures(const ExecPlan& plan, size_t gi, const GroupState& group,
                       std::vector<double>& out);

// Feature width of granularity index `gi` (for zero-fill of absent groups).
uint32_t GranularityFeatureWidth(const ExecPlan& plan, size_t gi);

}  // namespace superfe

#endif  // SUPERFE_NICSIM_EXEC_H_
