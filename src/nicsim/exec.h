// Feature-computation engine: executes the NIC side of a compiled policy
// (map / reduce / synthesize) over MGPV cells, maintaining per-group state
// with the streaming algorithms of §6.1.
//
// The engine is shared by FE-NIC (which adds the NFP cost model on top) and
// by the software-baseline extractor (which runs it with exact arithmetic).
#ifndef SUPERFE_NICSIM_EXEC_H_
#define SUPERFE_NICSIM_EXEC_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/status.h"
#include "policy/compile.h"
#include "streaming/damped.h"
#include "streaming/histogram.h"
#include "streaming/hyperloglog.h"
#include "streaming/moments.h"
#include "streaming/welford.h"
#include "switchsim/evict.h"

namespace superfe {

struct ExecOptions {
  // True: run the arithmetic the NFP actually uses (integer Welford with
  // division elimination, fixed-point damped windows). False: exact
  // double-precision (the standard feature definitions of Fig 10).
  bool nic_arithmetic = true;

  // Neumaier-compensated summation inside the double-precision batch
  // kernels (sum / Welford / moments chunk passes). Closes the documented
  // ULP gap between batch and scalar summation order at scalar speed; the
  // bit-exact integer/fixed-point kernels ignore it.
  bool compensated_batch = false;

  // Explicit damped-window arithmetic override; unset derives it from
  // nic_arithmetic. kFloat32 reproduces the original Kitsune implementation
  // for the Fig 10 comparison.
  std::optional<DampedMode> damped_mode;

  DampedMode EffectiveDampedMode() const {
    if (damped_mode.has_value()) {
      return *damped_mode;
    }
    return nic_arithmetic ? DampedMode::kNicFixedPoint : DampedMode::kExactDouble;
  }
};

namespace exec_internal {

struct SumAgg {
  double sum = 0.0;
};
struct MinMaxAgg {
  bool any = false;
  double value = 0.0;
};
struct ArrayAgg {
  uint32_t limit = 0;
  std::vector<double> values;
};
// Log2-bucketed histogram used by ft_percent (index via clz; §6.1).
// 32 buckets x 4 bytes, matching the cost registry and the generated
// Micro-C state layout.
struct LogHist {
  std::array<uint32_t, 32> buckets{};
  uint64_t total = 0;

  // Bulk insert via the vectorized log2 bucketer; bucket-identical to
  // elementwise inserts.
  void AddBatch(const double* v, size_t n);
};

}  // namespace exec_internal

// One reducing-function instance for one group.
//
// At direction-recording granularities (host/channel/socket, Table 5) the
// damped 1D statistics are *directional*: each direction's sub-stream is
// tracked separately (Kitsune's HH/HpHp semantics) and emission reports the
// current packet's side. Directed sub-streams also stay in timestamp order
// through MGPV, since each lives inside one coarse-granularity group.
class Reducer {
 public:
  Reducer(const ReduceSpec& spec, const ExecOptions& options, bool directional);

  // Feeds one sample. `t_seconds` is the packet time (damped windows);
  // `dir` routes bidirectional and directional statistics.
  void Update(double value, double t_seconds, Direction dir);

  // Feeds n samples at once (one group run of a sorted batch). `dir_sign`
  // is the ±1 direction column; `scratch_u64` is caller-provided conversion
  // scratch (grown as needed). Equivalent to n Update calls: bit-identical
  // for the integer/fixed-point/order-independent kernels, ULP-bounded for
  // the double sum/Welford/moments kernels (see streaming/batch.h).
  void UpdateBatch(const double* values, const double* t_seconds,
                   const double* dir_sign, size_t n,
                   std::vector<uint64_t>& scratch_u64);

  // Appends this reducer's OutputWidth(spec) feature values. `dir` selects
  // the side of directional statistics (the emitting packet's direction).
  void Emit(std::vector<double>& out, Direction dir = Direction::kForward) const;

  const ReduceSpec& spec() const { return spec_; }

 private:
  ReduceSpec spec_;
  bool nic_ = true;
  bool directional_ = false;
  bool compensated_ = false;
  std::variant<exec_internal::SumAgg, exec_internal::MinMaxAgg, WelfordStats, NicWelfordStats,
               DampedStats, StreamingMoments, DampedStats2D, HyperLogLog,
               exec_internal::ArrayAgg, FixedHistogram, exec_internal::LogHist>
      impl_;
};

// Post-processing (synthesize) of an emitted feature block.
std::vector<double> ApplySynth(const SynthStep& step, std::vector<double> values);

// Index-compiled form of a NicProgram (field names resolved to slots).
// Reducer lists are per granularity: reduces may be restricted to one
// granularity of the chain (Kitsune computes different feature sets per
// granularity).
struct ExecPlan {
  static constexpr int kFieldSize = 0;
  static constexpr int kFieldTstamp = 1;     // Nanoseconds.
  static constexpr int kFieldDirection = 2;  // +1 / -1.
  // Hash of the packet's finest-granularity group key: lets f_card count
  // distinct finer groups per coarse group ("the number of TCP flows that
  // each IP address establishes", §4.1).
  static constexpr int kFieldFgKey = 3;

  struct MapStep {
    int dst = 0;
    int src = -1;  // -1 for "_".
    MapFn fn = MapFn::kOne;
  };
  struct ReduceStep {
    int src = 0;
    ReduceSpec spec;
  };
  struct GranularityPlan {
    Granularity granularity = Granularity::kFlow;
    std::vector<ReduceStep> reduces;  // In layout order.
    std::vector<FeatureSlot> slots;   // Parallel to reduces (synth chains).
  };

  int field_count = 4;
  std::vector<MapStep> maps;
  std::vector<GranularityPlan> per_granularity;  // Chain order.
  // True when any map or reduce reads the fgkey builtin — the batch path
  // computes the per-cell CRC column lazily and only when needed.
  bool uses_fg_key = false;

  static Result<ExecPlan> FromProgram(const NicProgram& program);
};

// SoA view of one worker batch of MGPV cells. The initiator-oriented key
// chain makes every coarser granularity's key a byte prefix of the FG key
// (host = bytes [0,4), channel = [0,8), socket/flow = all 13), so a stable
// sort by a granularity's prefix makes that granularity's groups contiguous
// runs, delimited by integer prefix compares on the packed key words —
// while keeping each run internally in arrival order (the ipt/burst
// recurrences and the sequential integer kernels are order-dependent).
// Assemble() leaves the columns in arrival order; callers SortByPrefix()
// per granularity before walking runs. Reused across batches to amortize
// allocations.
struct PacketBatchSoA {
  // Sorted views, all rows() long. `cells` keeps per-row access to the
  // original cell (fg_tuple, direction) for run-key derivation and group
  // bookkeeping.
  std::vector<const MgpvCell*> cells;
  std::vector<uint64_t> key_hi;  // FG-key bytes [0,8) packed big-endian.
  std::vector<uint64_t> key_lo;  // FG-key bytes [8,13) packed big-endian.
  std::vector<double> pkt_size;
  std::vector<double> tstamp_ns;
  std::vector<double> dir_sign;  // ±1.
  std::vector<double> t_seconds;
  std::vector<double> fg_hash;  // Lazy; see EnsureFgHash.
  std::vector<Direction> direction;

  // Scratch shared by UpdateGroupBatch calls over this batch: per-field
  // columns for map outputs, u64 conversion buffer for f_card.
  std::vector<std::vector<double>> field_scratch;
  std::vector<uint64_t> scratch_u64;

  size_t rows() const { return cells.size(); }

  // Rebuilds the view from the cells of `count` reports, columns in
  // arrival order.
  void Assemble(const MgpvReport* reports, size_t count);

  // Stable-sorts the columns by the first `prefix_bytes` key bytes (always
  // from arrival order, so every run stays arrival-ordered internally).
  // No-op when already in this order.
  void SortByPrefix(int prefix_bytes);

  // Fills fg_hash with the per-cell FG-key CRC (the fgkey builtin), cached
  // across equal-key runs. Idempotent per Assemble.
  void EnsureFgHash();

  // FG-key prefix length (bytes) that a granularity's group key projects to.
  static int KeyPrefixBytes(Granularity g);

  // True when rows a and b agree on the first `prefix_bytes` key bytes.
  bool SamePrefix(size_t a, size_t b, int prefix_bytes) const;

 private:
  // Permutes the public columns by order_.
  void Gather();

  std::vector<uint32_t> order_;
  std::vector<const MgpvCell*> cells_unsorted_;
  std::vector<uint64_t> hi_unsorted_;
  std::vector<uint64_t> lo_unsorted_;
  int sorted_prefix_ = 0;  // 0 = arrival order.
  bool fg_hash_valid_ = false;
};

// Per-group execution state.
struct GroupState {
  // Mapping-function state. Inter-packet time is tracked per direction:
  // directional jitter is Kitsune's semantics, and each direction's
  // sub-stream stays in timestamp order through MGPV (cells of one
  // direction share a coarse-granularity group).
  double last_tstamp_ns[2] = {-1.0, -1.0};  // Indexed by Direction.
  int last_dir = 0;
  double burst_len = 0.0;

  std::vector<Reducer> reducers;  // Parallel to the granularity plan's reduces.

  // Bookkeeping for emission.
  uint64_t packets = 0;
  uint64_t last_seen_ns = 0;
  FiveTuple last_fg_tuple;  // For deriving coarser keys at emission.
  Direction last_direction = Direction::kForward;

  // Creates state for granularity index `gi` of the plan's chain.
  static GroupState Make(const ExecPlan& plan, size_t gi, const ExecOptions& options);
};

// Updates one group (at granularity index `gi`) with one cell.
void UpdateGroup(const ExecPlan& plan, size_t gi, GroupState& group, const MgpvCell& cell);

// Updates one group with the sorted batch rows [begin, end) — one
// contiguous run of the group's cells. Maps run row-major (the ipt/burst
// recurrences are inherently sequential); each reducer then consumes its
// source column as one bulk call. Equivalent to per-cell UpdateGroup calls
// under the exactness contract in streaming/batch.h.
void UpdateGroupBatch(const ExecPlan& plan, size_t gi, GroupState& group,
                      PacketBatchSoA& soa, size_t begin, size_t end);

// Emits the group's feature block for granularity index `gi`: reducer
// outputs with synthesize chains applied, appended to `out`.
void EmitGroupFeatures(const ExecPlan& plan, size_t gi, const GroupState& group,
                       std::vector<double>& out);

// Feature width of granularity index `gi` (for zero-fill of absent groups).
uint32_t GranularityFeatureWidth(const ExecPlan& plan, size_t gi);

}  // namespace superfe

#endif  // SUPERFE_NICSIM_EXEC_H_
