// Bounded multi-producer / single-consumer queue for the parallel NIC
// cluster pipeline (one queue per FE-NIC worker thread).
//
// Data messages respect the capacity bound with a caller-chosen overflow
// policy (block = backpressure, try = drop); control messages (FG syncs,
// flush barriers, shutdown) bypass the bound so the pipeline can never
// deadlock on a full queue and group-state ordering is never violated by a
// dropped sync.
//
// Fast path: a Vyukov-style bounded ring of sequence-numbered slots. Data
// pushes and pops are lock-free (one CAS on the enqueue cursor plus a
// release store per push; no mutex on either side while the ring has room
// and items), so producer enqueue cost no longer serializes concurrent
// replay shards. The mutex survives only as the *saturation* path: a
// blocking push that finds the ring full falls back to waiting on the
// condition variable (lossless backpressure, counted exactly as before),
// and an idle consumer parks there after a short spin.
//
// Control messages go through a mutex-protected side channel carrying a
// barrier ticket — the enqueue cursor observed at control-push time. The
// consumer delivers a control message only once every ring slot claimed
// before that ticket has been popped. Because a producer's earlier data
// pushes complete (cursor advanced) before it takes the ticket, this
// preserves the two orderings the cluster depends on: a control message is
// delivered after all data the same producer pushed before it, and before
// any data it pushes after it. Cross-producer interleaving remains
// unordered, exactly like the data ring itself.
#ifndef SUPERFE_NICSIM_MPSC_QUEUE_H_
#define SUPERFE_NICSIM_MPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace superfe {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(RoundUpPow2(capacity)), mask_(capacity_ - 1), slots_(capacity_) {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Blocks until the queue has room (backpressure). A push that finds the
  // queue full is counted in blocked_pushes() *before* waiting, so an
  // observer can see the producer stall while it is still stalled.
  void PushBlocking(T&& item) {
    if (TryPushRing(item)) {
      fast_pushes_.fetch_add(1, std::memory_order_relaxed);
      AfterDataPush();
      return;
    }
    // Saturation fallback: count the stall first (visible while blocked),
    // then wait on the mutex until the consumer frees a slot. The timed
    // wait is a belt against a lost wakeup racing the consumer's
    // producers_waiting_ check; it never changes the outcome.
    blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(stall_counter_);
    std::unique_lock<std::mutex> lock(mu_);
    producers_waiting_.fetch_add(1, std::memory_order_relaxed);
    while (!TryPushRing(item)) {
      not_full_.wait_for(lock, std::chrono::milliseconds(1));
    }
    producers_waiting_.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    AfterDataPush();
  }

  // Bounded blocking push: waits for room up to `timeout_ms` milliseconds,
  // then gives up. Returns false (item untouched) on deadline. A push that
  // found the queue full is counted in blocked_pushes() whether or not it
  // eventually succeeds, mirroring PushBlocking.
  bool PushBlockingFor(T&& item, uint64_t timeout_ms) {
    if (TryPushRing(item)) {
      fast_pushes_.fetch_add(1, std::memory_order_relaxed);
      AfterDataPush();
      return true;
    }
    blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(stall_counter_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::unique_lock<std::mutex> lock(mu_);
    producers_waiting_.fetch_add(1, std::memory_order_relaxed);
    bool pushed = false;
    while (!(pushed = TryPushRing(item))) {
      if (std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      not_full_.wait_for(lock, std::chrono::milliseconds(1));
    }
    producers_waiting_.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    if (pushed) {
      AfterDataPush();
    }
    return pushed;
  }

  // Non-blocking push; returns false (item untouched) when full.
  bool TryPush(T&& item) {
    if (!TryPushRing(item)) {
      return false;
    }
    fast_pushes_.fetch_add(1, std::memory_order_relaxed);
    AfterDataPush();
    return true;
  }

  // Control-message push: ignores the capacity bound, always succeeds, and
  // never blocks (deadlock freedom for syncs / flush barriers / shutdown).
  void PushUnbounded(T&& item) {
    // Ticket: all ring slots claimed so far — in particular every data item
    // this producer pushed earlier — must be consumed first.
    const size_t barrier = enqueue_pos_.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(mu_);
      control_.push_back(ControlEntry{barrier, std::move(item)});
      control_count_.store(control_.size(), std::memory_order_release);
    }
    NoteDepth(RingSizeApprox() + control_count_.load(std::memory_order_relaxed));
    WakeConsumer();
  }

  // Blocks until an item is available (single consumer).
  T Pop() {
    T item;
    for (int spin = 0; spin < kConsumerSpins; ++spin) {
      if (TryPopOnce(item)) {
        return item;
      }
      std::this_thread::yield();
    }
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    for (;;) {
      if (TryPopOnce(item)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        return item;
      }
      std::unique_lock<std::mutex> lock(mu_);
      // Timed: a producer that committed between our check and this wait
      // may have skipped the notify; 1 ms bounds the idle-path latency.
      not_empty_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  // Approximate while producers are concurrently pushing; exact at
  // quiescence (diagnostics and gauges only).
  size_t size() const {
    return RingSizeApprox() + control_count_.load(std::memory_order_relaxed);
  }

  // Deepest the queue has ever been (diagnostics; data + control).
  uint64_t high_watermark() const {
    return high_watermark_.load(std::memory_order_relaxed);
  }

  // Pushes that found the queue full and had to wait (backpressure).
  uint64_t blocked_pushes() const {
    return blocked_pushes_.load(std::memory_order_relaxed);
  }

  // Data pushes that took the lock-free ring fast path without waiting.
  uint64_t fast_pushes() const { return fast_pushes_.load(std::memory_order_relaxed); }

  // Effective bound (requested capacity rounded up to a power of two).
  size_t capacity() const { return capacity_; }

  // Wiring-time setter: mirrors blocked_pushes into a metrics counter
  // (exactly — incremented at the same site). Install before producers run.
  void set_stall_counter(obs::Counter* counter) { stall_counter_ = counter; }

 private:
  static constexpr int kConsumerSpins = 64;

  struct Slot {
    std::atomic<size_t> seq;
    T item;
  };

  struct ControlEntry {
    size_t barrier;
    T item;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  // Vyukov bounded-MPMC enqueue, specialized for many producers. On
  // success the item has been moved into a slot and published with a
  // release store; on failure (ring full) the item is untouched.
  bool TryPushRing(T& item) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const size_t seq = slot.seq.load(std::memory_order_acquire);
      const intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.item = std::move(item);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh cursor.
      } else if (dif < 0) {
        return false;  // The slot still holds an unconsumed item: full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single consumer: control first (when its barrier has been reached),
  // then the ring. Returns false when nothing is deliverable yet.
  bool TryPopOnce(T& out) {
    const size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    if (control_count_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!control_.empty() && control_.front().barrier <= deq) {
        out = std::move(control_.front().item);
        control_.pop_front();
        control_count_.store(control_.size(), std::memory_order_release);
        return true;
      }
      // Front control message still waits on earlier ring items (its
      // barrier is ahead of the dequeue cursor): drain the ring below.
    }
    Slot& slot = slots_[deq & mask_];
    const size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(deq + 1) != 0) {
      return false;  // Empty, or a claimed slot not yet published.
    }
    out = std::move(slot.item);
    // Recycle the slot for the producer one lap ahead.
    slot.seq.store(deq + capacity_, std::memory_order_release);
    dequeue_pos_.store(deq + 1, std::memory_order_release);
    if (producers_waiting_.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_all();
    }
    return true;
  }

  size_t RingSizeApprox() const {
    const size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    const size_t n = enq >= deq ? enq - deq : 0;
    return n > capacity_ ? capacity_ : n;
  }

  void AfterDataPush() {
    NoteDepth(RingSizeApprox() + control_count_.load(std::memory_order_relaxed));
    WakeConsumer();
  }

  void NoteDepth(size_t depth) {
    uint64_t seen = high_watermark_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !high_watermark_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
    }
  }

  void WakeConsumer() {
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_empty_.notify_one();
    }
  }

  const size_t capacity_;
  const size_t mask_;
  std::vector<Slot> slots_;

  alignas(64) std::atomic<size_t> enqueue_pos_{0};  // Producers' claim cursor.
  alignas(64) std::atomic<size_t> dequeue_pos_{0};  // Consumer-owned cursor.

  // Saturation / idle fallback and the control side channel.
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ControlEntry> control_;
  std::atomic<size_t> control_count_{0};
  std::atomic<int> producers_waiting_{0};
  std::atomic<bool> consumer_waiting_{false};

  std::atomic<uint64_t> high_watermark_{0};
  std::atomic<uint64_t> blocked_pushes_{0};
  std::atomic<uint64_t> fast_pushes_{0};
  obs::Counter* stall_counter_ = nullptr;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_MPSC_QUEUE_H_
