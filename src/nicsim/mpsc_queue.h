// Bounded multi-producer / single-consumer queue for the parallel NIC
// cluster pipeline (one queue per FE-NIC worker thread).
//
// Data messages respect the capacity bound with a caller-chosen overflow
// policy (block = backpressure, try = drop); control messages (FG syncs,
// flush barriers, shutdown) bypass the bound so the pipeline can never
// deadlock on a full queue and group-state ordering is never violated by a
// dropped sync.
#ifndef SUPERFE_NICSIM_MPSC_QUEUE_H_
#define SUPERFE_NICSIM_MPSC_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace superfe {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Blocks until the queue has room (backpressure). A push that finds the
  // queue full is counted in blocked_pushes() *before* waiting, so an
  // observer can see the producer stall while it is still stalled.
  void PushBlocking(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) {
      ++blocked_pushes_;
      obs::Inc(stall_counter_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    }
    PushLocked(std::move(item));
  }

  // Non-blocking push; returns false (item untouched) when full.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) {
      return false;
    }
    PushLocked(std::move(item));
    return true;
  }

  // Control-message push: ignores the capacity bound, always succeeds.
  void PushUnbounded(T&& item) {
    std::lock_guard<std::mutex> lock(mu_);
    PushLocked(std::move(item));
  }

  // Blocks until an item is available.
  T Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty(); });
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // Deepest the queue has ever been (diagnostics).
  uint64_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

  // Pushes that found the queue full and had to wait (backpressure).
  uint64_t blocked_pushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_pushes_;
  }

  size_t capacity() const { return capacity_; }

  // Wiring-time setter: mirrors blocked_pushes into a metrics counter
  // (exactly — incremented at the same site). Install before producers run.
  void set_stall_counter(obs::Counter* counter) { stall_counter_ = counter; }

 private:
  void PushLocked(T&& item) {
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) {
      high_watermark_ = items_.size();
    }
    not_empty_.notify_one();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  uint64_t high_watermark_ = 0;
  uint64_t blocked_pushes_ = 0;
  obs::Counter* stall_counter_ = nullptr;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_MPSC_QUEUE_H_
