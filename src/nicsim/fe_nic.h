// FE-NIC: the SmartNIC side of SuperFE (§6). Consumes MGPV batches evicted
// by FE-Switch, re-splits multi-granularity groups via FG keys, runs the
// compiled map/reduce/synthesize pipeline with streaming algorithms, and
// emits feature vectors per the policy's collect unit — while accounting
// NFP cycles and memory through the cost model and ILP placement.
//
// Threading model: each FeNic is owned by exactly one executing thread at a
// time (the caller in the serial path, a dedicated worker in the parallel
// NicCluster pipeline). All mutating entry points and the Snapshot()
// accessors take an internal mutex, so *other* threads may read consistent
// stats/perf snapshots while the owner is processing. The raw stats()/perf()
// references remain for single-threaded and quiescent (post-Flush) use.
#ifndef SUPERFE_NICSIM_FE_NIC_H_
#define SUPERFE_NICSIM_FE_NIC_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/feature_vector.h"
#include "nicsim/cost_model.h"
#include "obs/metrics.h"
#include "obs/worker_block.h"
#include "nicsim/exec.h"
#include "nicsim/group_table.h"
#include "nicsim/placement.h"
#include "policy/compile.h"
#include "switchsim/evict.h"

namespace superfe {

struct FeNicConfig {
  NfpArch arch;
  NicOptimizations optimizations = NicOptimizations::All();
  ExecOptions exec;

  // SoA batch execution path: sort each worker batch by FG key and apply
  // per-group runs as bulk reducer calls (UpdateGroupBatch). Identical
  // output under the exactness contract in streaming/batch.h; disable to
  // fall back to the per-cell scalar path (--no-batch-kernels).
  bool batch_kernels = true;

  uint32_t group_table_indices = 16384;
  uint32_t group_table_width = 4;

  // Expected concurrent groups per granularity for the placement problem.
  uint32_t groups_hint = 16384;  // Matches the FG-table size (§7).

  // Continuous operation: for group-unit collect policies, groups idle for
  // longer than this emit their feature vector and are recycled (the
  // "feature vectors will be evicted from the SmartNIC" flow of §3.2).
  // 0 keeps vectors until Flush() (batch mode).
  uint64_t idle_timeout_ns = 0;
};

struct FeNicStats {
  uint64_t reports = 0;
  uint64_t cells = 0;
  uint64_t fg_syncs = 0;
  uint64_t vectors_emitted = 0;
  uint64_t dram_detours = 0;
};

// Nullable observability handles mirroring FeNicStats (superfe_nic_*). Each
// member NIC of a cluster gets its own child labeled {nic="<index>"}.
struct FeNicObs {
  obs::Counter* reports = nullptr;
  obs::Counter* cells = nullptr;
  obs::Counter* fg_syncs = nullptr;
  obs::Counter* vectors_emitted = nullptr;
  obs::Counter* dram_detours = nullptr;
  // Measured NIC-side cycles: superfe_cycles_total{stage="feature_kernels"}
  // brackets OnMgpv, {stage="sync_broadcast"} brackets OnFgSync. Null
  // unless `profile` was set at Create time.
  obs::Counter* cycles_feature = nullptr;
  obs::Counter* cycles_sync = nullptr;

  // Cold-tier identity for the NIC's WorkerObsBlock (see MgpvObs). Cells
  // count as packets for the flush cadence.
  obs::MetricsRegistry* registry = nullptr;
  std::string block_name = "nic";
  uint32_t flush_packets = 4096;

  static FeNicObs Create(obs::MetricsRegistry* registry, uint32_t nic_index,
                         bool profile = false);
};

class FeNic : public MgpvSink {
 public:
  // Fails only on internal compilation inconsistencies.
  static Result<std::unique_ptr<FeNic>> Create(const CompiledPolicy& compiled,
                                               const FeNicConfig& config, FeatureSink* sink);

  // MgpvSink:
  void OnMgpv(const MgpvReport& report) override;
  void OnFgSync(const FgSyncMessage& sync) override;

  // Batch entry point: processes `count` reports in one locked pass. With
  // batch kernels enabled (and batch-mode collection) the reports' cells
  // are assembled into one PacketBatchSoA, so group runs span report
  // boundaries; otherwise equivalent to count OnMgpv calls. The NicCluster
  // worker feeds its whole dequeued batch here.
  void OnMgpvBatch(const MgpvReport* reports, size_t count);

  // Emits feature vectors for all live groups of the collect unit and
  // clears state (end of run).
  void Flush();

  // Degraded-mode counterpart of Flush(): discards all live state *without*
  // emitting (a crashed member's half-built groups must not leak partial
  // vectors). Returns the number of collect-unit groups abandoned, which the
  // cluster feeds into FaultStats::groups_abandoned.
  uint64_t AbandonState();

  // Sweeps the collect-unit table and emits/evicts groups idle for longer
  // than config.idle_timeout_ns (no-op when the timeout is 0 or collection
  // is per-packet). Called internally per report; exposed for tests.
  void EvictIdleGroups(uint64_t now_ns);

  // Consistent copies, safe to call from any thread while the owning
  // thread is processing (NicCluster aggregates these mid-run).
  FeNicStats Snapshot() const;
  NicPerfModel PerfSnapshot() const;

  // Raw references: valid only when no other thread is mutating this NIC
  // (single-threaded runs, or after a cluster Flush() barrier).
  const FeNicStats& stats() const { return stats_; }
  const NicPerfModel& perf() const { return perf_; }
  const PlacementResult& placement() const { return placement_; }
  const PlacementProblem& placement_problem() const { return placement_problem_; }
  const ExecPlan& plan() const { return plan_; }

  // Live group counts per granularity (diagnostics / memory experiments).
  std::vector<size_t> GroupCounts() const;

  // Cumulative per-granularity group-table statistics (lookups, inserts,
  // DRAM detours). Survives Flush(), which clears entries but not the
  // counters — the cluster cost report reads these after the run.
  std::vector<GroupTableStats> TableStats() const;

  // Wiring-time setter (call before the owning thread starts processing).
  void set_obs(const FeNicObs& obs);

 private:
  FeNic(const CompiledPolicy& compiled, const FeNicConfig& config, FeatureSink* sink,
        ExecPlan plan, PlacementProblem problem, PlacementResult placement);

  // Unlocked implementations; callers hold mu_.
  void EvictIdleGroupsLocked(uint64_t now_ns);

  // Routes reports to the batch or scalar path (per config/collect mode).
  void ProcessReportsLocked(const MgpvReport* reports, size_t count);
  // Per-cell reference path (also serves per-packet collect policies).
  void ProcessReportScalarLocked(const MgpvReport& report);
  // SoA path: assemble, sort, and apply per-group runs as bulk calls.
  void ProcessBatchLocked(const MgpvReport* reports, size_t count);

  // Builds and emits a feature vector for the collect-unit group `unit`.
  // Coarser/finer sibling groups are located via the group's last FG tuple.
  void EmitVector(const GroupKey& unit_key, const GroupState& unit_group);

  CompiledPolicy compiled_;
  FeNicConfig config_;
  FeatureSink* sink_;
  ExecPlan plan_;
  PlacementProblem placement_problem_;
  PlacementResult placement_;
  // Batch-local delta cells for the superfe_nic_* counters. Guarded by mu_
  // like stats_; the block auto-flushes per flush_packets cells and at
  // Flush()/AbandonState().
  struct LocalObs {
    obs::WorkerObsBlock::CounterCell* reports = nullptr;
    obs::WorkerObsBlock::CounterCell* cells = nullptr;
    obs::WorkerObsBlock::CounterCell* fg_syncs = nullptr;
    obs::WorkerObsBlock::CounterCell* vectors_emitted = nullptr;
    obs::WorkerObsBlock::CounterCell* dram_detours = nullptr;
    obs::WorkerObsBlock::CounterCell* cycles_feature = nullptr;
    obs::WorkerObsBlock::CounterCell* cycles_sync = nullptr;
  };

  NicPerfModel perf_;
  FeNicStats stats_;
  FeNicObs obs_;
  obs::WorkerObsBlock block_;
  LocalObs local_;

  // Serializes the owner thread's mutations against cross-thread snapshot
  // reads. Uncontended in the one-thread-per-NIC ownership model, so the
  // per-report cost is a single cheap lock/unlock.
  mutable std::mutex mu_;

  // One group table per granularity in the chain.
  std::vector<std::unique_ptr<GroupTable<GroupState>>> tables_;

  // Reusable SoA view for the batch path (guarded by mu_ like all state).
  PacketBatchSoA batch_;

  // Precomputed per-cell work (placement-aware); DRAM detours are added
  // dynamically.
  CellWork base_cell_work_;
};

}  // namespace superfe

#endif  // SUPERFE_NICSIM_FE_NIC_H_
