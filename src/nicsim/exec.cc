#include "nicsim/exec.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/hash.h"

namespace superfe {
namespace {

// ft_percent bucket index: floor(log2(v)) + 1, clamped (0 for v < 1).
int LogBucket(double v) {
  if (v < 1.0) {
    return 0;
  }
  const int b = static_cast<int>(std::floor(std::log2(v))) + 1;
  return std::min(b, 31);
}

}  // namespace

Reducer::Reducer(const ReduceSpec& spec, const ExecOptions& options, bool directional)
    : spec_(spec), nic_(options.nic_arithmetic) {
  const double lambda = spec.decay_lambda;
  const DampedMode mode = options.EffectiveDampedMode();
  // Directional tracking applies to damped 1D statistics only.
  directional_ = directional && lambda > 0.0 &&
                 (spec.fn == ReduceFn::kSum || spec.fn == ReduceFn::kMean ||
                  spec.fn == ReduceFn::kVar || spec.fn == ReduceFn::kStd);
  switch (spec.fn) {
    case ReduceFn::kSum:
      // Damped sum (decay > 0) is the decayed linear sum — the "weight"
      // feature of Kitsune-style damped windows when applied to f_one.
      if (lambda > 0.0) {
        if (directional_) {
          impl_ = DampedStats2D(lambda, mode);
        } else {
          impl_ = DampedStats(lambda, mode);
        }
      } else {
        impl_ = exec_internal::SumAgg{};
      }
      break;
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      impl_ = exec_internal::MinMaxAgg{};
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (lambda > 0.0) {
        if (directional_) {
          impl_ = DampedStats2D(lambda, mode);
        } else {
          impl_ = DampedStats(lambda, mode);
        }
      } else if (nic_) {
        impl_ = NicWelfordStats();
      } else {
        impl_ = WelfordStats();
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      impl_ = StreamingMoments();
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      impl_ = DampedStats2D(lambda, mode);  // lambda == 0 -> undamped.
      break;
    case ReduceFn::kCard:
      impl_ = HyperLogLog(6);  // 64 one-byte buckets (§6.1).
      break;
    case ReduceFn::kArray:
      impl_ = exec_internal::ArrayAgg{spec.array_limit != 0 ? spec.array_limit : 5000, {}};
      break;
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      impl_ = FixedHistogram(std::max(spec.param0, 1e-9),
                             std::max(static_cast<int>(spec.param1), 1));
      break;
    case ReduceFn::kPercent:
      impl_ = exec_internal::LogHist{};
      break;
  }
}

void Reducer::Update(double value, double t_seconds, Direction dir) {
  switch (spec_.fn) {
    case ReduceFn::kSum:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        if (dir == Direction::kForward) {
          two_sided->AddA(value, t_seconds);
        } else {
          two_sided->AddB(value, t_seconds);
        }
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->Add(value, t_seconds);
      } else {
        std::get<exec_internal::SumAgg>(impl_).sum += value;
      }
      break;
    case ReduceFn::kMax: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      if (!agg.any || value > agg.value) {
        agg.value = value;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMin: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      if (!agg.any || value < agg.value) {
        agg.value = value;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        if (dir == Direction::kForward) {
          two_sided->AddA(value, t_seconds);
        } else {
          two_sided->AddB(value, t_seconds);
        }
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->Add(value, t_seconds);
      } else if (auto* nicw = std::get_if<NicWelfordStats>(&impl_)) {
        nicw->Add(static_cast<int64_t>(std::llround(value)));
      } else {
        std::get<WelfordStats>(impl_).Add(value);
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      std::get<StreamingMoments>(impl_).Add(value);
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc: {
      auto& stats2d = std::get<DampedStats2D>(impl_);
      if (dir == Direction::kForward) {
        stats2d.AddA(value, t_seconds);
      } else {
        stats2d.AddB(value, t_seconds);
      }
      break;
    }
    case ReduceFn::kCard:
      std::get<HyperLogLog>(impl_).AddU64(static_cast<uint64_t>(std::llround(value)));
      break;
    case ReduceFn::kArray: {
      auto& agg = std::get<exec_internal::ArrayAgg>(impl_);
      if (agg.values.size() < agg.limit) {
        agg.values.push_back(value);
      }
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      std::get<FixedHistogram>(impl_).Add(value);
      break;
    case ReduceFn::kPercent: {
      auto& hist = std::get<exec_internal::LogHist>(impl_);
      hist.buckets[LogBucket(value)]++;
      hist.total++;
      break;
    }
  }
}

void Reducer::Emit(std::vector<double>& out, Direction dir) const {
  // Directional 1D statistics report the emitting packet's side.
  const DampedStats* side = nullptr;
  if (directional_) {
    const auto& two_sided = std::get<DampedStats2D>(impl_);
    side = dir == Direction::kForward ? &two_sided.a() : &two_sided.b();
  }
  switch (spec_.fn) {
    case ReduceFn::kSum:
      if (side != nullptr) {
        out.push_back(side->linear_sum());
      } else if (const auto* damped = std::get_if<DampedStats>(&impl_)) {
        out.push_back(damped->linear_sum());
      } else {
        out.push_back(std::get<exec_internal::SumAgg>(impl_).sum);
      }
      break;
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      out.push_back(std::get<exec_internal::MinMaxAgg>(impl_).value);
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd: {
      double mean = 0.0;
      double var = 0.0;
      if (side != nullptr) {
        mean = side->mean();
        var = side->variance();
      } else if (const auto* damped = std::get_if<DampedStats>(&impl_)) {
        mean = damped->mean();
        var = damped->variance();
      } else if (const auto* nicw = std::get_if<NicWelfordStats>(&impl_)) {
        mean = nicw->mean();
        var = nicw->variance();
      } else {
        const auto& w = std::get<WelfordStats>(impl_);
        mean = w.mean();
        var = w.variance();
      }
      if (spec_.fn == ReduceFn::kMean) {
        out.push_back(mean);
      } else if (spec_.fn == ReduceFn::kVar) {
        out.push_back(var);
      } else {
        out.push_back(std::sqrt(var));
      }
      break;
    }
    case ReduceFn::kKur:
      out.push_back(std::get<StreamingMoments>(impl_).kurtosis());
      break;
    case ReduceFn::kSkew:
      out.push_back(std::get<StreamingMoments>(impl_).skewness());
      break;
    case ReduceFn::kMag:
      out.push_back(std::get<DampedStats2D>(impl_).Magnitude());
      break;
    case ReduceFn::kRadius:
      out.push_back(std::get<DampedStats2D>(impl_).Radius());
      break;
    case ReduceFn::kCov:
      out.push_back(std::get<DampedStats2D>(impl_).Covariance());
      break;
    case ReduceFn::kPcc:
      out.push_back(std::get<DampedStats2D>(impl_).CorrelationCoefficient());
      break;
    case ReduceFn::kCard:
      out.push_back(std::get<HyperLogLog>(impl_).Estimate());
      break;
    case ReduceFn::kArray: {
      const auto& agg = std::get<exec_internal::ArrayAgg>(impl_);
      for (double v : agg.values) {
        out.push_back(v);
      }
      for (size_t i = agg.values.size(); i < agg.limit; ++i) {
        out.push_back(0.0);  // Fixed-width padding for ML consumers.
      }
      break;
    }
    case ReduceFn::kHist: {
      const auto& hist = std::get<FixedHistogram>(impl_);
      for (int b = 0; b < hist.bins(); ++b) {
        out.push_back(static_cast<double>(hist.count(b)));
      }
      break;
    }
    case ReduceFn::kPdf: {
      for (double v : std::get<FixedHistogram>(impl_).Pdf()) {
        out.push_back(v);
      }
      break;
    }
    case ReduceFn::kCdf: {
      for (double v : std::get<FixedHistogram>(impl_).Cdf()) {
        out.push_back(v);
      }
      break;
    }
    case ReduceFn::kPercent: {
      const auto& hist = std::get<exec_internal::LogHist>(impl_);
      const double q = std::clamp(spec_.param0, 0.0, 1.0);
      if (hist.total == 0) {
        out.push_back(0.0);
        break;
      }
      const double target = q * static_cast<double>(hist.total);
      double cumulative = 0.0;
      double estimate = 0.0;
      for (size_t b = 0; b < hist.buckets.size(); ++b) {
        cumulative += hist.buckets[b];
        if (cumulative >= target) {
          // Bucket b covers [2^(b-1), 2^b); report its geometric midpoint.
          estimate = b == 0 ? 0.5 : std::exp2(static_cast<double>(b) - 0.5);
          break;
        }
      }
      out.push_back(estimate);
      break;
    }
  }
}

std::vector<double> ApplySynth(const SynthStep& step, std::vector<double> values) {
  switch (step.fn) {
    case SynthFn::kNorm: {
      double max_abs = 0.0;
      for (double v : values) {
        max_abs = std::max(max_abs, std::fabs(v));
      }
      if (max_abs > 0.0) {
        for (double& v : values) {
          v /= max_abs;
        }
      }
      return values;
    }
    case SynthFn::kSample: {
      const size_t n = static_cast<size_t>(std::max(step.param, 1.0));
      std::vector<double> out(n, 0.0);
      if (values.empty()) {
        return out;
      }
      if (values.size() == 1) {
        std::fill(out.begin(), out.end(), values[0]);
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        const double pos = static_cast<double>(i) * (values.size() - 1) /
                           (n > 1 ? static_cast<double>(n - 1) : 1.0);
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
      }
      return out;
    }
    case SynthFn::kMarker: {
      // CUMUL-style markers: cumulative sum sampled at every sign change.
      std::vector<double> out;
      double cumulative = 0.0;
      double prev_sign = 0.0;
      for (double v : values) {
        const double sign = v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : prev_sign);
        if (prev_sign != 0.0 && sign != prev_sign) {
          out.push_back(cumulative);
        }
        cumulative += v;
        prev_sign = sign;
      }
      out.push_back(cumulative);  // Final total.
      return out;
    }
  }
  return values;
}

Result<ExecPlan> ExecPlan::FromProgram(const NicProgram& program) {
  ExecPlan plan;
  std::map<std::string, int> field_index = {{"size", kFieldSize},
                                            {"tstamp", kFieldTstamp},
                                            {"direction", kFieldDirection},
                                            {"fgkey", kFieldFgKey}};

  for (const auto& m : program.maps) {
    MapStep step;
    step.fn = m.fn;
    if (m.src.empty()) {
      step.src = -1;
    } else {
      const auto it = field_index.find(m.src);
      if (it == field_index.end()) {
        return Status::Internal("exec plan: unresolved map source '" + m.src + "'");
      }
      step.src = it->second;
    }
    auto [it, inserted] = field_index.emplace(m.dst, plan.field_count);
    if (inserted) {
      ++plan.field_count;
    }
    step.dst = it->second;
    plan.maps.push_back(step);
  }

  if (program.granularities.empty()) {
    return Status::Internal("exec plan: program has no granularities");
  }
  for (Granularity g : program.granularities) {
    GranularityPlan gp;
    gp.granularity = g;
    for (const auto& slot : program.layout) {
      if (slot.granularity != g) {
        continue;
      }
      const auto it = field_index.find(slot.field);
      if (it == field_index.end()) {
        return Status::Internal("exec plan: unresolved reduce source '" + slot.field + "'");
      }
      gp.reduces.push_back(ReduceStep{it->second, slot.spec});
      gp.slots.push_back(slot);
    }
    plan.per_granularity.push_back(std::move(gp));
  }
  bool any = false;
  for (const auto& gp : plan.per_granularity) {
    if (!gp.reduces.empty()) {
      any = true;
    }
  }
  if (!any) {
    return Status::Internal("exec plan: no collected features");
  }
  if (plan.field_count > 64) {
    return Status::ResourceExhausted("exec plan: more than 64 per-packet fields");
  }
  return plan;
}

GroupState GroupState::Make(const ExecPlan& plan, size_t gi, const ExecOptions& options) {
  GroupState state;
  const auto& gp = plan.per_granularity[gi];
  // flow carries no direction information (Table 5); the other
  // granularities record it, making damped 1D statistics directional.
  const bool directional = gp.granularity != Granularity::kFlow;
  state.reducers.reserve(gp.reduces.size());
  for (const auto& r : gp.reduces) {
    state.reducers.emplace_back(r.spec, options, directional);
  }
  return state;
}

void UpdateGroup(const ExecPlan& plan, size_t gi, GroupState& group, const MgpvCell& cell) {
  const double t_ns = static_cast<double>(cell.full_timestamp_ns);
  const double t_seconds = t_ns * 1e-9;
  const int dir_sign = cell.direction == Direction::kForward ? 1 : -1;
  double& last_ts = group.last_tstamp_ns[static_cast<int>(cell.direction)];

  // Builtin fields + mapped fields.
  double fields[64];
  fields[ExecPlan::kFieldSize] = static_cast<double>(cell.size);
  fields[ExecPlan::kFieldTstamp] = t_ns;
  fields[ExecPlan::kFieldDirection] = static_cast<double>(dir_sign);
  // The FG-key hash is the switch-computed index shipped with the cell; a
  // double holds 32 bits exactly.
  const auto fg_bytes = cell.fg_tuple.ToBytes();
  fields[ExecPlan::kFieldFgKey] =
      static_cast<double>(Crc32(fg_bytes.data(), fg_bytes.size()));

  for (const auto& m : plan.maps) {
    const double src = m.src >= 0 ? fields[m.src] : 0.0;
    double dst = 0.0;
    switch (m.fn) {
      case MapFn::kOne:
        dst = 1.0;
        break;
      case MapFn::kIpt:
        dst = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
        break;
      case MapFn::kSpeed: {
        const double ipt_ns = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
        dst = ipt_ns > 0.0 ? fields[ExecPlan::kFieldSize] / (ipt_ns * 1e-9) : 0.0;
        break;
      }
      case MapFn::kBurst:
        group.burst_len = (group.last_dir == dir_sign) ? group.burst_len + 1.0 : 1.0;
        dst = group.burst_len;
        break;
      case MapFn::kDirection:
        dst = src * dir_sign;
        break;
    }
    fields[m.dst] = dst;
  }

  const auto& gp = plan.per_granularity[gi];
  for (size_t i = 0; i < gp.reduces.size(); ++i) {
    group.reducers[i].Update(fields[gp.reduces[i].src], t_seconds, cell.direction);
  }

  last_ts = t_ns;
  group.last_dir = dir_sign;
  group.packets++;
  group.last_seen_ns = cell.full_timestamp_ns;
  group.last_fg_tuple = cell.fg_tuple;
  group.last_direction = cell.direction;
}

void EmitGroupFeatures(const ExecPlan& plan, size_t gi, const GroupState& group,
                       std::vector<double>& out) {
  const auto& gp = plan.per_granularity[gi];
  for (size_t i = 0; i < gp.reduces.size(); ++i) {
    std::vector<double> block;
    group.reducers[i].Emit(block, group.last_direction);
    for (const auto& step : gp.slots[i].synths) {
      block = ApplySynth(step, std::move(block));
    }
    // Fixed layout: pad/truncate to the slot's declared width.
    const uint32_t width = gp.slots[i].Width();
    block.resize(width, 0.0);
    out.insert(out.end(), block.begin(), block.end());
  }
}

uint32_t GranularityFeatureWidth(const ExecPlan& plan, size_t gi) {
  uint32_t width = 0;
  for (const auto& slot : plan.per_granularity[gi].slots) {
    width += slot.Width();
  }
  return width;
}

}  // namespace superfe
