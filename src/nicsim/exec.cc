#include "nicsim/exec.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/hash.h"
#include "streaming/batch.h"

namespace superfe {

// ft_percent bucket index: floor(log2(v)) + 1, clamped (0 for v < 1).
// batchkern::Log2Bucket computes this from the IEEE exponent field — exact
// at power-of-two boundaries where an earlier std::log2-based bucketer
// could round across, and identical between the scalar and batch paths.
namespace exec_internal {

void LogHist::AddBatch(const double* v, size_t n) {
  int32_t idx[256];
  while (n > 0) {
    const size_t m = n < 256 ? n : 256;
    batchkern::Log2BucketBatch(v, m, idx);
    for (size_t i = 0; i < m; ++i) {
      buckets[idx[i]]++;
    }
    total += m;
    v += m;
    n -= m;
  }
}

}  // namespace exec_internal

Reducer::Reducer(const ReduceSpec& spec, const ExecOptions& options, bool directional)
    : spec_(spec), nic_(options.nic_arithmetic), compensated_(options.compensated_batch) {
  const double lambda = spec.decay_lambda;
  const DampedMode mode = options.EffectiveDampedMode();
  // Directional tracking applies to damped 1D statistics only.
  directional_ = directional && lambda > 0.0 &&
                 (spec.fn == ReduceFn::kSum || spec.fn == ReduceFn::kMean ||
                  spec.fn == ReduceFn::kVar || spec.fn == ReduceFn::kStd);
  switch (spec.fn) {
    case ReduceFn::kSum:
      // Damped sum (decay > 0) is the decayed linear sum — the "weight"
      // feature of Kitsune-style damped windows when applied to f_one.
      if (lambda > 0.0) {
        if (directional_) {
          impl_ = DampedStats2D(lambda, mode);
        } else {
          impl_ = DampedStats(lambda, mode);
        }
      } else {
        impl_ = exec_internal::SumAgg{};
      }
      break;
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      impl_ = exec_internal::MinMaxAgg{};
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (lambda > 0.0) {
        if (directional_) {
          impl_ = DampedStats2D(lambda, mode);
        } else {
          impl_ = DampedStats(lambda, mode);
        }
      } else if (nic_) {
        impl_ = NicWelfordStats();
      } else {
        impl_ = WelfordStats();
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      impl_ = StreamingMoments();
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      impl_ = DampedStats2D(lambda, mode);  // lambda == 0 -> undamped.
      break;
    case ReduceFn::kCard:
      impl_ = HyperLogLog(6);  // 64 one-byte buckets (§6.1).
      break;
    case ReduceFn::kArray:
      impl_ = exec_internal::ArrayAgg{spec.array_limit != 0 ? spec.array_limit : 5000, {}};
      break;
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      impl_ = FixedHistogram(std::max(spec.param0, 1e-9),
                             std::max(static_cast<int>(spec.param1), 1));
      break;
    case ReduceFn::kPercent:
      impl_ = exec_internal::LogHist{};
      break;
  }
}

void Reducer::Update(double value, double t_seconds, Direction dir) {
  switch (spec_.fn) {
    case ReduceFn::kSum:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        if (dir == Direction::kForward) {
          two_sided->AddA(value, t_seconds);
        } else {
          two_sided->AddB(value, t_seconds);
        }
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->Add(value, t_seconds);
      } else {
        std::get<exec_internal::SumAgg>(impl_).sum += value;
      }
      break;
    case ReduceFn::kMax: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      if (!agg.any || value > agg.value) {
        agg.value = value;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMin: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      if (!agg.any || value < agg.value) {
        agg.value = value;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        if (dir == Direction::kForward) {
          two_sided->AddA(value, t_seconds);
        } else {
          two_sided->AddB(value, t_seconds);
        }
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->Add(value, t_seconds);
      } else if (auto* nicw = std::get_if<NicWelfordStats>(&impl_)) {
        nicw->Add(static_cast<int64_t>(std::llround(value)));
      } else {
        std::get<WelfordStats>(impl_).Add(value);
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      std::get<StreamingMoments>(impl_).Add(value);
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc: {
      auto& stats2d = std::get<DampedStats2D>(impl_);
      if (dir == Direction::kForward) {
        stats2d.AddA(value, t_seconds);
      } else {
        stats2d.AddB(value, t_seconds);
      }
      break;
    }
    case ReduceFn::kCard:
      std::get<HyperLogLog>(impl_).AddU64(static_cast<uint64_t>(std::llround(value)));
      break;
    case ReduceFn::kArray: {
      auto& agg = std::get<exec_internal::ArrayAgg>(impl_);
      if (agg.values.size() < agg.limit) {
        agg.values.push_back(value);
      }
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      std::get<FixedHistogram>(impl_).Add(value);
      break;
    case ReduceFn::kPercent: {
      auto& hist = std::get<exec_internal::LogHist>(impl_);
      hist.buckets[batchkern::Log2Bucket(value)]++;
      hist.total++;
      break;
    }
  }
}

void Reducer::UpdateBatch(const double* values, const double* t_seconds,
                          const double* dir_sign, size_t n,
                          std::vector<uint64_t>& scratch_u64) {
  if (n == 0) {
    return;
  }
  switch (spec_.fn) {
    case ReduceFn::kSum:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        two_sided->AddBatch(values, t_seconds, dir_sign, n);
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->AddBatch(values, t_seconds, n);
      } else {
        auto& agg = std::get<exec_internal::SumAgg>(impl_);
        agg.sum += compensated_ ? batchkern::SumCompensated(values, n)
                                : batchkern::Sum(values, n);
      }
      break;
    case ReduceFn::kMax: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      double mn = 0.0, mx = 0.0;
      batchkern::MinMax(values, n, &mn, &mx);
      if (!agg.any || mx > agg.value) {
        agg.value = mx;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMin: {
      auto& agg = std::get<exec_internal::MinMaxAgg>(impl_);
      double mn = 0.0, mx = 0.0;
      batchkern::MinMax(values, n, &mn, &mx);
      if (!agg.any || mn < agg.value) {
        agg.value = mn;
      }
      agg.any = true;
      break;
    }
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd:
      if (auto* two_sided = std::get_if<DampedStats2D>(&impl_)) {
        two_sided->AddBatch(values, t_seconds, dir_sign, n);
      } else if (auto* damped = std::get_if<DampedStats>(&impl_)) {
        damped->AddBatch(values, t_seconds, n);
      } else if (auto* nicw = std::get_if<NicWelfordStats>(&impl_)) {
        nicw->AddBatchRounded(values, n);
      } else {
        std::get<WelfordStats>(impl_).AddBatch(values, n, compensated_);
      }
      break;
    case ReduceFn::kKur:
    case ReduceFn::kSkew:
      std::get<StreamingMoments>(impl_).AddBatch(values, n, compensated_);
      break;
    case ReduceFn::kMag:
    case ReduceFn::kRadius:
    case ReduceFn::kCov:
    case ReduceFn::kPcc:
      std::get<DampedStats2D>(impl_).AddBatch(values, t_seconds, dir_sign, n);
      break;
    case ReduceFn::kCard: {
      if (scratch_u64.size() < n) {
        scratch_u64.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        scratch_u64[i] = static_cast<uint64_t>(std::llround(values[i]));
      }
      std::get<HyperLogLog>(impl_).AddU64Batch(scratch_u64.data(), n);
      break;
    }
    case ReduceFn::kArray: {
      auto& agg = std::get<exec_internal::ArrayAgg>(impl_);
      for (size_t i = 0; i < n && agg.values.size() < agg.limit; ++i) {
        agg.values.push_back(values[i]);
      }
      break;
    }
    case ReduceFn::kHist:
    case ReduceFn::kPdf:
    case ReduceFn::kCdf:
      std::get<FixedHistogram>(impl_).AddBatch(values, n);
      break;
    case ReduceFn::kPercent:
      std::get<exec_internal::LogHist>(impl_).AddBatch(values, n);
      break;
  }
}

void Reducer::Emit(std::vector<double>& out, Direction dir) const {
  // Directional 1D statistics report the emitting packet's side.
  const DampedStats* side = nullptr;
  if (directional_) {
    const auto& two_sided = std::get<DampedStats2D>(impl_);
    side = dir == Direction::kForward ? &two_sided.a() : &two_sided.b();
  }
  switch (spec_.fn) {
    case ReduceFn::kSum:
      if (side != nullptr) {
        out.push_back(side->linear_sum());
      } else if (const auto* damped = std::get_if<DampedStats>(&impl_)) {
        out.push_back(damped->linear_sum());
      } else {
        out.push_back(std::get<exec_internal::SumAgg>(impl_).sum);
      }
      break;
    case ReduceFn::kMax:
    case ReduceFn::kMin:
      out.push_back(std::get<exec_internal::MinMaxAgg>(impl_).value);
      break;
    case ReduceFn::kMean:
    case ReduceFn::kVar:
    case ReduceFn::kStd: {
      double mean = 0.0;
      double var = 0.0;
      if (side != nullptr) {
        mean = side->mean();
        var = side->variance();
      } else if (const auto* damped = std::get_if<DampedStats>(&impl_)) {
        mean = damped->mean();
        var = damped->variance();
      } else if (const auto* nicw = std::get_if<NicWelfordStats>(&impl_)) {
        mean = nicw->mean();
        var = nicw->variance();
      } else {
        const auto& w = std::get<WelfordStats>(impl_);
        mean = w.mean();
        var = w.variance();
      }
      if (spec_.fn == ReduceFn::kMean) {
        out.push_back(mean);
      } else if (spec_.fn == ReduceFn::kVar) {
        out.push_back(var);
      } else {
        out.push_back(std::sqrt(var));
      }
      break;
    }
    case ReduceFn::kKur:
      out.push_back(std::get<StreamingMoments>(impl_).kurtosis());
      break;
    case ReduceFn::kSkew:
      out.push_back(std::get<StreamingMoments>(impl_).skewness());
      break;
    case ReduceFn::kMag:
      out.push_back(std::get<DampedStats2D>(impl_).Magnitude());
      break;
    case ReduceFn::kRadius:
      out.push_back(std::get<DampedStats2D>(impl_).Radius());
      break;
    case ReduceFn::kCov:
      out.push_back(std::get<DampedStats2D>(impl_).Covariance());
      break;
    case ReduceFn::kPcc:
      out.push_back(std::get<DampedStats2D>(impl_).CorrelationCoefficient());
      break;
    case ReduceFn::kCard:
      out.push_back(std::get<HyperLogLog>(impl_).Estimate());
      break;
    case ReduceFn::kArray: {
      const auto& agg = std::get<exec_internal::ArrayAgg>(impl_);
      for (double v : agg.values) {
        out.push_back(v);
      }
      for (size_t i = agg.values.size(); i < agg.limit; ++i) {
        out.push_back(0.0);  // Fixed-width padding for ML consumers.
      }
      break;
    }
    case ReduceFn::kHist: {
      const auto& hist = std::get<FixedHistogram>(impl_);
      for (int b = 0; b < hist.bins(); ++b) {
        out.push_back(static_cast<double>(hist.count(b)));
      }
      break;
    }
    case ReduceFn::kPdf: {
      for (double v : std::get<FixedHistogram>(impl_).Pdf()) {
        out.push_back(v);
      }
      break;
    }
    case ReduceFn::kCdf: {
      for (double v : std::get<FixedHistogram>(impl_).Cdf()) {
        out.push_back(v);
      }
      break;
    }
    case ReduceFn::kPercent: {
      const auto& hist = std::get<exec_internal::LogHist>(impl_);
      const double q = std::clamp(spec_.param0, 0.0, 1.0);
      if (hist.total == 0) {
        out.push_back(0.0);
        break;
      }
      const double target = q * static_cast<double>(hist.total);
      double cumulative = 0.0;
      double estimate = 0.0;
      for (size_t b = 0; b < hist.buckets.size(); ++b) {
        cumulative += hist.buckets[b];
        if (cumulative >= target) {
          // Bucket b covers [2^(b-1), 2^b); report its geometric midpoint.
          estimate = b == 0 ? 0.5 : std::exp2(static_cast<double>(b) - 0.5);
          break;
        }
      }
      out.push_back(estimate);
      break;
    }
  }
}

std::vector<double> ApplySynth(const SynthStep& step, std::vector<double> values) {
  switch (step.fn) {
    case SynthFn::kNorm: {
      double max_abs = 0.0;
      for (double v : values) {
        max_abs = std::max(max_abs, std::fabs(v));
      }
      if (max_abs > 0.0) {
        for (double& v : values) {
          v /= max_abs;
        }
      }
      return values;
    }
    case SynthFn::kSample: {
      const size_t n = static_cast<size_t>(std::max(step.param, 1.0));
      std::vector<double> out(n, 0.0);
      if (values.empty()) {
        return out;
      }
      if (values.size() == 1) {
        std::fill(out.begin(), out.end(), values[0]);
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        const double pos = static_cast<double>(i) * (values.size() - 1) /
                           (n > 1 ? static_cast<double>(n - 1) : 1.0);
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
      }
      return out;
    }
    case SynthFn::kMarker: {
      // CUMUL-style markers: cumulative sum sampled at every sign change.
      std::vector<double> out;
      double cumulative = 0.0;
      double prev_sign = 0.0;
      for (double v : values) {
        const double sign = v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : prev_sign);
        if (prev_sign != 0.0 && sign != prev_sign) {
          out.push_back(cumulative);
        }
        cumulative += v;
        prev_sign = sign;
      }
      out.push_back(cumulative);  // Final total.
      return out;
    }
  }
  return values;
}

Result<ExecPlan> ExecPlan::FromProgram(const NicProgram& program) {
  ExecPlan plan;
  std::map<std::string, int> field_index = {{"size", kFieldSize},
                                            {"tstamp", kFieldTstamp},
                                            {"direction", kFieldDirection},
                                            {"fgkey", kFieldFgKey}};

  for (const auto& m : program.maps) {
    MapStep step;
    step.fn = m.fn;
    if (m.src.empty()) {
      step.src = -1;
    } else {
      const auto it = field_index.find(m.src);
      if (it == field_index.end()) {
        return Status::Internal("exec plan: unresolved map source '" + m.src + "'");
      }
      step.src = it->second;
    }
    auto [it, inserted] = field_index.emplace(m.dst, plan.field_count);
    if (inserted) {
      ++plan.field_count;
    }
    step.dst = it->second;
    plan.maps.push_back(step);
  }

  if (program.granularities.empty()) {
    return Status::Internal("exec plan: program has no granularities");
  }
  for (Granularity g : program.granularities) {
    GranularityPlan gp;
    gp.granularity = g;
    for (const auto& slot : program.layout) {
      if (slot.granularity != g) {
        continue;
      }
      const auto it = field_index.find(slot.field);
      if (it == field_index.end()) {
        return Status::Internal("exec plan: unresolved reduce source '" + slot.field + "'");
      }
      gp.reduces.push_back(ReduceStep{it->second, slot.spec});
      gp.slots.push_back(slot);
    }
    plan.per_granularity.push_back(std::move(gp));
  }
  bool any = false;
  for (const auto& gp : plan.per_granularity) {
    if (!gp.reduces.empty()) {
      any = true;
    }
  }
  if (!any) {
    return Status::Internal("exec plan: no collected features");
  }
  if (plan.field_count > 64) {
    return Status::ResourceExhausted("exec plan: more than 64 per-packet fields");
  }
  for (const auto& m : plan.maps) {
    if (m.src == kFieldFgKey) {
      plan.uses_fg_key = true;
    }
  }
  for (const auto& gp : plan.per_granularity) {
    for (const auto& r : gp.reduces) {
      if (r.src == kFieldFgKey) {
        plan.uses_fg_key = true;
      }
    }
  }
  return plan;
}

void PacketBatchSoA::Assemble(const MgpvReport* reports, size_t count) {
  size_t total = 0;
  for (size_t r = 0; r < count; ++r) {
    total += reports[r].cells.size();
  }
  cells_unsorted_.clear();
  hi_unsorted_.clear();
  lo_unsorted_.clear();
  cells_unsorted_.reserve(total);
  hi_unsorted_.reserve(total);
  lo_unsorted_.reserve(total);
  for (size_t r = 0; r < count; ++r) {
    for (const MgpvCell& cell : reports[r].cells) {
      const auto bytes = cell.fg_tuple.ToBytes();
      uint64_t hi = 0;
      for (int b = 0; b < 8; ++b) {
        hi = (hi << 8) | bytes[b];
      }
      uint64_t lo = 0;
      for (size_t b = 8; b < bytes.size(); ++b) {
        lo = (lo << 8) | bytes[b];
      }
      cells_unsorted_.push_back(&cell);
      hi_unsorted_.push_back(hi);
      lo_unsorted_.push_back(lo);
    }
  }

  // Columns start in arrival order; SortByPrefix() permutes them per
  // granularity so each call sees that granularity's groups as contiguous
  // runs with arrival order preserved *within* every run (the ipt/burst
  // recurrences and the sequential integer kernels depend on it).
  order_.resize(total);
  for (size_t i = 0; i < total; ++i) {
    order_[i] = static_cast<uint32_t>(i);
  }
  sorted_prefix_ = 0;
  Gather();
}

void PacketBatchSoA::SortByPrefix(int prefix_bytes) {
  if (sorted_prefix_ == prefix_bytes) {
    return;
  }
  const size_t total = cells_unsorted_.size();
  order_.resize(total);
  for (size_t i = 0; i < total; ++i) {
    order_[i] = static_cast<uint32_t>(i);
  }
  // Always re-sort from arrival order: refining an existing finer-prefix
  // order would interleave a coarse group's sub-groups out of arrival order.
  switch (prefix_bytes) {
    case 4:
      std::stable_sort(order_.begin(), order_.end(), [this](uint32_t a, uint32_t b) {
        return (hi_unsorted_[a] >> 32) < (hi_unsorted_[b] >> 32);
      });
      break;
    case 8:
      std::stable_sort(order_.begin(), order_.end(), [this](uint32_t a, uint32_t b) {
        return hi_unsorted_[a] < hi_unsorted_[b];
      });
      break;
    default:
      std::stable_sort(order_.begin(), order_.end(), [this](uint32_t a, uint32_t b) {
        if (hi_unsorted_[a] != hi_unsorted_[b]) {
          return hi_unsorted_[a] < hi_unsorted_[b];
        }
        return lo_unsorted_[a] < lo_unsorted_[b];
      });
      break;
  }
  sorted_prefix_ = prefix_bytes;
  Gather();
}

void PacketBatchSoA::Gather() {
  const size_t total = cells_unsorted_.size();
  cells.resize(total);
  key_hi.resize(total);
  key_lo.resize(total);
  pkt_size.resize(total);
  tstamp_ns.resize(total);
  dir_sign.resize(total);
  t_seconds.resize(total);
  direction.resize(total);
  for (size_t i = 0; i < total; ++i) {
    const uint32_t src = order_[i];
    const MgpvCell& cell = *cells_unsorted_[src];
    cells[i] = &cell;
    key_hi[i] = hi_unsorted_[src];
    key_lo[i] = lo_unsorted_[src];
    pkt_size[i] = static_cast<double>(cell.size);
    const double t_ns = static_cast<double>(cell.full_timestamp_ns);
    tstamp_ns[i] = t_ns;
    t_seconds[i] = t_ns * 1e-9;
    dir_sign[i] = cell.direction == Direction::kForward ? 1.0 : -1.0;
    direction[i] = cell.direction;
  }
  fg_hash_valid_ = false;
}

void PacketBatchSoA::EnsureFgHash() {
  if (fg_hash_valid_) {
    return;
  }
  fg_hash.resize(rows());
  for (size_t i = 0; i < rows(); ++i) {
    if (i > 0 && key_hi[i] == key_hi[i - 1] && key_lo[i] == key_lo[i - 1]) {
      fg_hash[i] = fg_hash[i - 1];
      continue;
    }
    const auto bytes = cells[i]->fg_tuple.ToBytes();
    fg_hash[i] = static_cast<double>(Crc32(bytes.data(), bytes.size()));
  }
  fg_hash_valid_ = true;
}

int PacketBatchSoA::KeyPrefixBytes(Granularity g) {
  switch (g) {
    case Granularity::kHost:
      return 4;  // Initiator IP.
    case Granularity::kChannel:
      return 8;  // Initiator + responder IPs.
    default:
      return 13;  // Socket and flow keys use the full FG tuple.
  }
}

bool PacketBatchSoA::SamePrefix(size_t a, size_t b, int prefix_bytes) const {
  switch (prefix_bytes) {
    case 4:
      return (key_hi[a] >> 32) == (key_hi[b] >> 32);
    case 8:
      return key_hi[a] == key_hi[b];
    default:
      return key_hi[a] == key_hi[b] && key_lo[a] == key_lo[b];
  }
}

GroupState GroupState::Make(const ExecPlan& plan, size_t gi, const ExecOptions& options) {
  GroupState state;
  const auto& gp = plan.per_granularity[gi];
  // flow carries no direction information (Table 5); the other
  // granularities record it, making damped 1D statistics directional.
  const bool directional = gp.granularity != Granularity::kFlow;
  state.reducers.reserve(gp.reduces.size());
  for (const auto& r : gp.reduces) {
    state.reducers.emplace_back(r.spec, options, directional);
  }
  return state;
}

void UpdateGroup(const ExecPlan& plan, size_t gi, GroupState& group, const MgpvCell& cell) {
  const double t_ns = static_cast<double>(cell.full_timestamp_ns);
  const double t_seconds = t_ns * 1e-9;
  const int dir_sign = cell.direction == Direction::kForward ? 1 : -1;
  double& last_ts = group.last_tstamp_ns[static_cast<int>(cell.direction)];

  // Builtin fields + mapped fields.
  double fields[64];
  fields[ExecPlan::kFieldSize] = static_cast<double>(cell.size);
  fields[ExecPlan::kFieldTstamp] = t_ns;
  fields[ExecPlan::kFieldDirection] = static_cast<double>(dir_sign);
  // The FG-key hash is the switch-computed index shipped with the cell; a
  // double holds 32 bits exactly.
  const auto fg_bytes = cell.fg_tuple.ToBytes();
  fields[ExecPlan::kFieldFgKey] =
      static_cast<double>(Crc32(fg_bytes.data(), fg_bytes.size()));

  for (const auto& m : plan.maps) {
    const double src = m.src >= 0 ? fields[m.src] : 0.0;
    double dst = 0.0;
    switch (m.fn) {
      case MapFn::kOne:
        dst = 1.0;
        break;
      case MapFn::kIpt:
        dst = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
        break;
      case MapFn::kSpeed: {
        const double ipt_ns = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
        dst = ipt_ns > 0.0 ? fields[ExecPlan::kFieldSize] / (ipt_ns * 1e-9) : 0.0;
        break;
      }
      case MapFn::kBurst:
        group.burst_len = (group.last_dir == dir_sign) ? group.burst_len + 1.0 : 1.0;
        dst = group.burst_len;
        break;
      case MapFn::kDirection:
        dst = src * dir_sign;
        break;
    }
    fields[m.dst] = dst;
  }

  const auto& gp = plan.per_granularity[gi];
  for (size_t i = 0; i < gp.reduces.size(); ++i) {
    group.reducers[i].Update(fields[gp.reduces[i].src], t_seconds, cell.direction);
  }

  last_ts = t_ns;
  group.last_dir = dir_sign;
  group.packets++;
  group.last_seen_ns = cell.full_timestamp_ns;
  group.last_fg_tuple = cell.fg_tuple;
  group.last_direction = cell.direction;
}

void UpdateGroupBatch(const ExecPlan& plan, size_t gi, GroupState& group,
                      PacketBatchSoA& soa, size_t begin, size_t end) {
  const auto& gp = plan.per_granularity[gi];
  const size_t n = end - begin;

  // Column table: builtin fields come straight from the SoA; map outputs
  // overlay their dst slot as they are wired up, so each map's source
  // pointer (snapshotted in program order below) resolves exactly like the
  // scalar fields[] array — including a map dst that shadows a builtin.
  const double* col[64];
  col[ExecPlan::kFieldSize] = soa.pkt_size.data();
  col[ExecPlan::kFieldTstamp] = soa.tstamp_ns.data();
  col[ExecPlan::kFieldDirection] = soa.dir_sign.data();
  col[ExecPlan::kFieldFgKey] = nullptr;
  if (plan.uses_fg_key) {
    soa.EnsureFgHash();
    col[ExecPlan::kFieldFgKey] = soa.fg_hash.data();
  }

  if (soa.field_scratch.size() < static_cast<size_t>(plan.field_count)) {
    soa.field_scratch.resize(plan.field_count);
  }
  struct MapCtx {
    const double* src;
    const double* size_src;  // What kSpeed's implicit size read resolves to.
    double* dst;
    MapFn fn;
  };
  MapCtx map_ctx[64];
  const size_t map_count = plan.maps.size();
  for (size_t mi = 0; mi < map_count; ++mi) {
    const auto& m = plan.maps[mi];
    auto& scratch = soa.field_scratch[m.dst];
    if (scratch.size() < soa.rows()) {
      scratch.resize(soa.rows());
    }
    map_ctx[mi] = MapCtx{m.src >= 0 ? col[m.src] : nullptr,
                         col[ExecPlan::kFieldSize], scratch.data(), m.fn};
    col[m.dst] = scratch.data();
  }

  // Maps run row-major: ipt/speed/burst are recurrences over the group's
  // packet sequence. The scalar path advances last_ts/last_dir after the
  // reduces; no reducer reads them, so advancing per row here is equivalent.
  for (size_t r = begin; r < end; ++r) {
    const double t_ns = soa.tstamp_ns[r];
    const int dir_sign = soa.dir_sign[r] > 0.0 ? 1 : -1;
    double& last_ts =
        group.last_tstamp_ns[static_cast<int>(soa.direction[r])];
    for (size_t mi = 0; mi < map_count; ++mi) {
      const MapCtx& c = map_ctx[mi];
      double dst = 0.0;
      switch (c.fn) {
        case MapFn::kOne:
          dst = 1.0;
          break;
        case MapFn::kIpt:
          dst = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
          break;
        case MapFn::kSpeed: {
          const double ipt_ns = last_ts < 0.0 ? 0.0 : t_ns - last_ts;
          dst = ipt_ns > 0.0 ? c.size_src[r] / (ipt_ns * 1e-9) : 0.0;
          break;
        }
        case MapFn::kBurst:
          group.burst_len =
              (group.last_dir == dir_sign) ? group.burst_len + 1.0 : 1.0;
          dst = group.burst_len;
          break;
        case MapFn::kDirection:
          dst = (c.src != nullptr ? c.src[r] : 0.0) * dir_sign;
          break;
      }
      c.dst[r] = dst;
    }
    last_ts = t_ns;
    group.last_dir = dir_sign;
  }

  // Each reducer consumes its source column as one bulk call.
  const double* ts = soa.t_seconds.data() + begin;
  const double* dirs = soa.dir_sign.data() + begin;
  for (size_t i = 0; i < gp.reduces.size(); ++i) {
    group.reducers[i].UpdateBatch(col[gp.reduces[i].src] + begin, ts, dirs, n,
                                  soa.scratch_u64);
  }

  group.packets += n;
  const MgpvCell& last = *soa.cells[end - 1];
  group.last_seen_ns = last.full_timestamp_ns;
  group.last_fg_tuple = last.fg_tuple;
  group.last_direction = last.direction;
}

void EmitGroupFeatures(const ExecPlan& plan, size_t gi, const GroupState& group,
                       std::vector<double>& out) {
  const auto& gp = plan.per_granularity[gi];
  for (size_t i = 0; i < gp.reduces.size(); ++i) {
    std::vector<double> block;
    group.reducers[i].Emit(block, group.last_direction);
    for (const auto& step : gp.slots[i].synths) {
      block = ApplySynth(step, std::move(block));
    }
    // Fixed layout: pad/truncate to the slot's declared width.
    const uint32_t width = gp.slots[i].Width();
    block.resize(width, 0.0);
    out.insert(out.end(), block.begin(), block.end());
  }
}

uint32_t GranularityFeatureWidth(const ExecPlan& plan, size_t gi) {
  uint32_t width = 0;
  for (const auto& slot : plan.per_granularity[gi].slots) {
    width += slot.Width();
  }
  return width;
}

}  // namespace superfe
