#include "net/trace_gen.h"

#include <cassert>
#include <cmath>

namespace superfe {

double TraceProfile::ExpectedMeanPacketSize() const {
  double total_weight = 0.0;
  double weighted = 0.0;
  for (const auto& [size, weight] : size_mix) {
    total_weight += weight;
    weighted += static_cast<double>(size) * weight;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

TraceProfile MawiIxpProfile() {
  TraceProfile p;
  p.name = "MAWI-IXP";
  p.mean_flow_length_pkts = 104.0;
  p.flow_length_sigma = 1.8;  // IX links have the heaviest tails.
  p.size_mix = {{1514, 0.81}, {576, 0.045}, {64, 0.145}};
  p.target_mean_packet_size = 1246.0;
  p.tcp_fraction = 0.88;
  p.mean_ipt_us = 400.0;
  p.duration_s = 1.0;
  p.src_pool = 50000;
  p.dst_pool = 20000;
  p.dst_zipf_s = 1.05;
  return p;
}

TraceProfile EnterpriseProfile() {
  TraceProfile p;
  p.name = "ENTERPRISE";
  p.mean_flow_length_pkts = 9.2;
  p.flow_length_sigma = 1.1;
  // Mix mean ~819 B; handshake minimum-size packets (1 in 9.2) pull the
  // generated mean down to the 739 B target.
  p.size_mix = {{1514, 0.49}, {512, 0.10}, {64, 0.41}};
  p.target_mean_packet_size = 739.0;
  p.tcp_fraction = 0.93;
  p.mean_ipt_us = 2000.0;
  p.duration_s = 1.0;
  p.src_pool = 8000;
  p.dst_pool = 2000;
  p.dst_zipf_s = 1.2;
  return p;
}

TraceProfile CampusProfile() {
  TraceProfile p;
  p.name = "CAMPUS";
  p.mean_flow_length_pkts = 58.0;
  p.flow_length_sigma = 1.5;
  p.size_mix = {{64, 0.58}, {128, 0.22}, {352, 0.20}};
  p.target_mean_packet_size = 135.0;
  p.tcp_fraction = 0.70;  // Lots of small UDP (DNS, RTP) on campus links.
  p.mean_ipt_us = 5000.0;
  p.duration_s = 1.0;
  p.src_pool = 4000;
  p.dst_pool = 3000;
  p.dst_zipf_s = 1.15;
  return p;
}

std::vector<TraceProfile> PaperProfiles() {
  return {MawiIxpProfile(), EnterpriseProfile(), CampusProfile()};
}

uint64_t MacForIp(uint32_t ip) {
  // 0x02 prefix = locally administered unicast.
  return (0x02ull << 40) | ip;
}

size_t DrawFlowLength(const TraceProfile& profile, Rng& rng) {
  const double sigma = profile.flow_length_sigma;
  const double mu = std::log(profile.mean_flow_length_pkts) - sigma * sigma / 2.0;
  const double raw = rng.LogNormal(mu, sigma);
  if (raw < 1.0) {
    return 1;
  }
  return static_cast<size_t>(raw + 0.5);
}

uint16_t DrawPacketSize(const std::vector<std::pair<uint16_t, double>>& size_mix, Rng& rng) {
  assert(!size_mix.empty());
  std::vector<double> weights;
  weights.reserve(size_mix.size());
  for (const auto& [size, weight] : size_mix) {
    weights.push_back(weight);
  }
  return size_mix[rng.WeightedIndex(weights)].first;
}

std::vector<PacketRecord> GenerateFlow(const FiveTuple& tuple, size_t length, uint64_t start_ns,
                                       double mean_ipt_us,
                                       const std::vector<std::pair<uint16_t, double>>& size_mix,
                                       double forward_fraction, Rng& rng) {
  std::vector<PacketRecord> packets;
  packets.reserve(length);
  uint64_t ts = start_ns;
  for (size_t i = 0; i < length; ++i) {
    PacketRecord pkt;
    pkt.timestamp_ns = ts;
    const bool forward = i == 0 || rng.Bernoulli(forward_fraction);
    pkt.direction = forward ? Direction::kForward : Direction::kBackward;
    pkt.tuple = forward ? tuple : tuple.Reversed();
    pkt.wire_bytes = DrawPacketSize(size_mix, rng);
    pkt.src_mac = MacForIp(pkt.tuple.src_ip);
    pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
    if (tuple.protocol == kProtoTcp) {
      if (i == 0) {
        pkt.tcp_flags = kTcpSyn;
        pkt.wire_bytes = 64;  // Handshake packets are minimum-size.
      } else if (i + 1 == length && length > 2) {
        pkt.tcp_flags = kTcpFin | kTcpAck;
      } else {
        pkt.tcp_flags = rng.Bernoulli(0.5) ? (kTcpPsh | kTcpAck) : kTcpAck;
      }
    }
    packets.push_back(pkt);
    const double gap_us = rng.Exponential(1.0 / mean_ipt_us);
    ts += static_cast<uint64_t>(gap_us * 1000.0) + 1;
  }
  return packets;
}

Trace GenerateTrace(const TraceProfile& profile, size_t target_packets, uint64_t seed) {
  Rng rng(seed);
  Trace trace(profile.name);
  trace.Reserve(target_packets + profile.mean_flow_length_pkts * 4);

  const uint64_t duration_ns = static_cast<uint64_t>(profile.duration_s * 1e9);
  // Ephemeral ports start above the well-known range.
  const std::vector<uint16_t> service_ports = {80, 443, 53, 22, 25, 8080, 3306, 123};

  size_t generated = 0;
  while (generated < target_packets) {
    FiveTuple tuple;
    tuple.src_ip = MakeIp(10, 0, 0, 0) + rng.NextU32() % profile.src_pool;
    tuple.dst_ip =
        MakeIp(172, 16, 0, 0) + static_cast<uint32_t>(rng.Zipf(profile.dst_pool, profile.dst_zipf_s)) - 1;
    tuple.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(64512));
    tuple.dst_port = service_ports[rng.UniformU64(service_ports.size())];
    tuple.protocol = rng.Bernoulli(profile.tcp_fraction) ? kProtoTcp : kProtoUdp;

    const size_t length = DrawFlowLength(profile, rng);
    const uint64_t start_ns = rng.UniformU64(duration_ns);
    auto flow =
        GenerateFlow(tuple, length, start_ns, profile.mean_ipt_us, profile.size_mix, 0.6, rng);
    for (const auto& pkt : flow) {
      trace.Add(pkt);
    }
    generated += flow.size();
  }
  trace.SortByTime();
  return trace;
}

}  // namespace superfe
