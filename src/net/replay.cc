#include "net/replay.h"

#include <algorithm>
#include <thread>

#include "common/affinity.h"
#include "net/trace_gen.h"

namespace superfe {

ReplayObs ReplayObs::Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                            uint32_t trace_lane) {
  ReplayObs o;
  o.trace = trace;
  o.trace_lane = trace_lane;
  if (registry == nullptr) {
    return o;
  }
  o.packets = registry->GetCounter("superfe_replay_packets_total", {},
                                   "Packets replayed into the switch");
  o.bytes =
      registry->GetCounter("superfe_replay_bytes_total", {}, "Wire bytes replayed");
  o.trace_now = registry->GetGauge(
      "superfe_replay_trace_now_ns", {{"shard", std::to_string(trace_lane)}},
      "Trace-time replay position of this shard (post-speedup ns)");
  return o;
}

void ReplayReport::MergeFrom(const ReplayReport& other) {
  packets += other.packets;
  bytes += other.bytes;
  span_min_ns = std::min(span_min_ns, other.span_min_ns);
  span_max_ns = std::max(span_max_ns, other.span_max_ns);
}

void ReplayReport::FinalizeRates() {
  if (packets == 0 || span_min_ns > span_max_ns) {
    duration_s = 0.0;
    offered_gbps = 0.0;
    offered_mpps = 0.0;
    return;
  }
  duration_s = static_cast<double>(span_max_ns - span_min_ns) * 1e-9;
  if (duration_s > 0.0) {
    offered_gbps = static_cast<double>(bytes) * 8.0 / duration_s * 1e-9;
    offered_mpps = static_cast<double>(packets) / duration_s * 1e-6;
  } else {
    offered_gbps = 0.0;
    offered_mpps = 0.0;
  }
}

namespace {

// Per-chunk replay accounting: batches counter adds and closes one trace
// span per `span_packets` replayed packets.
class ReplayChunkObs {
 public:
  explicit ReplayChunkObs(const ReplayObs* obs) : obs_(obs) {
    if (Active()) {
      Open();
    }
  }
  ~ReplayChunkObs() {
    if (Active() && chunk_packets_ > 0) {
      Close();
    }
  }

  void OnPacket(uint64_t wire_bytes, uint64_t timestamp_ns) {
    if (!Active()) {
      return;
    }
    ++chunk_packets_;
    chunk_bytes_ += wire_bytes;
    last_timestamp_ns_ = timestamp_ns;
    if (chunk_packets_ >= std::max<uint32_t>(obs_->span_packets, 1)) {
      Close();
      Open();
    }
  }

 private:
  bool Active() const { return obs_ != nullptr; }
  void Open() {
    chunk_packets_ = 0;
    chunk_bytes_ = 0;
    if (obs_->trace != nullptr) {
      chunk_start_ns_ = obs_->trace->NowNs();
    }
  }
  void Close() {
    obs::Inc(obs_->packets, chunk_packets_);
    obs::Inc(obs_->bytes, chunk_bytes_);
    obs::Set(obs_->trace_now, static_cast<double>(last_timestamp_ns_));
    if (obs_->trace != nullptr) {
      obs::TraceRecorder::Event e;
      e.phase = obs::TraceRecorder::Event::Phase::kSpan;
      e.category = "replay";
      e.name = "batch";
      e.ts_ns = chunk_start_ns_;
      e.dur_ns = obs_->trace->NowNs() - chunk_start_ns_;
      e.arg_name = "packets";
      e.arg_value = chunk_packets_;
      obs_->trace->Emit(obs_->trace_lane, e);
    }
  }

  const ReplayObs* obs_;
  uint64_t chunk_packets_ = 0;
  uint64_t chunk_bytes_ = 0;
  uint64_t chunk_start_ns_ = 0;
  uint64_t last_timestamp_ns_ = 0;
};

// Builds replica `replica` of `original` exactly as the serial replayer
// always has; serial and parallel paths share this so their emitted records
// are bit-identical.
PacketRecord MakeReplica(const PacketRecord& original, uint32_t replica,
                         uint64_t base_ts, double speedup) {
  PacketRecord pkt = original;
  if (replica != 0) {
    // Offset into a disjoint address block per replica so replicated
    // packets form distinct flows, as the switch-based amplifier does.
    const uint32_t offset = replica << 20;
    pkt.tuple.src_ip += offset;
    pkt.tuple.dst_ip += offset;
    pkt.src_mac = MacForIp(pkt.tuple.src_ip);
    pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
  }
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(original.timestamp_ns - base_ts) / speedup);
  // Replicas are interleaved a few ns apart, preserving per-flow order.
  pkt.timestamp_ns = scaled + replica * 8;
  return pkt;
}

// Delivers one finished replica record: accounting, clock publish, sink.
void DeliverReplica(const PacketRecord& pkt, const ReplayObs* obs, PacketSink& sink,
                    ReplayChunkObs& chunk_obs, ReplayReport& report) {
  report.packets++;
  report.bytes += pkt.wire_bytes;
  report.span_min_ns = std::min(report.span_min_ns, pkt.timestamp_ns);
  report.span_max_ns = std::max(report.span_max_ns, pkt.timestamp_ns);
  if (obs != nullptr && obs->clock != nullptr) {
    uint64_t clock_ns = pkt.timestamp_ns;
    if (obs->injector != nullptr) {
      // Skew only the latency-measurement clock lane, never the packet
      // record: features stay bit-identical under injected clock skew.
      const int64_t skew = obs->injector->ClockSkewNs(obs->fault_shard, pkt.timestamp_ns);
      if (skew >= 0) {
        clock_ns += static_cast<uint64_t>(skew);
      } else {
        const uint64_t back = static_cast<uint64_t>(-skew);
        clock_ns = clock_ns > back ? clock_ns - back : 0;
      }
    }
    obs->clock->AdvanceLane(obs->clock_lane, clock_ns);
  }
  sink.OnPacket(pkt);
  chunk_obs.OnPacket(pkt.wire_bytes, pkt.timestamp_ns);
}

}  // namespace

ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink) {
  ReplayReport report;
  if (trace.empty()) {
    return report;
  }
  const uint32_t amp = std::max<uint32_t>(options.amplification, 1);
  const double speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  const uint64_t base_ts = trace.packets().front().timestamp_ns;
  ReplayChunkObs chunk_obs(options.obs);

  for (const auto& original : trace.packets()) {
    for (uint32_t replica = 0; replica < amp; ++replica) {
      const PacketRecord pkt = MakeReplica(original, replica, base_ts, speedup);
      DeliverReplica(pkt, options.obs, sink, chunk_obs, report);
    }
  }
  report.FinalizeRates();
  return report;
}

StreamingReplay::StreamingReplay(const ReplayOptions& options,
                                 std::vector<PacketSink*> sinks,
                                 std::vector<const ReplayObs*> shard_obs,
                                 std::function<uint32_t(const PacketRecord&)> shard_of,
                                 size_t max_chunks_in_flight)
    : options_(options),
      sinks_(std::move(sinks)),
      shard_obs_(std::move(shard_obs)),
      shard_of_(std::move(shard_of)),
      max_queue_(std::max<size_t>(max_chunks_in_flight, 1)),
      amp_(std::max<uint32_t>(options.amplification, 1)),
      speedup_(options.speedup > 0.0 ? options.speedup : 1.0),
      queues_(sinks_.size()),
      shard_reports_(sinks_.size()) {
  threads_.reserve(sinks_.size());
  for (size_t s = 0; s < sinks_.size(); ++s) {
    threads_.emplace_back([this, s] { ShardLoop(s); });
  }
}

StreamingReplay::~StreamingReplay() { Close(); }

void StreamingReplay::Feed(std::vector<PacketRecord> chunk) {
  if (chunk.empty() || sinks_.empty()) {
    return;
  }
  if (!base_ts_set_) {
    base_ts_ = chunk.front().timestamp_ns;
    base_ts_set_ = true;
  }
  // Partition on the feeder thread: route each replica on its rewritten
  // tuple — the same tuple the switch shard will hash — so amplification
  // cannot alias groups across shards. Ids are chunk-local; the chunk's
  // packets travel with them via shared_ptr so shards never index into
  // feeder-owned storage.
  const size_t shards = sinks_.size();
  std::vector<std::vector<uint64_t>> ids(shards);
  for (size_t index = 0; index < chunk.size(); ++index) {
    for (uint32_t replica = 0; replica < amp_; ++replica) {
      const PacketRecord pkt = MakeReplica(chunk[index], replica, base_ts_, speedup_);
      const uint32_t target = shard_of_(pkt) % static_cast<uint32_t>(shards);
      ids[target].push_back(static_cast<uint64_t>(index) * amp_ + replica);
    }
  }
  auto shared =
      std::make_shared<const std::vector<PacketRecord>>(std::move(chunk));
  std::unique_lock<std::mutex> lock(mu_);
  packets_fed_ += shared->size() * amp_;
  for (size_t s = 0; s < shards; ++s) {
    if (ids[s].empty()) {
      continue;
    }
    space_cv_.wait(lock, [&] { return queues_[s].size() < max_queue_; });
    queues_[s].push_back(Work{shared, std::move(ids[s])});
    ++in_flight_;
    work_cv_.notify_all();
  }
}

void StreamingReplay::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void StreamingReplay::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
    closing_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

ReplayReport StreamingReplay::Report() const {
  ReplayReport report;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard_report : shard_reports_) {
    report.MergeFrom(shard_report);
  }
  report.FinalizeRates();
  return report;
}

uint64_t StreamingReplay::packets_fed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return packets_fed_;
}

size_t StreamingReplay::Backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void StreamingReplay::ShardLoop(size_t s) {
  if (options_.pin_threads) {
    PinCurrentThreadToCpu(static_cast<uint32_t>(s));
  }
  const ReplayObs* obs = s < shard_obs_.size() ? shard_obs_[s] : nullptr;
  // One chunk-obs for the thread's lifetime, so counter flush cadence spans
  // work items exactly as the one-shot per-shard loop did.
  ReplayChunkObs chunk_obs(obs);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return !queues_[s].empty() || closing_; });
    if (queues_[s].empty()) {
      return;  // closing_ and fully drained (the predicate admits work first).
    }
    Work work = std::move(queues_[s].front());
    queues_[s].pop_front();
    space_cv_.notify_all();
    lock.unlock();
    const auto& packets = *work.chunk;
    for (const uint64_t id : work.ids) {
      const PacketRecord pkt = MakeReplica(
          packets[id / amp_], static_cast<uint32_t>(id % amp_), base_ts_, speedup_);
      DeliverReplica(pkt, obs, *sinks_[s], chunk_obs, shard_reports_[s]);
    }
    lock.lock();
    --in_flight_;
    space_cv_.notify_all();
  }
}

ReplayReport ParallelReplay(const Trace& trace, const ReplayOptions& options,
                            const std::vector<PacketSink*>& sinks,
                            const std::vector<const ReplayObs*>& shard_obs,
                            const std::function<uint32_t(const PacketRecord&)>& shard_of) {
  ReplayReport report;
  if (trace.empty() || sinks.empty()) {
    return report;
  }
  // One-shot wrapper over the streaming pipeline: feed fixed-size chunks so
  // partitioning overlaps replay and peak partition state is bounded, instead
  // of the historical full-trace id-list scan (a serial prefix on huge
  // traces). Record bytes and per-group order are unchanged — same replica
  // constructor, same base timestamp, same per-shard FIFO order.
  StreamingReplay stream(options, sinks, shard_obs, shard_of);
  constexpr size_t kChunkPackets = 16384;
  const auto& packets = trace.packets();
  for (size_t begin = 0; begin < packets.size(); begin += kChunkPackets) {
    const size_t end = std::min(packets.size(), begin + kChunkPackets);
    stream.Feed(std::vector<PacketRecord>(packets.begin() + static_cast<ptrdiff_t>(begin),
                                          packets.begin() + static_cast<ptrdiff_t>(end)));
  }
  stream.Close();
  return stream.Report();
}

}  // namespace superfe
