#include "net/replay.h"

#include <algorithm>

#include "net/trace_gen.h"

namespace superfe {

ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink) {
  ReplayReport report;
  if (trace.empty()) {
    return report;
  }
  const uint32_t amp = std::max<uint32_t>(options.amplification, 1);
  const double speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  const uint64_t base_ts = trace.packets().front().timestamp_ns;

  uint64_t min_ts = UINT64_MAX;
  uint64_t max_ts = 0;
  for (const auto& original : trace.packets()) {
    const uint64_t scaled =
        static_cast<uint64_t>(static_cast<double>(original.timestamp_ns - base_ts) / speedup);
    for (uint32_t replica = 0; replica < amp; ++replica) {
      PacketRecord pkt = original;
      if (replica != 0) {
        // Offset into a disjoint address block per replica so replicated
        // packets form distinct flows, as the switch-based amplifier does.
        const uint32_t offset = replica << 20;
        pkt.tuple.src_ip += offset;
        pkt.tuple.dst_ip += offset;
        pkt.src_mac = MacForIp(pkt.tuple.src_ip);
        pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
      }
      // Replicas are interleaved a few ns apart, preserving per-flow order.
      pkt.timestamp_ns = scaled + replica * 8;
      min_ts = std::min(min_ts, pkt.timestamp_ns);
      max_ts = std::max(max_ts, pkt.timestamp_ns);
      report.packets++;
      report.bytes += pkt.wire_bytes;
      sink.OnPacket(pkt);
    }
  }
  report.duration_s = static_cast<double>(max_ts - min_ts) * 1e-9;
  if (report.duration_s > 0.0) {
    report.offered_gbps = static_cast<double>(report.bytes) * 8.0 / report.duration_s * 1e-9;
    report.offered_mpps = static_cast<double>(report.packets) / report.duration_s * 1e-6;
  }
  return report;
}

}  // namespace superfe
