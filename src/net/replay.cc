#include "net/replay.h"

#include <algorithm>
#include <thread>

#include "common/affinity.h"
#include "net/trace_gen.h"

namespace superfe {

ReplayObs ReplayObs::Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                            uint32_t trace_lane) {
  ReplayObs o;
  o.trace = trace;
  o.trace_lane = trace_lane;
  if (registry == nullptr) {
    return o;
  }
  o.packets = registry->GetCounter("superfe_replay_packets_total", {},
                                   "Packets replayed into the switch");
  o.bytes =
      registry->GetCounter("superfe_replay_bytes_total", {}, "Wire bytes replayed");
  o.trace_now = registry->GetGauge(
      "superfe_replay_trace_now_ns", {{"shard", std::to_string(trace_lane)}},
      "Trace-time replay position of this shard (post-speedup ns)");
  return o;
}

void ReplayReport::MergeFrom(const ReplayReport& other) {
  packets += other.packets;
  bytes += other.bytes;
  span_min_ns = std::min(span_min_ns, other.span_min_ns);
  span_max_ns = std::max(span_max_ns, other.span_max_ns);
}

void ReplayReport::FinalizeRates() {
  if (packets == 0 || span_min_ns > span_max_ns) {
    duration_s = 0.0;
    offered_gbps = 0.0;
    offered_mpps = 0.0;
    return;
  }
  duration_s = static_cast<double>(span_max_ns - span_min_ns) * 1e-9;
  if (duration_s > 0.0) {
    offered_gbps = static_cast<double>(bytes) * 8.0 / duration_s * 1e-9;
    offered_mpps = static_cast<double>(packets) / duration_s * 1e-6;
  } else {
    offered_gbps = 0.0;
    offered_mpps = 0.0;
  }
}

namespace {

// Per-chunk replay accounting: batches counter adds and closes one trace
// span per `span_packets` replayed packets.
class ReplayChunkObs {
 public:
  explicit ReplayChunkObs(const ReplayObs* obs) : obs_(obs) {
    if (Active()) {
      Open();
    }
  }
  ~ReplayChunkObs() {
    if (Active() && chunk_packets_ > 0) {
      Close();
    }
  }

  void OnPacket(uint64_t wire_bytes, uint64_t timestamp_ns) {
    if (!Active()) {
      return;
    }
    ++chunk_packets_;
    chunk_bytes_ += wire_bytes;
    last_timestamp_ns_ = timestamp_ns;
    if (chunk_packets_ >= std::max<uint32_t>(obs_->span_packets, 1)) {
      Close();
      Open();
    }
  }

 private:
  bool Active() const { return obs_ != nullptr; }
  void Open() {
    chunk_packets_ = 0;
    chunk_bytes_ = 0;
    if (obs_->trace != nullptr) {
      chunk_start_ns_ = obs_->trace->NowNs();
    }
  }
  void Close() {
    obs::Inc(obs_->packets, chunk_packets_);
    obs::Inc(obs_->bytes, chunk_bytes_);
    obs::Set(obs_->trace_now, static_cast<double>(last_timestamp_ns_));
    if (obs_->trace != nullptr) {
      obs::TraceRecorder::Event e;
      e.phase = obs::TraceRecorder::Event::Phase::kSpan;
      e.category = "replay";
      e.name = "batch";
      e.ts_ns = chunk_start_ns_;
      e.dur_ns = obs_->trace->NowNs() - chunk_start_ns_;
      e.arg_name = "packets";
      e.arg_value = chunk_packets_;
      obs_->trace->Emit(obs_->trace_lane, e);
    }
  }

  const ReplayObs* obs_;
  uint64_t chunk_packets_ = 0;
  uint64_t chunk_bytes_ = 0;
  uint64_t chunk_start_ns_ = 0;
  uint64_t last_timestamp_ns_ = 0;
};

// Builds replica `replica` of `original` exactly as the serial replayer
// always has; serial and parallel paths share this so their emitted records
// are bit-identical.
PacketRecord MakeReplica(const PacketRecord& original, uint32_t replica,
                         uint64_t base_ts, double speedup) {
  PacketRecord pkt = original;
  if (replica != 0) {
    // Offset into a disjoint address block per replica so replicated
    // packets form distinct flows, as the switch-based amplifier does.
    const uint32_t offset = replica << 20;
    pkt.tuple.src_ip += offset;
    pkt.tuple.dst_ip += offset;
    pkt.src_mac = MacForIp(pkt.tuple.src_ip);
    pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
  }
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(original.timestamp_ns - base_ts) / speedup);
  // Replicas are interleaved a few ns apart, preserving per-flow order.
  pkt.timestamp_ns = scaled + replica * 8;
  return pkt;
}

// Delivers one finished replica record: accounting, clock publish, sink.
void DeliverReplica(const PacketRecord& pkt, const ReplayObs* obs, PacketSink& sink,
                    ReplayChunkObs& chunk_obs, ReplayReport& report) {
  report.packets++;
  report.bytes += pkt.wire_bytes;
  report.span_min_ns = std::min(report.span_min_ns, pkt.timestamp_ns);
  report.span_max_ns = std::max(report.span_max_ns, pkt.timestamp_ns);
  if (obs != nullptr && obs->clock != nullptr) {
    uint64_t clock_ns = pkt.timestamp_ns;
    if (obs->injector != nullptr) {
      // Skew only the latency-measurement clock lane, never the packet
      // record: features stay bit-identical under injected clock skew.
      const int64_t skew = obs->injector->ClockSkewNs(obs->fault_shard, pkt.timestamp_ns);
      if (skew >= 0) {
        clock_ns += static_cast<uint64_t>(skew);
      } else {
        const uint64_t back = static_cast<uint64_t>(-skew);
        clock_ns = clock_ns > back ? clock_ns - back : 0;
      }
    }
    obs->clock->AdvanceLane(obs->clock_lane, clock_ns);
  }
  sink.OnPacket(pkt);
  chunk_obs.OnPacket(pkt.wire_bytes, pkt.timestamp_ns);
}

}  // namespace

ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink) {
  ReplayReport report;
  if (trace.empty()) {
    return report;
  }
  const uint32_t amp = std::max<uint32_t>(options.amplification, 1);
  const double speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  const uint64_t base_ts = trace.packets().front().timestamp_ns;
  ReplayChunkObs chunk_obs(options.obs);

  for (const auto& original : trace.packets()) {
    for (uint32_t replica = 0; replica < amp; ++replica) {
      const PacketRecord pkt = MakeReplica(original, replica, base_ts, speedup);
      DeliverReplica(pkt, options.obs, sink, chunk_obs, report);
    }
  }
  report.FinalizeRates();
  return report;
}

ReplayReport ParallelReplay(const Trace& trace, const ReplayOptions& options,
                            const std::vector<PacketSink*>& sinks,
                            const std::vector<const ReplayObs*>& shard_obs,
                            const std::function<uint32_t(const PacketRecord&)>& shard_of) {
  ReplayReport report;
  if (trace.empty() || sinks.empty()) {
    return report;
  }
  const uint32_t amp = std::max<uint32_t>(options.amplification, 1);
  const double speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  const uint64_t base_ts = trace.packets().front().timestamp_ns;
  const size_t shards = sinks.size();

  // Partition the (packet, replica) stream by group up front. Each shard's
  // id list stays in global stream order, so per-group delivery order is
  // identical to the serial replay (a group never spans shards). Replicas
  // are routed on their *rewritten* tuples — the same tuples the switch
  // shard will hash — so amplification cannot alias groups across shards.
  std::vector<std::vector<uint64_t>> shard_ids(shards);
  const auto& packets = trace.packets();
  for (size_t index = 0; index < packets.size(); ++index) {
    for (uint32_t replica = 0; replica < amp; ++replica) {
      const PacketRecord pkt = MakeReplica(packets[index], replica, base_ts, speedup);
      const uint32_t target = shard_of(pkt) % static_cast<uint32_t>(shards);
      shard_ids[target].push_back(static_cast<uint64_t>(index) * amp + replica);
    }
  }

  std::vector<ReplayReport> shard_reports(shards);
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const ReplayObs* obs = s < shard_obs.size() ? shard_obs[s] : nullptr;
    threads.emplace_back([&, s, obs] {
      if (options.pin_threads) {
        PinCurrentThreadToCpu(static_cast<uint32_t>(s));
      }
      ReplayChunkObs chunk_obs(obs);
      for (const uint64_t id : shard_ids[s]) {
        const PacketRecord pkt =
            MakeReplica(packets[id / amp], static_cast<uint32_t>(id % amp), base_ts, speedup);
        DeliverReplica(pkt, obs, *sinks[s], chunk_obs, shard_reports[s]);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& shard_report : shard_reports) {
    report.MergeFrom(shard_report);
  }
  report.FinalizeRates();
  return report;
}

}  // namespace superfe
