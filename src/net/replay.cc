#include "net/replay.h"

#include <algorithm>

#include "net/trace_gen.h"

namespace superfe {

ReplayObs ReplayObs::Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                            uint32_t trace_lane) {
  ReplayObs o;
  o.trace = trace;
  o.trace_lane = trace_lane;
  if (registry == nullptr) {
    return o;
  }
  o.packets = registry->GetCounter("superfe_replay_packets_total", {},
                                   "Packets replayed into the switch");
  o.bytes =
      registry->GetCounter("superfe_replay_bytes_total", {}, "Wire bytes replayed");
  return o;
}

namespace {

// Per-chunk replay accounting: batches counter adds and closes one trace
// span per `span_packets` replayed packets.
class ReplayChunkObs {
 public:
  explicit ReplayChunkObs(const ReplayObs* obs) : obs_(obs) {
    if (Active()) {
      Open();
    }
  }
  ~ReplayChunkObs() {
    if (Active() && chunk_packets_ > 0) {
      Close();
    }
  }

  void OnPacket(uint64_t wire_bytes) {
    if (!Active()) {
      return;
    }
    ++chunk_packets_;
    chunk_bytes_ += wire_bytes;
    if (chunk_packets_ >= std::max<uint32_t>(obs_->span_packets, 1)) {
      Close();
      Open();
    }
  }

 private:
  bool Active() const { return obs_ != nullptr; }
  void Open() {
    chunk_packets_ = 0;
    chunk_bytes_ = 0;
    if (obs_->trace != nullptr) {
      chunk_start_ns_ = obs_->trace->NowNs();
    }
  }
  void Close() {
    obs::Inc(obs_->packets, chunk_packets_);
    obs::Inc(obs_->bytes, chunk_bytes_);
    if (obs_->trace != nullptr) {
      obs::TraceRecorder::Event e;
      e.phase = obs::TraceRecorder::Event::Phase::kSpan;
      e.category = "replay";
      e.name = "batch";
      e.ts_ns = chunk_start_ns_;
      e.dur_ns = obs_->trace->NowNs() - chunk_start_ns_;
      e.arg_name = "packets";
      e.arg_value = chunk_packets_;
      obs_->trace->Emit(obs_->trace_lane, e);
    }
  }

  const ReplayObs* obs_;
  uint64_t chunk_packets_ = 0;
  uint64_t chunk_bytes_ = 0;
  uint64_t chunk_start_ns_ = 0;
};

}  // namespace

ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink) {
  ReplayReport report;
  if (trace.empty()) {
    return report;
  }
  const uint32_t amp = std::max<uint32_t>(options.amplification, 1);
  const double speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  const uint64_t base_ts = trace.packets().front().timestamp_ns;
  ReplayChunkObs chunk_obs(options.obs);
  obs::TraceClock* clock =
      options.obs != nullptr ? options.obs->clock : nullptr;

  uint64_t min_ts = UINT64_MAX;
  uint64_t max_ts = 0;
  for (const auto& original : trace.packets()) {
    const uint64_t scaled =
        static_cast<uint64_t>(static_cast<double>(original.timestamp_ns - base_ts) / speedup);
    for (uint32_t replica = 0; replica < amp; ++replica) {
      PacketRecord pkt = original;
      if (replica != 0) {
        // Offset into a disjoint address block per replica so replicated
        // packets form distinct flows, as the switch-based amplifier does.
        const uint32_t offset = replica << 20;
        pkt.tuple.src_ip += offset;
        pkt.tuple.dst_ip += offset;
        pkt.src_mac = MacForIp(pkt.tuple.src_ip);
        pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
      }
      // Replicas are interleaved a few ns apart, preserving per-flow order.
      pkt.timestamp_ns = scaled + replica * 8;
      min_ts = std::min(min_ts, pkt.timestamp_ns);
      max_ts = std::max(max_ts, pkt.timestamp_ns);
      report.packets++;
      report.bytes += pkt.wire_bytes;
      if (clock != nullptr) {
        clock->Advance(pkt.timestamp_ns);
      }
      sink.OnPacket(pkt);
      chunk_obs.OnPacket(pkt.wire_bytes);
    }
  }
  report.duration_s = static_cast<double>(max_ts - min_ts) * 1e-9;
  if (report.duration_s > 0.0) {
    report.offered_gbps = static_cast<double>(report.bytes) * 8.0 / report.duration_s * 1e-9;
    report.offered_mpps = static_cast<double>(report.packets) / report.duration_s * 1e-6;
  }
  return report;
}

}  // namespace superfe
