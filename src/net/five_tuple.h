// The classic transport five-tuple plus the coarser grouping keys used by
// SuperFE granularities (§4.1, Table 5): flow, host, channel, socket.
#ifndef SUPERFE_NET_FIVE_TUPLE_H_
#define SUPERFE_NET_FIVE_TUPLE_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace superfe {

// IP protocol numbers we care about.
inline constexpr uint8_t kProtoIcmp = 1;
inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  auto operator<=>(const FiveTuple&) const = default;

  // Serializes to the 13-byte canonical key layout used by switch hash units.
  std::array<uint8_t, 13> ToBytes() const;

  // The same tuple with endpoints swapped (the reverse direction of a
  // bidirectional conversation).
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  // Canonical form: the lexicographically smaller of (this, Reversed()).
  // Both directions of a conversation map to the same canonical tuple.
  FiveTuple Canonical() const;

  // True if this tuple is already in canonical orientation.
  bool IsCanonicalOrientation() const { return Canonical() == *this; }

  // "1.2.3.4:80 -> 5.6.7.8:443 tcp"
  std::string ToString() const;
};

// Formats an IPv4 address in dotted-quad notation.
std::string IpToString(uint32_t ip);

// Builds an IPv4 address from dotted-quad components.
constexpr uint32_t MakeIp(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | static_cast<uint32_t>(d);
}

// Hash functor for unordered containers.
struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const;
};

}  // namespace superfe

#endif  // SUPERFE_NET_FIVE_TUPLE_H_
