#include "net/trace.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>

namespace superfe {

std::string TraceStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pkts=%llu flows=%llu avg_flow_len=%.1f avg_pkt_size=%.0fB dur=%.2fs %.2fGbps",
                (unsigned long long)packet_count, (unsigned long long)flow_count,
                avg_flow_length_pkts, avg_packet_size_bytes, duration_seconds, offered_gbps);
  return buf;
}

void Trace::SortByTime() {
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.timestamp_ns < b.timestamp_ns;
                   });
}

bool Trace::IsTimeOrdered() const {
  for (size_t i = 1; i < packets_.size(); ++i) {
    if (packets_[i].timestamp_ns < packets_[i - 1].timestamp_ns) {
      return false;
    }
  }
  return true;
}

TraceStats Trace::ComputeStats() const {
  TraceStats stats;
  stats.packet_count = packets_.size();
  if (packets_.empty()) {
    return stats;
  }
  std::unordered_set<FiveTuple, FiveTupleHash> flows;
  uint64_t min_ts = UINT64_MAX;
  uint64_t max_ts = 0;
  for (const auto& p : packets_) {
    flows.insert(p.FlowKey());
    stats.total_bytes += p.wire_bytes;
    min_ts = std::min(min_ts, p.timestamp_ns);
    max_ts = std::max(max_ts, p.timestamp_ns);
  }
  stats.flow_count = flows.size();
  stats.avg_flow_length_pkts =
      static_cast<double>(stats.packet_count) / static_cast<double>(stats.flow_count);
  stats.avg_packet_size_bytes =
      static_cast<double>(stats.total_bytes) / static_cast<double>(stats.packet_count);
  stats.duration_seconds = static_cast<double>(max_ts - min_ts) * 1e-9;
  if (stats.duration_seconds > 0.0) {
    stats.offered_gbps =
        static_cast<double>(stats.total_bytes) * 8.0 / stats.duration_seconds * 1e-9;
  }
  return stats;
}

void Trace::Append(const Trace& other) {
  packets_.insert(packets_.end(), other.packets().begin(), other.packets().end());
}

void LabeledTrace::SortByTime() {
  std::vector<size_t> order(trace.size());
  std::iota(order.begin(), order.end(), 0);
  const auto& pkts = trace.packets();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pkts[a].timestamp_ns < pkts[b].timestamp_ns;
  });
  std::vector<PacketRecord> sorted_pkts;
  std::vector<uint8_t> sorted_labels;
  sorted_pkts.reserve(pkts.size());
  sorted_labels.reserve(labels.size());
  for (size_t idx : order) {
    sorted_pkts.push_back(pkts[idx]);
    sorted_labels.push_back(labels[idx]);
  }
  trace.mutable_packets() = std::move(sorted_pkts);
  labels = std::move(sorted_labels);
}

}  // namespace superfe
