// Trace container: a time-ordered sequence of PacketRecords, optionally with
// per-packet labels (benign/attack) for detection experiments.
#ifndef SUPERFE_NET_TRACE_H_
#define SUPERFE_NET_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace superfe {

// Aggregate characteristics matching Table 2 in the paper.
struct TraceStats {
  uint64_t packet_count = 0;
  uint64_t flow_count = 0;  // Distinct canonical five-tuples.
  uint64_t total_bytes = 0;
  double avg_flow_length_pkts = 0.0;
  double avg_packet_size_bytes = 0.0;
  double duration_seconds = 0.0;
  double offered_gbps = 0.0;  // total_bytes over duration.

  std::string ToString() const;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void Add(const PacketRecord& record) { packets_.push_back(record); }
  void Reserve(size_t n) { packets_.reserve(n); }

  const std::vector<PacketRecord>& packets() const { return packets_; }
  std::vector<PacketRecord>& mutable_packets() { return packets_; }
  size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  // Stable-sorts packets by timestamp. Generators interleave flows and call
  // this once at the end.
  void SortByTime();

  // True if packets are non-decreasing in timestamp.
  bool IsTimeOrdered() const;

  TraceStats ComputeStats() const;

  // Appends all packets of `other` (labels are not merged; use LabeledTrace).
  void Append(const Trace& other);

 private:
  std::string name_;
  std::vector<PacketRecord> packets_;
};

// A trace plus per-packet binary labels (0 = benign, 1 = attack) used by the
// detection-accuracy experiments (Fig 11).
struct LabeledTrace {
  Trace trace;
  std::vector<uint8_t> labels;  // Parallel to trace.packets().

  // Sorts packets and labels together by timestamp.
  void SortByTime();

  void Add(const PacketRecord& record, uint8_t label) {
    trace.Add(record);
    labels.push_back(label);
  }
};

}  // namespace superfe

#endif  // SUPERFE_NET_TRACE_H_
