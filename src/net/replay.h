// Trace replay and amplification.
//
// The paper replays captures with MoonGen at up to 40 Gbps and uses
// switch-side packet replication to amplify beyond that (§8.1). Replayer
// models both: it feeds a PacketSink in timestamp order, optionally
// replicating each packet `amplification` times with rewritten source
// addresses and interleaved timestamps.
//
// StreamingReplay scales the driver without a serial prefix: the feeder
// thread CG-hash-partitions one bounded chunk at a time into per-shard work
// queues while shard threads replay previously queued chunks. Because the
// partition is by group and each shard's queue is FIFO in feed order, every
// shard preserves the per-group packet order of the serial replay, and the
// emitted records are bit-identical to the serial path (both are built by
// the same replica constructor). ParallelReplay() is the one-shot wrapper:
// it feeds a whole trace through a StreamingReplay in fixed-size chunks.
#ifndef SUPERFE_NET_REPLAY_H_
#define SUPERFE_NET_REPLAY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault_injector.h"
#include "net/trace.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace superfe {

// Nullable observability handles for the replay driver (superfe_replay_*).
// Counters are batched per span chunk, so the per-packet cost is zero.
// Counters may be shared across shard threads (obs::Counter is sharded
// internally); trace_lane / clock_lane are per-thread lanes and must be
// unique per concurrent replayer.
struct ReplayObs {
  obs::Counter* packets = nullptr;
  obs::Counter* bytes = nullptr;
  // Trace-time replay position (superfe_replay_trace_now_ns{shard=...}),
  // refreshed once per chunk flush. Single-writer (this shard's replay
  // thread); the telemetry /status endpoint reads it to show how far into
  // the trace each shard is.
  obs::Gauge* trace_now = nullptr;
  // When set, the replay loop publishes each packet's trace-time timestamp
  // before delivering it, so downstream consumers (NIC workers) can measure
  // queue wait / end-to-end latency in the trace clock domain.
  obs::TraceClock* clock = nullptr;
  // TraceClock lane this replayer advances (single-writer). The clock's
  // Now() is the max over lanes, so per-shard lanes preserve the serial
  // global-max semantics.
  uint32_t clock_lane = 0;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane = 0;
  // One "replay/batch" trace span (and one counter flush) per this many
  // replayed packets.
  uint32_t span_packets = 8192;

  // Fault injection (not owned): injected clock skew shifts the TraceClock
  // lane this replayer advances — the *measurement* domain only. Packet
  // records and their timestamps are untouched, so skew perturbs latency
  // observations without changing a single feature. Null = no skew.
  FaultInjector* injector = nullptr;
  uint32_t fault_shard = 0;

  static ReplayObs Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                          uint32_t trace_lane);
};

// Consumer interface for replayed packets (FE-Switch implements this).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void OnPacket(const PacketRecord& packet) = 0;
};

struct ReplayOptions {
  // Each input packet is emitted `amplification` times; replica i gets its
  // source/destination IPs offset so replicas form distinct flows (matching
  // the replicate-and-modify technique of IMap/Hypertester).
  uint32_t amplification = 1;

  // Time compression factor: timestamps are divided by this to model replay
  // at a higher rate than the capture rate.
  double speedup = 1.0;

  // Optional observability wiring (not owned; must outlive the replay).
  const ReplayObs* obs = nullptr;

  // Pin each ParallelReplay shard thread to logical CPU (shard % CpuCount)
  // — the same slot the NIC cluster pins worker threads to, keeping a
  // shard's producer and its preferred members co-resident. Best-effort:
  // no-op (with one logged warning) where pinning is unsupported. Ignored
  // by the serial Replay().
  bool pin_threads = false;
};

struct ReplayReport {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  // Replayed-timestamp span, kept as exact integers so shard reports merge
  // without float rounding; UINT64_MAX/0 when no packets were replayed.
  uint64_t span_min_ns = UINT64_MAX;
  uint64_t span_max_ns = 0;
  double duration_s = 0.0;  // Replayed (post-speedup) time span.
  double offered_gbps = 0.0;
  double offered_mpps = 0.0;

  // Exact integer aggregation of another (shard) report: sums the counts,
  // widens the span. Call FinalizeRates() once after the last merge.
  void MergeFrom(const ReplayReport& other);
  // Derives duration/offered_* from the integer fields.
  void FinalizeRates();
};

// Replays `trace` into `sink`; returns offered-load accounting.
ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink);

// Bounded-memory chunked streaming replay across N shard threads.
//
// One feeder thread calls Feed() with successive packet chunks; each call
// partitions the chunk's (packet, replica) stream with `shard_of` (the
// switch's CG-hash on the *rewritten* replica tuple) and appends per-shard
// id lists to the shard work queues, blocking when a target queue already
// holds `max_chunks_in_flight` chunks. Shard threads drain their queues
// concurrently, so partitioning chunk k overlaps replaying chunk k-1 and
// peak memory is O(chunks_in_flight × chunk_size) instead of O(trace).
//
// Ordering/exactness contract: a group never spans shards, each shard queue
// is FIFO in feed order, and records are built by the same MakeReplica as
// the serial path — so per-group delivery order and record bytes are
// identical to Replay()/the historical up-front partition. The replica
// timestamp base is the first packet of the first chunk ever fed.
//
// Thread contract: Feed/WaitIdle/Close from ONE feeder thread; Report and
// Backlog from any thread. WaitIdle() blocks until every fed chunk has been
// fully delivered — the daemon's epoch fence (the mutex edge also makes all
// shard-side writes visible to the caller). Report() merges shard reports
// under the lock; its packet/byte counts are exact at any time, but rates
// are only meaningful at quiescence (after WaitIdle or Close).
class StreamingReplay {
 public:
  StreamingReplay(const ReplayOptions& options, std::vector<PacketSink*> sinks,
                  std::vector<const ReplayObs*> shard_obs,
                  std::function<uint32_t(const PacketRecord&)> shard_of,
                  size_t max_chunks_in_flight = 4);
  ~StreamingReplay();
  StreamingReplay(const StreamingReplay&) = delete;
  StreamingReplay& operator=(const StreamingReplay&) = delete;

  // Partitions and enqueues one chunk; blocks while any target shard queue
  // is full (backpressure toward the ingest source).
  void Feed(std::vector<PacketRecord> chunk);

  // Blocks until all fed work has been delivered to the sinks.
  void WaitIdle();

  // Drains remaining work and joins the shard threads. Idempotent; the
  // destructor calls it.
  void Close();

  ReplayReport Report() const;

  // Replicated packets fed so far (chunk packets × amplification).
  uint64_t packets_fed() const;

  // Chunks enqueued or in progress — the shed signal for overload mode.
  size_t Backlog() const;

 private:
  struct Work {
    std::shared_ptr<const std::vector<PacketRecord>> chunk;
    std::vector<uint64_t> ids;  // chunk-local index * amplification + replica
  };
  void ShardLoop(size_t s);

  const ReplayOptions options_;
  const std::vector<PacketSink*> sinks_;
  const std::vector<const ReplayObs*> shard_obs_;
  const std::function<uint32_t(const PacketRecord&)> shard_of_;
  const size_t max_queue_;
  const uint32_t amp_;
  const double speedup_;

  // Written once by the feeder before the first enqueue; shard threads only
  // observe it through the queue's mutex edge.
  uint64_t base_ts_ = 0;
  bool base_ts_set_ = false;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // shards wait: work or closing
  std::condition_variable space_cv_;  // feeder waits: queue space / idle
  std::vector<std::deque<Work>> queues_;
  size_t in_flight_ = 0;  // queued or being replayed
  uint64_t packets_fed_ = 0;
  bool closing_ = false;
  bool closed_ = false;
  std::vector<ReplayReport> shard_reports_;
  std::vector<std::thread> threads_;
};

// Replays `trace` into sinks.size() shards, one thread per shard, by
// feeding the whole trace through a StreamingReplay in fixed-size chunks.
// `shard_of` maps a fully-formed replica record to its shard (must return
// values in [0, sinks.size()) and be pure — it is called once per record
// during chunk partitioning). `shard_obs` is either empty or one entry per
// shard (entries may be null); each shard's obs must use a distinct
// trace/clock lane. Aggregation across shards is exact (integer sums via
// MergeFrom).
ReplayReport ParallelReplay(const Trace& trace, const ReplayOptions& options,
                            const std::vector<PacketSink*>& sinks,
                            const std::vector<const ReplayObs*>& shard_obs,
                            const std::function<uint32_t(const PacketRecord&)>& shard_of);

}  // namespace superfe

#endif  // SUPERFE_NET_REPLAY_H_
