// Trace replay and amplification.
//
// The paper replays captures with MoonGen at up to 40 Gbps and uses
// switch-side packet replication to amplify beyond that (§8.1). Replayer
// models both: it feeds a PacketSink in timestamp order, optionally
// replicating each packet `amplification` times with rewritten source
// addresses and interleaved timestamps.
//
// ParallelReplay() scales the driver: it partitions the (packet, replica)
// stream across N shards up front with a caller-supplied routing function
// (the switch's CG-hash), then replays each shard on its own thread. Because
// the partition is by group, every shard preserves the per-group packet
// order of the serial replay, and the emitted records are bit-identical to
// the serial path (both are built by the same replica constructor).
#ifndef SUPERFE_NET_REPLAY_H_
#define SUPERFE_NET_REPLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_injector.h"
#include "net/trace.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace superfe {

// Nullable observability handles for the replay driver (superfe_replay_*).
// Counters are batched per span chunk, so the per-packet cost is zero.
// Counters may be shared across shard threads (obs::Counter is sharded
// internally); trace_lane / clock_lane are per-thread lanes and must be
// unique per concurrent replayer.
struct ReplayObs {
  obs::Counter* packets = nullptr;
  obs::Counter* bytes = nullptr;
  // Trace-time replay position (superfe_replay_trace_now_ns{shard=...}),
  // refreshed once per chunk flush. Single-writer (this shard's replay
  // thread); the telemetry /status endpoint reads it to show how far into
  // the trace each shard is.
  obs::Gauge* trace_now = nullptr;
  // When set, the replay loop publishes each packet's trace-time timestamp
  // before delivering it, so downstream consumers (NIC workers) can measure
  // queue wait / end-to-end latency in the trace clock domain.
  obs::TraceClock* clock = nullptr;
  // TraceClock lane this replayer advances (single-writer). The clock's
  // Now() is the max over lanes, so per-shard lanes preserve the serial
  // global-max semantics.
  uint32_t clock_lane = 0;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane = 0;
  // One "replay/batch" trace span (and one counter flush) per this many
  // replayed packets.
  uint32_t span_packets = 8192;

  // Fault injection (not owned): injected clock skew shifts the TraceClock
  // lane this replayer advances — the *measurement* domain only. Packet
  // records and their timestamps are untouched, so skew perturbs latency
  // observations without changing a single feature. Null = no skew.
  FaultInjector* injector = nullptr;
  uint32_t fault_shard = 0;

  static ReplayObs Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                          uint32_t trace_lane);
};

// Consumer interface for replayed packets (FE-Switch implements this).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void OnPacket(const PacketRecord& packet) = 0;
};

struct ReplayOptions {
  // Each input packet is emitted `amplification` times; replica i gets its
  // source/destination IPs offset so replicas form distinct flows (matching
  // the replicate-and-modify technique of IMap/Hypertester).
  uint32_t amplification = 1;

  // Time compression factor: timestamps are divided by this to model replay
  // at a higher rate than the capture rate.
  double speedup = 1.0;

  // Optional observability wiring (not owned; must outlive the replay).
  const ReplayObs* obs = nullptr;

  // Pin each ParallelReplay shard thread to logical CPU (shard % CpuCount)
  // — the same slot the NIC cluster pins worker threads to, keeping a
  // shard's producer and its preferred members co-resident. Best-effort:
  // no-op (with one logged warning) where pinning is unsupported. Ignored
  // by the serial Replay().
  bool pin_threads = false;
};

struct ReplayReport {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  // Replayed-timestamp span, kept as exact integers so shard reports merge
  // without float rounding; UINT64_MAX/0 when no packets were replayed.
  uint64_t span_min_ns = UINT64_MAX;
  uint64_t span_max_ns = 0;
  double duration_s = 0.0;  // Replayed (post-speedup) time span.
  double offered_gbps = 0.0;
  double offered_mpps = 0.0;

  // Exact integer aggregation of another (shard) report: sums the counts,
  // widens the span. Call FinalizeRates() once after the last merge.
  void MergeFrom(const ReplayReport& other);
  // Derives duration/offered_* from the integer fields.
  void FinalizeRates();
};

// Replays `trace` into `sink`; returns offered-load accounting.
ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink);

// Replays `trace` into sinks.size() shards, one thread per shard. `shard_of`
// maps a fully-formed replica record to its shard (must return values in
// [0, sinks.size()) and be pure — it is called once per record during the
// up-front partition). `shard_obs` is either empty or one entry per shard
// (entries may be null); each shard's obs must use a distinct trace/clock
// lane. Aggregation across shards is exact (integer sums via MergeFrom).
ReplayReport ParallelReplay(const Trace& trace, const ReplayOptions& options,
                            const std::vector<PacketSink*>& sinks,
                            const std::vector<const ReplayObs*>& shard_obs,
                            const std::function<uint32_t(const PacketRecord&)>& shard_of);

}  // namespace superfe

#endif  // SUPERFE_NET_REPLAY_H_
