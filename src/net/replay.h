// Trace replay and amplification.
//
// The paper replays captures with MoonGen at up to 40 Gbps and uses
// switch-side packet replication to amplify beyond that (§8.1). Replayer
// models both: it feeds a PacketSink in timestamp order, optionally
// replicating each packet `amplification` times with rewritten source
// addresses and interleaved timestamps.
#ifndef SUPERFE_NET_REPLAY_H_
#define SUPERFE_NET_REPLAY_H_

#include <cstdint>

#include "net/trace.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace superfe {

// Nullable observability handles for the replay driver (superfe_replay_*).
// Counters are batched per span chunk, so the per-packet cost is zero.
struct ReplayObs {
  obs::Counter* packets = nullptr;
  obs::Counter* bytes = nullptr;
  // When set, the replay loop publishes each packet's trace-time timestamp
  // before delivering it, so downstream consumers (NIC workers) can measure
  // queue wait / end-to-end latency in the trace clock domain.
  obs::TraceClock* clock = nullptr;
  obs::TraceRecorder* trace = nullptr;
  uint32_t trace_lane = 0;
  // One "replay/batch" trace span (and one counter flush) per this many
  // replayed packets.
  uint32_t span_packets = 8192;

  static ReplayObs Create(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                          uint32_t trace_lane);
};

// Consumer interface for replayed packets (FE-Switch implements this).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void OnPacket(const PacketRecord& packet) = 0;
};

struct ReplayOptions {
  // Each input packet is emitted `amplification` times; replica i gets its
  // source/destination IPs offset so replicas form distinct flows (matching
  // the replicate-and-modify technique of IMap/Hypertester).
  uint32_t amplification = 1;

  // Time compression factor: timestamps are divided by this to model replay
  // at a higher rate than the capture rate.
  double speedup = 1.0;

  // Optional observability wiring (not owned; must outlive the replay).
  const ReplayObs* obs = nullptr;
};

struct ReplayReport {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  double duration_s = 0.0;  // Replayed (post-speedup) time span.
  double offered_gbps = 0.0;
  double offered_mpps = 0.0;
};

// Replays `trace` into `sink`; returns offered-load accounting.
ReplayReport Replay(const Trace& trace, const ReplayOptions& options, PacketSink& sink);

}  // namespace superfe

#endif  // SUPERFE_NET_REPLAY_H_
