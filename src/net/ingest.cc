#include "net/ingest.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace superfe {
namespace {

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

void PutU32Le(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutU64Le(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

PacketSource::Next TraceSource::NextChunk(std::vector<PacketRecord>* out,
                                          size_t max_packets) {
  if (trace_ == nullptr || cursor_ >= trace_->size() ||
      stop_.load(std::memory_order_relaxed)) {
    return Next::kEnd;
  }
  const auto& packets = trace_->packets();
  const size_t end = std::min(packets.size(), cursor_ + std::max<size_t>(max_packets, 1));
  for (; cursor_ < end; ++cursor_) {
    out->push_back(packets[cursor_]);
    ++stats_.frames;
    stats_.bytes += packets[cursor_].wire_bytes;
  }
  ++stats_.chunks;
  return Next::kChunk;
}

LoopedTraceSource::LoopedTraceSource(const Trace* trace, uint64_t loops)
    : trace_(trace), loops_(loops), period_ns_(trace != nullptr ? PeriodNs(*trace) : 0) {}

uint64_t LoopedTraceSource::PeriodNs(const Trace& trace) {
  if (trace.empty()) {
    return 1;
  }
  const uint64_t span =
      trace.packets().back().timestamp_ns - trace.packets().front().timestamp_ns;
  const uint64_t gap = std::max<uint64_t>(1, span / trace.size());
  return span + gap;
}

Trace LoopedTraceSource::Materialize(const Trace& trace, uint64_t loops) {
  Trace out(trace.name() + "_x" + std::to_string(loops));
  out.Reserve(trace.size() * loops);
  const uint64_t period = PeriodNs(trace);
  for (uint64_t l = 0; l < loops; ++l) {
    for (const auto& original : trace.packets()) {
      PacketRecord pkt = original;
      pkt.timestamp_ns += l * period;
      out.Add(pkt);
    }
  }
  return out;
}

PacketSource::Next LoopedTraceSource::NextChunk(std::vector<PacketRecord>* out,
                                                size_t max_packets) {
  if (trace_ == nullptr || trace_->empty() || stop_.load(std::memory_order_relaxed)) {
    return Next::kEnd;
  }
  if (loops_ != 0 && loop_ >= loops_) {
    return Next::kEnd;
  }
  const auto& packets = trace_->packets();
  const uint64_t offset = loop_ * period_ns_;
  const size_t end = std::min(packets.size(), cursor_ + std::max<size_t>(max_packets, 1));
  for (; cursor_ < end; ++cursor_) {
    PacketRecord pkt = packets[cursor_];
    pkt.timestamp_ns += offset;
    out->push_back(pkt);
    ++stats_.frames;
    stats_.bytes += pkt.wire_bytes;
  }
  if (cursor_ >= packets.size()) {
    cursor_ = 0;
    ++loop_;
    ++stats_.loops_completed;
  }
  ++stats_.chunks;
  return Next::kChunk;
}

void AppendIngestRecord(std::string* out, const PacketRecord& record) {
  const std::vector<uint8_t> frame = EncodeFrame(record);
  uint8_t header[kIngestHeaderLen];
  PutU32Le(header, static_cast<uint32_t>(frame.size()));
  PutU64Le(header + 4, record.timestamp_ns);
  header[12] = record.direction == Direction::kBackward ? 1 : 0;
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(frame.data()), frame.size());
}

Result<std::unique_ptr<SocketSource>> SocketSource::Open(
    const SocketSourceOptions& options) {
  std::unique_ptr<SocketSource> source(new SocketSource());
  source->options_ = options;
  if (options.udp) {
    uint16_t bound = 0;
    source->udp_fd_ = UdpBind(options.port, options.io_timeout_ms, &bound);
    if (source->udp_fd_ < 0) {
      return Status::Internal("udp ingest bind 127.0.0.1:" +
                              std::to_string(options.port) + ": " +
                              std::strerror(errno));
    }
    source->port_ = bound;
  } else {
    auto listener = TcpListener::Listen(options.port, 4);
    if (!listener.ok()) {
      return listener.status();
    }
    source->listener_ = std::move(listener).value();
    source->port_ = source->listener_.port();
  }
  return source;
}

SocketSource::~SocketSource() {
  CloseFd(client_fd_);
  CloseFd(udp_fd_);
}

PacketSource::Next SocketSource::NextChunk(std::vector<PacketRecord>* out,
                                           size_t max_packets) {
  return options_.udp ? NextChunkUdp(out, max_packets) : NextChunkTcp(out, max_packets);
}

void SocketSource::DropPeer() {
  if (client_fd_ >= 0) {
    CloseFd(client_fd_);
    client_fd_ = -1;
    ++stats_.disconnects;
    buf_.clear();
  }
}

bool SocketSource::DrainBuffer(std::vector<PacketRecord>* out, size_t max_packets) {
  size_t pos = 0;
  bool synced = true;
  while (out->size() < max_packets && buf_.size() - pos >= kIngestHeaderLen) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf_.data()) + pos;
    const uint32_t frame_len = ReadU32Le(p);
    if (frame_len < kMinFrameLen || frame_len > options_.max_frame_bytes) {
      // An insane length prefix means the byte stream is desynced; record
      // boundaries are unrecoverable, so the caller drops the peer.
      ++stats_.frames_damaged;
      synced = false;
      pos = buf_.size();
      break;
    }
    if (buf_.size() - pos < kIngestHeaderLen + frame_len) {
      break;  // Partial record; wait for more bytes.
    }
    const uint64_t timestamp_ns = ReadU64Le(p + 4);
    const uint8_t direction = p[12];
    auto parsed = ParseFrame(p + kIngestHeaderLen, frame_len);
    if (parsed.ok()) {
      PacketRecord pkt = std::move(parsed).value();
      // The wire carries no capture metadata; take it from the framing.
      pkt.timestamp_ns = timestamp_ns;
      pkt.direction = direction == 1 ? Direction::kBackward : Direction::kForward;
      out->push_back(pkt);
      ++stats_.frames;
      stats_.bytes += frame_len;
    } else {
      // Framing is intact but the frame itself is damaged: skip it and stay
      // in sync, mirroring the pcap reader's damage tolerance.
      ++stats_.frames_damaged;
    }
    pos += kIngestHeaderLen + frame_len;
  }
  buf_.erase(0, pos);
  return synced;
}

PacketSource::Next SocketSource::NextChunkTcp(std::vector<PacketRecord>* out,
                                              size_t max_packets) {
  const size_t want = std::max<size_t>(max_packets, 1);
  if (client_fd_ < 0) {
    if (stop_.load(std::memory_order_relaxed)) {
      return Next::kEnd;
    }
    const int conn =
        listener_.AcceptWithTimeout(options_.accept_timeout_ms, options_.io_timeout_ms);
    if (conn < 0) {
      ++stats_.idle_waits;
      return stop_.load(std::memory_order_relaxed) ? Next::kEnd : Next::kIdle;
    }
    client_fd_ = conn;
    ++stats_.accepts;
    buf_.clear();
  }
  // Records left complete in the buffer by a previous (full) chunk first.
  if (!buf_.empty() && !DrainBuffer(out, want)) {
    DropPeer();
  }
  char chunk[4096];
  while (client_fd_ >= 0 && out->size() < want) {
    const ssize_t n = RecvSome(client_fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      if (!DrainBuffer(out, want)) {
        DropPeer();
      }
      continue;
    }
    if (n == 0) {
      DropPeer();  // Orderly EOF; keep listening for the next peer.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;  // SO_RCVTIMEO expired: idle, keep the connection.
    }
    DropPeer();  // Hard receive error.
    break;
  }
  if (!out->empty()) {
    ++stats_.chunks;
    return Next::kChunk;
  }
  ++stats_.idle_waits;
  return stop_.load(std::memory_order_relaxed) ? Next::kEnd : Next::kIdle;
}

PacketSource::Next SocketSource::NextChunkUdp(std::vector<PacketRecord>* out,
                                              size_t max_packets) {
  const size_t want = std::max<size_t>(max_packets, 1);
  std::vector<uint8_t> dgram(kIngestHeaderLen + options_.max_frame_bytes);
  while (out->size() < want) {
    const ssize_t n = RecvDatagram(udp_fd_, dgram.data(), dgram.size());
    if (n <= 0) {
      break;  // Timeout (0) or transient error (-1): idle either way.
    }
    if (static_cast<size_t>(n) < kIngestHeaderLen) {
      ++stats_.frames_damaged;
      continue;
    }
    const uint32_t frame_len = ReadU32Le(dgram.data());
    if (frame_len != static_cast<size_t>(n) - kIngestHeaderLen ||
        frame_len < kMinFrameLen || frame_len > options_.max_frame_bytes) {
      ++stats_.frames_damaged;
      continue;
    }
    auto parsed = ParseFrame(dgram.data() + kIngestHeaderLen, frame_len);
    if (!parsed.ok()) {
      ++stats_.frames_damaged;
      continue;
    }
    PacketRecord pkt = std::move(parsed).value();
    pkt.timestamp_ns = ReadU64Le(dgram.data() + 4);
    pkt.direction = dgram[12] == 1 ? Direction::kBackward : Direction::kForward;
    out->push_back(pkt);
    ++stats_.frames;
    stats_.bytes += frame_len;
  }
  if (!out->empty()) {
    ++stats_.chunks;
    return Next::kChunk;
  }
  ++stats_.idle_waits;
  return stop_.load(std::memory_order_relaxed) ? Next::kEnd : Next::kIdle;
}

}  // namespace superfe
