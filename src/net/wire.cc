#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace superfe {
namespace {

void Put16(std::vector<uint8_t>& buf, size_t off, uint16_t v) {
  buf[off] = static_cast<uint8_t>(v >> 8);
  buf[off + 1] = static_cast<uint8_t>(v);
}

void Put32(std::vector<uint8_t>& buf, size_t off, uint32_t v) {
  buf[off] = static_cast<uint8_t>(v >> 24);
  buf[off + 1] = static_cast<uint8_t>(v >> 16);
  buf[off + 2] = static_cast<uint8_t>(v >> 8);
  buf[off + 3] = static_cast<uint8_t>(v);
}

uint16_t Get16(const uint8_t* p) {
  return static_cast<uint16_t>((static_cast<uint16_t>(p[0]) << 8) | p[1]);
}

uint32_t Get32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

void PutMac(std::vector<uint8_t>& buf, size_t off, uint64_t mac) {
  for (int i = 0; i < 6; ++i) {
    buf[off + i] = static_cast<uint8_t>(mac >> (8 * (5 - i)));
  }
}

uint64_t GetMac(const uint8_t* p) {
  uint64_t mac = 0;
  for (int i = 0; i < 6; ++i) {
    mac = (mac << 8) | p[i];
  }
  return mac;
}

}  // namespace

uint16_t InternetChecksum(const uint8_t* data, size_t length, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < length; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < length) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffffu) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

std::vector<uint8_t> EncodeFrame(const PacketRecord& record) {
  const bool tcp = record.tuple.protocol == kProtoTcp;
  const bool udp = record.tuple.protocol == kProtoUdp;
  const size_t l4_len = tcp ? kTcpMinHeaderLen : (udp ? kUdpHeaderLen : 0);
  const size_t min_len = kEthHeaderLen + kIpv4MinHeaderLen + l4_len;
  const size_t frame_len = std::max<size_t>(std::max<size_t>(record.wire_bytes, min_len),
                                            kMinFrameLen);
  std::vector<uint8_t> buf(frame_len, 0);

  // Ethernet.
  PutMac(buf, 0, record.dst_mac);
  PutMac(buf, 6, record.src_mac);
  Put16(buf, 12, kEtherTypeIpv4);

  // IPv4.
  const size_t ip_off = kEthHeaderLen;
  const size_t ip_total = frame_len - kEthHeaderLen;
  buf[ip_off + 0] = 0x45;  // Version 4, IHL 5.
  buf[ip_off + 1] = 0;     // DSCP/ECN.
  Put16(buf, ip_off + 2, static_cast<uint16_t>(ip_total));
  Put16(buf, ip_off + 4, static_cast<uint16_t>(record.timestamp_ns & 0xffff));  // IP ID.
  Put16(buf, ip_off + 6, 0x4000);  // Don't fragment.
  buf[ip_off + 8] = 64;            // TTL.
  buf[ip_off + 9] = record.tuple.protocol;
  Put16(buf, ip_off + 10, 0);  // Checksum placeholder.
  Put32(buf, ip_off + 12, record.tuple.src_ip);
  Put32(buf, ip_off + 16, record.tuple.dst_ip);
  const uint16_t ip_csum = InternetChecksum(buf.data() + ip_off, kIpv4MinHeaderLen);
  Put16(buf, ip_off + 10, ip_csum);

  const size_t l4_off = ip_off + kIpv4MinHeaderLen;
  if (tcp) {
    Put16(buf, l4_off + 0, record.tuple.src_port);
    Put16(buf, l4_off + 2, record.tuple.dst_port);
    Put32(buf, l4_off + 4, static_cast<uint32_t>(record.timestamp_ns));  // Seq.
    Put32(buf, l4_off + 8, 0);                                           // Ack.
    buf[l4_off + 12] = 0x50;  // Data offset 5.
    buf[l4_off + 13] = record.tcp_flags != 0 ? record.tcp_flags : kTcpAck;
    Put16(buf, l4_off + 14, 0xffff);  // Window.
  } else if (udp) {
    Put16(buf, l4_off + 0, record.tuple.src_port);
    Put16(buf, l4_off + 2, record.tuple.dst_port);
    Put16(buf, l4_off + 4, static_cast<uint16_t>(ip_total - kIpv4MinHeaderLen));
    Put16(buf, l4_off + 6, 0);  // UDP checksum optional for IPv4.
  }
  return buf;
}

Result<PacketRecord> ParseFrame(const uint8_t* data, size_t length) {
  if (length < kEthHeaderLen + kIpv4MinHeaderLen) {
    return Status::InvalidArgument("frame too short for eth+ipv4");
  }
  if (Get16(data + 12) != kEtherTypeIpv4) {
    return Status::InvalidArgument("not an IPv4 frame");
  }
  PacketRecord record;
  record.dst_mac = GetMac(data);
  record.src_mac = GetMac(data + 6);

  const uint8_t* ip = data + kEthHeaderLen;
  const uint8_t version = ip[0] >> 4;
  const size_t ihl = static_cast<size_t>(ip[0] & 0x0f) * 4;
  if (version != 4 || ihl < kIpv4MinHeaderLen) {
    return Status::InvalidArgument("bad IPv4 header");
  }
  if (length < kEthHeaderLen + ihl) {
    return Status::InvalidArgument("truncated IPv4 header");
  }
  record.tuple.protocol = ip[9];
  record.tuple.src_ip = Get32(ip + 12);
  record.tuple.dst_ip = Get32(ip + 16);
  record.wire_bytes = static_cast<uint32_t>(length);

  const uint8_t* l4 = ip + ihl;
  const size_t l4_avail = length - kEthHeaderLen - ihl;
  if (record.tuple.protocol == kProtoTcp && l4_avail >= kTcpMinHeaderLen) {
    record.tuple.src_port = Get16(l4);
    record.tuple.dst_port = Get16(l4 + 2);
    record.tcp_flags = l4[13];
  } else if (record.tuple.protocol == kProtoUdp && l4_avail >= kUdpHeaderLen) {
    record.tuple.src_port = Get16(l4);
    record.tuple.dst_port = Get16(l4 + 2);
  }
  return record;
}

}  // namespace superfe
