#include "net/five_tuple.h"

#include <cstdio>

#include "common/hash.h"

namespace superfe {

std::array<uint8_t, 13> FiveTuple::ToBytes() const {
  std::array<uint8_t, 13> out{};
  out[0] = static_cast<uint8_t>(src_ip >> 24);
  out[1] = static_cast<uint8_t>(src_ip >> 16);
  out[2] = static_cast<uint8_t>(src_ip >> 8);
  out[3] = static_cast<uint8_t>(src_ip);
  out[4] = static_cast<uint8_t>(dst_ip >> 24);
  out[5] = static_cast<uint8_t>(dst_ip >> 16);
  out[6] = static_cast<uint8_t>(dst_ip >> 8);
  out[7] = static_cast<uint8_t>(dst_ip);
  out[8] = static_cast<uint8_t>(src_port >> 8);
  out[9] = static_cast<uint8_t>(src_port);
  out[10] = static_cast<uint8_t>(dst_port >> 8);
  out[11] = static_cast<uint8_t>(dst_port);
  out[12] = protocol;
  return out;
}

FiveTuple FiveTuple::Canonical() const {
  const FiveTuple reversed = Reversed();
  return *this <= reversed ? *this : reversed;
}

std::string FiveTuple::ToString() const {
  const char* proto_name = "ip";
  switch (protocol) {
    case kProtoTcp:
      proto_name = "tcp";
      break;
    case kProtoUdp:
      proto_name = "udp";
      break;
    case kProtoIcmp:
      proto_name = "icmp";
      break;
    default:
      break;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u %s", IpToString(src_ip).c_str(), src_port,
                IpToString(dst_ip).c_str(), dst_port, proto_name);
  return buf;
}

std::string IpToString(uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

size_t FiveTupleHash::operator()(const FiveTuple& t) const {
  const auto bytes = t.ToBytes();
  return Murmur3(bytes.data(), bytes.size(), 0x51af5e17u);
}

}  // namespace superfe
