#include "net/pcap.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "net/wire.h"

namespace superfe {
namespace {

constexpr uint32_t kMagicNano = 0xa1b23c4d;
constexpr uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr uint32_t kSnapLen = 65535;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }

uint32_t GetU32(const uint8_t* p, bool swap) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return swap ? __builtin_bswap32(v) : v;
}

}  // namespace

Status WritePcap(const std::string& path, const Trace& trace) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }

  uint8_t header[24] = {};
  PutU32(header, kMagicNano);
  PutU16(header + 4, 2);   // Major.
  PutU16(header + 6, 4);   // Minor.
  PutU32(header + 16, kSnapLen);
  PutU32(header + 20, kLinkTypeEthernet);
  if (std::fwrite(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::Internal("short write on pcap header");
  }

  for (const auto& record : trace.packets()) {
    const std::vector<uint8_t> frame = EncodeFrame(record);
    uint8_t rec[16];
    PutU32(rec, static_cast<uint32_t>(record.timestamp_ns / 1000000000ull));
    PutU32(rec + 4, static_cast<uint32_t>(record.timestamp_ns % 1000000000ull));
    PutU32(rec + 8, static_cast<uint32_t>(frame.size()));
    PutU32(rec + 12, static_cast<uint32_t>(frame.size()));
    if (std::fwrite(rec, 1, sizeof(rec), file.get()) != sizeof(rec) ||
        std::fwrite(frame.data(), 1, frame.size(), file.get()) != frame.size()) {
      return Status::Internal("short write on pcap record");
    }
  }
  return Status::Ok();
}

Result<Trace> ReadPcap(const std::string& path) { return ReadPcap(path, nullptr); }

Result<Trace> ReadPcap(const std::string& path, PcapReadStats* stats) {
  PcapReadStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  *stats = PcapReadStats{};
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }

  uint8_t header[24];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::InvalidArgument("truncated pcap header");
  }
  uint32_t magic;
  std::memcpy(&magic, header, 4);
  bool swap = false;
  bool nano = false;
  if (magic == kMagicNano) {
    nano = true;
  } else if (magic == kMagicMicro) {
    nano = false;
  } else if (magic == __builtin_bswap32(kMagicNano)) {
    nano = true;
    swap = true;
  } else if (magic == __builtin_bswap32(kMagicMicro)) {
    nano = false;
    swap = true;
  } else {
    return Status::InvalidArgument("not a pcap file: " + path);
  }

  Trace trace(path);
  // First-seen orientation per canonical flow defines Direction::kForward.
  std::unordered_map<FiveTuple, FiveTuple, FiveTupleHash> forward_orientation;

  for (;;) {
    uint8_t rec[16];
    const size_t got = std::fread(rec, 1, sizeof(rec), file.get());
    if (got == 0) {
      break;  // Clean EOF.
    }
    stats->records++;
    if (got != sizeof(rec)) {
      // Capture cut off mid-record-header (crashed writer, partial copy):
      // keep the intact prefix.
      stats->truncated_records++;
      break;
    }
    const uint32_t ts_sec = GetU32(rec, swap);
    const uint32_t ts_frac = GetU32(rec + 4, swap);
    const uint32_t cap_len = GetU32(rec + 8, swap);
    uint32_t orig_len = GetU32(rec + 12, swap);
    if (cap_len > kSnapLen) {
      // A bogus length means the stream framing is gone — nothing after
      // this point can be trusted to start on a record boundary.
      stats->corrupt_records++;
      return Status::InvalidArgument("pcap record larger than snaplen (" +
                                     std::to_string(cap_len) + " bytes)");
    }
    if (orig_len < cap_len) {
      // Inconsistent lengths; repair to the bytes actually present.
      stats->corrupt_records++;
      orig_len = cap_len;
    }
    std::vector<uint8_t> frame(cap_len);
    if (std::fread(frame.data(), 1, cap_len, file.get()) != cap_len) {
      stats->truncated_records++;  // Cut off mid-frame: keep the prefix.
      break;
    }
    auto parsed = ParseFrame(frame.data(), frame.size());
    if (!parsed.ok()) {
      stats->frames_skipped++;
      continue;  // Skip non-IPv4 frames.
    }
    stats->frames_decoded++;
    PacketRecord record = std::move(parsed).value();
    record.timestamp_ns =
        static_cast<uint64_t>(ts_sec) * 1000000000ull + (nano ? ts_frac : ts_frac * 1000ull);
    record.wire_bytes = orig_len;

    const FiveTuple canonical = record.tuple.Canonical();
    auto [it, inserted] = forward_orientation.emplace(canonical, record.tuple);
    record.direction =
        record.tuple == it->second ? Direction::kForward : Direction::kBackward;
    trace.Add(record);
  }
  return trace;
}

}  // namespace superfe
