// Packet abstractions shared by the trace generators, the switch simulator
// and the software baseline.
//
// SuperFE abstracts each packet as a key-value tuple (§4.1): header fields
// (addresses, ports, protocol) plus switch-filled metadata (size, timestamp,
// direction). PacketRecord is that tuple in struct form.
#ifndef SUPERFE_NET_PACKET_H_
#define SUPERFE_NET_PACKET_H_

#include <cstdint>
#include <string>

#include "net/five_tuple.h"

namespace superfe {

// Direction of a packet relative to the monitored vantage point. For a flow,
// the initiator's packets are kForward.
enum class Direction : uint8_t {
  kForward = 0,
  kBackward = 1,
};

// TCP flag bits (subset used by analyses and generators).
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

struct PacketRecord {
  uint64_t timestamp_ns = 0;
  FiveTuple tuple;
  uint32_t wire_bytes = 0;  // Full frame length on the wire.
  Direction direction = Direction::kForward;
  uint8_t tcp_flags = 0;
  uint64_t src_mac = 0;  // Lower 48 bits significant.
  uint64_t dst_mac = 0;

  bool is_tcp() const { return tuple.protocol == kProtoTcp; }
  bool is_udp() const { return tuple.protocol == kProtoUdp; }

  // The five-tuple as sent by the flow initiator (forward packets already
  // are; backward packets are reversed back). Every grouping key below is
  // derived from this orientation, matching GroupKey's initiator-oriented
  // chain.
  FiveTuple InitiatorTuple() const {
    return direction == Direction::kForward ? tuple : tuple.Reversed();
  }

  // Grouping keys for the SuperFE granularities (Table 5). `host` groups by
  // the initiator's IP; `channel` by the ordered (initiator, responder) IP
  // pair; `socket`/`flow` by the five-tuple. Initiator orientation makes
  // both directions of a conversation land in the same group.
  uint64_t HostKey() const { return InitiatorTuple().src_ip; }
  uint64_t ChannelKey() const;
  FiveTuple SocketKey() const { return tuple.Canonical(); }
  FiveTuple FlowKey() const { return tuple.Canonical(); }

  // Signed direction factor: +1 forward, -1 backward (used by f_direction).
  int DirectionSign() const { return direction == Direction::kForward ? 1 : -1; }

  std::string ToString() const;
};

}  // namespace superfe

#endif  // SUPERFE_NET_PACKET_H_
