#include "net/packet.h"

#include <cstdio>

namespace superfe {

uint64_t PacketRecord::ChannelKey() const {
  // Ordered (initiator, responder) pair: both directions share a key, and
  // the key nests inside the initiator host key (see group_key.cc).
  const FiveTuple initiator = InitiatorTuple();
  return (static_cast<uint64_t>(initiator.src_ip) << 32) | initiator.dst_ip;
}

std::string PacketRecord::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%llu ns %s len=%u dir=%c", (unsigned long long)timestamp_ns,
                tuple.ToString().c_str(), wire_bytes,
                direction == Direction::kForward ? '>' : '<');
  return buf;
}

}  // namespace superfe
