#include "net/packet.h"

#include <cstdio>

namespace superfe {

uint64_t PacketRecord::ChannelKey() const {
  // Canonicalize the IP pair so both directions share a key.
  uint32_t a = tuple.src_ip;
  uint32_t b = tuple.dst_ip;
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

std::string PacketRecord::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%llu ns %s len=%u dir=%c", (unsigned long long)timestamp_ns,
                tuple.ToString().c_str(), wire_bytes,
                direction == Direction::kForward ? '>' : '<');
  return buf;
}

}  // namespace superfe
