// Byte-level Ethernet/IPv4/TCP/UDP frame encoding and parsing.
//
// The FE-Switch front end parses header fields from raw frames exactly like a
// P4 parser would (§5); the trace generators therefore emit real frames, and
// the pcap reader/writer round-trips them.
#ifndef SUPERFE_NET_WIRE_H_
#define SUPERFE_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/packet.h"

namespace superfe {

inline constexpr size_t kEthHeaderLen = 14;
inline constexpr size_t kIpv4MinHeaderLen = 20;
inline constexpr size_t kTcpMinHeaderLen = 20;
inline constexpr size_t kUdpHeaderLen = 8;
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr size_t kMinFrameLen = 60;  // Without FCS.

// Encodes a PacketRecord into a wire frame of record.wire_bytes bytes
// (padded with zeros, truncated payload). Checksums are computed so parsers
// that verify them accept the frame.
std::vector<uint8_t> EncodeFrame(const PacketRecord& record);

// Parses a frame back into a PacketRecord. Fields not present on the wire
// (timestamp, direction) are left defaulted; the caller fills them from
// capture metadata. Fails on truncated or non-IPv4 frames.
Result<PacketRecord> ParseFrame(const uint8_t* data, size_t length);

// Computes the RFC 1071 ones'-complement checksum over a byte range.
uint16_t InternetChecksum(const uint8_t* data, size_t length, uint32_t initial = 0);

}  // namespace superfe

#endif  // SUPERFE_NET_WIRE_H_
