// Pluggable packet ingest for daemon mode.
//
// One-shot replay reads a whole Trace up front; a daemon instead pulls
// bounded chunks from a PacketSource and feeds them to the streaming
// replayer, so memory stays bounded and the source can be something other
// than a file. Three sources ship: TraceSource (the current pcap/generator
// path, chunked), LoopedTraceSource (replays the trace N times or forever —
// the soak workload), and SocketSource (a loopback TCP/UDP listener carrying
// length-prefixed wire frames plus capture metadata, reusing
// src/common/socket.*).
//
// The contract is pull-based and non-blocking-ish: NextChunk() returns
//   kChunk — `out` holds 1..max_packets records (appended, in arrival order)
//   kIdle  — nothing available right now; the caller backs off and retries
//   kEnd   — the source is exhausted (or RequestStop() was honored)
// Sources tolerate damage (bad frames are counted and skipped, a desynced
// TCP peer is dropped and re-accepted) rather than failing the daemon.
#ifndef SUPERFE_NET_INGEST_H_
#define SUPERFE_NET_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "net/trace.h"

namespace superfe {

struct IngestStats {
  uint64_t chunks = 0;           // NextChunk calls that returned kChunk
  uint64_t frames = 0;           // Records delivered
  uint64_t bytes = 0;            // Wire bytes delivered
  uint64_t frames_damaged = 0;   // Unparseable/oversized frames skipped
  uint64_t loops_completed = 0;  // LoopedTraceSource full passes
  uint64_t accepts = 0;          // SocketSource TCP connections accepted
  uint64_t disconnects = 0;      // SocketSource peers that went away
  uint64_t idle_waits = 0;       // NextChunk calls that returned kIdle
};

class PacketSource {
 public:
  enum class Next { kChunk, kIdle, kEnd };

  virtual ~PacketSource() = default;

  // Appends up to `max_packets` records to `*out` (which the caller has
  // cleared). Called from one ingest thread.
  virtual Next NextChunk(std::vector<PacketRecord>* out, size_t max_packets) = 0;

  virtual const IngestStats& stats() const = 0;

  // Asks the source to wind down: the next NextChunk returns kEnd once
  // already-buffered data is handed out. Safe to call from another thread.
  virtual void RequestStop() {}
};

// Chunked cursor over an in-memory Trace — the existing pcap/generator path
// behind the PacketSource interface.
class TraceSource : public PacketSource {
 public:
  explicit TraceSource(const Trace* trace) : trace_(trace) {}

  Next NextChunk(std::vector<PacketRecord>* out, size_t max_packets) override;
  const IngestStats& stats() const override { return stats_; }
  void RequestStop() override { stop_.store(true, std::memory_order_relaxed); }

 private:
  const Trace* trace_;
  size_t cursor_ = 0;
  std::atomic<bool> stop_{false};
  IngestStats stats_;
};

// Replays `trace` `loops` times (0 = until RequestStop), shifting loop l's
// timestamps by l × PeriodNs(trace) so the stream stays time-ordered with a
// one-mean-gap seam between passes. Chunks never span a loop boundary.
class LoopedTraceSource : public PacketSource {
 public:
  LoopedTraceSource(const Trace* trace, uint64_t loops);

  Next NextChunk(std::vector<PacketRecord>* out, size_t max_packets) override;
  const IngestStats& stats() const override { return stats_; }
  void RequestStop() override { stop_.store(true, std::memory_order_relaxed); }

  // Trace span plus one mean inter-packet gap: the timestamp shift between
  // consecutive loops.
  static uint64_t PeriodNs(const Trace& trace);

  // The exact packet stream this source emits for `loops` passes, as one
  // Trace — what one-shot runs replay to byte-compare against daemon epochs.
  static Trace Materialize(const Trace& trace, uint64_t loops);

 private:
  const Trace* trace_;
  const uint64_t loops_;  // 0 = unbounded
  const uint64_t period_ns_;
  uint64_t loop_ = 0;
  size_t cursor_ = 0;
  std::atomic<bool> stop_{false};
  IngestStats stats_;
};

// Wire format of one ingested record on the socket:
//   u32 frame_len (LE) | u64 timestamp_ns (LE) | u8 direction | frame bytes
// The frame bytes are a real Ethernet/IPv4 frame (EncodeFrame); timestamp
// and direction ride alongside because the wire does not carry capture
// metadata (ParseFrame leaves them defaulted).
inline constexpr size_t kIngestHeaderLen = 13;

// Appends one framed record to `*out` — the client side of SocketSource,
// used by tests and external feeders.
void AppendIngestRecord(std::string* out, const PacketRecord& record);

struct SocketSourceOptions {
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral; see port().
  bool udp = false;   // false = TCP stream framing, true = one record/datagram
  int accept_timeout_ms = 50;
  int io_timeout_ms = 50;
  uint32_t max_frame_bytes = 64 * 1024;  // Larger frame_len = desync → drop peer.
};

// Loopback socket ingest. TCP: accepts one peer at a time, accumulates the
// byte stream, parses complete records, and resynchronizes after damage by
// dropping the connection (an insane length prefix means framing is lost)
// while merely skipping frames that fail ParseFrame (framing still intact).
// UDP: one record per datagram, malformed datagrams counted and dropped.
class SocketSource : public PacketSource {
 public:
  static Result<std::unique_ptr<SocketSource>> Open(const SocketSourceOptions& options);
  ~SocketSource() override;

  Next NextChunk(std::vector<PacketRecord>* out, size_t max_packets) override;
  const IngestStats& stats() const override { return stats_; }
  void RequestStop() override { stop_.store(true, std::memory_order_relaxed); }

  uint16_t port() const { return port_; }

 private:
  SocketSource() = default;
  Next NextChunkTcp(std::vector<PacketRecord>* out, size_t max_packets);
  Next NextChunkUdp(std::vector<PacketRecord>* out, size_t max_packets);
  // Parses complete records out of buf_; returns false on desync (caller
  // drops the connection).
  bool DrainBuffer(std::vector<PacketRecord>* out, size_t max_packets);
  void DropPeer();

  SocketSourceOptions options_;
  TcpListener listener_;   // TCP mode
  int client_fd_ = -1;     // TCP mode: the currently-accepted peer
  int udp_fd_ = -1;        // UDP mode
  uint16_t port_ = 0;
  std::string buf_;        // TCP reassembly buffer
  std::atomic<bool> stop_{false};
  IngestStats stats_;
};

}  // namespace superfe

#endif  // SUPERFE_NET_INGEST_H_
