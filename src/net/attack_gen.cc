#include "net/attack_gen.h"

#include <algorithm>
#include <cmath>

namespace superfe {

const char* AttackTypeName(AttackType type) {
  switch (type) {
    case AttackType::kOsScan:
      return "OS_Scan";
    case AttackType::kSsdpFlood:
      return "SSDP_Flood";
    case AttackType::kSynDos:
      return "SYN_DoS";
    case AttackType::kMiraiScan:
      return "Mirai";
  }
  return "unknown";
}

namespace {

PacketRecord MakePacket(const FiveTuple& tuple, uint64_t ts, uint32_t bytes, uint8_t flags,
                        Direction dir = Direction::kForward) {
  PacketRecord pkt;
  pkt.timestamp_ns = ts;
  pkt.tuple = tuple;
  pkt.wire_bytes = bytes;
  pkt.tcp_flags = flags;
  pkt.direction = dir;
  pkt.src_mac = MacForIp(tuple.src_ip);
  pkt.dst_mac = MacForIp(tuple.dst_ip);
  return pkt;
}

// Appends OS-scan packets: one attacker sweeps hosts x ports with SYNs.
void AppendOsScan(LabeledTrace& out, size_t count, uint64_t start_ns, uint64_t span_ns,
                  Rng& rng) {
  const uint32_t attacker = MakeIp(192, 168, 66, 6);
  const uint64_t gap = std::max<uint64_t>(span_ns / std::max<size_t>(count, 1), 1);
  uint64_t ts = start_ns;
  for (size_t i = 0; i < count; ++i) {
    FiveTuple t;
    t.src_ip = attacker;
    t.dst_ip = MakeIp(172, 16, 0, 0) + static_cast<uint32_t>(i / 16 % 4096);
    t.src_port = static_cast<uint16_t>(40000 + (i % 1024));
    t.dst_port = static_cast<uint16_t>(1 + (i * 7919) % 1024);  // Port sweep.
    t.protocol = kProtoTcp;
    out.Add(MakePacket(t, ts, 64, kTcpSyn), 1);
    ts += gap + rng.UniformU64(gap);
  }
}

// Appends SSDP flood: many reflectors hammer one victim with UDP/1900.
void AppendSsdpFlood(LabeledTrace& out, size_t count, uint64_t start_ns, uint64_t span_ns,
                     Rng& rng) {
  const uint32_t victim = MakeIp(172, 16, 9, 9);
  const uint64_t gap = std::max<uint64_t>(span_ns / std::max<size_t>(count, 1), 1);
  uint64_t ts = start_ns;
  for (size_t i = 0; i < count; ++i) {
    FiveTuple t;
    t.src_ip = MakeIp(203, 0, 0, 0) + static_cast<uint32_t>(rng.UniformU64(48));
    t.dst_ip = victim;
    t.src_port = 1900;
    t.dst_port = static_cast<uint16_t>(1024 + rng.UniformU64(60000));
    t.protocol = kProtoUdp;
    out.Add(MakePacket(t, ts, 512, 0), 1);  // Amplified response payloads.
    ts += gap / 2 + rng.UniformU64(gap);
  }
}

// Appends SYN DoS: spoofed sources flood one service port; the victim
// answers with SYN-ACK backscatter (also attack-induced, labeled 1).
void AppendSynDos(LabeledTrace& out, size_t count, uint64_t start_ns, uint64_t span_ns,
                  Rng& rng) {
  const uint32_t victim = MakeIp(172, 16, 7, 7);
  const size_t floods = count / 2;
  const uint64_t gap = std::max<uint64_t>(span_ns / std::max<size_t>(floods, 1), 1);
  uint64_t ts = start_ns;
  for (size_t i = 0; i < floods; ++i) {
    FiveTuple t;
    t.src_ip = rng.NextU32();  // Fully spoofed.
    t.dst_ip = victim;
    t.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(64000));
    t.dst_port = 80;
    t.protocol = kProtoTcp;
    out.Add(MakePacket(t, ts, 64, kTcpSyn), 1);
    PacketRecord backscatter =
        MakePacket(t.Reversed(), ts + 20000, 64, kTcpSyn | kTcpAck, Direction::kBackward);
    out.Add(backscatter, 1);
    ts += gap / 2 + rng.UniformU64(gap);
  }
}

// Appends Mirai-style scanning: compromised hosts sweep the internal
// network for telnet; ~15% of probed servers are alive and answer with an
// RST (attack-induced backscatter, labeled 1).
void AppendMiraiScan(LabeledTrace& out, size_t count, uint64_t start_ns, uint64_t span_ns,
                     Rng& rng) {
  const int kBots = 3;
  const size_t probes = count * 7 / 8;
  const uint64_t gap = std::max<uint64_t>(span_ns / std::max<size_t>(probes, 1), 1);
  uint64_t ts = start_ns;
  for (size_t i = 0; i < probes; ++i) {
    FiveTuple t;
    t.src_ip = MakeIp(10, 66, 0, 0) + static_cast<uint32_t>(rng.UniformU64(kBots));
    t.dst_ip = MakeIp(172, 16, 0, 0) + static_cast<uint32_t>(rng.UniformU64(2048));
    t.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(60000));
    t.dst_port = rng.Bernoulli(0.8) ? 23 : 2323;
    t.protocol = kProtoTcp;
    out.Add(MakePacket(t, ts, 64, kTcpSyn), 1);
    if (rng.Bernoulli(0.15)) {
      out.Add(MakePacket(t.Reversed(), ts + 30000, 64, kTcpRst | kTcpAck,
                         Direction::kBackward),
              1);
    }
    ts += gap + rng.UniformU64(gap);
  }
}

}  // namespace

LabeledTrace GenerateAttackTrace(const AttackConfig& config, const TraceProfile& profile,
                                 size_t background_packets, uint64_t seed) {
  Rng rng(seed);
  LabeledTrace out;

  Trace background = GenerateTrace(profile, background_packets, seed ^ 0xbac6u);
  for (const auto& pkt : background.packets()) {
    out.Add(pkt, 0);
  }

  const uint64_t duration_ns = static_cast<uint64_t>(profile.duration_s * 1e9);
  const uint64_t start_ns = static_cast<uint64_t>(config.start_fraction * duration_ns);
  const uint64_t span_ns = duration_ns > start_ns ? duration_ns - start_ns : duration_ns;

  switch (config.type) {
    case AttackType::kOsScan:
      AppendOsScan(out, config.attack_packets, start_ns, span_ns, rng);
      break;
    case AttackType::kSsdpFlood:
      AppendSsdpFlood(out, config.attack_packets, start_ns, span_ns, rng);
      break;
    case AttackType::kSynDos:
      AppendSynDos(out, config.attack_packets, start_ns, span_ns, rng);
      break;
    case AttackType::kMiraiScan:
      AppendMiraiScan(out, config.attack_packets, start_ns, span_ns, rng);
      break;
  }
  out.SortByTime();
  out.trace.set_name(std::string(profile.name) + "+" + AttackTypeName(config.type));
  return out;
}

LabeledFlowSet GenerateWebsiteSessions(int sites, int sessions_per_site, uint64_t seed) {
  Rng rng(seed);
  LabeledFlowSet out;

  // Per-site page template: a direction/size sequence.
  struct Template {
    std::vector<Direction> dirs;
    std::vector<uint16_t> sizes;
  };
  std::vector<Template> templates(sites);
  for (int s = 0; s < sites; ++s) {
    Rng site_rng(seed ^ (0x517eull * (s + 1)));
    const size_t length = 80 + site_rng.UniformU64(320);
    templates[s].dirs.resize(length);
    templates[s].sizes.resize(length);
    // Pages are mostly inbound (server->client) with request bursts.
    double p_inbound = 0.55 + site_rng.UniformDouble() * 0.35;
    for (size_t i = 0; i < length; ++i) {
      const bool inbound = site_rng.Bernoulli(p_inbound);
      templates[s].dirs[i] = inbound ? Direction::kBackward : Direction::kForward;
      templates[s].sizes[i] = inbound ? (site_rng.Bernoulli(0.7) ? 1514 : 576)
                                      : (site_rng.Bernoulli(0.8) ? 120 : 600);
    }
  }

  for (int s = 0; s < sites; ++s) {
    for (int v = 0; v < sessions_per_site; ++v) {
      const Template& tmpl = templates[s];
      FiveTuple tuple;
      tuple.src_ip = MakeIp(10, 1, 0, 0) + rng.NextU32() % 4096;
      tuple.dst_ip = MakeIp(172, 31, 0, 0) + static_cast<uint32_t>(s);
      tuple.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(60000));
      tuple.dst_port = 443;
      tuple.protocol = kProtoTcp;

      std::vector<PacketRecord> flow;
      uint64_t ts = rng.UniformU64(1000000000ull);
      for (size_t i = 0; i < tmpl.dirs.size(); ++i) {
        if (rng.Bernoulli(0.06)) {
          continue;  // Packet loss / retransmission noise.
        }
        Direction dir = tmpl.dirs[i];
        if (rng.Bernoulli(0.03)) {
          dir = dir == Direction::kForward ? Direction::kBackward : Direction::kForward;
        }
        PacketRecord pkt;
        pkt.timestamp_ns = ts;
        pkt.direction = dir;
        pkt.tuple = dir == Direction::kForward ? tuple : tuple.Reversed();
        int jitter = static_cast<int>(rng.UniformU64(33)) - 16;
        pkt.wire_bytes = static_cast<uint32_t>(
            std::max(64, static_cast<int>(tmpl.sizes[i]) + jitter));
        pkt.tcp_flags = kTcpAck;
        pkt.src_mac = MacForIp(pkt.tuple.src_ip);
        pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
        flow.push_back(pkt);
        ts += 100000 + rng.UniformU64(900000);  // 0.1-1 ms gaps.
      }
      out.flows.push_back(std::move(flow));
      out.labels.push_back(s);
    }
  }
  return out;
}

LabeledFlowSet GenerateCovertTimingFlows(int flows_per_class, int packets_per_flow,
                                         uint64_t seed) {
  Rng rng(seed);
  LabeledFlowSet out;
  const double kShortMs = 1.0;   // Bit 0.
  const double kLongMs = 8.0;    // Bit 1.
  const double kBenignMeanMs = (kShortMs + kLongMs) / 2.0;

  for (int label = 0; label <= 1; ++label) {
    for (int f = 0; f < flows_per_class; ++f) {
      FiveTuple tuple;
      tuple.src_ip = MakeIp(10, 2, 0, 0) + rng.NextU32() % 2048;
      tuple.dst_ip = MakeIp(172, 30, 0, 0) + rng.NextU32() % 256;
      tuple.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(60000));
      tuple.dst_port = 443;
      tuple.protocol = kProtoTcp;

      std::vector<PacketRecord> flow;
      uint64_t ts = rng.UniformU64(1000000000ull);
      for (int i = 0; i < packets_per_flow; ++i) {
        PacketRecord pkt;
        pkt.timestamp_ns = ts;
        pkt.tuple = tuple;
        pkt.direction = Direction::kForward;
        pkt.wire_bytes = 120 + static_cast<uint32_t>(rng.UniformU64(64));
        pkt.tcp_flags = kTcpPsh | kTcpAck;
        pkt.src_mac = MacForIp(tuple.src_ip);
        pkt.dst_mac = MacForIp(tuple.dst_ip);
        flow.push_back(pkt);
        double gap_ms;
        if (label == 1) {
          // Covert channel: bimodal delays encode bits, small jitter.
          gap_ms = (rng.Bernoulli(0.5) ? kLongMs : kShortMs) + rng.Normal(0.0, 0.05);
          gap_ms = std::max(gap_ms, 0.05);
        } else {
          gap_ms = rng.Exponential(1.0 / kBenignMeanMs);
        }
        ts += static_cast<uint64_t>(gap_ms * 1e6) + 1;
      }
      out.flows.push_back(std::move(flow));
      out.labels.push_back(label);
    }
  }
  return out;
}

LabeledFlowSet GenerateP2PConversations(int conversations_per_class, uint64_t seed) {
  Rng rng(seed);
  LabeledFlowSet out;

  for (int label = 0; label <= 1; ++label) {
    for (int c = 0; c < conversations_per_class; ++c) {
      FiveTuple tuple;
      tuple.src_ip = MakeIp(10, 3, 0, 0) + rng.NextU32() % 2048;
      tuple.dst_ip = MakeIp(10, 3, 8, 0) + rng.NextU32() % 2048;
      tuple.src_port = static_cast<uint16_t>(1024 + rng.UniformU64(60000));
      tuple.dst_port = label == 1 ? static_cast<uint16_t>(30000 + rng.UniformU64(5000)) : 443;
      tuple.protocol = label == 1 ? kProtoUdp : kProtoTcp;

      std::vector<PacketRecord> flow;
      uint64_t ts = rng.UniformU64(1000000000ull);
      if (label == 1) {
        // Bot keep-alive chatter: long-lived, small periodic packets.
        const int n = 120 + static_cast<int>(rng.UniformU64(120));
        for (int i = 0; i < n; ++i) {
          PacketRecord pkt;
          pkt.timestamp_ns = ts;
          const bool fwd = (i % 2) == 0;
          pkt.direction = fwd ? Direction::kForward : Direction::kBackward;
          pkt.tuple = fwd ? tuple : tuple.Reversed();
          pkt.wire_bytes = 96 + static_cast<uint32_t>(rng.UniformU64(32));
          pkt.src_mac = MacForIp(pkt.tuple.src_ip);
          pkt.dst_mac = MacForIp(pkt.tuple.dst_ip);
          flow.push_back(pkt);
          ts += static_cast<uint64_t>(30e6 + rng.Normal(0.0, 2e6));  // ~30 ms period.
        }
      } else {
        // Normal web conversation: short, bursty, size-diverse.
        Rng local(seed ^ (0xbeefull * (c + 1)));
        auto pkts = GenerateFlow(tuple, 10 + local.UniformU64(40), ts, 800.0,
                                 {{1514, 0.5}, {576, 0.2}, {64, 0.3}}, 0.5, local);
        flow = std::move(pkts);
      }
      out.flows.push_back(std::move(flow));
      out.labels.push_back(label);
    }
  }
  return out;
}

}  // namespace superfe
