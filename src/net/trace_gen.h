// Synthetic workload trace generation.
//
// The paper evaluates on three captures (Table 2): MAWI-IXP (IX link),
// ENTERPRISE (cloud gateway) and CAMPUS (department core router). Those
// captures are not redistributable, so we synthesize seeded traces whose
// flow-length and packet-size distributions match the published aggregate
// characteristics; bench_table2_traces verifies the match.
#ifndef SUPERFE_NET_TRACE_GEN_H_
#define SUPERFE_NET_TRACE_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/trace.h"

namespace superfe {

// Distributional description of a workload.
struct TraceProfile {
  std::string name;

  // Flow length ~ max(1, round(LogNormal(mu, sigma))) with mu derived from
  // the target mean. sigma controls tail heaviness (IX links are heaviest).
  double mean_flow_length_pkts = 10.0;
  double flow_length_sigma = 1.0;

  // Packet size mixture: (frame bytes, weight). Calibrated so the
  // *generated* mean (including minimum-size TCP handshake packets) hits
  // the Table 2 target below.
  std::vector<std::pair<uint16_t, double>> size_mix;

  // Table 2 target for the generated mean packet size.
  double target_mean_packet_size = 0.0;

  // Fraction of TCP flows (rest UDP).
  double tcp_fraction = 0.9;

  // Mean intra-flow inter-packet gap.
  double mean_ipt_us = 1000.0;

  // Trace duration over which flow start times are spread.
  double duration_s = 1.0;

  // Address pool sizes; destinations are Zipf-popular (realistic hot servers,
  // which matters for host/channel-granularity grouping).
  uint32_t src_pool = 20000;
  uint32_t dst_pool = 5000;
  double dst_zipf_s = 1.1;

  // Expected mean of the size mixture.
  double ExpectedMeanPacketSize() const;
};

// The three paper workloads (Table 2 targets in comments).
TraceProfile MawiIxpProfile();     // 104 pkts/flow, 1246 B/pkt.
TraceProfile EnterpriseProfile();  //   9.2 pkts/flow, 739 B/pkt.
TraceProfile CampusProfile();      //  58 pkts/flow, 135 B/pkt.

// All three, in paper order.
std::vector<TraceProfile> PaperProfiles();

// Generates a trace with approximately `target_packets` packets (complete
// flows are kept, so the count can overshoot by one flow length).
Trace GenerateTrace(const TraceProfile& profile, size_t target_packets, uint64_t seed);

// Generates a single bidirectional flow of `length` packets starting at
// `start_ns`; the initiator owns `tuple` and forward packets carry it as-is.
std::vector<PacketRecord> GenerateFlow(const FiveTuple& tuple, size_t length, uint64_t start_ns,
                                       double mean_ipt_us,
                                       const std::vector<std::pair<uint16_t, double>>& size_mix,
                                       double forward_fraction, Rng& rng);

// Derives a locally-administered MAC address from an IP (generators give
// every host a stable MAC; Kitsune's SrcMAC-IP granularity uses it).
uint64_t MacForIp(uint32_t ip);

// Draws a flow length from the profile's distribution.
size_t DrawFlowLength(const TraceProfile& profile, Rng& rng);

// Draws a frame size from a size mixture.
uint16_t DrawPacketSize(const std::vector<std::pair<uint16_t, double>>& size_mix, Rng& rng);

}  // namespace superfe

#endif  // SUPERFE_NET_TRACE_GEN_H_
