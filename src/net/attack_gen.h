// Labeled attack traffic generators for the detection experiments (Fig 11)
// and application examples.
//
// The paper trains/tests applications on public captures (Kitsune's Mirai
// dataset, website-fingerprinting traces, protocol-obfuscation traces). We
// synthesize equivalents that preserve the communication *shape* each
// detector keys on: scans touch many destinations/ports, floods concentrate
// rate on one destination, covert timing channels modulate inter-packet
// delays, websites have stable direction/size sequences.
#ifndef SUPERFE_NET_ATTACK_GEN_H_
#define SUPERFE_NET_ATTACK_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/trace.h"
#include "net/trace_gen.h"

namespace superfe {

enum class AttackType {
  kOsScan,      // One source SYN-probing many hosts/ports.
  kSsdpFlood,   // Amplification flood: many sources -> one victim, UDP 1900.
  kSynDos,      // SYN flood from spoofed sources to one service.
  kMiraiScan,   // Botnet: many compromised hosts scanning telnet/2323.
};

const char* AttackTypeName(AttackType type);

struct AttackConfig {
  AttackType type = AttackType::kOsScan;
  size_t attack_packets = 20000;
  // Attack starts after this fraction of the background trace (training on
  // clean prefix, like Kitsune's evaluation).
  double start_fraction = 0.5;
};

// Benign background from `profile` (+`background_packets`) with an attack
// blended in. Labels: 0 benign, 1 attack.
LabeledTrace GenerateAttackTrace(const AttackConfig& config, const TraceProfile& profile,
                                 size_t background_packets, uint64_t seed);

// ---- Application-specific labeled flow sets ----

// A set of single-flow traces with integer class labels.
struct LabeledFlowSet {
  std::vector<std::vector<PacketRecord>> flows;
  std::vector<int> labels;

  size_t size() const { return flows.size(); }
};

// Website-fingerprinting workload: `sites` classes, `sessions_per_site`
// visits each. Every site has a stable direction/size "page template";
// sessions are noisy replays of it (packet drops, direction flips, size
// jitter) — the regime in which direction-sequence features (AWF/DF/TF) work.
LabeledFlowSet GenerateWebsiteSessions(int sites, int sessions_per_site, uint64_t seed);

// Covert-timing-channel workload: label 1 flows encode bits with bimodal
// inter-packet delays; label 0 flows have benign exponential gaps with the
// same mean rate (the regime for distribution features, NPOD-style).
LabeledFlowSet GenerateCovertTimingFlows(int flows_per_class, int packets_per_flow,
                                         uint64_t seed);

// P2P botnet conversations (PeerShark-style): label 1 IP pairs exchange
// periodic small keep-alives for a long duration; label 0 pairs are normal
// short client-server conversations.
LabeledFlowSet GenerateP2PConversations(int conversations_per_class, uint64_t seed);

}  // namespace superfe

#endif  // SUPERFE_NET_ATTACK_GEN_H_
