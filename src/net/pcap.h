// Minimal libpcap-format reader/writer (nanosecond variant, magic
// 0xa1b23c4d). Lets users exchange traces with standard tooling; frames are
// encoded/decoded with net/wire.
#ifndef SUPERFE_NET_PCAP_H_
#define SUPERFE_NET_PCAP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/trace.h"

namespace superfe {

// Writes `trace` to `path` as a nanosecond-resolution pcap file.
Status WritePcap(const std::string& path, const Trace& trace);

// Reader-side robustness accounting: what a damaged capture cost us.
struct PcapReadStats {
  uint64_t records = 0;            // Record headers read (incl. bad ones).
  uint64_t frames_decoded = 0;     // Parsed into PacketRecords.
  uint64_t frames_skipped = 0;     // Well-formed but non-IPv4/undecodable.
  uint64_t truncated_records = 0;  // Cut off at EOF (header or body).
  uint64_t corrupt_records = 0;    // Bad lengths (oversized, orig < cap).
};

// Reads a pcap file (both microsecond 0xa1b2c3d4 and nanosecond 0xa1b23c4d
// magics, either byte order). Non-IPv4 frames are skipped. Direction is
// reconstructed per flow: the first-seen orientation is kForward.
//
// Damage tolerance: a record cut off by EOF (truncated header or body) ends
// the read — the intact prefix is returned and counted in
// stats->truncated_records. A record whose cap_len exceeds the snaplen
// bound is unrecoverable (the stream cannot be resynced) and fails with
// InvalidArgument after counting it corrupt. orig_len < cap_len is repaired
// (wire bytes clamped to cap_len) and counted corrupt but keeps the record.
Result<Trace> ReadPcap(const std::string& path);
Result<Trace> ReadPcap(const std::string& path, PcapReadStats* stats);

}  // namespace superfe

#endif  // SUPERFE_NET_PCAP_H_
