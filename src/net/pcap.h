// Minimal libpcap-format reader/writer (nanosecond variant, magic
// 0xa1b23c4d). Lets users exchange traces with standard tooling; frames are
// encoded/decoded with net/wire.
#ifndef SUPERFE_NET_PCAP_H_
#define SUPERFE_NET_PCAP_H_

#include <string>

#include "common/status.h"
#include "net/trace.h"

namespace superfe {

// Writes `trace` to `path` as a nanosecond-resolution pcap file.
Status WritePcap(const std::string& path, const Trace& trace);

// Reads a pcap file (both microsecond 0xa1b2c3d4 and nanosecond 0xa1b23c4d
// magics, either byte order). Non-IPv4 frames are skipped. Direction is
// reconstructed per flow: the first-seen orientation is kForward.
Result<Trace> ReadPcap(const std::string& path);

}  // namespace superfe

#endif  // SUPERFE_NET_PCAP_H_
