// Lightweight Status / Result types used across SuperFE for recoverable
// errors (policy parsing, compilation, I/O). Programming errors use assertions.
#ifndef SUPERFE_COMMON_STATUS_H_
#define SUPERFE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace superfe {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
};

// Human-readable name for a status code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace superfe

#endif  // SUPERFE_COMMON_STATUS_H_
