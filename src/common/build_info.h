// Build identification, baked in at configure time: the project version,
// the git short SHA of the checkout (or "unknown" outside one), and the
// compiler that produced the binary. Surfaced as the
// superfe_build_info{version,git_sha,compiler} info-gauge, in the metrics
// JSON export's "run" block, and on the telemetry /status endpoint, so an
// operator can tell *what* they are scraping.
#ifndef SUPERFE_COMMON_BUILD_INFO_H_
#define SUPERFE_COMMON_BUILD_INFO_H_

namespace superfe {

const char* BuildVersion();
const char* BuildGitSha();
const char* BuildCompiler();

}  // namespace superfe

#endif  // SUPERFE_COMMON_BUILD_INFO_H_
