// Minimal blocking TCP helpers for the embedded telemetry server
// (src/obs/telemetry_server.h) and its tests/bench scrape clients. POSIX
// sockets only, loopback-oriented: Listen() binds 127.0.0.1 so the
// telemetry plane is never reachable off-host by default. No framing, no
// TLS, no event loop — the server's single listener thread and the
// clients' one-shot GETs are all this needs.
#ifndef SUPERFE_COMMON_SOCKET_H_
#define SUPERFE_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace superfe {

// A listening TCP socket on 127.0.0.1:`port` (port 0 = kernel-assigned
// ephemeral; the bound port is readable via port()). Move-only owner of
// the listener fd.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Listen(uint16_t port, int backlog);

  // Waits up to `timeout_ms` for a pending connection; returns the
  // connected fd, or -1 on timeout / transient error (callers poll a stop
  // flag between calls). The accepted fd has `io_timeout_ms` applied as
  // both SO_RCVTIMEO and SO_SNDTIMEO so a stuck peer cannot wedge the
  // serving thread.
  int AcceptWithTimeout(int timeout_ms, int io_timeout_ms) const;

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Connects to 127.0.0.1:`port` with send/recv timeouts; returns the fd or
// -1 on failure.
int TcpConnect(uint16_t port, int io_timeout_ms);

// Appends to `*buf` until `terminator` appears in it, `max_bytes` total
// accumulate, or the peer closes. Returns true iff the terminator was seen.
bool RecvUntil(int fd, std::string* buf, std::string_view terminator, size_t max_bytes);

// Appends everything until EOF (bounded by `max_bytes`). Returns false on a
// read error before EOF.
bool RecvAll(int fd, std::string* buf, size_t max_bytes);

bool SendAll(int fd, std::string_view data);

void CloseFd(int fd);

// One-shot HTTP/1.1 GET against 127.0.0.1:`port`; returns the raw response
// (status line + headers + body), or "" on any failure. Client side of the
// telemetry server, used by tests and the bench scrape loop.
std::string HttpGet(uint16_t port, const std::string& path, int io_timeout_ms = 2000);

// Body of an HttpGet response (bytes after the blank line), or "" if the
// request failed or the response was malformed.
std::string HttpBody(const std::string& response);

}  // namespace superfe

#endif  // SUPERFE_COMMON_SOCKET_H_
