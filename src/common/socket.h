// Minimal blocking TCP/UDP helpers for the embedded telemetry server
// (src/obs/telemetry_server.h), the daemon's socket ingest source
// (src/net/ingest.h), and their tests/bench clients. POSIX sockets only,
// loopback-oriented: Listen()/UdpBind() bind 127.0.0.1 so neither the
// telemetry plane nor the ingest plane is reachable off-host by default.
// No TLS, no event loop — single-threaded blocking calls with timeouts.
//
// All helpers are EINTR-safe: interrupted syscalls are retried with the
// poll deadline recomputed, so a SIGTERM/SIGINT landing on a serving or
// ingesting thread never surfaces as a spurious I/O failure. Sends use
// MSG_NOSIGNAL so a peer that vanished mid-write yields EPIPE instead of
// killing the process.
#ifndef SUPERFE_COMMON_SOCKET_H_
#define SUPERFE_COMMON_SOCKET_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace superfe {

// A listening TCP socket on 127.0.0.1:`port` (port 0 = kernel-assigned
// ephemeral; the bound port is readable via port()). Move-only owner of
// the listener fd.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Listen(uint16_t port, int backlog);

  // Waits up to `timeout_ms` for a pending connection; returns the
  // connected fd, or -1 on timeout / transient error (callers poll a stop
  // flag between calls). The accepted fd has `io_timeout_ms` applied as
  // both SO_RCVTIMEO and SO_SNDTIMEO so a stuck peer cannot wedge the
  // serving thread. EINTR during the poll or the accept is retried within
  // the original deadline; ECONNABORTED (peer gave up while queued) is
  // retried too.
  int AcceptWithTimeout(int timeout_ms, int io_timeout_ms) const;

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Connects to 127.0.0.1:`port` with send/recv timeouts; returns the fd or
// -1 on failure. An EINTR-interrupted connect is completed via
// poll(POLLOUT) + SO_ERROR rather than failed.
int TcpConnect(uint16_t port, int io_timeout_ms);

// One recv() with EINTR retry. Returns >0 (bytes read), 0 (orderly EOF),
// or -1 (error; errno EAGAIN/EWOULDBLOCK means the fd's SO_RCVTIMEO
// expired with no data — callers treat that as "idle", not failure).
ssize_t RecvSome(int fd, void* buf, size_t len);

// Appends to `*buf` until `terminator` appears in it, `max_bytes` total
// accumulate, or the peer closes. Returns true iff the terminator was seen.
bool RecvUntil(int fd, std::string* buf, std::string_view terminator, size_t max_bytes);

// Appends everything until EOF (bounded by `max_bytes`). Returns false on a
// read error before EOF.
bool RecvAll(int fd, std::string* buf, size_t max_bytes);

// Writes all of `data`, retrying partial sends and EINTR. MSG_NOSIGNAL
// keeps a dead peer from raising SIGPIPE. Returns false on error/timeout.
bool SendAll(int fd, std::string_view data);

void CloseFd(int fd);

// A bound UDP socket on 127.0.0.1:`port` (0 = ephemeral) with SO_RCVTIMEO
// applied; the bound port is written to `*bound_port` when non-null.
// Returns the fd or -1 on failure.
int UdpBind(uint16_t port, int io_timeout_ms, uint16_t* bound_port);

// A UDP socket connected to 127.0.0.1:`port` (send-only client side of
// the ingest path); returns the fd or -1 on failure.
int UdpConnect(uint16_t port);

// One datagram with EINTR retry. Returns >0 (datagram length, truncated to
// `len` if the sender exceeded it), 0 (SO_RCVTIMEO expired — idle), or -1
// (error).
ssize_t RecvDatagram(int fd, void* buf, size_t len);

// One-shot HTTP/1.1 GET against 127.0.0.1:`port`; returns the raw response
// (status line + headers + body), or "" on any failure. Client side of the
// telemetry server, used by tests and the bench scrape loop.
std::string HttpGet(uint16_t port, const std::string& path, int io_timeout_ms = 2000);

// Body of an HttpGet response (bytes after the blank line), or "" if the
// request failed or the response was malformed.
std::string HttpBody(const std::string& response);

}  // namespace superfe

#endif  // SUPERFE_COMMON_SOCKET_H_
