// Deterministic random number generation for trace synthesis and simulators.
//
// All SuperFE experiments are seeded, so results reproduce across runs. The
// engine is xoshiro256**, which is fast and has no observable bias at the
// sample counts we use (hundreds of millions).
#ifndef SUPERFE_COMMON_RNG_H_
#define SUPERFE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace superfe {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound) using Lemire's method; bound must be > 0.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p.
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (cached second value).
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  // Log-normal with given mu/sigma of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Pareto (Lomax-style heavy tail): xm * U^{-1/alpha}; alpha > 0, xm > 0.
  double Pareto(double xm, double alpha);

  // Zipf-distributed rank in [1, n] with exponent s, via rejection-inversion.
  uint64_t Zipf(uint64_t n, double s);

  // Geometric number of trials >= 1 with success probability p in (0, 1].
  uint64_t Geometric(double p);

  // Poisson with given mean (Knuth for small mean, normal approx for large).
  uint64_t Poisson(double mean);

  // Picks an index in [0, weights.size()) proportional to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace superfe

#endif  // SUPERFE_COMMON_RNG_H_
