// Offline summary statistics used by tests and benchmark reporting.
//
// These are the *exact* (buffered) definitions; the streaming counterparts in
// src/streaming are validated against them.
#ifndef SUPERFE_COMMON_STATS_H_
#define SUPERFE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace superfe {

double Mean(const std::vector<double>& xs);

// Population variance (divide by n), matching the paper's Welford recurrence.
double Variance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// Fisher skewness / excess-free kurtosis (population moments).
double Skewness(const std::vector<double>& xs);
double Kurtosis(const std::vector<double>& xs);

// Population covariance / Pearson correlation of two equal-length series.
double Covariance(const std::vector<double>& xs, const std::vector<double>& ys);
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> xs, double q);

// Relative error |got - want| / max(|want|, eps).
double RelativeError(double got, double want, double eps = 1e-9);

// Mean relative error across two equal-length vectors.
double MeanRelativeError(const std::vector<double>& got, const std::vector<double>& want,
                         double eps = 1e-9);

}  // namespace superfe

#endif  // SUPERFE_COMMON_STATS_H_
