// Minimal streaming JSON writer: the one JSON-emission implementation shared
// by the bench harness (BENCH_*.json) and the observability exports
// (metrics JSON, Chrome trace JSON). Handles string escaping and non-finite
// doubles (emitted as null) so every output parses with a strict reader.
//
//   JsonWriter w(out);
//   w.BeginObject();
//   w.FieldStr("bench", "parallel_cluster");
//   w.Key("runs"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
#ifndef SUPERFE_COMMON_JSON_WRITER_H_
#define SUPERFE_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace superfe {

class JsonWriter {
 public:
  // `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(out), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject() {
    BeforeValue();
    out_ << '{';
    stack_.push_back({/*is_array=*/false, /*count=*/0});
  }
  void EndObject() { EndContainer('}'); }

  void BeginArray() {
    BeforeValue();
    out_ << '[';
    stack_.push_back({/*is_array=*/true, /*count=*/0});
  }
  void EndArray() { EndContainer(']'); }

  // Object key; must be followed by exactly one value.
  void Key(std::string_view key) {
    BeforeValue();
    out_ << '"' << Escape(key) << "\":";
    if (indent_ > 0) {
      out_ << ' ';
    }
    have_key_ = true;
  }

  void String(std::string_view value) {
    BeforeValue();
    out_ << '"' << Escape(value) << '"';
  }
  void Uint(uint64_t value) {
    BeforeValue();
    out_ << value;
  }
  void Int(int64_t value) {
    BeforeValue();
    out_ << value;
  }
  void Bool(bool value) {
    BeforeValue();
    out_ << (value ? "true" : "false");
  }
  void Null() {
    BeforeValue();
    out_ << "null";
  }
  // Non-finite doubles have no JSON spelling; they become null.
  void Double(double value) {
    BeforeValue();
    if (!std::isfinite(value)) {
      out_ << "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    out_ << buf;
  }

  // key:value shorthands (named per type so integer literals never pick a
  // surprising overload).
  void FieldStr(std::string_view key, std::string_view value) { Key(key); String(value); }
  void FieldUint(std::string_view key, uint64_t value) { Key(key); Uint(value); }
  void FieldInt(std::string_view key, int64_t value) { Key(key); Int(value); }
  void FieldDouble(std::string_view key, double value) { Key(key); Double(value); }
  void FieldBool(std::string_view key, bool value) { Key(key); Bool(value); }

  static std::string Escape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    return out;
  }

 private:
  struct Frame {
    bool is_array;
    uint64_t count;
  };

  // Emits the comma / newline / indentation owed before the next token.
  void BeforeValue() {
    if (have_key_) {
      // Value completing a Key(): no separator, the key already emitted it.
      have_key_ = false;
      if (!stack_.empty()) {
        stack_.back().count++;
      }
      return;
    }
    if (stack_.empty()) {
      return;  // Top-level value.
    }
    Frame& frame = stack_.back();
    if (frame.count > 0) {
      out_ << ',';
    }
    Newline(stack_.size());
    if (frame.is_array) {
      frame.count++;
    }
    // Object members count on the Key()'s value (see above).
  }

  void EndContainer(char close) {
    const bool had_members = !stack_.empty() && stack_.back().count > 0;
    stack_.pop_back();
    if (had_members) {
      Newline(stack_.size());
    }
    out_ << close;
  }

  void Newline(size_t depth) {
    if (indent_ <= 0) {
      return;
    }
    out_ << '\n';
    for (size_t i = 0; i < depth * static_cast<size_t>(indent_); ++i) {
      out_ << ' ';
    }
  }

  std::ostream& out_;
  int indent_;
  bool have_key_ = false;
  std::vector<Frame> stack_;
};

}  // namespace superfe

#endif  // SUPERFE_COMMON_JSON_WRITER_H_
