#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace superfe {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return *std::max_element(xs.begin(), xs.end());
}

namespace {

double CentralMoment(const std::vector<double>& xs, int order) {
  if (xs.empty()) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    sum += std::pow(x - mean, order);
  }
  return sum / static_cast<double>(xs.size());
}

}  // namespace

double Skewness(const std::vector<double>& xs) {
  const double m2 = CentralMoment(xs, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  return CentralMoment(xs, 3) / std::pow(m2, 1.5);
}

double Kurtosis(const std::vector<double>& xs) {
  const double m2 = CentralMoment(xs, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  return CentralMoment(xs, 4) / (m2 * m2);
}

double Covariance(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.empty()) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sum = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sum += (xs[i] - mx) * (ys[i] - my);
  }
  return sum / static_cast<double>(xs.size());
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  const double sx = StdDev(xs);
  const double sy = StdDev(ys);
  if (sx <= 0.0 || sy <= 0.0) {
    return 0.0;
  }
  return Covariance(xs, ys) / (sx * sy);
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double RelativeError(double got, double want, double eps) {
  const double denom = std::max(std::fabs(want), eps);
  return std::fabs(got - want) / denom;
}

double MeanRelativeError(const std::vector<double>& got, const std::vector<double>& want,
                         double eps) {
  assert(got.size() == want.size());
  if (got.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    sum += RelativeError(got[i], want[i], eps);
  }
  return sum / static_cast<double>(got.size());
}

}  // namespace superfe
