#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace superfe {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_sep = [&] {
    out << "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_sep();
  return out.str();
}

void AsciiTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string AsciiTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace superfe
