#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace superfe {
namespace {

// Startup level: SUPERFE_LOG_LEVEL wins so tools and CI can raise verbosity
// without code changes; unknown values warn once and keep the default.
int InitialLevel() {
  const char* env = std::getenv("SUPERFE_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    LogLevel parsed;
    if (ParseLogLevel(env, &parsed)) {
      return static_cast<int>(parsed);
    }
    std::fprintf(stderr,
                 "[W logging.cc] SUPERFE_LOG_LEVEL='%s' is not one of "
                 "debug|info|warn|error|none; keeping 'warn'\n",
                 env);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr || out == nullptr) {
    return false;
  }
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "none" || lower == "off") {
    *out = LogLevel::kNone;
  } else {
    return false;
  }
  return true;
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& message) {
  // Format the whole line first, then write it under a mutex: cluster worker
  // threads log concurrently and their lines must not interleave.
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%s %s:%d] ", LevelName(level), BaseName(file),
                line);
  std::string out;
  out.reserve(std::strlen(prefix) + message.size() + 1);
  out.append(prefix).append(message).push_back('\n');

  static std::mutex emit_mu;
  std::lock_guard<std::mutex> lock(emit_mu);
  std::fwrite(out.data(), 1, out.size(), stderr);
  std::fflush(stderr);
}

}  // namespace log_internal
}  // namespace superfe
