#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace superfe {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& message) {
  // Format the whole line first, then write it under a mutex: cluster worker
  // threads log concurrently and their lines must not interleave.
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%s %s:%d] ", LevelName(level), BaseName(file),
                line);
  std::string out;
  out.reserve(std::strlen(prefix) + message.size() + 1);
  out.append(prefix).append(message).push_back('\n');

  static std::mutex emit_mu;
  std::lock_guard<std::mutex> lock(emit_mu);
  std::fwrite(out.data(), 1, out.size(), stderr);
  std::fflush(stderr);
}

}  // namespace log_internal
}  // namespace superfe
