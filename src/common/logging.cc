#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace superfe {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), BaseName(file), line,
               message.c_str());
}

}  // namespace log_internal
}  // namespace superfe
