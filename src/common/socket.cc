#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace superfe {
namespace {

void SetIoTimeouts(int fd, int io_timeout_ms) {
  timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// poll() with EINTR retry against the original deadline. A negative
// timeout means "wait forever" (retries keep the infinite wait).
int PollRetry(pollfd* pfd, int timeout_ms) {
  if (timeout_ms < 0) {
    for (;;) {
      const int ready = ::poll(pfd, 1, -1);
      if (ready >= 0 || errno != EINTR) {
        return ready;
      }
    }
  }
  const int64_t deadline = NowMs() + timeout_ms;
  int remaining = timeout_ms;
  for (;;) {
    const int ready = ::poll(pfd, 1, remaining);
    if (ready >= 0 || errno != EINTR) {
      return ready;
    }
    const int64_t left = deadline - NowMs();
    if (left <= 0) {
      return 0;  // Deadline consumed by interruptions: report timeout.
    }
    remaining = static_cast<int>(left);
  }
}

}  // namespace

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind 127.0.0.1:" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname: " + err);
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

int TcpListener::AcceptWithTimeout(int timeout_ms, int io_timeout_ms) const {
  if (fd_ < 0) {
    return -1;
  }
  pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = PollRetry(&pfd, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
    return -1;
  }
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      SetIoTimeouts(conn, io_timeout_ms);
      return conn;
    }
    // A connection that was reset while queued (ECONNABORTED) or a signal
    // mid-accept should not cost the caller its poll-confirmed readiness.
    if (errno != EINTR && errno != ECONNABORTED) {
      return -1;
    }
    if (errno == ECONNABORTED) {
      // The aborted connection consumed the readiness; treat as timeout
      // and let the caller's accept loop come around again.
      return -1;
    }
  }
}

int TcpConnect(uint16_t port, int io_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  SetIoTimeouts(fd, io_timeout_ms);
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    // Interrupted connect keeps completing in the background; wait for
    // writability and read the final disposition from SO_ERROR.
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int ready = PollRetry(&pfd, io_timeout_ms > 0 ? io_timeout_ms : -1);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

ssize_t RecvSome(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

bool RecvUntil(int fd, std::string* buf, std::string_view terminator, size_t max_bytes) {
  char chunk[1024];
  while (buf->find(terminator) == std::string::npos) {
    if (buf->size() >= max_bytes) {
      return false;
    }
    const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      return false;  // EOF, timeout, or error before the terminator.
    }
    buf->append(chunk, static_cast<size_t>(n));
  }
  return true;
}

bool RecvAll(int fd, std::string* buf, size_t max_bytes) {
  char chunk[4096];
  while (buf->size() < max_bytes) {
    const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n == 0) {
      return true;  // Orderly EOF.
    }
    if (n < 0) {
      return false;
    }
    buf->append(chunk, static_cast<size_t>(n));
  }
  return false;  // Peer exceeded the byte cap.
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void CloseFd(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

int UdpBind(uint16_t port, int io_timeout_ms, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return -1;
  }
  SetIoTimeouts(fd, io_timeout_ms);
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int UdpConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

ssize_t RecvDatagram(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return 0;  // SO_RCVTIMEO expired with no datagram: idle, not error.
    }
    return -1;
  }
}

std::string HttpGet(uint16_t port, const std::string& path, int io_timeout_ms) {
  const int fd = TcpConnect(port, io_timeout_ms);
  if (fd < 0) {
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\n"
                              "Host: 127.0.0.1\r\n"
                              "Connection: close\r\n"
                              "\r\n";
  std::string response;
  if (SendAll(fd, request)) {
    // The server sets Connection: close, so EOF delimits the response.
    RecvAll(fd, &response, 64 << 20);
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const size_t blank = response.find("\r\n\r\n");
  if (blank == std::string::npos) {
    return "";
  }
  return response.substr(blank + 4);
}

}  // namespace superfe
