// Hash functions used by the switch and NIC simulators.
//
// The Tofino data plane exposes CRC-based hash units; the NFP reuses the
// switch-computed hash index when the optimization is enabled (§6.2). Both
// simulators therefore share these implementations.
#ifndef SUPERFE_COMMON_HASH_H_
#define SUPERFE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace superfe {

// CRC-32 (IEEE 802.3 polynomial, reflected). Matches the polynomial available
// in Tofino hash engines.
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

// MurmurHash3 x86 32-bit finalizer-based hash; used where a second
// independent hash function is needed (e.g. HyperLogLog bucketing).
uint32_t Murmur3(const void* data, size_t length, uint32_t seed = 0);

// 64-bit avalanche mix (splitmix64 finalizer). Good for hashing small
// integer keys.
uint64_t Mix64(uint64_t x);

// Combines two hash values (boost-style).
inline uint32_t HashCombine(uint32_t a, uint32_t b) {
  return a ^ (b + 0x9e3779b9u + (a << 6) + (a >> 2));
}

}  // namespace superfe

#endif  // SUPERFE_COMMON_HASH_H_
