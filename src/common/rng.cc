#include "common/rng.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace superfe {
namespace {

inline uint64_t Rotl64(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed expansion via splitmix64 so that nearby seeds give unrelated streams.
  uint64_t x = seed;
  for (auto& s : s_) {
    s = Mix64(x++);
  }
  // Avoid the all-zero state (cannot happen with Mix64, but keep the invariant explicit).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl64(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl64(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(mu + sigma * Normal()); }

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return xm * std::pow(u, -1.0 / alpha);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n >= 1);
  // Rejection-inversion sampling (Hormann & Derflinger) specialized for s != 1.
  // For s == 1 we nudge the exponent; the distributions are indistinguishable
  // for our purposes.
  if (s == 1.0) {
    s = 1.0000001;
  }
  const double one_minus_s = 1.0 - s;
  auto h_integral = [&](double x) { return std::pow(x, one_minus_s) / one_minus_s; };
  auto h_integral_inv = [&](double x) { return std::pow(x * one_minus_s, 1.0 / one_minus_s); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = h_n + UniformDouble() * (h_x1 - h_n);
    const double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n) {
      k = n;
    }
    const double kd = static_cast<double>(k);
    if (u >= h_integral(kd + 0.5) - std::pow(kd, -s)) {
      return k;
    }
  }
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) {
    return 1;
  }
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return 1 + static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    uint64_t count = 0;
    while (product > limit) {
      product *= UniformDouble();
      ++count;
    }
    return count;
  }
  const double value = Normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0 : static_cast<uint64_t>(value + 0.5);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace superfe
