// CPU affinity for the sharded pipeline (--pin-threads).
//
// The sharded replay driver and the NIC-cluster workers are long-lived
// threads with hot per-shard/per-member state; letting the scheduler migrate
// them across cores churns L1/L2 and (on multi-socket hosts) bounces state
// across NUMA nodes. PinCurrentThreadToCpu pins the calling thread to one
// logical CPU so a shard's replay thread and its preferred NIC members stay
// co-resident. Pinning is best-effort: on hosts without an affinity API (or
// when the syscall fails) it logs one warning and becomes a no-op, so the
// knob is always safe to pass — including single-CPU CI runners.
#ifndef SUPERFE_COMMON_AFFINITY_H_
#define SUPERFE_COMMON_AFFINITY_H_

#include <cstdint>

namespace superfe {

// Logical CPUs available to this process (>= 1; 1 on failure).
uint32_t CpuCount();

// Pins the calling thread to logical CPU `cpu % CpuCount()`. Returns true
// when the pin took effect, false on unsupported hosts or syscall failure
// (warned once per process, then silent).
bool PinCurrentThreadToCpu(uint32_t cpu);

}  // namespace superfe

#endif  // SUPERFE_COMMON_AFFINITY_H_
