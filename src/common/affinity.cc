#include "common/affinity.h"

#include <atomic>
#include <thread>

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace superfe {
namespace {

std::atomic<bool> g_pin_warned{false};

void WarnOnce(const char* why) {
  if (!g_pin_warned.exchange(true)) {
    SFE_WLOG() << "thread pinning unavailable (" << why << "); --pin-threads is a no-op";
  }
}

}  // namespace

uint32_t CpuCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

#if defined(__linux__)

bool PinCurrentThreadToCpu(uint32_t cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CpuCount(), &set);
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    WarnOnce("pthread_setaffinity_np failed");
    return false;
  }
  return true;
}

#else  // !__linux__

bool PinCurrentThreadToCpu(uint32_t /*cpu*/) {
  WarnOnce("no affinity API on this platform");
  return false;
}

#endif

}  // namespace superfe
