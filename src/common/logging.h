// Minimal leveled logger for SuperFE.
//
// The library is a simulation framework, so logging defaults to kWarn to keep
// benchmark output clean; tests and examples may raise the level.
#ifndef SUPERFE_COMMON_LOGGING_H_
#define SUPERFE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace superfe {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Returns the process-wide minimum level that is emitted. The initial level
// comes from the SUPERFE_LOG_LEVEL environment variable
// (debug|info|warn|error|none, case-insensitive), defaulting to kWarn.
LogLevel GetLogLevel();

// Parses a level name (debug|info|warn|warning|error|none|off,
// case-insensitive). Returns false and leaves `out` untouched on an
// unrecognized name.
bool ParseLogLevel(const char* name, LogLevel* out);

// Sets the process-wide minimum level. Safe to call from any thread (the
// level is atomic); the parallel NIC-cluster pipeline logs from worker
// threads concurrently.
void SetLogLevel(LogLevel level);

namespace log_internal {

// Emits one formatted log line to stderr. `file` is the bare source file
// name. Thread-safe: the line is formatted into a single buffer and written
// under a process-wide mutex, so concurrent lines never interleave.
void Emit(LogLevel level, const char* file, int line, const std::string& message);

// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file),
                                                           line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace superfe

#define SUPERFE_LOG(level)                                                              \
  if (static_cast<int>(level) < static_cast<int>(::superfe::GetLogLevel())) {           \
  } else                                                                                \
    ::superfe::log_internal::LogMessage(level, __FILE__, __LINE__).stream()

#define SFE_DLOG() SUPERFE_LOG(::superfe::LogLevel::kDebug)
#define SFE_ILOG() SUPERFE_LOG(::superfe::LogLevel::kInfo)
#define SFE_WLOG() SUPERFE_LOG(::superfe::LogLevel::kWarn)
#define SFE_ELOG() SUPERFE_LOG(::superfe::LogLevel::kError)

#endif  // SUPERFE_COMMON_LOGGING_H_
