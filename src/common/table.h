// ASCII table printer used by the benchmark harnesses to emit paper-style
// tables and figure series.
#ifndef SUPERFE_COMMON_TABLE_H_
#define SUPERFE_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace superfe {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  // Adds one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Formats the table with aligned columns.
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

  // Convenience numeric formatting.
  static std::string Num(double v, int precision = 2);
  static std::string Percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace superfe

#endif  // SUPERFE_COMMON_TABLE_H_
