#include "common/hash.h"

#include <array>

namespace superfe {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

inline uint32_t Rotl32(uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }

}  // namespace

uint32_t Crc32(const void* data, size_t length, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < length; ++i) {
    crc = CrcTable()[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Murmur3(const void* data, size_t length, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const uint32_t c1 = 0xcc9e2d51u;
  const uint32_t c2 = 0x1b873593u;
  uint32_t h = seed;
  const size_t nblocks = length / 4;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k = static_cast<uint32_t>(bytes[i * 4]) |
                 (static_cast<uint32_t>(bytes[i * 4 + 1]) << 8) |
                 (static_cast<uint32_t>(bytes[i * 4 + 2]) << 16) |
                 (static_cast<uint32_t>(bytes[i * 4 + 3]) << 24);
    k *= c1;
    k = Rotl32(k, 15);
    k *= c2;
    h ^= k;
    h = Rotl32(h, 13);
    h = h * 5 + 0xe6546b64u;
  }

  uint32_t k = 0;
  const uint8_t* tail = bytes + nblocks * 4;
  switch (length & 3u) {
    case 3:
      k ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k ^= tail[0];
      k *= c1;
      k = Rotl32(k, 15);
      k *= c2;
      h ^= k;
      break;
    default:
      break;
  }

  h ^= static_cast<uint32_t>(length);
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace superfe
