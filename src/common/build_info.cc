#include "common/build_info.h"

// The CMake configure step defines these for this one translation unit;
// the fallbacks keep non-CMake builds (e.g. a quick compile_commands
// experiment) linking.
#ifndef SUPERFE_VERSION
#define SUPERFE_VERSION "0.0.0"
#endif
#ifndef SUPERFE_GIT_SHA
#define SUPERFE_GIT_SHA "unknown"
#endif

namespace superfe {

const char* BuildVersion() { return SUPERFE_VERSION; }

const char* BuildGitSha() { return SUPERFE_GIT_SHA; }

const char* BuildCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace superfe
