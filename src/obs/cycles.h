// Raw cycle-counter reads for per-stage worker profiling (ReadCycles) and
// the conversion helper that turns accumulated deltas into shares.
//
// The counter is rdtsc on x86-64 and cntvct_el0 on aarch64 — both are
// constant-rate, monotone-per-core sources cheap enough (~10-30 cycles) to
// bracket individual pipeline stages. Elsewhere we fall back to
// steady_clock nanoseconds, which keeps the metrics meaningful (they are
// shares of worker time, so the unit cancels) at a higher read cost.
//
// Profiling reads are opt-in: call sites hold a nullable CounterCell and
// skip ReadCycles() entirely when it is null, so disabled pipelines pay one
// predictable branch, and SUPERFE_OBS_DISABLED builds pay nothing.
#ifndef SUPERFE_OBS_CYCLES_H_
#define SUPERFE_OBS_CYCLES_H_

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#elif !defined(__aarch64__)
#include <chrono>
#endif

namespace superfe {
namespace obs {

inline uint64_t ReadCycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_CYCLES_H_
