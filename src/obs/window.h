// RollingWindow: sliding-window rate metrics over the live registry.
//
// The superfe_* counters are monotonic totals — the right substrate for
// end-of-run exactness, but useless for "what is the pipeline doing right
// now". RollingWindow keeps a ring of the last N epoch snapshots, one per
// SnapshotSampler capture (Tick() runs on the sampler thread via the
// runtime's pre-sample hook), and derives windowed rates from the delta
// between the newest and oldest epoch in the ring:
//
//   superfe_rate_pps{window="..."}         replayed packets per wall second
//   superfe_rate_drop_ratio{window="..."}  dropped cells (overflow + shed +
//                                          failover loss) / cells offered
//   superfe_rate_e2e_p50_ns{window="..."}  windowed e2e latency quantiles,
//   superfe_rate_e2e_p99_ns{window="..."}  from LatencyHistogram bucket
//                                          deltas (not lifetime totals)
//
// The gauges live in the same MetricsRegistry as everything else, so they
// show up on /metrics scrapes, in the file exports, and in the sampler's
// own time series. Staleness is bounded by one sampler interval; the
// window spans `interval_ms * epochs` of wall time once the ring is full.
// After the final quiescence edge the sampler stops ticking, so the gauges
// freeze at their last windowed value — which keeps a post-run scrape
// byte-identical to the written prom file (the exactness contract in
// docs/OBSERVABILITY.md).
//
// Each Tick() also publishes the epoch's cumulative fault/watchdog totals
// (LatestTotals()) for the HealthMachine, which diffs them itself.
#ifndef SUPERFE_OBS_WINDOW_H_
#define SUPERFE_OBS_WINDOW_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "obs/latency.h"
#include "obs/metrics.h"

namespace superfe {
namespace obs {

class RollingWindow {
 public:
  // Cumulative pipeline totals summed across labels at one epoch, plus the
  // e2e latency histogram state. All monotonic.
  struct Totals {
    uint64_t t_ns = 0;  // Steady-clock capture time.
    uint64_t packets = 0;        // superfe_replay_packets_total
    uint64_t cells_offered = 0;  // superfe_mgpv_cells_out_total
    // Overflow drops + fault sheds + failover losses (the numerator of the
    // drop ratio; each is also a fault_event).
    uint64_t cells_dropped = 0;
    // Fault activity for health: sheds, losses, failover fences, injected
    // pool exhaustions, saturated pushes.
    uint64_t fault_events = 0;
    // Watchdog-detected stalls (cluster + injector views).
    uint64_t watchdog_stalls = 0;
    LatencyHistogram::Snapshot e2e;
  };

  struct Rates {
    bool valid = false;  // At least two epochs in the ring.
    double span_s = 0.0;  // Wall-time distance newest - oldest epoch.
    double pps = 0.0;
    double drop_ratio = 0.0;
    double e2e_p50_ns = 0.0;
    double e2e_p99_ns = 0.0;
  };

  // Registers the rate gauges (labelled {window="<interval*epochs>"}) in
  // `registry` up front so Tick() never takes the registry lock twice.
  // `epochs` is clamped to >= 2 (a window needs two edges).
  RollingWindow(MetricsRegistry* registry, uint32_t epochs, uint64_t interval_ms);

  RollingWindow(const RollingWindow&) = delete;
  RollingWindow& operator=(const RollingWindow&) = delete;

  // Captures one epoch at steady-clock time `t_ns` and refreshes the rate
  // gauges. Sampler thread only (single writer); readers use Current().
  void Tick(uint64_t t_ns);

  // Thread-safe copies for /status and the HealthMachine feed.
  Rates Current() const;
  Totals LatestTotals() const;

  uint32_t epochs() const { return epochs_; }
  const std::string& window_label() const { return label_; }

  // "10s" / "640ms" style label for a window spanning `span_ms`.
  static std::string FormatWindowLabel(uint64_t span_ms);

 private:
  Totals Capture(uint64_t t_ns) const;

  MetricsRegistry* registry_;
  const uint32_t epochs_;
  const std::string label_;

  // Pre-registered gauge handles; plain atomic stores on the tick path.
  Gauge* pps_gauge_ = nullptr;
  Gauge* drop_gauge_ = nullptr;
  Gauge* p50_gauge_ = nullptr;
  Gauge* p99_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::deque<Totals> ring_;  // Oldest at front; size <= epochs_.
  Rates rates_;
};

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_WINDOW_H_
