// Pipeline latency instruments: a log-bucketed LatencyHistogram with
// quantile estimation, and the TraceClock that carries the replay's
// trace-time "now" across threads so every stage is measured in one clock
// domain (docs/OBSERVABILITY.md, "Latency observability").
//
// Clock domain: all latencies are *trace-time nanoseconds* — the replayed
// packet timestamps, post-speedup — not host wall time. The producer thread
// (replay + switch + MGPV) publishes the newest packet timestamp into the
// TraceClock; NIC-cluster workers read it to compute queue wait, service
// time, and end-to-end delay for the reports they process. Measuring in
// trace time makes the numbers deployment-meaningful (they answer "how
// stale is a feature vector relative to the traffic?") and independent of
// host scheduling jitter; host wall-clock spans are already covered by the
// TraceRecorder.
#ifndef SUPERFE_OBS_LATENCY_H_
#define SUPERFE_OBS_LATENCY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace superfe {
namespace obs {

// Trace-time "now", published by producer threads (one release store per
// replayed packet) and read by any number of consumers. Values are
// monotone: each lane keeps the maximum ever seen, so a worker's
// successive reads never go backwards (atomic coherence) and any read that
// happens-after a queue push observes at least the producer's clock at push
// time (the queue's release/acquire edge orders the store).
//
// Lanes follow the TraceRecorder model: each lane is single-writer (one
// replay shard advances exactly one lane, cacheline-padded so shards never
// contend), while Now() is the maximum over all lanes — the same global
// "newest packet replayed anywhere" a single serial replay thread would
// publish. The one-lane default keeps the original single-writer clock.
class TraceClock {
 public:
  static constexpr uint32_t kMaxLanes = 64;

  explicit TraceClock(uint32_t lanes = 1)
      : lane_count_(lanes < 1 ? 1 : (lanes > kMaxLanes ? kMaxLanes : lanes)) {}

  void Advance(uint64_t now_ns) { AdvanceLane(0, now_ns); }

  // Single writer per lane; `lane` must be < lanes().
  void AdvanceLane(uint32_t lane, uint64_t now_ns) {
    std::atomic<uint64_t>& slot = lanes_[lane].now_ns;
    if (now_ns > slot.load(std::memory_order_relaxed)) {
      slot.store(now_ns, std::memory_order_release);
    }
  }

  uint64_t Now() const {
    uint64_t now = 0;
    for (uint32_t i = 0; i < lane_count_; ++i) {
      const uint64_t lane_now = lanes_[i].now_ns.load(std::memory_order_acquire);
      if (lane_now > now) {
        now = lane_now;
      }
    }
    return now;
  }

  uint32_t lanes() const { return lane_count_; }

 private:
  struct alignas(64) Lane {
    std::atomic<uint64_t> now_ns{0};
  };

  const uint32_t lane_count_;
  std::array<Lane, kMaxLanes> lanes_{};
};

// Per-stage latency distribution summary (quantiles estimated from the
// log-bucket histogram by linear interpolation inside the matched bucket).
struct LatencyStageSummary {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;

  double MeanNs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

// Log-bucketed latency histogram: 41 finite buckets spanning 100 ns .. 10 s
// (5 buckets per decade, bound ratio 10^0.2 ~= 1.585) plus +Inf, with exact
// atomic count and nanosecond sum. Observation is wait-free: one binary
// search over the static bounds table plus three relaxed fetch_adds.
// Concurrent observers are safe; reads are consistent at quiescence.
//
// Quantiles are estimated Prometheus-style (cumulative bucket counts +
// linear interpolation within the matched bucket), so an estimate is exact
// to within one bucket's relative width — a factor of 10^0.2 worst case.
class LatencyHistogram {
 public:
  // Finite bucket count; bucket i covers (BoundNs(i-1), BoundNs(i)], bucket
  // kNumBounds is the +Inf overflow.
  static constexpr size_t kNumBounds = 41;

  // Upper bound of finite bucket i, in ns: 10^(2 + i/5), i.e. 100 ns for
  // i=0 up to 10 s for i=40.
  static uint64_t BoundNs(size_t i);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Observe(uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  // Bulk-merge a worker-local delta block: one relaxed add per non-empty
  // bucket plus count and sum. Safe against concurrent Observe()/AddBulk()
  // callers; used by the WorkerObsBlock cold-tier flush.
  void AddBulk(const std::array<uint64_t, kNumBounds + 1>& bucket_counts,
               uint64_t count, uint64_t sum_ns) {
    for (size_t i = 0; i <= kNumBounds; ++i) {
      if (bucket_counts[i] != 0) {
        buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_ns_.fetch_add(sum_ns, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }
  // Non-cumulative count of bucket i (i == kNumBounds is the +Inf bucket).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Consistent-at-quiescence copy supporting quantile math and cross-child
  // merging (e.g. per-cause residency -> overall residency). All
  // LatencyHistograms share one bucket layout, so merging is exact.
  struct Snapshot {
    std::array<uint64_t, kNumBounds + 1> buckets{};
    uint64_t count = 0;
    uint64_t sum_ns = 0;

    void Merge(const Snapshot& other);

    // Interpolated quantile in ns, q in [0, 1]. Samples in the +Inf bucket
    // clamp to the highest finite bound (10 s); an empty snapshot yields 0.
    double QuantileNs(double q) const;

    LatencyStageSummary Summarize() const;
  };
  Snapshot TakeSnapshot() const;

  static size_t BucketIndex(uint64_t ns);

 private:
  std::array<std::atomic<uint64_t>, kNumBounds + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_LATENCY_H_
