#include "obs/trace.h"

#include <cstdio>

#include "common/json_writer.h"

namespace superfe {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity_per_lane, size_t lanes)
    : capacity_(capacity_per_lane > 0 ? capacity_per_lane : 1),
      epoch_(std::chrono::steady_clock::now()) {
  lanes_.reserve(lanes > 0 ? lanes : 1);
  for (size_t i = 0; i < (lanes > 0 ? lanes : 1); ++i) {
    lanes_.push_back(std::make_unique<Lane>(capacity_));
    lanes_.back()->name = "lane-" + std::to_string(i);
  }
}

void TraceRecorder::SetLaneName(size_t lane, const std::string& name) {
  if (lane < lanes_.size()) {
    lanes_[lane]->name = name;
  }
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void TraceRecorder::Emit(size_t lane, const Event& e) {
  if (lane >= lanes_.size()) {
    lane = lanes_.size() - 1;  // Misconfigured wiring lands in the last lane.
  }
  Lane& l = *lanes_[lane];
  // Single writer per lane: the slot write cannot race another writer, and
  // the release store publishes it to a (quiescent-time) reader.
  const uint64_t i = l.count.load(std::memory_order_relaxed);
  l.ring[i % capacity_] = e;
  l.count.store(i + 1, std::memory_order_release);
}

void TraceRecorder::Instant(size_t lane, const char* category, const char* name,
                            const char* arg_name, uint64_t arg_value,
                            const char* str_arg_name, const char* str_arg_value) {
  Event e;
  e.phase = Event::Phase::kInstant;
  e.ts_ns = NowNs();
  e.category = category;
  e.name = name;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.str_arg_name = str_arg_name;
  e.str_arg_value = str_arg_value;
  Emit(lane, e);
}

uint64_t TraceRecorder::events_recorded() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->count.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t TraceRecorder::events_dropped() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    const uint64_t count = lane->count.load(std::memory_order_acquire);
    if (count > capacity_) {
      total += count - capacity_;
    }
  }
  return total;
}

void TraceRecorder::WriteChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  const auto comma = [&] {
    if (!first) {
      out << ",";
    }
    out << "\n";
    first = false;
  };
  for (size_t li = 0; li < lanes_.size(); ++li) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << li
        << ",\"args\":{\"name\":\"" << JsonWriter::Escape(lanes_[li]->name) << "\"}}";
  }
  for (size_t li = 0; li < lanes_.size(); ++li) {
    const Lane& lane = *lanes_[li];
    const uint64_t count = lane.count.load(std::memory_order_acquire);
    const uint64_t kept = count < capacity_ ? count : capacity_;
    for (uint64_t k = 0; k < kept; ++k) {
      const Event& e = lane.ring[(count - kept + k) % capacity_];
      comma();
      // Chrome trace timestamps are microseconds.
      std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(e.ts_ns) / 1000.0);
      out << "{\"name\":\"" << JsonWriter::Escape(e.name) << "\",\"cat\":\""
          << JsonWriter::Escape(e.category) << "\",\"ph\":\""
          << (e.phase == Event::Phase::kSpan ? "X" : "i") << "\",\"ts\":" << buf;
      if (e.phase == Event::Phase::kSpan) {
        std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(e.dur_ns) / 1000.0);
        out << ",\"dur\":" << buf;
      } else {
        out << ",\"s\":\"t\"";
      }
      out << ",\"pid\":1,\"tid\":" << li;
      if (e.arg_name != nullptr || e.str_arg_name != nullptr) {
        out << ",\"args\":{";
        if (e.arg_name != nullptr) {
          out << "\"" << JsonWriter::Escape(e.arg_name) << "\":" << e.arg_value;
        }
        if (e.str_arg_name != nullptr) {
          if (e.arg_name != nullptr) {
            out << ",";
          }
          out << "\"" << JsonWriter::Escape(e.str_arg_name) << "\":\""
              << JsonWriter::Escape(e.str_arg_value != nullptr ? e.str_arg_value : "")
              << "\"";
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace obs
}  // namespace superfe
