// WorkerObsBlock: the hot tier of the two-tier observability design
// (docs/OBSERVABILITY.md, "Hot-path design").
//
// Each replay shard, NIC worker, and serial sink owns one block of plain
// (non-atomic) delta cells bound to the shared registry handles it
// instruments. Per-packet sites touch only the owning thread's cells — no
// shared cachelines, no atomics — and the block folds its deltas into the
// shared MetricsRegistry / LatencyHistogram instruments exactly once per
// batch (NotePacket cadence) and at every flush barrier, failover fence,
// and shutdown. The registry is therefore the cold tier, touched
// O(batches) instead of O(packets), while totals at quiescence stay exact:
// every flush point precedes the corresponding Snapshot/Collect read.
//
// Threading: a block is single-owner. Bind*() happens at wiring time on
// the owning thread; the cells it returns are stable for the block's
// lifetime (deque storage). Flush() folds with relaxed atomic adds, so
// multiple blocks bound to the same shared instrument may flush
// concurrently.
//
// Disable paths: Init() with a null registry leaves the block disabled and
// every Bind*() returns nullptr, so the null-safe cell helpers below make
// the whole tier free except one branch per site. A null shared handle
// also binds to nullptr — no cell is allocated for an instrument that does
// not exist. SUPERFE_OBS_DISABLED compiles the helpers away entirely.
#ifndef SUPERFE_OBS_WORKER_BLOCK_H_
#define SUPERFE_OBS_WORKER_BLOCK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/latency.h"
#include "obs/metrics.h"

namespace superfe {
namespace obs {

class WorkerObsBlock {
 public:
  struct CounterCell {
    uint64_t delta = 0;
    Counter* shared = nullptr;
  };
  struct GaugeCell {
    double value = 0.0;
    bool dirty = false;
    Gauge* shared = nullptr;
  };
  struct HistogramCell {
    Histogram* shared = nullptr;
    std::vector<uint64_t> buckets;  // bounds+1, matching shared's layout.
    uint64_t count = 0;
    double sum = 0.0;

    void Observe(double value) {
      const std::vector<double>& bounds = shared->bounds();
      size_t i = 0;
      while (i < bounds.size() && value > bounds[i]) {
        ++i;
      }
      ++buckets[i];
      ++count;
      sum += value;
    }
  };
  struct LatencyCell {
    LatencyHistogram* shared = nullptr;
    std::array<uint64_t, LatencyHistogram::kNumBounds + 1> buckets{};
    uint64_t count = 0;
    uint64_t sum_ns = 0;

    void Observe(uint64_t ns) {
      ++buckets[LatencyHistogram::BucketIndex(ns)];
      ++count;
      sum_ns += ns;
    }
  };

  WorkerObsBlock() = default;
  WorkerObsBlock(const WorkerObsBlock&) = delete;
  WorkerObsBlock& operator=(const WorkerObsBlock&) = delete;
  // Any deltas still buffered at destruction fold into the shared tier, so
  // a stack-local block (e.g. in a worker loop) can never drop counts.
  ~WorkerObsBlock() { Flush(); }

  // Enables the block against `registry` (null leaves it disabled) and
  // registers the batching tier's own meta-metrics, labeled {block=name}.
  // `flush_every` is the NotePacket auto-flush cadence: 0 means manual —
  // the owner flushes only at its batch/barrier points, while NotePacket
  // still tracks flush lag.
  void Init(MetricsRegistry* registry, const std::string& block_name,
            uint32_t flush_every);

  bool enabled() const { return enabled_; }

  // Stable cell for `shared`, or nullptr when the block is disabled or
  // `shared` is null (no allocation on disable paths).
  CounterCell* BindCounter(Counter* shared);
  GaugeCell* BindGauge(Gauge* shared);
  HistogramCell* BindHistogram(Histogram* shared);
  LatencyCell* BindLatency(LatencyHistogram* shared);

  // Per-packet tick: counts flush lag and auto-flushes every `flush_every`
  // packets.
  void NotePacket() { NotePackets(1); }
  void NotePackets(uint64_t n) {
    if (!enabled_) {
      return;
    }
    packets_since_flush_ += n;
    if (flush_every_ > 0 && packets_since_flush_ >= flush_every_) {
      Flush();
    }
  }

  // Folds every dirty cell into its shared instrument and resets the
  // deltas. Called from NotePacket and from the owner's batch boundaries,
  // flush barriers, failover fences, and shutdown.
  void Flush();

 private:
  bool enabled_ = false;
  uint32_t flush_every_ = 0;
  uint64_t packets_since_flush_ = 0;
  uint64_t max_lag_packets_ = 0;
  Counter* flushes_ = nullptr;   // superfe_obs_flushes_total
  Gauge* max_lag_ = nullptr;     // superfe_obs_max_flush_lag_packets{block=...}
  std::deque<CounterCell> counters_;
  std::deque<GaugeCell> gauges_;
  std::deque<HistogramCell> histograms_;
  std::deque<LatencyCell> latencies_;
};

// Null-safe cell helpers mirroring the registry-handle helpers in
// metrics.h: hot sites hold nullable cell pointers and call these
// unconditionally. SUPERFE_OBS_DISABLED compiles them away.
#ifndef SUPERFE_OBS_DISABLED
inline void Inc(WorkerObsBlock::CounterCell* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->delta += n;
  }
}
inline void Set(WorkerObsBlock::GaugeCell* g, double value) {
  if (g != nullptr) {
    g->value = value;
    g->dirty = true;
  }
}
inline void Observe(WorkerObsBlock::HistogramCell* h, double value) {
  if (h != nullptr) {
    h->Observe(value);
  }
}
inline void Observe(WorkerObsBlock::LatencyCell* h, uint64_t ns) {
  if (h != nullptr) {
    h->Observe(ns);
  }
}
#else
inline void Inc(WorkerObsBlock::CounterCell*, uint64_t = 1) {}
inline void Set(WorkerObsBlock::GaugeCell*, double) {}
inline void Observe(WorkerObsBlock::HistogramCell*, double) {}
inline void Observe(WorkerObsBlock::LatencyCell*, uint64_t) {}
#endif

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_WORKER_BLOCK_H_
