#include "obs/window.h"

#include <algorithm>
#include <string>

namespace superfe {
namespace obs {
namespace {

// Bucket-wise delta newest - oldest. Valid because every per-bucket series
// is monotonic (histogram cells only ever Add).
LatencyHistogram::Snapshot SnapshotDelta(const LatencyHistogram::Snapshot& newer,
                                         const LatencyHistogram::Snapshot& older) {
  LatencyHistogram::Snapshot delta;
  for (size_t i = 0; i < delta.buckets.size(); ++i) {
    delta.buckets[i] = newer.buckets[i] - older.buckets[i];
  }
  delta.count = newer.count - older.count;
  delta.sum_ns = newer.sum_ns - older.sum_ns;
  return delta;
}

}  // namespace

std::string RollingWindow::FormatWindowLabel(uint64_t span_ms) {
  if (span_ms >= 1000 && span_ms % 1000 == 0) {
    return std::to_string(span_ms / 1000) + "s";
  }
  return std::to_string(span_ms) + "ms";
}

RollingWindow::RollingWindow(MetricsRegistry* registry, uint32_t epochs,
                             uint64_t interval_ms)
    : registry_(registry),
      epochs_(std::max<uint32_t>(epochs, 2)),
      label_(FormatWindowLabel(interval_ms * std::max<uint32_t>(epochs, 2))) {
  if (registry_ == nullptr) {
    return;
  }
  const LabelSet labels = {{"window", label_}};
  pps_gauge_ = registry_->GetGauge(
      "superfe_rate_pps", labels,
      "Replayed packets per second over the rolling window");
  drop_gauge_ = registry_->GetGauge(
      "superfe_rate_drop_ratio", labels,
      "Dropped cells (overflow + shed + failover loss) / offered cells over the "
      "rolling window");
  p50_gauge_ = registry_->GetGauge(
      "superfe_rate_e2e_p50_ns", labels,
      "Windowed p50 end-to-end latency (trace-time ns), from histogram bucket "
      "deltas");
  p99_gauge_ = registry_->GetGauge(
      "superfe_rate_e2e_p99_ns", labels,
      "Windowed p99 end-to-end latency (trace-time ns), from histogram bucket "
      "deltas");
}

RollingWindow::Totals RollingWindow::Capture(uint64_t t_ns) const {
  Totals t;
  t.t_ns = t_ns;
  if (registry_ == nullptr) {
    return t;
  }
  for (const MetricsRegistry::MetricValue& m : registry_->Collect()) {
    if (m.type == MetricType::kCounter) {
      if (m.name == "superfe_replay_packets_total") {
        t.packets += m.uvalue;
      } else if (m.name == "superfe_mgpv_cells_out_total") {
        t.cells_offered += m.uvalue;
      } else if (m.name == "superfe_cluster_cells_dropped_total") {
        t.cells_dropped += m.uvalue;
      } else if (m.name == "superfe_fault_cells_shed_total" ||
                 m.name == "superfe_fault_cells_lost_failover_total") {
        t.cells_dropped += m.uvalue;
        t.fault_events += m.uvalue;
      } else if (m.name == "superfe_fault_pool_exhaustions_total" ||
                 m.name == "superfe_fault_saturated_pushes_total" ||
                 m.name == "superfe_fault_failover_fences_total") {
        t.fault_events += m.uvalue;
      } else if (m.name == "superfe_fault_watchdog_stalls_total" ||
                 m.name == "superfe_cluster_watchdog_stalls_total") {
        t.watchdog_stalls += m.uvalue;
      }
    } else if (m.type == MetricType::kLatencyHistogram &&
               m.name == "superfe_latency_e2e_ns") {
      t.e2e.Merge(m.latency->TakeSnapshot());
    }
  }
  return t;
}

void RollingWindow::Tick(uint64_t t_ns) {
  const Totals now = Capture(t_ns);
  Rates rates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(now);
    while (ring_.size() > epochs_) {
      ring_.pop_front();
    }
    const Totals& oldest = ring_.front();
    if (ring_.size() >= 2 && now.t_ns > oldest.t_ns) {
      rates.valid = true;
      rates.span_s = static_cast<double>(now.t_ns - oldest.t_ns) * 1e-9;
      rates.pps = static_cast<double>(now.packets - oldest.packets) / rates.span_s;
      const uint64_t offered = now.cells_offered - oldest.cells_offered;
      const uint64_t dropped = now.cells_dropped - oldest.cells_dropped;
      rates.drop_ratio =
          offered > 0 ? static_cast<double>(dropped) / static_cast<double>(offered)
                      : 0.0;
      const LatencyHistogram::Snapshot delta = SnapshotDelta(now.e2e, oldest.e2e);
      rates.e2e_p50_ns = delta.QuantileNs(0.50);
      rates.e2e_p99_ns = delta.QuantileNs(0.99);
    }
    rates_ = rates;
  }
  if (rates.valid) {
    obs::Set(pps_gauge_, rates.pps);
    obs::Set(drop_gauge_, rates.drop_ratio);
    obs::Set(p50_gauge_, rates.e2e_p50_ns);
    obs::Set(p99_gauge_, rates.e2e_p99_ns);
  }
}

RollingWindow::Rates RollingWindow::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rates_;
}

RollingWindow::Totals RollingWindow::LatestTotals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? Totals{} : ring_.back();
}

}  // namespace obs
}  // namespace superfe
