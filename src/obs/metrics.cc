#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace superfe {
namespace obs {
namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
    case MetricType::kLatencyHistogram:
      // Latency histograms are ordinary Prometheus histograms on the wire;
      // the distinct MetricType only drives registry-internal dispatch.
      return "histogram";
  }
  return "?";
}

// Prometheus sample value: integral doubles print without an exponent;
// non-finite values use the exposition-format spellings (+Inf/-Inf/NaN),
// not printf's "inf"/"nan".
std::string FormatNumber(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  if (value == std::rint(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", value);
  }
  return buf;
}

// HELP text escaping per the text exposition format: backslash and newline
// (quotes are only escaped in label values, which SerializeLabels handles).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

LabelSet SortedLabels(const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

size_t Counter::ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

std::string MetricsRegistry::SerializeLabels(const LabelSet& labels) {
  const LabelSet sorted = SortedLabels(labels);
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += "=\"";
    // Prometheus label-value escaping: backslash, quote, newline.
    for (char c : value) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  return out;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name, MetricType type,
                                                    const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else if (it->second.type != type) {
    SFE_WLOG() << "metric '" << name << "' already registered as "
               << TypeName(it->second.type) << ", requested " << TypeName(type);
    return nullptr;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const LabelSet& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, MetricType::kCounter, help);
  if (family == nullptr) {
    return nullptr;
  }
  auto [it, inserted] = family->counters.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.first = SortedLabels(labels);
    it->second.second.reset(new Counter());
  }
  return it->second.second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const LabelSet& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, MetricType::kGauge, help);
  if (family == nullptr) {
    return nullptr;
  }
  auto [it, inserted] = family->gauges.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.first = SortedLabels(labels);
    it->second.second.reset(new Gauge());
  }
  return it->second.second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const LabelSet& labels, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, MetricType::kHistogram, help);
  if (family == nullptr) {
    return nullptr;
  }
  if (family->histograms.empty()) {
    family->bounds = bounds;
  }
  auto [it, inserted] = family->histograms.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.first = SortedLabels(labels);
    it->second.second.reset(new Histogram(family->bounds));
  }
  return it->second.second.get();
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(const std::string& name,
                                                       const LabelSet& labels,
                                                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, MetricType::kLatencyHistogram, help);
  if (family == nullptr) {
    return nullptr;
  }
  auto [it, inserted] = family->latency.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.first = SortedLabels(labels);
    it->second.second.reset(new LatencyHistogram());
  }
  return it->second.second.get();
}

std::vector<MetricsRegistry::MetricValue> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, child] : family.counters) {
      MetricValue v;
      v.name = name;
      v.type = MetricType::kCounter;
      v.labels = child.first;
      v.uvalue = child.second->Value();
      v.value = static_cast<double>(v.uvalue);
      out.push_back(std::move(v));
    }
    for (const auto& [key, child] : family.gauges) {
      MetricValue v;
      v.name = name;
      v.type = MetricType::kGauge;
      v.labels = child.first;
      v.value = child.second->Value();
      out.push_back(std::move(v));
    }
    for (const auto& [key, child] : family.histograms) {
      MetricValue v;
      v.name = name;
      v.type = MetricType::kHistogram;
      v.labels = child.first;
      v.uvalue = child.second->Count();
      v.value = child.second->Sum();
      v.histogram = child.second.get();
      out.push_back(std::move(v));
    }
    for (const auto& [key, child] : family.latency) {
      MetricValue v;
      v.name = name;
      v.type = MetricType::kLatencyHistogram;
      v.labels = child.first;
      v.uvalue = child.second->Count();
      v.value = static_cast<double>(child.second->SumNs());
      v.latency = child.second.get();
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::optional<double> MetricsRegistry::Value(const std::string& name,
                                             const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto family_it = families_.find(name);
  if (family_it == families_.end()) {
    return std::nullopt;
  }
  const std::string key = SerializeLabels(labels);
  const Family& family = family_it->second;
  if (const auto it = family.counters.find(key); it != family.counters.end()) {
    return static_cast<double>(it->second.second->Value());
  }
  if (const auto it = family.gauges.find(key); it != family.gauges.end()) {
    return it->second.second->Value();
  }
  return std::nullopt;
}

void MetricsRegistry::WriteProm(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << EscapeHelp(family.help) << "\n";
    }
    out << "# TYPE " << name << " " << TypeName(family.type) << "\n";
    for (const auto& [key, child] : family.counters) {
      out << name;
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << child.second->Value() << "\n";
    }
    for (const auto& [key, child] : family.gauges) {
      out << name;
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << FormatNumber(child.second->Value()) << "\n";
    }
    for (const auto& [key, child] : family.histograms) {
      const Histogram& h = *child.second;
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= h.bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        const std::string le =
            i < h.bounds().size() ? FormatNumber(h.bounds()[i]) : std::string("+Inf");
        out << name << "_bucket{" << key << (key.empty() ? "" : ",") << "le=\"" << le
            << "\"} " << cumulative << "\n";
      }
      out << name << "_sum";
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << FormatNumber(h.Sum()) << "\n";
      out << name << "_count";
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << h.Count() << "\n";
    }
    for (const auto& [key, child] : family.latency) {
      const LatencyHistogram& h = *child.second;
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= LatencyHistogram::kNumBounds; ++i) {
        cumulative += h.BucketCount(i);
        const std::string le =
            i < LatencyHistogram::kNumBounds
                ? FormatNumber(static_cast<double>(LatencyHistogram::BoundNs(i)))
                : std::string("+Inf");
        out << name << "_bucket{" << key << (key.empty() ? "" : ",") << "le=\"" << le
            << "\"} " << cumulative << "\n";
      }
      out << name << "_sum";
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << h.SumNs() << "\n";
      out << name << "_count";
      if (!key.empty()) {
        out << "{" << key << "}";
      }
      out << " " << h.Count() << "\n";
    }
  }
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  const std::vector<MetricValue> metrics = Collect();
  writer.BeginArray();
  for (const MetricValue& m : metrics) {
    writer.BeginObject();
    writer.FieldStr("name", m.name);
    writer.FieldStr("type", TypeName(m.type));
    if (!m.labels.empty()) {
      writer.Key("labels");
      writer.BeginObject();
      for (const auto& [key, value] : m.labels) {
        writer.FieldStr(key, value);
      }
      writer.EndObject();
    }
    switch (m.type) {
      case MetricType::kCounter:
        writer.FieldUint("value", m.uvalue);
        break;
      case MetricType::kGauge:
        writer.FieldDouble("value", m.value);
        break;
      case MetricType::kHistogram: {
        writer.Key("buckets");
        writer.BeginArray();
        for (size_t i = 0; i <= m.histogram->bounds().size(); ++i) {
          writer.BeginObject();
          if (i < m.histogram->bounds().size()) {
            writer.FieldDouble("le", m.histogram->bounds()[i]);
          } else {
            writer.FieldStr("le", "+Inf");
          }
          writer.FieldUint("count", m.histogram->BucketCount(i));
          writer.EndObject();
        }
        writer.EndArray();
        writer.FieldDouble("sum", m.histogram->Sum());
        writer.FieldUint("count", m.histogram->Count());
        break;
      }
      case MetricType::kLatencyHistogram: {
        const LatencyHistogram::Snapshot snap = m.latency->TakeSnapshot();
        writer.Key("buckets");
        writer.BeginArray();
        for (size_t i = 0; i <= LatencyHistogram::kNumBounds; ++i) {
          if (snap.buckets[i] == 0) {
            continue;  // Sparse: 42 buckets per child is mostly zeros.
          }
          writer.BeginObject();
          if (i < LatencyHistogram::kNumBounds) {
            writer.FieldUint("le_ns", LatencyHistogram::BoundNs(i));
          } else {
            writer.FieldStr("le_ns", "+Inf");
          }
          writer.FieldUint("count", snap.buckets[i]);
          writer.EndObject();
        }
        writer.EndArray();
        writer.FieldUint("sum_ns", snap.sum_ns);
        writer.FieldUint("count", snap.count);
        writer.Key("quantiles_ns");
        writer.BeginObject();
        writer.FieldDouble("p50", snap.QuantileNs(0.50));
        writer.FieldDouble("p90", snap.QuantileNs(0.90));
        writer.FieldDouble("p99", snap.QuantileNs(0.99));
        writer.FieldDouble("p999", snap.QuantileNs(0.999));
        writer.EndObject();
        break;
      }
    }
    writer.EndObject();
  }
  writer.EndArray();
}

}  // namespace obs
}  // namespace superfe
