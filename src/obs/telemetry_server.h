// Embedded telemetry plane: a dependency-free HTTP/1.1 server plus the
// health state machine behind its /healthz endpoint
// (docs/OBSERVABILITY.md, "Live telemetry").
//
// Endpoints:
//   GET /metrics  Prometheus text exposition of the live MetricsRegistry —
//                 the exact WriteProm() writer the file export uses, so a
//                 scrape after the final quiescence edge is byte-identical
//                 to the --metrics-prom file.
//   GET /healthz  200 "ok" / 503 "degraded" / 503 "stalled", driven by the
//                 HealthMachine below.
//   GET /status   JSON in-progress run summary (RunReport-style totals,
//                 per-worker queue depths, windowed rates, build info).
//
// Design: one listener thread, blocking accept with a poll timeout so
// Stop() is prompt, one connection served at a time (scrapers are 1/s, not
// 1000/s), bounded request size, per-connection IO timeouts, loopback
// bind. Deliberately NOT instrumented into the shared registry: a scrape
// counter in the registry would make every scrape perturb the next one and
// break the byte-equality contract; self-stats are plain atomics exposed
// on /status only.
#ifndef SUPERFE_OBS_TELEMETRY_SERVER_H_
#define SUPERFE_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"

namespace superfe {
namespace obs {

enum class HealthState : uint8_t { kOk = 0, kDegraded = 1, kStalled = 2 };

const char* HealthStateName(HealthState state);

// ok -> degraded -> stalled, with stalled outranking degraded.
//
// Fed with *cumulative* fault/watchdog totals once per sampler epoch
// (Update, from the RollingWindow's capture) plus run-completion verdicts
// (OnRunComplete, from RunReport::FaultReport::degraded). The machine
// diffs totals itself; any fresh watchdog stall marks stalled, any fresh
// fault activity (shed/lost cells, failover fences, injected pool
// exhaustions, saturated pushes, a degraded run) marks degraded.
// Deliberately not a signal: cluster queue_stalls — backpressure is the
// designed lossless-mode behavior, not ill health.
//
// State is evaluated lazily at read time with decay: a mark older than
// `hold_ns` (default: one window span, sampler interval x epochs) stops
// contributing, so /healthz recovers to 200 after failover settles without
// anyone having to reset it. Transitions are recorded (bounded) so tests
// and /status can assert an ok -> degraded -> ok trajectory without racing
// the 503 window.
class HealthMachine {
 public:
  explicit HealthMachine(uint64_t hold_ns);

  struct Inputs {
    uint64_t fault_events = 0;     // Cumulative.
    uint64_t watchdog_stalls = 0;  // Cumulative.
  };
  // Sampler-epoch feed; `t_ns` is steady-clock. Any-thread safe.
  void Update(const Inputs& totals, uint64_t t_ns);
  // Run verdict: a degraded completion counts as fault activity at `t_ns`.
  void OnRunComplete(bool degraded, uint64_t t_ns);

  // Current state at time `t_ns`, recording a transition if it changed.
  HealthState Evaluate(uint64_t t_ns);

  struct Transition {
    uint64_t t_ns = 0;
    HealthState from = HealthState::kOk;
    HealthState to = HealthState::kOk;
  };
  std::vector<Transition> Transitions() const;

  uint64_t hold_ns() const { return hold_ns_; }

 private:
  HealthState Target(uint64_t t_ns) const;

  const uint64_t hold_ns_;
  mutable std::mutex mu_;
  HealthState state_ = HealthState::kOk;
  uint64_t last_fault_totals_ = 0;
  uint64_t last_stall_totals_ = 0;
  bool seeded_ = false;          // First Update only baselines the totals.
  bool fault_seen_ = false;
  bool stall_seen_ = false;
  uint64_t last_fault_ns_ = 0;
  uint64_t last_stall_ns_ = 0;
  std::vector<Transition> transitions_;  // Bounded to kMaxTransitions.
  static constexpr size_t kMaxTransitions = 128;
};

struct TelemetryOptions {
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral (see port()).
  int backlog = 16;   // Bounded pending-connection queue.
  uint32_t max_request_bytes = 8192;
  int io_timeout_ms = 2000;  // Per-connection recv/send budget.
  // Refreshes derived gauges (cluster queue depths) before /metrics; may be
  // null. Runs on the serving thread, so it must be any-thread safe.
  std::function<void()> pre_scrape;
  std::function<void(std::ostream&)> write_metrics;  // Required.
  std::function<void(std::ostream&)> write_status;   // Required.
  HealthMachine* health = nullptr;  // Null = /healthz always 200 "ok".
};

class TelemetryServer {
 public:
  // Binds 127.0.0.1:port and starts the listener thread.
  static Result<std::unique_ptr<TelemetryServer>> Start(TelemetryOptions options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Graceful shutdown: stops accepting, finishes the in-flight response
  // (bounded by io_timeout_ms), joins. Idempotent; the destructor calls it.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  // Served responses by outcome, for /status self-reporting. NOT registry
  // metrics — see the file header.
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }
  uint64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  explicit TelemetryServer(TelemetryOptions options, TcpListener listener);

  void Loop();
  void HandleConnection(int fd);

  TelemetryOptions options_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};  // Malformed / unknown-path / non-GET.
  std::thread thread_;
};

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_TELEMETRY_SERVER_H_
