#include "obs/worker_block.h"

#include <algorithm>

namespace superfe {
namespace obs {

void WorkerObsBlock::Init(MetricsRegistry* registry, const std::string& block_name,
                          uint32_t flush_every) {
#ifdef SUPERFE_OBS_DISABLED
  (void)registry;
  (void)block_name;
  (void)flush_every;
#else
  if (registry == nullptr) {
    return;
  }
  enabled_ = true;
  flush_every_ = flush_every;
  flushes_ = registry->GetCounter(
      "superfe_obs_flushes_total", {},
      "Batch-local obs block flushes into the shared registry");
  max_lag_ = registry->GetGauge(
      "superfe_obs_max_flush_lag_packets", {{"block", block_name}},
      "Largest packet gap between flushes of this obs block");
#endif
}

WorkerObsBlock::CounterCell* WorkerObsBlock::BindCounter(Counter* shared) {
  if (!enabled_ || shared == nullptr) {
    return nullptr;
  }
  counters_.emplace_back();
  counters_.back().shared = shared;
  return &counters_.back();
}

WorkerObsBlock::GaugeCell* WorkerObsBlock::BindGauge(Gauge* shared) {
  if (!enabled_ || shared == nullptr) {
    return nullptr;
  }
  gauges_.emplace_back();
  gauges_.back().shared = shared;
  return &gauges_.back();
}

WorkerObsBlock::HistogramCell* WorkerObsBlock::BindHistogram(Histogram* shared) {
  if (!enabled_ || shared == nullptr) {
    return nullptr;
  }
  histograms_.emplace_back();
  HistogramCell& cell = histograms_.back();
  cell.shared = shared;
  cell.buckets.assign(shared->bounds().size() + 1, 0);
  return &cell;
}

WorkerObsBlock::LatencyCell* WorkerObsBlock::BindLatency(LatencyHistogram* shared) {
  if (!enabled_ || shared == nullptr) {
    return nullptr;
  }
  latencies_.emplace_back();
  latencies_.back().shared = shared;
  return &latencies_.back();
}

void WorkerObsBlock::Flush() {
  if (!enabled_) {
    return;
  }
  bool folded = false;
  for (CounterCell& cell : counters_) {
    if (cell.delta != 0) {
      cell.shared->Inc(cell.delta);
      cell.delta = 0;
      folded = true;
    }
  }
  for (GaugeCell& cell : gauges_) {
    if (cell.dirty) {
      cell.shared->Set(cell.value);
      cell.dirty = false;
      folded = true;
    }
  }
  for (HistogramCell& cell : histograms_) {
    if (cell.count != 0) {
      cell.shared->AddBulk(cell.buckets.data(), cell.buckets.size(), cell.count,
                           cell.sum);
      std::fill(cell.buckets.begin(), cell.buckets.end(), 0);
      cell.count = 0;
      cell.sum = 0.0;
      folded = true;
    }
  }
  for (LatencyCell& cell : latencies_) {
    if (cell.count != 0) {
      cell.shared->AddBulk(cell.buckets, cell.count, cell.sum_ns);
      cell.buckets.fill(0);
      cell.count = 0;
      cell.sum_ns = 0;
      folded = true;
    }
  }
  if (!folded && packets_since_flush_ == 0) {
    return;  // Nothing happened since the last flush; don't count it.
  }
  max_lag_packets_ = std::max(max_lag_packets_, packets_since_flush_);
  packets_since_flush_ = 0;
  obs::Inc(flushes_);
  obs::Set(max_lag_, static_cast<double>(max_lag_packets_));
}

}  // namespace obs
}  // namespace superfe
