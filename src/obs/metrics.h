// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the SuperFE pipeline (docs/OBSERVABILITY.md has the metric catalog).
//
// Design goals, in order:
//  1. Hot-path increments are one relaxed atomic add. Counters are sharded
//     across cacheline-padded cells (per-worker shard index, or a stable
//     per-thread index) so concurrent writers never bounce a line;
//     aggregation happens on read.
//  2. Near-zero cost when disabled. Instrumented components hold nullable
//     handle pointers and increment through the null-safe helpers below, so
//     a disabled pipeline pays one predictable branch per site. Compiling
//     with -DSUPERFE_OBS_DISABLED removes even that.
//  3. Handles are stable for the registry's lifetime: registration (the
//     slow path) takes a mutex, the handles themselves never move.
//
// Exports: Prometheus text exposition (WriteProm) and JSON (WriteJson, via
// the shared common/json_writer.h).
#ifndef SUPERFE_OBS_METRICS_H_
#define SUPERFE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "obs/latency.h"

namespace superfe {
namespace obs {

// Shards per counter; a power of two so the shard pick is a mask.
inline constexpr size_t kCounterShards = 16;

class MetricsRegistry;

class Counter {
 public:
  // Shards by a stable per-thread index.
  void Inc(uint64_t n = 1) { IncShard(ThreadShard(), n); }

  // Caller-known shard (e.g. the NIC-cluster worker index): skips the
  // thread-local lookup on the hottest paths.
  void IncShard(size_t shard, uint64_t n = 1) {
    cells_[shard & (kCounterShards - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }

  // Sum over shards. Exact once writers are quiescent; a consistent
  // monotonic snapshot mid-run.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  static size_t ThreadShard();

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_{};
};

class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  void Add(double delta) {
    uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        expected, std::bit_cast<uint64_t>(std::bit_cast<double>(expected) + delta),
        std::memory_order_relaxed)) {
    }
  }
  double Value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

// Fixed-bucket histogram (Prometheus-style: cumulative `le` buckets on
// export, plus sum and count). The sum is sharded like Counter — a shared
// single-cell CAS loop would make concurrent observers bounce one cacheline
// and retry each other; per-thread shards keep Observe() effectively
// wait-free under contention. Exposition emits the required `_sum` and
// `_count` series alongside the cumulative buckets.
class Histogram {
 public:
  void Observe(double value) {
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) {
      ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_cells_[Counter::ThreadShard() & (kCounterShards - 1)].v.fetch_add(
        value, std::memory_order_relaxed);
  }

  // Bulk-merge a worker-local delta block: one relaxed add per non-empty
  // bucket plus one count and one sum-shard add. Safe against concurrent
  // Observe()/AddBulk() callers; used by the WorkerObsBlock cold-tier flush.
  void AddBulk(const uint64_t* bucket_counts, size_t n, uint64_t count, double sum) {
    const size_t limit = n < buckets_.size() ? n : buckets_.size();
    for (size_t i = 0; i < limit; ++i) {
      if (bucket_counts[i] != 0) {
        buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_cells_[Counter::ThreadShard() & (kCounterShards - 1)].v.fetch_add(
        sum, std::memory_order_relaxed);
  }

  // Upper bounds, ascending; an implicit +Inf bucket follows.
  const std::vector<double>& bounds() const { return bounds_; }
  // Non-cumulative count of bucket i (i == bounds().size() is the +Inf one).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const {
    double total = 0.0;
    for (const SumCell& cell : sum_cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

  struct alignas(64) SumCell {
    std::atomic<double> v{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::array<SumCell, kCounterShards> sum_cells_{};
};

enum class MetricType { kCounter, kGauge, kHistogram, kLatencyHistogram };

// Label pairs; serialized sorted by key so {a,b} and {b,a} are one child.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent get-or-create. Returns nullptr (and logs) on a type clash
  // with an existing family; the null-safe helpers make that harmless.
  Counter* GetCounter(const std::string& name, const LabelSet& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {},
                  const std::string& help = "");
  // `bounds` are ascending upper bucket bounds; the family's first
  // registration wins the bucket layout.
  Histogram* GetHistogram(const std::string& name, const std::vector<double>& bounds,
                          const LabelSet& labels = {}, const std::string& help = "");
  // Log-bucketed latency histogram (fixed 100ns..10s layout shared by every
  // instance; exported as a Prometheus histogram with ns-valued `le` bounds).
  LatencyHistogram* GetLatencyHistogram(const std::string& name,
                                        const LabelSet& labels = {},
                                        const std::string& help = "");

  struct MetricValue {
    std::string name;
    MetricType type = MetricType::kCounter;
    LabelSet labels;
    uint64_t uvalue = 0;              // Counters (exact).
    double value = 0.0;               // Gauges; counters mirrored as double.
    const Histogram* histogram = nullptr;  // Histograms only.
    const LatencyHistogram* latency = nullptr;  // Latency histograms only.
  };
  // Every registered child, sorted by (name, serialized labels).
  std::vector<MetricValue> Collect() const;

  // Counter/gauge child lookup by exact name + labels (histograms excluded).
  std::optional<double> Value(const std::string& name, const LabelSet& labels = {}) const;

  // Prometheus text exposition format.
  void WriteProm(std::ostream& out) const;
  // JSON array of metric objects through the shared writer.
  void WriteJson(JsonWriter& writer) const;

  static std::string SerializeLabels(const LabelSet& labels);

 private:
  struct Family {
    MetricType type;
    std::string help;
    std::vector<double> bounds;  // Histograms.
    // Child key: serialized label set.
    std::map<std::string, std::pair<LabelSet, std::unique_ptr<Counter>>> counters;
    std::map<std::string, std::pair<LabelSet, std::unique_ptr<Gauge>>> gauges;
    std::map<std::string, std::pair<LabelSet, std::unique_ptr<Histogram>>> histograms;
    std::map<std::string, std::pair<LabelSet, std::unique_ptr<LatencyHistogram>>> latency;
  };

  Family* GetFamily(const std::string& name, MetricType type, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// Null-safe increment helpers: instrumented code holds nullable handles and
// calls these unconditionally. SUPERFE_OBS_DISABLED compiles them away.
#ifndef SUPERFE_OBS_DISABLED
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->Inc(n);
  }
}
inline void IncShard(Counter* c, size_t shard, uint64_t n = 1) {
  if (c != nullptr) {
    c->IncShard(shard, n);
  }
}
inline void Set(Gauge* g, double value) {
  if (g != nullptr) {
    g->Set(value);
  }
}
inline void Observe(Histogram* h, double value) {
  if (h != nullptr) {
    h->Observe(value);
  }
}
inline void Observe(LatencyHistogram* h, uint64_t ns) {
  if (h != nullptr) {
    h->Observe(ns);
  }
}
#else
inline void Inc(Counter*, uint64_t = 1) {}
inline void IncShard(Counter*, size_t, uint64_t = 1) {}
inline void Set(Gauge*, double) {}
inline void Observe(Histogram*, double) {}
inline void Observe(LatencyHistogram*, uint64_t) {}
#endif

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_METRICS_H_
