#include "obs/snapshot.h"

#include <chrono>

namespace superfe {
namespace obs {

SnapshotSampler::SnapshotSampler(const MetricsRegistry* registry, uint64_t interval_ms,
                                 std::function<void()> pre_sample_hook)
    : registry_(registry),
      interval_ms_(interval_ms > 0 ? interval_ms : 1),
      hook_(std::move(pre_sample_hook)) {}

SnapshotSampler::~SnapshotSampler() { Stop(); }

void SnapshotSampler::Start() {
  if (started_ || registry_ == nullptr) {
    return;
  }
  started_ = true;
  stop_ = false;
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotSampler::Stop() {
  if (!started_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

void SnapshotSampler::CaptureOnce(uint64_t t_ns) {
  if (hook_) {
    hook_();
  }
  Sample sample;
  sample.t_ns = t_ns;
  for (const auto& m : registry_->Collect()) {
    if (m.type == MetricType::kHistogram) {
      continue;  // Bucket series stay an end-of-run export.
    }
    std::string key = m.name;
    const std::string labels = MetricsRegistry::SerializeLabels(m.labels);
    if (!labels.empty()) {
      key += "{" + labels + "}";
    }
    sample.values.emplace_back(std::move(key), m.value);
  }
  samples_.push_back(std::move(sample));
}

void SnapshotSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping =
        cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_), [&] { return stop_; });
    const uint64_t t_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start_)
            .count());
    // The capture runs hooks and registry reads; do it without the lock so
    // Stop() never waits behind a slow hook.
    lock.unlock();
    CaptureOnce(t_ns);
    lock.lock();
    if (stopping) {
      return;  // Final sample taken above.
    }
  }
}

void SnapshotSampler::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.FieldUint("interval_ms", interval_ms_);
  writer.Key("samples");
  writer.BeginArray();
  for (const Sample& sample : samples_) {
    writer.BeginObject();
    writer.FieldDouble("t_ms", static_cast<double>(sample.t_ns) / 1e6);
    writer.Key("values");
    writer.BeginObject();
    for (const auto& [key, value] : sample.values) {
      writer.FieldDouble(key, value);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace obs
}  // namespace superfe
