#include "obs/telemetry_server.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace superfe {
namespace obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStalled:
      return "stalled";
  }
  return "?";
}

HealthMachine::HealthMachine(uint64_t hold_ns) : hold_ns_(hold_ns) {}

void HealthMachine::Update(const Inputs& totals, uint64_t t_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!seeded_) {
    // The first epoch only establishes the baseline: pre-existing totals
    // (e.g. a previous Run in the same process) are not fresh activity.
    seeded_ = true;
  } else {
    if (totals.fault_events > last_fault_totals_) {
      fault_seen_ = true;
      last_fault_ns_ = t_ns;
    }
    if (totals.watchdog_stalls > last_stall_totals_) {
      stall_seen_ = true;
      last_stall_ns_ = t_ns;
    }
  }
  last_fault_totals_ = totals.fault_events;
  last_stall_totals_ = totals.watchdog_stalls;
  const HealthState target = Target(t_ns);
  if (target != state_) {
    if (transitions_.size() < kMaxTransitions) {
      transitions_.push_back({t_ns, state_, target});
    }
    state_ = target;
  }
}

void HealthMachine::OnRunComplete(bool degraded, uint64_t t_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded) {
      fault_seen_ = true;
      last_fault_ns_ = t_ns;
    }
  }
  Evaluate(t_ns);
}

HealthState HealthMachine::Target(uint64_t t_ns) const {
  if (stall_seen_ && t_ns - last_stall_ns_ < hold_ns_) {
    return HealthState::kStalled;
  }
  if (fault_seen_ && t_ns - last_fault_ns_ < hold_ns_) {
    return HealthState::kDegraded;
  }
  return HealthState::kOk;
}

HealthState HealthMachine::Evaluate(uint64_t t_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const HealthState target = Target(t_ns);
  if (target != state_) {
    if (transitions_.size() < kMaxTransitions) {
      transitions_.push_back({t_ns, state_, target});
    }
    state_ = target;
  }
  return state_;
}

std::vector<HealthMachine::Transition> HealthMachine::Transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    TelemetryOptions options) {
  if (!options.write_metrics || !options.write_status) {
    return Status::InvalidArgument("telemetry server needs metrics and status writers");
  }
  auto listener = TcpListener::Listen(options.port, options.backlog);
  if (!listener.ok()) {
    return listener.status();
  }
  std::unique_ptr<TelemetryServer> server(
      new TelemetryServer(std::move(options), std::move(listener).value()));
  server->thread_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

TelemetryServer::TelemetryServer(TelemetryOptions options, TcpListener listener)
    : options_(std::move(options)), listener_(std::move(listener)) {}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) {
    thread_.join();
  }
  listener_.Close();
}

void TelemetryServer::Loop() {
  // 50 ms accept slices keep Stop() prompt without a self-pipe.
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = listener_.AcceptWithTimeout(50, options_.io_timeout_ms);
    if (fd >= 0) {
      HandleConnection(fd);
      CloseFd(fd);
    }
  }
}

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::string MakeResponse(int code, const char* reason, const char* content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

void TelemetryServer::HandleConnection(int fd) {
  std::string request;
  if (!RecvUntil(fd, &request, "\r\n\r\n", options_.max_request_bytes)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;  // Oversized, timed out, or closed mid-request: no response owed.
  }
  const size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, MakeResponse(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);  // Queries are accepted and ignored.
  }
  if (method != "GET") {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, MakeResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n"));
    return;
  }

  std::string response;
  if (path == "/metrics") {
    if (options_.pre_scrape) {
      options_.pre_scrape();
    }
    std::ostringstream body;
    options_.write_metrics(body);
    response = MakeResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                            body.str());
  } else if (path == "/healthz") {
    const HealthState state = options_.health != nullptr
                                  ? options_.health->Evaluate(SteadyNowNs())
                                  : HealthState::kOk;
    const std::string body = std::string(HealthStateName(state)) + "\n";
    if (state == HealthState::kOk) {
      response = MakeResponse(200, "OK", "text/plain", body);
    } else {
      response = MakeResponse(503, "Service Unavailable", "text/plain", body);
    }
  } else if (path == "/status") {
    std::ostringstream body;
    options_.write_status(body);
    response = MakeResponse(200, "OK", "application/json", body.str());
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, MakeResponse(404, "Not Found", "text/plain",
                             "unknown path (try /metrics, /healthz, /status)\n"));
    return;
  }
  if (SendAll(fd, response)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace superfe
