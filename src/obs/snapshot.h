// SnapshotSampler: a background thread that periodically captures the
// metrics registry into a time series, so counters and gauges become
// "queue depth over time" style data instead of end-of-run totals.
//
// Before each capture it invokes an optional hook on the sampler thread —
// the runtime uses it to refresh gauges that are derived from component
// state (cluster queue depths, high watermarks). Hooks must only touch
// thread-safe accessors (atomics, mutex-guarded snapshots).
//
// Samples are appended only by the sampler thread; read them after Stop().
#ifndef SUPERFE_OBS_SNAPSHOT_H_
#define SUPERFE_OBS_SNAPSHOT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace superfe {
namespace obs {

class SnapshotSampler {
 public:
  // Captures every `interval_ms` (clamped to >= 1) until Stop().
  SnapshotSampler(const MetricsRegistry* registry, uint64_t interval_ms,
                  std::function<void()> pre_sample_hook = nullptr);
  ~SnapshotSampler();

  SnapshotSampler(const SnapshotSampler&) = delete;
  SnapshotSampler& operator=(const SnapshotSampler&) = delete;

  void Start();
  // Takes one final sample, joins the thread; samples() is stable after.
  void Stop();

  struct Sample {
    uint64_t t_ns = 0;  // Since Start().
    // "name{label="v"}" -> value, for every counter and gauge.
    std::vector<std::pair<std::string, double>> values;
  };
  const std::vector<Sample>& samples() const { return samples_; }
  uint64_t interval_ms() const { return interval_ms_; }

  // {"interval_ms": .., "samples": [{"t_ms": .., "values": {..}}]}
  void WriteJson(JsonWriter& writer) const;

 private:
  void Loop();
  void CaptureOnce(uint64_t t_ns);

  const MetricsRegistry* registry_;
  const uint64_t interval_ms_;
  std::function<void()> hook_;

  std::vector<Sample> samples_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_SNAPSHOT_H_
