#include "obs/latency.h"

#include <algorithm>
#include <cmath>

namespace superfe {
namespace obs {
namespace {

// Bounds table built once: 10^(2 + i/5) ns, rounded to integers so bucket
// edges are stable across platforms (100, 158, 251, 398, 631, 1000, ...).
const std::array<uint64_t, LatencyHistogram::kNumBounds>& BoundsTable() {
  static const std::array<uint64_t, LatencyHistogram::kNumBounds> bounds = [] {
    std::array<uint64_t, LatencyHistogram::kNumBounds> b{};
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<uint64_t>(
          std::llround(std::pow(10.0, 2.0 + static_cast<double>(i) / 5.0)));
    }
    return b;
  }();
  return bounds;
}

}  // namespace

uint64_t LatencyHistogram::BoundNs(size_t i) { return BoundsTable()[i]; }

size_t LatencyHistogram::BucketIndex(uint64_t ns) {
  const auto& bounds = BoundsTable();
  // First bucket whose upper bound is >= ns (upper bounds are inclusive,
  // matching the fixed-bucket Histogram); past the last bound -> +Inf.
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), ns) - bounds.begin());
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snap;
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  for (size_t i = 0; i <= kNumBounds; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_ns += other.sum_ns;
}

double LatencyHistogram::Snapshot::QuantileNs(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBounds; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(BoundNs(i - 1));
      const double upper = static_cast<double>(BoundNs(i));
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(in_bucket), 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
  }
  // Rank falls in the +Inf bucket: clamp to the highest finite bound, the
  // standard histogram_quantile behavior.
  return static_cast<double>(BoundNs(kNumBounds - 1));
}

LatencyStageSummary LatencyHistogram::Snapshot::Summarize() const {
  LatencyStageSummary s;
  s.count = count;
  s.sum_ns = sum_ns;
  s.p50_ns = QuantileNs(0.50);
  s.p90_ns = QuantileNs(0.90);
  s.p99_ns = QuantileNs(0.99);
  s.p999_ns = QuantileNs(0.999);
  return s;
}

}  // namespace obs
}  // namespace superfe
