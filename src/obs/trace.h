// TraceRecorder: lock-free ring-buffer pipeline tracing, exported as Chrome
// trace_event JSON (load the file at https://ui.perfetto.dev).
//
// Concurrency model: one ring ("lane") per writing thread, claimed by lane
// index at wiring time (lane 0 = the replay/producer thread, lanes 1..N =
// the NIC-cluster workers). A lane has exactly one writer, so emitting an
// event is a bounds-free slot write plus one release store of the lane's
// event count — no locks, no CAS, no cross-thread cacheline traffic. When a
// lane wraps, the oldest events are overwritten (counted, never silent).
//
// Readers (WriteChromeJson, events_recorded) must run while writers are
// quiescent — in practice after the runtime's Flush() barrier. Event name /
// category / argument-name strings must have static storage duration (the
// ring stores the pointers).
#ifndef SUPERFE_OBS_TRACE_H_
#define SUPERFE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace superfe {
namespace obs {

class TraceRecorder {
 public:
  struct Event {
    enum class Phase : uint8_t { kSpan, kInstant };

    uint64_t ts_ns = 0;   // Relative to the recorder's epoch.
    uint64_t dur_ns = 0;  // Spans only.
    Phase phase = Phase::kInstant;
    const char* category = "";  // Static storage only.
    const char* name = "";      // Static storage only.
    // Optional numeric argument.
    const char* arg_name = nullptr;
    uint64_t arg_value = 0;
    // Optional string argument (static storage only).
    const char* str_arg_name = nullptr;
    const char* str_arg_value = nullptr;
  };

  // `capacity_per_lane` slots in each of `lanes` rings.
  TraceRecorder(size_t capacity_per_lane, size_t lanes);

  size_t lane_count() const { return lanes_.size(); }
  size_t capacity_per_lane() const { return capacity_; }

  // Perfetto-friendly thread name for a lane; call before tracing starts.
  void SetLaneName(size_t lane, const std::string& name);

  // Nanoseconds since the recorder was created (steady clock).
  uint64_t NowNs() const;

  // Raw emit; `e.ts_ns` is taken as-is. Single writer per lane.
  void Emit(size_t lane, const Event& e);

  // Timestamped instant event.
  void Instant(size_t lane, const char* category, const char* name,
               const char* arg_name = nullptr, uint64_t arg_value = 0,
               const char* str_arg_name = nullptr, const char* str_arg_value = nullptr);

  // RAII measured span; tolerates a null recorder (no-op) so hot paths can
  // open spans unconditionally.
  class Span {
   public:
    Span(TraceRecorder* recorder, size_t lane, const char* category, const char* name)
        : recorder_(recorder), lane_(lane) {
      if (recorder_ == nullptr) {
        return;
      }
      event_.phase = Event::Phase::kSpan;
      event_.category = category;
      event_.name = name;
      event_.ts_ns = recorder_->NowNs();
    }
    ~Span() {
      if (recorder_ == nullptr) {
        return;
      }
      event_.dur_ns = recorder_->NowNs() - event_.ts_ns;
      recorder_->Emit(lane_, event_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void SetArg(const char* name, uint64_t value) {
      event_.arg_name = name;
      event_.arg_value = value;
    }
    void SetStrArg(const char* name, const char* value) {
      event_.str_arg_name = name;
      event_.str_arg_value = value;
    }

   private:
    TraceRecorder* recorder_;
    size_t lane_;
    Event event_;
  };

  // Totals across lanes (quiescent reads).
  uint64_t events_recorded() const;
  uint64_t events_dropped() const;  // Overwritten by ring wrap-around.

  // Chrome trace_event JSON ("traceEvents" array format). Writers must be
  // quiescent. Events are emitted oldest-first per lane, with a thread_name
  // metadata record per lane.
  void WriteChromeJson(std::ostream& out) const;

 private:
  struct Lane {
    explicit Lane(size_t capacity) : ring(capacity) {}
    std::vector<Event> ring;
    std::atomic<uint64_t> count{0};
    std::string name;
  };

  const size_t capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace obs
}  // namespace superfe

#endif  // SUPERFE_OBS_TRACE_H_
