#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace superfe {
namespace {

int MajorityLabel(const std::vector<int>& labels, const std::vector<int>& indices) {
  std::map<int, int> counts;
  for (int i : indices) {
    counts[labels[i]]++;
  }
  int best_label = 0;
  int best_count = -1;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

double Gini(const std::map<int, int>& counts, int total) {
  if (total == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / total;
    sum += p * p;
  }
  return 1.0 - sum;
}

}  // namespace

void DecisionTree::Fit(const std::vector<std::vector<double>>& samples,
                       const std::vector<int>& labels) {
  assert(samples.size() == labels.size());
  nodes_.clear();
  depth_ = 0;
  if (samples.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<int> indices(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    indices[i] = static_cast<int>(i);
  }
  Build(samples, labels, indices, 0);
}

int DecisionTree::Build(const std::vector<std::vector<double>>& samples,
                        const std::vector<int>& labels, std::vector<int>& indices, int depth) {
  depth_ = std::max(depth_, depth);
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].label = MajorityLabel(labels, indices);

  // Stop: depth cap, too few samples, or pure node.
  bool pure = true;
  for (int i : indices) {
    if (labels[i] != labels[indices[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= config_.max_depth ||
      static_cast<int>(indices.size()) < config_.min_samples_split) {
    return node_index;
  }

  // Exhaustive best split by Gini over midpoints of sorted unique values.
  const size_t dims = samples[indices[0]].size();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::map<int, int> total_counts;
  for (int i : indices) {
    total_counts[labels[i]]++;
  }
  const double parent_gini = Gini(total_counts, static_cast<int>(indices.size()));

  std::vector<int> sorted = indices;
  for (size_t f = 0; f < dims; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return samples[a][f] < samples[b][f];
    });
    std::map<int, int> left_counts;
    int left_total = 0;
    std::map<int, int> right_counts = total_counts;
    int right_total = static_cast<int>(indices.size());
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      const int idx = sorted[k];
      left_counts[labels[idx]]++;
      ++left_total;
      right_counts[labels[idx]]--;
      --right_total;
      const double v = samples[idx][f];
      const double next = samples[sorted[k + 1]][f];
      if (v == next) {
        continue;
      }
      const double weighted = (left_total * Gini(left_counts, left_total) +
                               right_total * Gini(right_counts, right_total)) /
                              static_cast<double>(indices.size());
      const double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (v + next) / 2.0;
      }
    }
  }
  if (best_feature < 0) {
    return node_index;
  }

  std::vector<int> left_idx;
  std::vector<int> right_idx;
  for (int i : indices) {
    (samples[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) {
    return node_index;
  }
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int left = Build(samples, labels, left_idx, depth + 1);
  nodes_[node_index].left = left;
  const int right = Build(samples, labels, right_idx, depth + 1);
  nodes_[node_index].right = right;
  return node_index;
}

int DecisionTree::Predict(const std::vector<double>& sample) const {
  if (nodes_.empty()) {
    return 0;
  }
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    const double v = n.feature < static_cast<int>(sample.size()) ? sample[n.feature] : 0.0;
    node = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].label;
}

std::vector<int> DecisionTree::PredictBatch(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(Predict(s));
  }
  return out;
}

}  // namespace superfe
