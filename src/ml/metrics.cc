#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace superfe {

double BinaryMetrics::Accuracy() const {
  const uint64_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

double BinaryMetrics::Precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double BinaryMetrics::Recall() const {
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double BinaryMetrics::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryMetrics::FalsePositiveRate() const {
  return fp + tn == 0 ? 0.0 : static_cast<double>(fp) / (fp + tn);
}

BinaryMetrics EvaluateBinary(const std::vector<int>& truth, const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size());
  BinaryMetrics m;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] != 0) {
      (predicted[i] != 0 ? m.tp : m.fn)++;
    } else {
      (predicted[i] != 0 ? m.fp : m.tn)++;
    }
  }
  return m;
}

double RocAuc(const std::vector<int>& truth, const std::vector<double>& scores) {
  assert(truth.size() == scores.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Rank sum of positives with midranks for ties.
  double rank_sum = 0.0;
  uint64_t positives = 0;
  uint64_t negatives = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (size_t k = i; k < j; ++k) {
      if (truth[order[k]] != 0) {
        rank_sum += midrank;
        ++positives;
      } else {
        ++negatives;
      }
    }
    i = j;
  }
  if (positives == 0 || negatives == 0) {
    return 0.5;
  }
  const double u = rank_sum - static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double MulticlassAccuracy(const std::vector<int>& truth, const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) {
    return 0.0;
  }
  uint64_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / truth.size();
}

}  // namespace superfe
