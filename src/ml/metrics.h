// Classification/detection metrics used by the application studies.
#ifndef SUPERFE_ML_METRICS_H_
#define SUPERFE_ML_METRICS_H_

#include <cstdint>
#include <vector>

namespace superfe {

struct BinaryMetrics {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t tn = 0;
  uint64_t fn = 0;

  double Accuracy() const;
  double Precision() const;
  double Recall() const;  // = TPR.
  double F1() const;
  double FalsePositiveRate() const;
};

// Confusion counts from binary predictions.
BinaryMetrics EvaluateBinary(const std::vector<int>& truth, const std::vector<int>& predicted);

// Threshold-free ROC AUC from anomaly scores (higher = more anomalous),
// computed by rank statistics (Mann-Whitney U).
double RocAuc(const std::vector<int>& truth, const std::vector<double>& scores);

// Multi-class accuracy.
double MulticlassAccuracy(const std::vector<int>& truth, const std::vector<int>& predicted);

}  // namespace superfe

#endif  // SUPERFE_ML_METRICS_H_
