#include "ml/autoencoder.h"

#include <cassert>
#include <cmath>

namespace superfe {
namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Autoencoder::Autoencoder(int input_dim, int hidden_dim, double learning_rate, uint64_t seed)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      learning_rate_(learning_rate),
      w_enc_(static_cast<size_t>(hidden_dim) * input_dim),
      b_enc_(hidden_dim, 0.0),
      w_dec_(static_cast<size_t>(input_dim) * hidden_dim),
      b_dec_(input_dim, 0.0),
      feat_min_(input_dim, 0.0),
      feat_max_(input_dim, 0.0) {
  assert(input_dim > 0 && hidden_dim > 0);
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim));
  for (auto& w : w_enc_) {
    w = rng.UniformDouble(-scale, scale);
  }
  for (auto& w : w_dec_) {
    w = rng.UniformDouble(-scale, scale);
  }
}

void Autoencoder::UpdateNormalization(const std::vector<double>& x) {
  if (!norm_initialized_) {
    feat_min_.assign(x.begin(), x.end());
    feat_max_.assign(x.begin(), x.end());
    norm_initialized_ = true;
    return;
  }
  for (int i = 0; i < input_dim_; ++i) {
    feat_min_[i] = std::min(feat_min_[i], x[i]);
    feat_max_[i] = std::max(feat_max_[i], x[i]);
  }
}

std::vector<double> Autoencoder::Normalize(const std::vector<double>& x) const {
  std::vector<double> v(input_dim_, 0.0);
  for (int i = 0; i < input_dim_; ++i) {
    const double range = feat_max_[i] - feat_min_[i];
    v[i] = range > 0.0 ? (x[i] - feat_min_[i]) / range : 0.0;
  }
  return v;
}

double Autoencoder::Forward(const std::vector<double>& v, std::vector<double>& hidden,
                            std::vector<double>& output) const {
  hidden.assign(hidden_dim_, 0.0);
  for (int h = 0; h < hidden_dim_; ++h) {
    double z = b_enc_[h];
    const double* row = &w_enc_[static_cast<size_t>(h) * input_dim_];
    for (int i = 0; i < input_dim_; ++i) {
      z += row[i] * v[i];
    }
    hidden[h] = Sigmoid(z);
  }
  output.assign(input_dim_, 0.0);
  double sq_err = 0.0;
  for (int i = 0; i < input_dim_; ++i) {
    double z = b_dec_[i];
    const double* row = &w_dec_[static_cast<size_t>(i) * hidden_dim_];
    for (int h = 0; h < hidden_dim_; ++h) {
      z += row[h] * hidden[h];
    }
    output[i] = Sigmoid(z);
    const double e = output[i] - v[i];
    sq_err += e * e;
  }
  return std::sqrt(sq_err / input_dim_);
}

double Autoencoder::Score(const std::vector<double>& x) const {
  assert(static_cast<int>(x.size()) == input_dim_);
  std::vector<double> hidden;
  std::vector<double> output;
  return Forward(Normalize(x), hidden, output);
}

double Autoencoder::Train(const std::vector<double>& x) {
  assert(static_cast<int>(x.size()) == input_dim_);
  UpdateNormalization(x);
  const std::vector<double> v = Normalize(x);
  std::vector<double> hidden;
  std::vector<double> output;
  const double rmse = Forward(v, hidden, output);

  // Backprop of 0.5 * sum (out - v)^2 through sigmoid output and hidden.
  std::vector<double> delta_out(input_dim_);
  for (int i = 0; i < input_dim_; ++i) {
    delta_out[i] = (output[i] - v[i]) * output[i] * (1.0 - output[i]);
  }
  std::vector<double> delta_hidden(hidden_dim_, 0.0);
  for (int h = 0; h < hidden_dim_; ++h) {
    double sum = 0.0;
    for (int i = 0; i < input_dim_; ++i) {
      sum += w_dec_[static_cast<size_t>(i) * hidden_dim_ + h] * delta_out[i];
    }
    delta_hidden[h] = sum * hidden[h] * (1.0 - hidden[h]);
  }
  for (int i = 0; i < input_dim_; ++i) {
    double* row = &w_dec_[static_cast<size_t>(i) * hidden_dim_];
    for (int h = 0; h < hidden_dim_; ++h) {
      row[h] -= learning_rate_ * delta_out[i] * hidden[h];
    }
    b_dec_[i] -= learning_rate_ * delta_out[i];
  }
  for (int h = 0; h < hidden_dim_; ++h) {
    double* row = &w_enc_[static_cast<size_t>(h) * input_dim_];
    for (int i = 0; i < input_dim_; ++i) {
      row[i] -= learning_rate_ * delta_hidden[h] * v[i];
    }
    b_enc_[h] -= learning_rate_ * delta_hidden[h];
  }
  return rmse;
}

}  // namespace superfe
