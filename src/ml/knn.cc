#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace superfe {

void KnnClassifier::Fit(std::vector<std::vector<double>> samples, std::vector<int> labels) {
  assert(samples.size() == labels.size());
  samples_ = std::move(samples);
  labels_ = std::move(labels);
}

int KnnClassifier::Predict(const std::vector<double>& sample) const {
  if (samples_.empty()) {
    return 0;
  }
  std::vector<std::pair<double, int>> distances;
  distances.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    const auto& train = samples_[i];
    const size_t dims = std::min(train.size(), sample.size());
    double d2 = 0.0;
    for (size_t f = 0; f < dims; ++f) {
      const double d = train[f] - sample[f];
      d2 += d * d;
    }
    distances.emplace_back(d2, labels_[i]);
  }
  const size_t k = std::min<size_t>(k_, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + k, distances.end());
  std::map<int, int> votes;
  for (size_t i = 0; i < k; ++i) {
    votes[distances[i].second]++;
  }
  int best_label = distances[0].second;  // Nearest breaks ties.
  int best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<int> KnnClassifier::PredictBatch(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(Predict(s));
  }
  return out;
}

}  // namespace superfe
