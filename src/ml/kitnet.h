// KitNET: Kitsune's online anomaly detector (Mirsky et al., NDSS'18) — an
// ensemble of small autoencoders over correlated feature clusters, plus an
// output autoencoder over the ensemble's RMSEs. Used by the Fig 11
// detection-accuracy experiments.
#ifndef SUPERFE_ML_KITNET_H_
#define SUPERFE_ML_KITNET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/autoencoder.h"

namespace superfe {

struct KitNetConfig {
  int max_cluster_size = 10;   // Kitsune's m.
  int feature_map_samples = 2000;  // FM-phase sample budget.
  double learning_rate = 0.1;
  double hidden_ratio = 0.75;  // Hidden size = ratio * cluster size.
  uint64_t seed = 42;
};

class KitNet {
 public:
  KitNet(int input_dim, const KitNetConfig& config);

  // Processes one sample. During the feature-mapping phase samples are
  // buffered; afterwards each call trains (train mode) or scores. Returns
  // the anomaly score (0 during the FM phase).
  double Train(const std::vector<double>& x);
  double Score(const std::vector<double>& x) const;

  bool mapped() const { return mapped_; }
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const std::vector<std::vector<int>>& clusters() const { return clusters_; }

 private:
  void BuildFeatureMap();
  void BuildEnsemble();
  std::vector<double> Slice(const std::vector<double>& x, const std::vector<int>& idx) const;

  int input_dim_;
  KitNetConfig config_;
  bool mapped_ = false;

  std::vector<std::vector<double>> fm_buffer_;
  std::vector<std::vector<int>> clusters_;
  std::vector<std::unique_ptr<Autoencoder>> ensemble_;
  std::unique_ptr<Autoencoder> output_layer_;
};

}  // namespace superfe

#endif  // SUPERFE_ML_KITNET_H_
