// CART decision tree (Gini impurity), the detector used by the NPOD-style
// covert-channel application study.
#ifndef SUPERFE_ML_DECISION_TREE_H_
#define SUPERFE_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

namespace superfe {

struct DecisionTreeConfig {
  int max_depth = 8;
  int min_samples_split = 4;
};

class DecisionTree {
 public:
  explicit DecisionTree(const DecisionTreeConfig& config = {}) : config_(config) {}

  // Fits on row-major samples with integer class labels.
  void Fit(const std::vector<std::vector<double>>& samples, const std::vector<int>& labels);

  int Predict(const std::vector<double>& sample) const;
  std::vector<int> PredictBatch(const std::vector<std::vector<double>>& samples) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;       // -1 = leaf.
    double threshold = 0.0;  // Left: x[feature] <= threshold.
    int left = -1;
    int right = -1;
    int label = 0;  // Majority class (leaves).
  };

  int Build(const std::vector<std::vector<double>>& samples, const std::vector<int>& labels,
            std::vector<int>& indices, int depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace superfe

#endif  // SUPERFE_ML_DECISION_TREE_H_
