// Random forest: bagged CART ensemble with feature subsampling. Several of
// the Table 3 applications (MPTD, NPOD-family follow-ups) use tree
// ensembles as their detectors; the examples use it where a single tree
// overfits.
#ifndef SUPERFE_ML_RANDOM_FOREST_H_
#define SUPERFE_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace superfe {

struct RandomForestConfig {
  int trees = 20;
  DecisionTreeConfig tree;
  // Fraction of samples bootstrapped per tree and of features kept per tree.
  double sample_fraction = 0.7;
  double feature_fraction = 0.7;
  uint64_t seed = 1;
};

class RandomForest {
 public:
  explicit RandomForest(const RandomForestConfig& config = {}) : config_(config) {}

  void Fit(const std::vector<std::vector<double>>& samples, const std::vector<int>& labels);

  // Majority vote across trees.
  int Predict(const std::vector<double>& sample) const;
  std::vector<int> PredictBatch(const std::vector<std::vector<double>>& samples) const;

  // Fraction of trees voting for class 1 (binary-score convenience).
  double Score(const std::vector<double>& sample) const;

  int tree_count() const { return static_cast<int>(trees_.size()); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  // Per-tree feature masks (feature subsampling).
  std::vector<std::vector<int>> feature_sets_;
};

}  // namespace superfe

#endif  // SUPERFE_ML_RANDOM_FOREST_H_
