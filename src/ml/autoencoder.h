// Single-hidden-layer autoencoder with SGD training — the building block of
// KitNET (Kitsune's detector) and the deep-autoencoder stand-in for
// N-BaIoT's detector. Anomaly score = reconstruction RMSE.
#ifndef SUPERFE_ML_AUTOENCODER_H_
#define SUPERFE_ML_AUTOENCODER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace superfe {

class Autoencoder {
 public:
  // `input_dim` visible units, `hidden_dim` sigmoid units.
  Autoencoder(int input_dim, int hidden_dim, double learning_rate, uint64_t seed);

  // One SGD step on a raw sample (min-max normalization is maintained
  // online, as Kitsune does). Returns the pre-update reconstruction RMSE.
  double Train(const std::vector<double>& x);

  // Reconstruction RMSE without updating weights.
  double Score(const std::vector<double>& x) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  std::vector<double> Normalize(const std::vector<double>& x) const;
  void UpdateNormalization(const std::vector<double>& x);
  // Forward pass; returns RMSE and fills activations.
  double Forward(const std::vector<double>& v, std::vector<double>& hidden,
                 std::vector<double>& output) const;

  int input_dim_;
  int hidden_dim_;
  double learning_rate_;

  // Row-major weights: encoder [hidden x input], decoder [input x hidden].
  std::vector<double> w_enc_;
  std::vector<double> b_enc_;
  std::vector<double> w_dec_;
  std::vector<double> b_dec_;

  // Online min-max normalization state.
  std::vector<double> feat_min_;
  std::vector<double> feat_max_;
  bool norm_initialized_ = false;
};

}  // namespace superfe

#endif  // SUPERFE_ML_AUTOENCODER_H_
