// k-nearest-neighbors classifier — the detector for CUMUL-style website
// fingerprinting and the stand-in for TF's triplet network (DESIGN.md:
// substitution table); the feature path, which SuperFE accelerates, is
// identical.
#ifndef SUPERFE_ML_KNN_H_
#define SUPERFE_ML_KNN_H_

#include <cstddef>
#include <vector>

namespace superfe {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void Fit(std::vector<std::vector<double>> samples, std::vector<int> labels);

  // Majority vote among the k nearest (L2) training samples.
  int Predict(const std::vector<double>& sample) const;
  std::vector<int> PredictBatch(const std::vector<std::vector<double>>& samples) const;

  size_t size() const { return samples_.size(); }

 private:
  int k_;
  std::vector<std::vector<double>> samples_;
  std::vector<int> labels_;
};

}  // namespace superfe

#endif  // SUPERFE_ML_KNN_H_
