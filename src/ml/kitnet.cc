#include "ml/kitnet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/stats.h"

namespace superfe {

KitNet::KitNet(int input_dim, const KitNetConfig& config)
    : input_dim_(input_dim), config_(config) {
  assert(input_dim > 0);
  fm_buffer_.reserve(config.feature_map_samples);
}

std::vector<double> KitNet::Slice(const std::vector<double>& x,
                                  const std::vector<int>& idx) const {
  std::vector<double> out;
  out.reserve(idx.size());
  for (int i : idx) {
    out.push_back(x[i]);
  }
  return out;
}

void KitNet::BuildFeatureMap() {
  // Agglomerative clustering on 1 - |corr| distance, capped at
  // max_cluster_size (Kitsune's feature-mapping phase).
  const int d = input_dim_;
  std::vector<std::vector<double>> columns(d);
  for (auto& col : columns) {
    col.reserve(fm_buffer_.size());
  }
  for (const auto& row : fm_buffer_) {
    for (int i = 0; i < d; ++i) {
      columns[i].push_back(row[i]);
    }
  }

  std::vector<std::vector<double>> dist(d, std::vector<double>(d, 0.0));
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      const double c = PearsonCorrelation(columns[i], columns[j]);
      dist[i][j] = dist[j][i] = 1.0 - std::fabs(c);
    }
  }

  // Single-linkage agglomeration with size cap.
  std::vector<std::vector<int>> clusters;
  clusters.reserve(d);
  for (int i = 0; i < d; ++i) {
    clusters.push_back({i});
  }
  auto cluster_distance = [&](const std::vector<int>& a, const std::vector<int>& b) {
    double best = 2.0;
    for (int i : a) {
      for (int j : b) {
        best = std::min(best, dist[i][j]);
      }
    }
    return best;
  };
  for (;;) {
    double best = 2.0;
    int bi = -1;
    int bj = -1;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (clusters[i].size() + clusters[j].size() >
            static_cast<size_t>(config_.max_cluster_size)) {
          continue;
        }
        const double dd = cluster_distance(clusters[i], clusters[j]);
        if (dd < best) {
          best = dd;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
        }
      }
    }
    if (bi < 0 || best > 0.9) {
      break;  // No mergeable pair (or only uncorrelated features remain).
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(), clusters[bj].end());
    clusters.erase(clusters.begin() + bj);
  }
  clusters_ = std::move(clusters);
  BuildEnsemble();
  mapped_ = true;
}

void KitNet::BuildEnsemble() {
  ensemble_.clear();
  uint64_t seed = config_.seed;
  for (const auto& cluster : clusters_) {
    const int in = static_cast<int>(cluster.size());
    const int hidden = std::max(1, static_cast<int>(std::ceil(in * config_.hidden_ratio)));
    ensemble_.push_back(
        std::make_unique<Autoencoder>(in, hidden, config_.learning_rate, seed++));
  }
  const int out_in = static_cast<int>(clusters_.size());
  const int out_hidden = std::max(1, static_cast<int>(std::ceil(out_in * config_.hidden_ratio)));
  output_layer_ =
      std::make_unique<Autoencoder>(out_in, out_hidden, config_.learning_rate, seed);
}

double KitNet::Train(const std::vector<double>& x) {
  assert(static_cast<int>(x.size()) == input_dim_);
  if (!mapped_) {
    fm_buffer_.push_back(x);
    if (static_cast<int>(fm_buffer_.size()) >= config_.feature_map_samples) {
      BuildFeatureMap();
      // Replay the FM buffer as the first training samples.
      auto buffered = std::move(fm_buffer_);
      fm_buffer_.clear();
      for (const auto& sample : buffered) {
        Train(sample);
      }
    }
    return 0.0;
  }
  std::vector<double> rmses(clusters_.size());
  for (size_t c = 0; c < clusters_.size(); ++c) {
    rmses[c] = ensemble_[c]->Train(Slice(x, clusters_[c]));
  }
  return output_layer_->Train(rmses);
}

double KitNet::Score(const std::vector<double>& x) const {
  assert(static_cast<int>(x.size()) == input_dim_);
  if (!mapped_) {
    return 0.0;
  }
  std::vector<double> rmses(clusters_.size());
  for (size_t c = 0; c < clusters_.size(); ++c) {
    rmses[c] = ensemble_[c]->Score(Slice(x, clusters_[c]));
  }
  return output_layer_->Score(rmses);
}

}  // namespace superfe
