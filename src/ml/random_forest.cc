#include "ml/random_forest.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/rng.h"

namespace superfe {
namespace {

std::vector<double> Project(const std::vector<double>& sample, const std::vector<int>& keep) {
  std::vector<double> out;
  out.reserve(keep.size());
  for (int f : keep) {
    out.push_back(f < static_cast<int>(sample.size()) ? sample[f] : 0.0);
  }
  return out;
}

}  // namespace

void RandomForest::Fit(const std::vector<std::vector<double>>& samples,
                       const std::vector<int>& labels) {
  assert(samples.size() == labels.size());
  trees_.clear();
  feature_sets_.clear();
  if (samples.empty()) {
    return;
  }
  Rng rng(config_.seed);
  const size_t dims = samples[0].size();
  const size_t keep_features =
      std::max<size_t>(1, static_cast<size_t>(dims * config_.feature_fraction));
  const size_t keep_samples =
      std::max<size_t>(1, static_cast<size_t>(samples.size() * config_.sample_fraction));

  for (int t = 0; t < config_.trees; ++t) {
    // Feature subsample: a random subset of distinct feature indices.
    std::vector<int> features(dims);
    for (size_t f = 0; f < dims; ++f) {
      features[f] = static_cast<int>(f);
    }
    for (size_t f = dims - 1; f > 0; --f) {
      std::swap(features[f], features[rng.UniformU64(f + 1)]);
    }
    features.resize(keep_features);
    std::sort(features.begin(), features.end());

    // Bootstrap sample (with replacement).
    std::vector<std::vector<double>> tree_x;
    std::vector<int> tree_y;
    tree_x.reserve(keep_samples);
    tree_y.reserve(keep_samples);
    for (size_t i = 0; i < keep_samples; ++i) {
      const size_t pick = rng.UniformU64(samples.size());
      tree_x.push_back(Project(samples[pick], features));
      tree_y.push_back(labels[pick]);
    }

    DecisionTree tree(config_.tree);
    tree.Fit(tree_x, tree_y);
    trees_.push_back(std::move(tree));
    feature_sets_.push_back(std::move(features));
  }
}

int RandomForest::Predict(const std::vector<double>& sample) const {
  std::map<int, int> votes;
  for (size_t t = 0; t < trees_.size(); ++t) {
    votes[trees_[t].Predict(Project(sample, feature_sets_[t]))]++;
  }
  int best_label = 0;
  int best_votes = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<int> RandomForest::PredictBatch(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(Predict(s));
  }
  return out;
}

double RandomForest::Score(const std::vector<double>& sample) const {
  if (trees_.empty()) {
    return 0.0;
  }
  int positive = 0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t].Predict(Project(sample, feature_sets_[t])) == 1) {
      ++positive;
    }
  }
  return static_cast<double>(positive) / trees_.size();
}

}  // namespace superfe
