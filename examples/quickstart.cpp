// Quickstart: write a SuperFE policy, run traffic through the simulated
// switch + SmartNIC pipeline, and read the resulting feature vectors.
//
//   ./quickstart
#include <cstdio>

#include "core/runtime.h"
#include "net/trace_gen.h"
#include "policy/parser.h"

using namespace superfe;

int main() {
  // 1. A feature-extraction policy in the SuperFE DSL (the paper's Fig 3:
  //    basic statistical features per TCP flow).
  const char* kPolicySource = R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_mean, f_var, f_min, f_max])
  .reduce(ipt, [f_mean, f_var, f_min, f_max])
  .collect(flow)
)";
  auto policy = ParsePolicy("quickstart", kPolicySource);
  if (!policy.ok()) {
    std::fprintf(stderr, "policy error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  std::printf("Policy:\n%s\n\n", policy->ToString().c_str());

  // 2. Create the runtime: compiles the policy, partitions it across
  //    FE-Switch (filter + MGPV batching) and FE-NIC (streaming feature
  //    computation).
  auto runtime = SuperFeRuntime::Create(*policy, RuntimeConfig{});
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", runtime.status().ToString().c_str());
    return 1;
  }
  const auto& compiled = (*runtime)->compiled();
  std::printf("Compiled: %zu-granularity chain, %u metadata bytes/packet, %u features\n\n",
              compiled.switch_program.chain.size(),
              compiled.switch_program.MetadataBytesPerPacket(),
              compiled.nic_program.FeatureDimension());

  // 3. Replay synthetic enterprise traffic through the pipeline.
  const Trace trace = GenerateTrace(EnterpriseProfile(), 50000, /*seed=*/7);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);

  // 4. Results: feature vectors + pipeline statistics.
  std::printf("Processed %llu packets (%.2f Gbps offered)\n",
              (unsigned long long)report.switch_stats.packets_seen,
              report.offered.offered_gbps);
  std::printf("MGPV batching: %.1f%% of messages, %.1f%% of bytes reach the NIC\n",
              report.mgpv.MessageRatio() * 100.0, report.mgpv.ByteRatio() * 100.0);
  std::printf("Sustainable end-to-end rate: %.0f Gbps (bottleneck: %s)\n",
              report.sustainable_gbps, report.bottleneck);
  std::printf("Feature vectors produced: %zu\n\n", sink.vectors().size());

  std::printf("First three vectors [pkts, size mean/var/min/max, ipt mean/var/min/max]:\n");
  for (size_t i = 0; i < sink.vectors().size() && i < 3; ++i) {
    const auto& v = sink.vectors()[i];
    std::printf("  %s:", v.group.ToString().c_str());
    for (double x : v.values) {
      std::printf(" %.1f", x);
    }
    std::printf("\n");
  }
  return 0;
}
