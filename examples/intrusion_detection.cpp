// Intrusion detection: the Kitsune application study end to end — SuperFE
// extracts 115-dim damped-window features through the simulated switch+NIC,
// and a KitNET autoencoder ensemble flags a Mirai-style telnet sweep.
//
//   ./intrusion_detection
#include <cstdio>

#include "apps/kitsune_study.h"

using namespace superfe;

int main() {
  KitsuneStudyConfig config;
  config.background_packets = 40000;
  config.attack_packets = 10000;
  config.seed = 2026;

  std::printf("Running the Kitsune x SuperFE intrusion-detection study (Mirai sweep)...\n");
  auto result = RunKitsuneDetection(AttackType::kMiraiScan, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Attack:      %s\n", result->attack.c_str());
  std::printf("Training on: %llu clean vectors\n", (unsigned long long)result->train_vectors);
  std::printf("Testing on:  %llu vectors\n", (unsigned long long)result->test_vectors);
  std::printf("AUC:         %.3f\n", result->auc);
  std::printf("Accuracy:    %.1f%%  (F1 %.3f, threshold %.4f)\n", result->accuracy * 100.0,
              result->f1, result->threshold);
  return result->auc > 0.6 ? 0 : 1;
}
