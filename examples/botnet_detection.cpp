// Botnet detection: extract PeerShark-style conversation features per IP
// pair with SuperFE and separate P2P bot keep-alive chatter from normal
// client-server conversations with a decision tree.
//
//   ./botnet_detection
#include <cstdio>
#include <map>

#include "apps/policies.h"
#include "core/runtime.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "net/attack_gen.h"

using namespace superfe;

int main() {
  // 1. Conversations: label 1 = long-lived periodic small-packet P2P
  //    chatter; label 0 = ordinary short web conversations.
  const LabeledFlowSet conversations = GenerateP2PConversations(150, 777);
  Trace trace("botnet");
  std::map<std::string, int> label_of;
  for (size_t i = 0; i < conversations.size(); ++i) {
    for (const auto& pkt : conversations.flows[i]) {
      trace.Add(pkt);
    }
    const GroupKey key =
        GroupKey::ForPacket(conversations.flows[i][0], Granularity::kChannel);
    label_of[std::string(reinterpret_cast<const char*>(key.bytes.data()), key.length)] =
        conversations.labels[i];
  }
  trace.SortByTime();

  // 2. PeerShark features per IP-pair conversation (4 dims: packet count,
  //    mean size, mean and max inter-arrival).
  auto runtime = SuperFeRuntime::Create(PeerSharkPolicy(), RuntimeConfig{});
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }
  CollectingFeatureSink sink;
  (*runtime)->Run(trace, &sink);
  std::printf("Extracted %zu conversation feature vectors\n", sink.vectors().size());

  // 3. Decision tree over a train/test split.
  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<int> test_y;
  size_t index = 0;
  for (const auto& v : sink.vectors()) {
    const std::string key(reinterpret_cast<const char*>(v.group.bytes.data()), v.group.length);
    const auto it = label_of.find(key);
    if (it == label_of.end()) {
      continue;
    }
    if (index++ % 2 == 0) {
      train_x.push_back(v.values);
      train_y.push_back(it->second);
    } else {
      test_x.push_back(v.values);
      test_y.push_back(it->second);
    }
  }
  DecisionTree tree;
  tree.Fit(train_x, train_y);
  const BinaryMetrics metrics = EvaluateBinary(test_y, tree.PredictBatch(test_x));

  std::printf("P2P bot-conversation detection over %zu test conversations:\n", test_y.size());
  std::printf("  accuracy  %.1f%%\n", metrics.Accuracy() * 100.0);
  std::printf("  precision %.3f  recall %.3f  F1 %.3f\n", metrics.Precision(),
              metrics.Recall(), metrics.F1());
  return metrics.Accuracy() > 0.85 ? 0 : 1;
}
