// Website fingerprinting (closed world): extract CUMUL-style cumulative
// traces with SuperFE and classify visited sites with k-NN (CUMUL pairs
// these features with a kernel classifier; k-NN keeps the example small).
// DF/TF-style raw direction sequences are also available via DfPolicy() but
// need a sequence model to shine.
//
//   ./website_fingerprinting
#include <cstdio>
#include <map>

#include "apps/policies.h"
#include "core/runtime.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "net/attack_gen.h"

using namespace superfe;

int main() {
  constexpr int kSites = 12;
  constexpr int kSessionsPerSite = 24;

  // 1. Synthetic closed-world sessions: each site has a stable page-load
  //    direction/size pattern; sessions are noisy replays.
  const LabeledFlowSet sessions = GenerateWebsiteSessions(kSites, kSessionsPerSite, 99);

  // 2. Assemble one trace; remember each flow's label by its socket key.
  Trace trace("wfp");
  std::map<std::string, int> label_of;
  for (size_t i = 0; i < sessions.size(); ++i) {
    for (const auto& pkt : sessions.flows[i]) {
      trace.Add(pkt);
    }
    if (!sessions.flows[i].empty()) {
      const GroupKey key = GroupKey::ForPacket(sessions.flows[i][0], Granularity::kFlow);
      label_of[std::string(reinterpret_cast<const char*>(key.bytes.data()), key.length)] =
          sessions.labels[i];
    }
  }
  trace.SortByTime();

  // 3. Extract 104-dim CUMUL features through the full pipeline.
  auto runtime = SuperFeRuntime::Create(CumulPolicy(), RuntimeConfig{});
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }
  CollectingFeatureSink sink;
  (*runtime)->Run(trace, &sink);
  std::printf("Extracted %zu CUMUL vectors (dim %zu)\n", sink.vectors().size(),
              sink.vectors().empty() ? 0 : sink.vectors()[0].values.size());

  // 4. Closed-world k-NN: alternate sessions into train/test.
  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<int> test_y;
  size_t index = 0;
  for (const auto& v : sink.vectors()) {
    const std::string key(reinterpret_cast<const char*>(v.group.bytes.data()), v.group.length);
    const auto it = label_of.find(key);
    if (it == label_of.end()) {
      continue;
    }
    if (index++ % 2 == 0) {
      train_x.push_back(v.values);
      train_y.push_back(it->second);
    } else {
      test_x.push_back(v.values);
      test_y.push_back(it->second);
    }
  }

  KnnClassifier knn(3);
  knn.Fit(train_x, train_y);
  const std::vector<int> predictions = knn.PredictBatch(test_x);
  const double accuracy = MulticlassAccuracy(test_y, predictions);
  std::printf("Closed-world accuracy over %d sites: %.1f%% (random guess: %.1f%%)\n", kSites,
              accuracy * 100.0, 100.0 / kSites);
  return accuracy > 2.0 / kSites ? 0 : 1;
}
