// Dependency-graph granularities (§9 "More complex granularity dependency
// relationships"): when an application needs granularities that form a DAG
// rather than a chain, SuperFE splits the DAG into a minimum set of
// dependency chains and deploys one MGPV instance (one policy) per chain.
//
//   ./dependency_graph
#include <cstdio>

#include "core/runtime.h"
#include "net/trace_gen.h"
#include "policy/granularity_graph.h"
#include "policy/parser.h"

using namespace superfe;

int main() {
  // 1. A future-style analysis wants features at four granularities whose
  //    refinements form a diamond, not a chain:
  //
  //            host
  //           /    \.
  //      channel   host-port (srcIP x dstPort service mix)
  //           \    /
  //           socket
  GranularityGraph graph;
  const int host = graph.AddNode("host");
  const int channel = graph.AddNode("channel");
  const int host_port = graph.AddNode("host-port");
  const int socket = graph.AddNode("socket");
  (void)graph.AddEdge(host, channel);
  (void)graph.AddEdge(host, host_port);
  (void)graph.AddEdge(channel, socket);
  (void)graph.AddEdge(host_port, socket);

  auto chains = graph.SplitIntoMinimumChains();
  if (!chains.ok()) {
    std::fprintf(stderr, "%s\n", chains.status().ToString().c_str());
    return 1;
  }
  std::printf("Granularity DAG with %d nodes splits into %zu dependency chains:\n",
              graph.node_count(), chains->size());
  for (const auto& chain : *chains) {
    std::printf("  chain:");
    for (int node : chain) {
      std::printf(" %s", graph.name(node).c_str());
    }
    std::printf("\n");
  }

  // 2. Each chain maps onto one MGPV instance. The built-in granularities
  //    cover the first chain directly; the host-port granularity of the
  //    second chain is approximated here with its closest built-in
  //    refinement (socket), showing the two pipelines running side by side.
  const char* kChainPolicies[] = {
      R"(
pktstream
  .groupby(host, channel, socket)
  .reduce(size, [f_mean{decay=1}, f_std{decay=1}])
  .collect(pkt)
)",
      R"(
pktstream
  .groupby(host, socket)
  .map(ipt, tstamp, f_ipt)
  .reduce(ipt, [f_mean{decay=1}])
  .collect(pkt)
)",
  };

  const Trace trace = GenerateTrace(EnterpriseProfile(), 30000, 11);
  for (size_t i = 0; i < std::size(kChainPolicies); ++i) {
    auto policy = ParsePolicy("chain" + std::to_string(i), kChainPolicies[i]);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
      return 1;
    }
    auto runtime = SuperFeRuntime::Create(*policy, RuntimeConfig{});
    if (!runtime.ok()) {
      std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
      return 1;
    }
    CollectingFeatureSink sink;
    const RunReport report = (*runtime)->Run(trace, &sink);
    std::printf(
        "chain %zu: %zu-granularity MGPV, %u features/vector, %zu vectors, "
        "%.1f%% of bytes to the NIC\n",
        i, (*runtime)->compiled().switch_program.chain.size(),
        (*runtime)->compiled().nic_program.FeatureDimension(), sink.vectors().size(),
        report.mgpv.ByteRatio() * 100.0);
  }
  std::printf(
      "\nEach chain runs its own MGPV cache; a dependency graph costs one cache per\n"
      "chain of the minimum cover rather than one per granularity.\n");
  return 0;
}
