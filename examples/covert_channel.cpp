// Covert-channel detection: extract NPOD-style inter-arrival and size
// distributions per flow with SuperFE, then separate timing covert channels
// from benign flows with a decision tree (the NPOD application study).
//
//   ./covert_channel
#include <cstdio>
#include <map>

#include "apps/policies.h"
#include "core/runtime.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "net/attack_gen.h"

using namespace superfe;

int main() {
  // 1. Flows: label 1 encodes bits in bimodal inter-packet delays; label 0
  //    has benign exponential gaps at the same average rate.
  const LabeledFlowSet flows = GenerateCovertTimingFlows(/*flows_per_class=*/120,
                                                         /*packets_per_flow=*/250, 555);
  Trace trace("covert");
  std::map<std::string, int> label_of;
  for (size_t i = 0; i < flows.size(); ++i) {
    for (const auto& pkt : flows.flows[i]) {
      trace.Add(pkt);
    }
    const GroupKey key = GroupKey::ForPacket(flows.flows[i][0], Granularity::kFlow);
    label_of[std::string(reinterpret_cast<const char*>(key.bytes.data()), key.length)] =
        flows.labels[i];
  }
  trace.SortByTime();

  // 2. Extract the NPOD feature vector (37 dims: count, ipt/size histograms
  //    and moments) through the full SuperFE pipeline.
  auto runtime = SuperFeRuntime::Create(NpodPolicy(), RuntimeConfig{});
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }
  CollectingFeatureSink sink;
  (*runtime)->Run(trace, &sink);

  // 3. Train/test split and a CART decision tree (NPOD's detector family).
  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<int> test_y;
  size_t index = 0;
  for (const auto& v : sink.vectors()) {
    const std::string key(reinterpret_cast<const char*>(v.group.bytes.data()), v.group.length);
    const auto it = label_of.find(key);
    if (it == label_of.end()) {
      continue;
    }
    if (index++ % 2 == 0) {
      train_x.push_back(v.values);
      train_y.push_back(it->second);
    } else {
      test_x.push_back(v.values);
      test_y.push_back(it->second);
    }
  }
  DecisionTree tree(DecisionTreeConfig{8, 4});
  tree.Fit(train_x, train_y);
  const BinaryMetrics metrics = EvaluateBinary(test_y, tree.PredictBatch(test_x));

  std::printf("Covert-channel detection over %zu test flows:\n", test_y.size());
  std::printf("  accuracy  %.1f%%\n", metrics.Accuracy() * 100.0);
  std::printf("  precision %.3f  recall %.3f  F1 %.3f\n", metrics.Precision(),
              metrics.Recall(), metrics.F1());
  return metrics.Accuracy() > 0.8 ? 0 : 1;
}
