// Tests for the src/obs observability subsystem: metrics registry
// concurrency, trace ring wrap-around and Chrome JSON export, the snapshot
// sampler, log-level env parsing, and the runtime integration contract
// (obs counter totals == RunReport stats fields).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/logging.h"
#include "core/runtime.h"
#include "net/trace_gen.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "policy/parser.h"
#include "switchsim/evict.h"

namespace superfe {
namespace {

TEST(JsonWriterTest, EscapesAndStructure) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.BeginObject();
  w.FieldStr("quote\"back\\slash", "line\nbreak\ttab");
  w.Key("nums");
  w.BeginArray();
  w.Uint(42);
  w.Double(1.5);
  w.Double(std::numeric_limits<double>::infinity());  // No JSON spelling.
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\","
            "\"nums\":[42,1.5,null,true,null]}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(MetricsTest, ConcurrentCountersAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* plain = registry.GetCounter("test_plain_total");
  obs::Counter* sharded = registry.GetCounter("test_sharded_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        plain->Inc();
        sharded->IncShard(static_cast<size_t>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(plain->Value(), kThreads * kPerThread);
  EXPECT_EQ(sharded->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, ConcurrentHistogramSumIsExact) {
  // The observation sum is sharded per thread (no CAS loop); with values
  // that are exact in binary the concurrent total must be exact too.
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("test_hist", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const double value = 0.25 * (1 + t % 4);  // 0.25 .. 1.0, all exact.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist->Observe(value);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  double expected = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected += 0.25 * (1 + t % 4) * kPerThread;
  }
  EXPECT_DOUBLE_EQ(hist->Sum(), expected);
}

TEST(MetricsTest, GetIsIdempotentAndTypeChecked) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x_total", {{"k", "v"}});
  obs::Counter* b = registry.GetCounter("x_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  // Same name, different labels: a distinct child of the same family.
  EXPECT_NE(a, registry.GetCounter("x_total", {{"k", "other"}}));
  // Type clash: null handle, safe to pass through the helpers.
  EXPECT_EQ(registry.GetGauge("x_total"), nullptr);
  obs::Set(static_cast<obs::Gauge*>(nullptr), 1.0);
  obs::Inc(static_cast<obs::Counter*>(nullptr));
}

TEST(MetricsTest, GaugeAndHistogram) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("depth");
  g->Set(3.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 5.0);

  obs::Histogram* h = registry.GetHistogram("sizes", {1.0, 4.0, 16.0});
  h->Observe(0.5);   // le=1
  h->Observe(4.0);   // le=4 (upper bound inclusive)
  h->Observe(5.0);   // le=16
  h->Observe(100.0); // +Inf
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 109.5);
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(3), 1u);
}

TEST(MetricsTest, PromExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("req_total", {{"b", "2"}, {"a", "1"}}, "requests")->Inc(7);
  registry.GetGauge("depth", {}, "queue depth")->Set(2.0);
  registry.GetHistogram("lat", {1.0, 2.0}, {}, "latency")->Observe(1.5);

  std::ostringstream out;
  registry.WriteProm(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  // Labels are serialized sorted by key.
  EXPECT_NE(text.find("req_total{a=\"1\",b=\"2\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2\n"), std::string::npos);
  // Cumulative buckets plus sum/count.
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1\n"), std::string::npos);
}

TEST(MetricsTest, ValueLookup) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c_total", {{"w", "0"}})->Inc(3);
  auto v = registry.Value("c_total", {{"w", "0"}});
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 3.0);
  EXPECT_FALSE(registry.Value("missing").has_value());
}

TEST(TraceTest, WrapAroundKeepsNewestAndCounts) {
  obs::TraceRecorder recorder(/*capacity_per_lane=*/4, /*lanes=*/1);
  for (uint64_t i = 0; i < 10; ++i) {
    obs::TraceRecorder::Event e;
    e.phase = obs::TraceRecorder::Event::Phase::kInstant;
    e.category = "t";
    e.name = "e";
    e.ts_ns = i * 1000;
    e.arg_name = "i";
    e.arg_value = i;
    recorder.Emit(0, e);
  }
  EXPECT_EQ(recorder.events_recorded(), 10u);
  EXPECT_EQ(recorder.events_dropped(), 6u);

  std::ostringstream out;
  recorder.WriteChromeJson(out);
  const std::string json = out.str();
  // Oldest surviving event is i=6; 0..5 were overwritten.
  EXPECT_EQ(json.find("\"i\":5"), std::string::npos);
  for (uint64_t i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("\"i\":" + std::to_string(i)), std::string::npos) << i;
  }
}

TEST(TraceTest, ChromeJsonGolden) {
  obs::TraceRecorder recorder(/*capacity_per_lane=*/8, /*lanes=*/2);
  recorder.SetLaneName(0, "producer");
  recorder.SetLaneName(1, "worker-0");

  obs::TraceRecorder::Event span;
  span.phase = obs::TraceRecorder::Event::Phase::kSpan;
  span.category = "replay";
  span.name = "batch";
  span.ts_ns = 1000;
  span.dur_ns = 2500;
  span.arg_name = "packets";
  span.arg_value = 64;
  recorder.Emit(0, span);

  obs::TraceRecorder::Event instant;
  instant.phase = obs::TraceRecorder::Event::Phase::kInstant;
  instant.category = "mgpv";
  instant.name = "evict";
  instant.ts_ns = 4000;
  instant.str_arg_name = "cause";
  instant.str_arg_value = "aging";
  recorder.Emit(1, instant);

  std::ostringstream out;
  recorder.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"producer\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  // Span: ph X with microsecond ts/dur.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"packets\":64"), std::string::npos);
  // Instant: ph i, thread-scoped, with the string arg.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"aging\""), std::string::npos);
}

TEST(TraceTest, NullRecorderSpanIsNoop) {
  obs::TraceRecorder::Span span(nullptr, 0, "c", "n");
  span.SetArg("x", 1);  // Must not crash.
}

TEST(SnapshotTest, SamplerCapturesSeriesAndRunsHook) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("ticks_total");
  std::atomic<int> hook_calls{0};
  obs::SnapshotSampler sampler(&registry, /*interval_ms=*/1, [&] {
    hook_calls.fetch_add(1);
    c->Inc();
  });
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();

  EXPECT_GE(hook_calls.load(), 1);
  ASSERT_GE(sampler.samples().size(), 1u);
  // The final (Stop-time) sample reflects every hook increment.
  const auto& last = sampler.samples().back();
  bool found = false;
  for (const auto& [name, value] : last.values) {
    if (name == "ticks_total") {
      found = true;
      EXPECT_DOUBLE_EQ(value, static_cast<double>(hook_calls.load()));
    }
  }
  EXPECT_TRUE(found);

  std::ostringstream out;
  JsonWriter w(out);
  sampler.WriteJson(w);
  EXPECT_NE(out.str().find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(out.str().find("\"samples\""), std::string::npos);
}

TEST(LoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("none", &level));
  EXPECT_EQ(level, LogLevel::kNone);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kNone);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
}

// --- Runtime integration -------------------------------------------------

const char* kPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

Policy Parse(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

TEST(ObsRuntimeTest, MetricsMatchRunReportWithWorkers) {
  RuntimeConfig config;
  config.worker_threads = 4;
  config.obs.metrics = true;
  config.obs.trace = true;
  config.obs.sample_interval_ms = 1;
  auto runtime = SuperFeRuntime::Create(Parse(kPolicy), config);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 30000, 7);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  obs::MetricsRegistry* metrics = (*runtime)->metrics();
  ASSERT_NE(metrics, nullptr);

  const auto value = [&](const std::string& name, const obs::LabelSet& labels = {}) {
    auto v = metrics->Value(name, labels);
    EXPECT_TRUE(v.has_value()) << name;
    return v.value_or(-1.0);
  };

  // Replay / switch totals.
  EXPECT_EQ(value("superfe_replay_packets_total"), report.offered.packets);
  EXPECT_EQ(value("superfe_replay_bytes_total"), report.offered.bytes);
  EXPECT_EQ(value("superfe_switch_packets_seen_total"), report.switch_stats.packets_seen);
  EXPECT_EQ(value("superfe_switch_packets_batched_total"),
            report.switch_stats.packets_batched);

  // MGPV totals, including per-cause evictions.
  EXPECT_EQ(value("superfe_mgpv_reports_out_total"), report.mgpv.reports_out);
  EXPECT_EQ(value("superfe_mgpv_cells_out_total"), report.mgpv.cells_out);
  for (int i = 0; i < 5; ++i) {
    const auto reason = static_cast<EvictReason>(i);
    EXPECT_EQ(value("superfe_mgpv_evictions_total", {{"cause", EvictReasonName(reason)}}),
              report.mgpv.evictions[i])
        << EvictReasonName(reason);
  }

  // NIC totals: sum over {nic="i"} children equals the aggregate stats.
  double nic_cells = 0.0, nic_reports = 0.0, nic_vectors = 0.0;
  for (uint32_t i = 0; i < 4; ++i) {
    const obs::LabelSet labels = {{"nic", std::to_string(i)}};
    nic_cells += value("superfe_nic_cells_total", labels);
    nic_reports += value("superfe_nic_reports_total", labels);
    nic_vectors += value("superfe_nic_vectors_emitted_total", labels);
  }
  EXPECT_EQ(nic_cells, report.nic.cells);
  EXPECT_EQ(nic_reports, report.nic.reports);
  EXPECT_EQ(nic_vectors, report.nic.vectors_emitted);

  // Per-worker cluster counters mirror worker_stats exactly, and queue-depth
  // gauges exist (zero after the Flush barrier).
  const NicCluster* cluster = (*runtime)->cluster();
  ASSERT_NE(cluster, nullptr);
  for (uint32_t i = 0; i < 4; ++i) {
    const obs::LabelSet labels = {{"worker", std::to_string(i)}};
    const NicWorkerStats ws = cluster->worker_stats(i);
    EXPECT_EQ(value("superfe_cluster_reports_enqueued_total", labels), ws.reports_enqueued);
    EXPECT_EQ(value("superfe_cluster_syncs_enqueued_total", labels), ws.syncs_enqueued);
    EXPECT_EQ(value("superfe_cluster_queue_stalls_total", labels), ws.backpressure_waits);
    EXPECT_EQ(value("superfe_cluster_queue_depth", labels), 0.0);
    EXPECT_EQ(value("superfe_cluster_queue_high_watermark", labels),
              ws.queue_high_watermark);
  }

  // Obs summary + sampler series.
  EXPECT_TRUE(report.obs.metrics_enabled);
  EXPECT_TRUE(report.obs.trace_enabled);
  EXPECT_GT(report.obs.trace_events_recorded, 0u);
  EXPECT_GE(report.obs.samples_captured, 1u);

  // Trace export parses structurally and covers >= 3 pipeline stages.
  std::ostringstream trace_out;
  ASSERT_TRUE((*runtime)->WriteTraceJson(trace_out));
  const std::string trace_json = trace_out.str();
  int stages = 0;
  for (const char* cat : {"\"cat\":\"replay\"", "\"cat\":\"mgpv\"", "\"cat\":\"cluster\"",
                          "\"cat\":\"worker\""}) {
    if (trace_json.find(cat) != std::string::npos) {
      ++stages;
    }
  }
  EXPECT_GE(stages, 3) << trace_json.substr(0, 400);

  // Exports succeed; disabled exports on a fresh runtime return false.
  std::ostringstream prom_out, json_out;
  EXPECT_TRUE((*runtime)->WriteMetricsProm(prom_out));
  EXPECT_TRUE((*runtime)->WriteMetricsJson(json_out));
  EXPECT_NE(prom_out.str().find("superfe_mgpv_evictions_total{cause="),
            std::string::npos);
  EXPECT_NE(json_out.str().find("\"series\""), std::string::npos);

  auto plain = SuperFeRuntime::Create(Parse(kPolicy), RuntimeConfig{});
  ASSERT_TRUE(plain.ok());
  std::ostringstream none;
  EXPECT_FALSE((*plain)->WriteMetricsProm(none));
  EXPECT_FALSE((*plain)->WriteTraceJson(none));
}

TEST(ObsRuntimeTest, SerialModeMatchesToo) {
  RuntimeConfig config;
  config.obs.metrics = true;
  auto runtime = SuperFeRuntime::Create(Parse(kPolicy), config);
  ASSERT_TRUE(runtime.ok());

  const Trace trace = GenerateTrace(CampusProfile(), 10000, 3);
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  obs::MetricsRegistry* metrics = (*runtime)->metrics();

  EXPECT_EQ(metrics->Value("superfe_nic_cells_total", {{"nic", "0"}}).value_or(-1),
            report.nic.cells);
  EXPECT_EQ(metrics->Value("superfe_nic_vectors_emitted_total", {{"nic", "0"}}).value_or(-1),
            report.nic.vectors_emitted);
  EXPECT_EQ(metrics->Value("superfe_switch_packets_seen_total").value_or(-1),
            report.switch_stats.packets_seen);
}

}  // namespace
}  // namespace superfe
