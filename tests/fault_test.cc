// Chaos tests for the deterministic fault-injection framework
// (docs/ROBUSTNESS.md): the full fault-kind x shards x workers matrix with
// exact multiset reconciliation, per-group order across degraded-mode
// failover, watchdog stall detection, flush deadlines, bounded push
// timeouts, MGPV graceful overload, and bit-reproducibility of seeded
// plans. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/runtime.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "nicsim/mgpv_recorder.h"
#include "nicsim/nic_cluster.h"
#include "net/trace_gen.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

// Per-packet emission: every cell produces a vector, so the sink sees the
// exact per-group processing order.
const char* kPerPacketPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)";

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("fault", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

// Order-independent comparison key: (group key bytes, timestamp, values).
using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

RunReport RunWithPlan(const RuntimeConfig& config, const Trace& trace,
                      CollectingFeatureSink* sink) {
  auto policy = ParsePolicy("fault-rt", kFlowStatsPolicy);
  EXPECT_TRUE(policy.ok());
  auto runtime = SuperFeRuntime::Create(*policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  return (*runtime)->Run(trace, sink);
}

// The reconciliation invariant every chaos run must satisfy exactly.
void ExpectReconciled(const RunReport& report, const std::string& label) {
  ASSERT_TRUE(report.fault.enabled) << label;
  const FaultStats& fs = report.fault.stats;
  EXPECT_TRUE(report.fault.reconciled)
      << label << ": offered " << fs.cells_offered << " != processed "
      << report.fault.cells_processed << " + shed " << fs.cells_shed << " + lost "
      << fs.cells_lost_to_failover << " + overflow " << report.fault.overflow_cells_dropped;
}

TEST(FaultPlanTest, ParseRoundTrips) {
  const char* text = R"(
# chaos plan
crash member=1 at_packet=5000 detect_ms=2
stall member=0 at_ms=10 wall_ms=50
queue_sat member=2 at_packet=2000 dur_ms=5
pool_exhaust shard=0 at_ms=1 dur_ms=5
clock_skew shard=1 at_ms=0 skew_us=300
)";
  auto plan = FaultPlan::Parse(text);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->size(), 5u);
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*plan, *reparsed);
}

TEST(FaultPlanTest, BadPlansRejected) {
  EXPECT_FALSE(FaultPlan::Parse("explode member=0").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash bogus_key=1").ok());
  auto empty = FaultPlan::Parse("# only comments\n\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(FaultPlanTest, RandomPlansAreSeedDeterministic) {
  const FaultPlan a = FaultPlan::Random(42, 4, 2, 50'000'000, 6);
  const FaultPlan b = FaultPlan::Random(42, 4, 2, 50'000'000, 6);
  const FaultPlan c = FaultPlan::Random(43, 4, 2, 50'000'000, 6);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.size(), 6u);
}

// The tentpole matrix: every fault kind x shards {1,2,4} x workers {0,1,4}.
// Every combination must complete and reconcile exactly.
class ChaosMatrixTest
    : public ::testing::TestWithParam<std::tuple<FaultKind, uint32_t, uint32_t>> {};

TEST_P(ChaosMatrixTest, CompletesAndReconciles) {
  const auto [kind, shards, workers] = GetParam();
  const std::string label = std::string(FaultKindName(kind)) + "/shards=" +
                            std::to_string(shards) + "/workers=" + std::to_string(workers);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 7);
  const uint32_t members = std::max<uint32_t>(workers, 1);

  FaultEvent event;
  event.kind = kind;
  switch (kind) {
    case FaultKind::kMemberCrash:
      event.target = members > 1 ? 1 : 0;
      event.at_packet = 5000;
      event.detect_ns = 2'000'000;
      break;
    case FaultKind::kWorkerStall:
      event.target = 0;
      event.at_ns = 0;
      event.stall_wall_ms = 5;
      break;
    case FaultKind::kQueueSaturation:
      event.target = 0;
      event.at_packet = 10000;
      event.duration_ns = 0;  // Open-ended: guaranteed to bite.
      break;
    case FaultKind::kPoolExhaustion:
      event.target = 0;
      event.at_ns = 0;
      event.duration_ns = 0;  // Open-ended.
      break;
    case FaultKind::kClockSkew:
      event.target = 0;
      event.at_ns = 0;
      event.skew_ns = 250'000;
      break;
  }

  RuntimeConfig config;
  config.worker_threads = workers;
  config.switch_shards = shards;
  config.fault.plan.Add(event);
  CollectingFeatureSink sink;
  const RunReport report = RunWithPlan(config, trace, &sink);
  ExpectReconciled(report, label);
  const FaultStats& fs = report.fault.stats;
  switch (kind) {
    case FaultKind::kMemberCrash:
      EXPECT_EQ(fs.members_crashed, 1u) << label;
      EXPECT_GT(fs.cells_shed + fs.cells_failed_over + fs.cells_lost_to_failover, 0u)
          << label;
      EXPECT_TRUE(report.fault.degraded) << label;
      break;
    case FaultKind::kWorkerStall:
      // Stalls only fire on queued (parallel) workers with traffic.
      if (workers > 0) {
        EXPECT_EQ(fs.stalls_injected, 1u) << label;
      }
      break;
    case FaultKind::kQueueSaturation:
      EXPECT_GT(fs.saturated_pushes, 0u) << label;
      EXPECT_GT(fs.cells_shed, 0u) << label;
      EXPECT_TRUE(report.fault.degraded) << label;
      break;
    case FaultKind::kPoolExhaustion:
      EXPECT_GT(fs.injected_pool_exhaustions, 0u) << label;
      EXPECT_EQ(report.mgpv.injected_pool_failures, fs.injected_pool_exhaustions) << label;
      EXPECT_TRUE(report.fault.degraded) << label;
      break;
    case FaultKind::kClockSkew:
      // Skew perturbs only the measurement clock: nothing shed or lost.
      EXPECT_EQ(fs.cells_shed, 0u) << label;
      EXPECT_EQ(fs.cells_lost_to_failover, 0u) << label;
      EXPECT_FALSE(report.fault.degraded) << label;
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ChaosMatrixTest,
    ::testing::Combine(::testing::Values(FaultKind::kMemberCrash, FaultKind::kWorkerStall,
                                         FaultKind::kQueueSaturation,
                                         FaultKind::kPoolExhaustion, FaultKind::kClockSkew),
                       ::testing::Values(1u, 2u, 4u), ::testing::Values(0u, 1u, 4u)),
    [](const auto& info) {
      return std::string(FaultKindName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FaultDeterminismTest, SeededPlanIsBitReproducible) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 15000, 11);
  const FaultPlan plan = FaultPlan::Random(5, 4, 2, 50'000'000, 5);

  auto run_once = [&](FaultStats* stats, std::vector<VectorKey>* vectors) {
    RuntimeConfig config;
    config.worker_threads = 4;
    config.switch_shards = 2;
    config.fault.plan = plan;
    CollectingFeatureSink sink;
    const RunReport report = RunWithPlan(config, trace, &sink);
    ExpectReconciled(report, "seeded");
    *stats = report.fault.stats;
    *vectors = SortedMultiset(sink.vectors());
  };

  FaultStats first, second;
  std::vector<VectorKey> first_vectors, second_vectors;
  run_once(&first, &first_vectors);
  run_once(&second, &second_vectors);

  // The determinism contract: all reconciliation fields and the surviving
  // feature multiset are identical across repeats (wall-clock diagnostics
  // like watchdog_stall_events are explicitly exempt).
  EXPECT_EQ(first.reports_offered, second.reports_offered);
  EXPECT_EQ(first.cells_offered, second.cells_offered);
  EXPECT_EQ(first.reports_shed, second.reports_shed);
  EXPECT_EQ(first.cells_shed, second.cells_shed);
  EXPECT_EQ(first.reports_lost_to_failover, second.reports_lost_to_failover);
  EXPECT_EQ(first.cells_lost_to_failover, second.cells_lost_to_failover);
  EXPECT_EQ(first.reports_failed_over, second.reports_failed_over);
  EXPECT_EQ(first.cells_failed_over, second.cells_failed_over);
  EXPECT_EQ(first.groups_lost_in_flight, second.groups_lost_in_flight);
  EXPECT_EQ(first.groups_failed_over, second.groups_failed_over);
  EXPECT_EQ(first.groups_abandoned, second.groups_abandoned);
  EXPECT_EQ(first.members_crashed, second.members_crashed);
  EXPECT_EQ(first.injected_pool_exhaustions, second.injected_pool_exhaustions);
  EXPECT_EQ(first.saturated_pushes, second.saturated_pushes);
  EXPECT_EQ(first_vectors, second_vectors);
}

TEST(FaultDeterminismTest, EmptyPlanMatchesBaselineExactly) {
  // Zero-overhead-when-disabled: an empty plan creates no injector, so the
  // run must be identical to one with no fault config at all — even with
  // the flush/watchdog knobs armed.
  const Trace trace = GenerateTrace(EnterpriseProfile(), 15000, 23);
  auto policy = ParsePolicy("fault-base", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());

  RuntimeConfig baseline_config;
  baseline_config.worker_threads = 2;
  auto baseline_rt = SuperFeRuntime::Create(*policy, baseline_config);
  ASSERT_TRUE(baseline_rt.ok());
  CollectingFeatureSink baseline_sink;
  const RunReport baseline = (*baseline_rt)->Run(trace, &baseline_sink);

  RuntimeConfig armed_config;
  armed_config.worker_threads = 2;
  armed_config.fault.flush_timeout_ms = 5000;
  armed_config.fault.watchdog_interval_ms = 10;
  auto armed_rt = SuperFeRuntime::Create(*policy, armed_config);
  ASSERT_TRUE(armed_rt.ok());
  EXPECT_EQ((*armed_rt)->fault_injector(), nullptr);
  CollectingFeatureSink armed_sink;
  const RunReport armed = (*armed_rt)->Run(trace, &armed_sink);

  EXPECT_FALSE(armed.fault.enabled);
  EXPECT_EQ(SortedMultiset(baseline_sink.vectors()), SortedMultiset(armed_sink.vectors()));
  EXPECT_EQ(baseline.nic.cells, armed.nic.cells);
  EXPECT_EQ(baseline.nic.vectors_emitted, armed.nic.vectors_emitted);
  EXPECT_EQ(baseline.mgpv.reports_out, armed.mgpv.reports_out);
  EXPECT_EQ(baseline.mgpv.evictions[0], armed.mgpv.evictions[0]);
}

TEST(FaultChaosTest, RandomPlansAlwaysReconcile) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 12000, 31);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RuntimeConfig config;
    config.worker_threads = 4;
    config.switch_shards = 2;
    config.fault.plan = FaultPlan::Random(seed, 4, 2, 50'000'000, 4);
    CollectingFeatureSink sink;
    const RunReport report = RunWithPlan(config, trace, &sink);
    ExpectReconciled(report, "seed=" + std::to_string(seed));
  }
}

// --- Direct NicCluster tests: failover ordering, watchdog, deadlines ---

// Captures the switch output once so every cluster sees the same stream.
MgpvRecorder RecordStream(const CompiledPolicy& compiled, const Trace& trace) {
  MgpvRecorder recorder;
  FeSwitch fe(compiled, &recorder);
  for (const auto& pkt : trace.packets()) {
    fe.OnPacket(pkt);
  }
  fe.Flush();
  return recorder;
}

TEST(FaultFailoverTest, PerGroupOrderPreservedAcrossFailover) {
  const CompiledPolicy compiled = CompileSource(kPerPacketPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 41);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  // Crash member 0 at the median eviction time with a short detection
  // window: a healthy mix of primary, lost-in-flight, and failed-over
  // reports.
  std::vector<uint64_t> evict_times;
  for (const auto& msg : stream.messages()) {
    if (msg.kind == MgpvRecorder::Message::Kind::kReport) {
      evict_times.push_back(msg.report.evict_ns);
    }
  }
  ASSERT_GT(evict_times.size(), 100u);
  std::sort(evict_times.begin(), evict_times.end());
  const uint64_t crash_ns = evict_times[evict_times.size() / 2];

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kMemberCrash;
  crash.target = 0;
  crash.at_ns = crash_ns;
  crash.detect_ns = 500'000;
  plan.Add(crash);
  FaultInjector injector(plan);
  injector.BeginRun(3);

  CollectingFeatureSink sink;
  NicClusterOptions options;
  options.parallel = true;
  options.injector = &injector;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 3, &sink, options)).value();
  stream.DeliverTo(*cluster);
  cluster->Flush();

  const FaultStats fs = injector.Snapshot();
  EXPECT_EQ(fs.members_crashed, 1u);
  EXPECT_GT(fs.reports_failed_over, 0u);
  EXPECT_GT(fs.failover_fences, 0u);
  // Exact reconciliation with the cluster's processed cells (lossless
  // queues: no overflow bucket).
  EXPECT_EQ(fs.cells_offered, cluster->AggregateStats().cells + fs.cells_shed +
                                  fs.cells_lost_to_failover);

  // Per-group order: the serialized sink sees each group's vectors in
  // processing order, and per-packet timestamps are produced in
  // non-decreasing order per group — any overtaking across the handoff
  // would show up as a timestamp regression.
  std::unordered_map<std::string, uint64_t> last_ts;
  size_t checked = 0;
  for (const auto& v : sink.vectors()) {
    std::string key(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length);
    auto [it, inserted] = last_ts.emplace(std::move(key), v.timestamp_ns);
    if (!inserted) {
      EXPECT_GE(v.timestamp_ns, it->second) << "group order violated after failover";
      it->second = v.timestamp_ns;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(FaultWatchdogTest, DetectsInjectedStall) {
  const CompiledPolicy compiled = CompileSource(kPerPacketPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 8000, 51);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  FaultPlan plan;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 0;
  stall.at_ns = 0;  // First report.
  stall.stall_wall_ms = 200;
  plan.Add(stall);
  FaultInjector injector(plan);
  injector.BeginRun(1);

  CollectingFeatureSink sink;
  NicClusterOptions options;
  options.parallel = true;
  options.injector = &injector;
  options.enqueue_batch = 1;  // Keep the queue visibly non-empty.
  options.watchdog_interval_ms = 5;
  options.watchdog_timeout_ms = 20;
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 1, &sink, options)).value();
  stream.DeliverTo(*cluster);
  cluster->Flush();

  const FaultStats fs = injector.Snapshot();
  EXPECT_EQ(fs.stalls_injected, 1u);
  // The worker slept 200 ms with a loaded queue; the 20 ms watchdog must
  // have latched at least one stall event.
  EXPECT_GE(fs.watchdog_stall_events, 1u);
  // The stall delayed but lost nothing.
  EXPECT_EQ(fs.cells_offered, cluster->AggregateStats().cells);
}

// A sink the test can block, to wedge a worker deterministically.
class GatedSink : public FeatureSink {
 public:
  void OnFeatureVector(FeatureVector&&) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    arrived_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
  }

  void WaitForFirst() {
    std::unique_lock<std::mutex> lock(mu_);
    arrived_cv_.wait(lock, [&] { return arrived_ > 0; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable arrived_cv_;
  std::condition_variable open_cv_;
  bool open_ = false;
  int arrived_ = 0;
};

TEST(FaultDeadlineTest, FlushDeadlineExceededThenRecovers) {
  const CompiledPolicy compiled = CompileSource(kPerPacketPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 2000, 61);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  FaultInjector injector{FaultPlan{}};  // Empty plan: accounting only.
  injector.BeginRun(1);
  GatedSink gate;
  NicClusterOptions options;
  options.parallel = true;
  options.injector = &injector;
  options.queue_capacity = 1 << 16;  // Producer never blocks.
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 1, &gate, options)).value();

  stream.DeliverTo(*cluster);
  gate.WaitForFirst();  // Worker is wedged mid-report at the gate.
  const Status status = cluster->FlushWithDeadline(50);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(injector.Snapshot().flush_deadline_exceeded, 1u);

  gate.Open();  // Un-wedge: the abandoned barrier drains in the background.
  const Status retry = cluster->FlushWithDeadline(0);
  EXPECT_TRUE(retry.ok()) << retry.ToString();
}

TEST(FaultDeadlineTest, BoundedPushTimesOutInsteadOfBlockingForever) {
  const CompiledPolicy compiled = CompileSource(kPerPacketPolicy);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 3000, 71);
  const MgpvRecorder stream = RecordStream(compiled, trace);

  GatedSink gate;
  NicClusterOptions options;
  options.parallel = true;
  options.queue_capacity = 2;
  options.enqueue_batch = 1;
  options.push_timeout_ms = 20;  // Without this the delivery would deadlock.
  auto cluster =
      std::move(NicCluster::Create(compiled, FeNicConfig{}, 1, &gate, options)).value();
  stream.DeliverTo(*cluster);  // Completes only because pushes time out.
  const NicWorkerStats mid = cluster->worker_stats(0);
  EXPECT_GT(mid.reports_dropped, 0u);
  EXPECT_GT(mid.cells_dropped, 0u);
  gate.Open();
  cluster->Flush();
}

TEST(FaultMgpvTest, GracefulOverloadShedsPressureInsteadOfFailing) {
  // Starve the long-buffer pool: with graceful overload the cache evicts
  // the stalest long holder under pressure; without it, allocs just fail.
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 81);

  auto run_cache = [&](bool graceful) {
    MgpvConfig config;
    config.short_size = 1;
    config.long_buffers = 2;
    config.aging_timeout_ns = 0;  // Isolate the pressure path.
    config.graceful_overload = graceful;
    MgpvRecorder sink;
    MgpvCache cache(config, &sink);
    for (const auto& pkt : trace.packets()) {
      cache.Insert(pkt);
    }
    cache.Flush();
    return cache.stats();
  };

  const MgpvStats hard = run_cache(false);
  const MgpvStats graceful = run_cache(true);
  EXPECT_GT(hard.long_alloc_failures, 0u);
  EXPECT_EQ(hard.pressure_evictions, 0u);
  EXPECT_GT(graceful.pressure_evictions, 0u);
  EXPECT_LT(graceful.long_alloc_failures, hard.long_alloc_failures);
}

TEST(FaultObsTest, CountersExportedToMetricsRegistry) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 10000, 91);
  auto policy = ParsePolicy("fault-obs", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());

  RuntimeConfig config;
  config.worker_threads = 2;
  config.obs.metrics = true;
  FaultEvent crash;
  crash.kind = FaultKind::kMemberCrash;
  crash.target = 1;
  crash.at_packet = 2000;
  crash.detect_ns = 1'000'000;
  config.fault.plan.Add(crash);
  auto runtime = SuperFeRuntime::Create(*policy, config);
  ASSERT_TRUE(runtime.ok());
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);
  ExpectReconciled(report, "obs");

  std::ostringstream prom;
  ASSERT_TRUE((*runtime)->WriteMetricsProm(prom));
  EXPECT_NE(prom.str().find("superfe_fault_"), std::string::npos);
}

}  // namespace
}  // namespace superfe
