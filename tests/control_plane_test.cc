#include <gtest/gtest.h>

#include "net/trace_gen.h"
#include "policy/parser.h"
#include "switchsim/control_plane.h"

namespace superfe {
namespace {

class NullMgpvSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport&) override { ++reports; }
  void OnFgSync(const FgSyncMessage&) override {}
  int reports = 0;
};

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("cp", source);
  EXPECT_TRUE(policy.ok());
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

const char* kPolicy = R"(
pktstream
  .filter(tcp.exist && dst_port == 443)
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)";

TEST(ControlPlaneTest, InstallCreatesEntriesAndSwitch) {
  SwitchControlPlane control;
  NullMgpvSink sink;
  auto fe = control.InstallPolicy(CompileSource(kPolicy), &sink);
  ASSERT_TRUE(fe.ok()) << fe.status().ToString();
  EXPECT_TRUE(control.installed());
  // Filter entry + default rule.
  ASSERT_EQ(control.entries().size(), 2u);
  EXPECT_NE(control.entries()[0].match.find("proto == 6"), std::string::npos);
  EXPECT_NE(control.entries()[0].match.find("dst_port == 443"), std::string::npos);
  EXPECT_EQ(control.entries()[1].action, "drop_from_fe");
  EXPECT_GT(control.usage().salus, 0u);
  EXPECT_NE(control.Dump().find("policy installed"), std::string::npos);
}

TEST(ControlPlaneTest, DoubleInstallRejected) {
  SwitchControlPlane control;
  NullMgpvSink sink;
  ASSERT_TRUE(control.InstallPolicy(CompileSource(kPolicy), &sink).ok());
  auto second = control.InstallPolicy(CompileSource(kPolicy), &sink);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST(ControlPlaneTest, AdmissionControlRejectsOversizedPolicy) {
  TofinoCapacity tiny;
  tiny.salus = 4;  // Far below any MGPV program.
  SwitchControlPlane control(tiny);
  NullMgpvSink sink;
  auto fe = control.InstallPolicy(CompileSource(kPolicy), &sink);
  EXPECT_FALSE(fe.ok());
  EXPECT_EQ(fe.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(control.installed());
}

TEST(ControlPlaneTest, DrainFlushesAndFrees) {
  SwitchControlPlane control;
  NullMgpvSink sink;
  auto fe = control.InstallPolicy(CompileSource(kPolicy), &sink);
  ASSERT_TRUE(fe.ok());

  // Batch some packets, then drain: the flush must emit them.
  PacketRecord pkt;
  pkt.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1000, 443, kProtoTcp};
  pkt.wire_bytes = 100;
  (*fe)->OnPacket(pkt);
  EXPECT_EQ(sink.reports, 0);
  control.Drain();
  EXPECT_EQ(sink.reports, 1);
  EXPECT_FALSE(control.installed());
  EXPECT_TRUE(control.entries().empty());

  // A new policy installs cleanly afterwards.
  EXPECT_TRUE(control.InstallPolicy(CompileSource(kPolicy), &sink).ok());
}

TEST(ControlPlaneTest, AgingTimeoutAppliesToNextInstall) {
  SwitchControlPlane control;
  NullMgpvSink sink;
  ASSERT_TRUE(control.SetAgingTimeout(77000000).ok());
  auto fe = control.InstallPolicy(CompileSource(kPolicy), &sink);
  ASSERT_TRUE(fe.ok());
  EXPECT_EQ((*fe)->cache().config().aging_timeout_ns, 77000000u);
}

TEST(ControlPlaneTest, EmptyFilterInstallsCatchAll) {
  SwitchControlPlane control;
  NullMgpvSink sink;
  auto fe = control.InstallPolicy(CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)"),
                                  &sink);
  ASSERT_TRUE(fe.ok());
  EXPECT_EQ(control.entries()[0].match, "ipv4.isValid()");
}

}  // namespace
}  // namespace superfe
