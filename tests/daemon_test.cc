// Daemon-mode tests (docs/ROBUSTNESS.md, "Daemon mode"): rolling-epoch
// exactness against the one-shot oracle across the shards x workers matrix
// (including under a crash fault plan), per-epoch reconciliation at every
// boundary, signal-initiated graceful drain, the looped/streaming ingest
// sources, and the loopback socket source's damage tolerance. CI runs this
// binary under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/socket.h"
#include "core/runtime.h"
#include "net/ingest.h"
#include "net/trace_gen.h"
#include "net/wire.h"
#include "policy/parser.h"

namespace superfe {
namespace {

const char* kFlowStatsPolicy = R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum])
  .reduce(size, [f_sum, f_min, f_max])
  .reduce(ipt, [f_max])
  .collect(flow)
)";

using VectorKey = std::tuple<int, std::string, uint64_t, std::vector<double>>;

std::vector<VectorKey> SortedMultiset(const std::vector<FeatureVector>& vectors) {
  std::vector<VectorKey> keys;
  keys.reserve(vectors.size());
  for (const auto& v : vectors) {
    keys.emplace_back(static_cast<int>(v.group.granularity),
                      std::string(v.group.bytes.begin(), v.group.bytes.begin() + v.group.length),
                      v.timestamp_ns, v.values);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

RuntimeConfig MakeConfig(uint32_t shards, uint32_t workers, const std::string& plan = "") {
  RuntimeConfig config;
  config.switch_shards = shards;
  config.worker_threads = workers;
  if (!plan.empty()) {
    auto parsed = FaultPlan::Parse(plan);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    config.fault.plan = std::move(parsed).value();
  }
  return config;
}

// The one-shot oracle over the exact stream a looped daemon ingests.
std::vector<VectorKey> OneShotOracle(const Policy& policy, const RuntimeConfig& config,
                                     const Trace& trace, uint64_t loops,
                                     RunReport* report_out = nullptr) {
  const Trace looped = LoopedTraceSource::Materialize(trace, loops);
  auto runtime = SuperFeRuntime::Create(policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(looped, &sink);
  if (report_out != nullptr) {
    *report_out = report;
  }
  return SortedMultiset(sink.vectors());
}

DaemonReport RunDaemonOnce(const Policy& policy, const RuntimeConfig& config,
                           const Trace& trace, uint64_t loops,
                           const DaemonConfig& daemon_in,
                           std::vector<VectorKey>* vectors_out) {
  auto runtime = SuperFeRuntime::Create(policy, config);
  EXPECT_TRUE(runtime.ok()) << runtime.status().ToString();
  LoopedTraceSource source(&trace, loops);
  CollectingFeatureSink sink;
  DaemonConfig daemon = daemon_in;
  daemon.fault_trigger_trace = &trace;
  const DaemonReport report = (*runtime)->RunDaemon(source, &sink, daemon);
  if (vectors_out != nullptr) {
    *vectors_out = SortedMultiset(sink.vectors());
  }
  return report;
}

TEST(LoopedTraceSourceTest, MaterializeMatchesChunkStream) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 2000, 7);
  const uint64_t loops = 3;
  const Trace oracle = LoopedTraceSource::Materialize(trace, loops);

  LoopedTraceSource source(&trace, loops);
  std::vector<PacketRecord> streamed;
  std::vector<PacketRecord> chunk;
  // An odd chunk size exercises loop-boundary splits.
  while (source.NextChunk(&chunk, 777) == PacketSource::Next::kChunk) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    chunk.clear();
  }
  ASSERT_EQ(streamed.size(), oracle.packets().size());
  uint64_t prev_ts = 0;
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].timestamp_ns, oracle.packets()[i].timestamp_ns) << "at " << i;
    EXPECT_EQ(streamed[i].tuple, oracle.packets()[i].tuple) << "at " << i;
    EXPECT_GE(streamed[i].timestamp_ns, prev_ts) << "at " << i;
    prev_ts = streamed[i].timestamp_ns;
  }
  EXPECT_EQ(source.stats().loops_completed, loops);
  EXPECT_EQ(source.stats().frames, streamed.size());
}

TEST(StreamingReplayTest, ChunkedFeedMatchesWholeTraceReplay) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 8000, 13);
  auto policy = ParsePolicy("daemon", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());

  const RuntimeConfig config = MakeConfig(4, 0);
  const std::vector<VectorKey> oracle = OneShotOracle(*policy, config, trace, 1);

  auto runtime = SuperFeRuntime::Create(*policy, config);
  ASSERT_TRUE(runtime.ok());
  CollectingFeatureSink sink;
  DaemonConfig daemon;
  daemon.chunk_packets = 311;   // Deliberately unaligned with anything.
  daemon.epoch_packets = 0;     // No rotation: pure streaming-vs-batch.
  LoopedTraceSource source(&trace, 1);
  const DaemonReport report = (*runtime)->RunDaemon(source, &sink, daemon);
  EXPECT_TRUE(report.all_epochs_reconciled);
  EXPECT_EQ(report.epochs.size(), 1u);  // Only the final flush epoch.
  EXPECT_EQ(SortedMultiset(sink.vectors()), oracle);
}

TEST(DaemonEpochTest, RolloverExactnessAcrossShardWorkerMatrix) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 12000, 29);
  auto policy = ParsePolicy("daemon", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());
  const uint64_t loops = 2;

  for (uint32_t shards : {1u, 4u}) {
    for (uint32_t workers : {0u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      const RuntimeConfig config = MakeConfig(shards, workers);
      const std::vector<VectorKey> oracle = OneShotOracle(*policy, config, trace, loops);

      DaemonConfig daemon;
      daemon.chunk_packets = 1000;
      daemon.epoch_packets = 5000;  // Several rotations per run.
      std::vector<VectorKey> got;
      const DaemonReport report =
          RunDaemonOnce(*policy, config, trace, loops, daemon, &got);
      EXPECT_EQ(got, oracle);
      EXPECT_TRUE(report.all_epochs_reconciled);
      EXPECT_TRUE(report.drained);
      EXPECT_GE(report.epochs.size(), 3u);
      EXPECT_TRUE(report.epochs.back().final_epoch);
      uint64_t total_vectors = 0;
      for (const DaemonEpoch& e : report.epochs) {
        EXPECT_TRUE(e.reconciled) << "epoch " << e.index;
        total_vectors += e.vectors;
      }
      // Per-epoch deltas tile the run exactly: no vector is double-counted
      // or dropped by the boundary accounting.
      EXPECT_EQ(total_vectors, report.run.nic.vectors_emitted);
      EXPECT_EQ(static_cast<uint64_t>(got.size()), total_vectors);
    }
  }
}

TEST(DaemonEpochTest, RolloverExactnessUnderCrashFaultPlan) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 12000, 31);
  auto policy = ParsePolicy("daemon", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());
  // A crash mid-run: failover reroutes the dead member's CG range, the
  // detection window loses in-flight reports, flush abandons residual
  // state — all on the deterministic trace-time axis, so daemon and
  // one-shot see byte-identical fault decisions.
  const std::string plan = "crash member=1 at_packet=6000 detect_ms=2";

  for (uint32_t shards : {1u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const RuntimeConfig config = MakeConfig(shards, 4, plan);
    RunReport oneshot;
    const std::vector<VectorKey> oracle =
        OneShotOracle(*policy, config, trace, 1, &oneshot);
    ASSERT_TRUE(oneshot.fault.reconciled);
    ASSERT_GT(oneshot.fault.stats.members_crashed, 0u);

    DaemonConfig daemon;
    daemon.chunk_packets = 1000;
    daemon.epoch_packets = 4000;
    std::vector<VectorKey> got;
    const DaemonReport report = RunDaemonOnce(*policy, config, trace, 1, daemon, &got);
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(report.all_epochs_reconciled);
    EXPECT_TRUE(report.drained);
    EXPECT_GE(report.epochs.size(), 2u);
    for (const DaemonEpoch& e : report.epochs) {
      EXPECT_TRUE(e.reconciled) << "epoch " << e.index;
    }
    // The crash's losses land in some epoch's ledger, not between epochs.
    uint64_t lost = 0, shed = 0;
    bool any_fault_epoch = false;
    for (const DaemonEpoch& e : report.epochs) {
      lost += e.cells_lost;
      shed += e.cells_shed;
      any_fault_epoch = any_fault_epoch || e.fault_active;
    }
    EXPECT_EQ(lost, report.run.fault.stats.cells_lost_to_failover);
    EXPECT_EQ(shed, report.run.fault.stats.cells_shed);
    EXPECT_TRUE(any_fault_epoch);
    // Same deterministic fault outcome as the one-shot oracle.
    EXPECT_EQ(report.run.fault.stats.cells_offered, oneshot.fault.stats.cells_offered);
    EXPECT_EQ(report.run.fault.stats.cells_lost_to_failover,
              oneshot.fault.stats.cells_lost_to_failover);
    EXPECT_EQ(report.run.fault.stats.cells_shed, oneshot.fault.stats.cells_shed);
  }
}

TEST(DaemonDrainTest, SignalMidRunDrainsCleanly) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 6000, 37);
  auto policy = ParsePolicy("daemon", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());
  const RuntimeConfig config = MakeConfig(4, 4);
  auto runtime = SuperFeRuntime::Create(*policy, config);
  ASSERT_TRUE(runtime.ok());

  // Endless looped ingest; a watcher thread raises the stop flag mid-run
  // like a SIGTERM handler would.
  LoopedTraceSource source(&trace, /*loops=*/0);
  std::atomic<int> stop{0};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(15, std::memory_order_relaxed);  // SIGTERM's number.
  });

  CollectingFeatureSink sink;
  DaemonConfig daemon;
  daemon.chunk_packets = 500;
  daemon.epoch_packets = 3000;
  daemon.stop = &stop;
  daemon.fault_trigger_trace = &trace;
  const DaemonReport report = (*runtime)->RunDaemon(source, &sink, daemon);
  killer.join();

  EXPECT_TRUE(report.stopped_by_signal);
  EXPECT_EQ(report.signal, 15);
  EXPECT_TRUE(report.drained);
  EXPECT_TRUE(report.all_epochs_reconciled);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_TRUE(report.epochs.back().final_epoch);
  // Everything fed before the signal was fully processed: the vector count
  // ties out against the per-epoch ledgers.
  uint64_t total_vectors = 0;
  for (const DaemonEpoch& e : report.epochs) {
    EXPECT_TRUE(e.reconciled) << "epoch " << e.index;
    total_vectors += e.vectors;
  }
  EXPECT_EQ(total_vectors, static_cast<uint64_t>(sink.vectors().size()));
}

TEST(DaemonEpochTest, MaxEpochsAndTimeRotationBound) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 4000, 41);
  auto policy = ParsePolicy("daemon", kFlowStatsPolicy);
  ASSERT_TRUE(policy.ok());
  auto runtime = SuperFeRuntime::Create(*policy, MakeConfig(1, 0));
  ASSERT_TRUE(runtime.ok());
  LoopedTraceSource source(&trace, /*loops=*/0);  // Endless.
  CollectingFeatureSink sink;
  DaemonConfig daemon;
  daemon.chunk_packets = 400;
  daemon.epoch_packets = 800;
  daemon.max_epochs = 3;  // Rotated epochs; the final flush epoch is extra.
  daemon.fault_trigger_trace = &trace;
  const DaemonReport report = (*runtime)->RunDaemon(source, &sink, daemon);
  EXPECT_EQ(report.epochs.size(), 4u);
  EXPECT_FALSE(report.stopped_by_signal);
  EXPECT_TRUE(report.all_epochs_reconciled);
  EXPECT_TRUE(report.drained);
}

// ---- Loopback socket ingest -----------------------------------------------

std::string FrameRecords(const std::vector<PacketRecord>& records) {
  std::string wire;
  for (const PacketRecord& r : records) {
    AppendIngestRecord(&wire, r);
  }
  return wire;
}

TEST(SocketSourceTest, TcpDeliversFramedRecords) {
  SocketSourceOptions opts;
  opts.port = 0;  // Ephemeral.
  auto source = SocketSource::Open(opts);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 200, 43);
  const std::string wire = FrameRecords(trace.packets());

  std::thread sender([&, port = (*source)->port()] {
    const int fd = TcpConnect(port, 1000);
    ASSERT_GE(fd, 0);
    // Two sends split mid-record to exercise byte reassembly.
    const size_t split = wire.size() / 2 + 7;
    ASSERT_TRUE(SendAll(fd, std::string_view(wire).substr(0, split)));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(SendAll(fd, std::string_view(wire).substr(split)));
    CloseFd(fd);
  });

  std::vector<PacketRecord> got;
  std::vector<PacketRecord> chunk;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < trace.packets().size() &&
         std::chrono::steady_clock::now() < deadline) {
    chunk.clear();
    const PacketSource::Next next = (*source)->NextChunk(&chunk, 64);
    if (next == PacketSource::Next::kEnd) {
      break;
    }
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  sender.join();
  ASSERT_EQ(got.size(), trace.packets().size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp_ns, trace.packets()[i].timestamp_ns) << "at " << i;
    EXPECT_EQ(got[i].tuple, trace.packets()[i].tuple) << "at " << i;
    EXPECT_EQ(got[i].direction, trace.packets()[i].direction) << "at " << i;
  }
  EXPECT_EQ((*source)->stats().frames, got.size());
  EXPECT_EQ((*source)->stats().frames_damaged, 0u);
}

TEST(SocketSourceTest, DamagedFrameSkippedStreamStaysSynced) {
  SocketSourceOptions opts;
  opts.port = 0;
  auto source = SocketSource::Open(opts);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 20, 47);
  std::string wire;
  AppendIngestRecord(&wire, trace.packets()[0]);
  // A framed-but-garbage record: valid length header, unparseable payload.
  // The source must count it damaged and resynchronize on the next record.
  {
    const uint32_t len = static_cast<uint32_t>(kMinFrameLen);
    char header[kIngestHeaderLen] = {};
    std::memcpy(header, &len, 4);  // Little-endian on every supported arch.
    wire.append(header, sizeof(header));
    wire.append(kMinFrameLen, '\xff');
  }
  AppendIngestRecord(&wire, trace.packets()[1]);

  std::thread sender([&, port = (*source)->port()] {
    const int fd = TcpConnect(port, 1000);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, wire));
    CloseFd(fd);
  });

  std::vector<PacketRecord> got;
  std::vector<PacketRecord> chunk;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    chunk.clear();
    if ((*source)->NextChunk(&chunk, 16) == PacketSource::Next::kEnd) {
      break;
    }
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  sender.join();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tuple, trace.packets()[0].tuple);
  EXPECT_EQ(got[1].tuple, trace.packets()[1].tuple);
  EXPECT_EQ((*source)->stats().frames_damaged, 1u);
}

TEST(SocketSourceTest, UdpDeliversOneRecordPerDatagram) {
  SocketSourceOptions opts;
  opts.port = 0;
  opts.udp = true;
  auto source = SocketSource::Open(opts);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 50, 53);
  std::thread sender([&, port = (*source)->port()] {
    const int fd = UdpConnect(port);
    ASSERT_GE(fd, 0);
    for (const PacketRecord& r : trace.packets()) {
      std::string datagram;
      AppendIngestRecord(&datagram, r);
      ASSERT_TRUE(SendAll(fd, datagram));
      // Loopback UDP can still drop under burst; pace the writes.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    CloseFd(fd);
  });

  std::vector<PacketRecord> got;
  std::vector<PacketRecord> chunk;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < trace.packets().size() &&
         std::chrono::steady_clock::now() < deadline) {
    chunk.clear();
    if ((*source)->NextChunk(&chunk, 16) == PacketSource::Next::kEnd) {
      break;
    }
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  sender.join();
  // UDP is lossy by nature even on loopback; require substantial delivery
  // and exact decoding of what arrived.
  ASSERT_GE(got.size(), trace.packets().size() / 2);
  for (const PacketRecord& r : got) {
    EXPECT_GT(r.wire_bytes, 0u);
  }
  EXPECT_EQ((*source)->stats().frames, got.size());
}

}  // namespace
}  // namespace superfe
