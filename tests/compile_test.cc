#include <gtest/gtest.h>

#include "apps/policies.h"
#include "policy/compile.h"
#include "policy/parser.h"

namespace superfe {
namespace {

Policy Parse(const std::string& src) {
  auto policy = ParsePolicy("t", src);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(policy).value();
}

TEST(CompileTest, PartitionsFilterAndGroupByToSwitch) {
  auto compiled = Compile(Parse(R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->switch_program.filter.conjuncts.size(), 1u);
  EXPECT_EQ(compiled->switch_program.chain.size(), 1u);
  EXPECT_EQ(compiled->switch_program.cg(), Granularity::kFlow);
  EXPECT_EQ(compiled->nic_program.maps.size(), 1u);
  EXPECT_EQ(compiled->nic_program.reduces.size(), 1u);
}

TEST(CompileTest, MetadataLayoutOnlyWhatIsUsed) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->switch_program.fields.size(), 1u);
  EXPECT_EQ(compiled->switch_program.fields[0], MetaField::kSize);
  EXPECT_EQ(compiled->switch_program.MetadataBytesPerPacket(), 2u);
}

TEST(CompileTest, IptPullsInTimestamp) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(ipt, [f_mean])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  bool has_tstamp = false;
  for (MetaField f : compiled->switch_program.fields) {
    has_tstamp |= f == MetaField::kTimestamp;
  }
  EXPECT_TRUE(has_tstamp);
}

TEST(CompileTest, BidirectionalReducePullsInDirection) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(channel)
  .reduce(size, [f_mag])
  .collect(channel)
)"));
  ASSERT_TRUE(compiled.ok());
  bool has_dir = false;
  for (MetaField f : compiled->switch_program.fields) {
    has_dir |= f == MetaField::kDirection;
  }
  EXPECT_TRUE(has_dir);
}

TEST(CompileTest, MultiGranularityAddsFgIndex) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(host, socket)
  .reduce(size, [f_mean])
  .collect(pkt)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->switch_program.multi_granularity());
  EXPECT_EQ(compiled->switch_program.cg(), Granularity::kHost);
  EXPECT_EQ(compiled->switch_program.fg(), Granularity::kSocket);
  // size (2) + direction? no + fg index (2).
  EXPECT_GE(compiled->switch_program.MetadataBytesPerPacket(), 4u);
}

TEST(CompileTest, FeatureDimensionScalar) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean, f_var, f_min, f_max])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), 4u);
}

TEST(CompileTest, FeatureDimensionHistogram) {
  auto ok = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [ft_hist{100, 16}])
  .collect(flow)
)"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->nic_program.FeatureDimension(), 16u);
}

TEST(CompileTest, ReduceBeforeDefiningMapFails) {
  auto policy = ParsePolicy("bad", R"(
pktstream
  .groupby(flow)
  .reduce(ipt2, [f_sum])
  .map(ipt2, tstamp, f_ipt)
  .collect(flow)
)");
  EXPECT_FALSE(policy.ok());
}

TEST(CompileTest, DimensionMultipliesAcrossGranularities) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(host, channel, socket)
  .reduce(size, [f_mean, f_var])
  .collect(pkt)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), 6u);  // 2 x 3 granularities.
}

TEST(CompileTest, RestrictedReduceOnlyCountsOnce) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(host, channel)
  .reduce(size, [f_mean], host)
  .reduce(size, [f_var], channel)
  .collect(pkt)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), 2u);
  ASSERT_EQ(compiled->nic_program.layout.size(), 2u);
  EXPECT_EQ(compiled->nic_program.layout[0].granularity, Granularity::kHost);
  EXPECT_EQ(compiled->nic_program.layout[1].granularity, Granularity::kChannel);
}

TEST(CompileTest, OnlyFeaturesBeforeCollectAreCaptured) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->nic_program.layout.size(), 1u);
}

TEST(CompileTest, SynthChainCapturedInSlot) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .map(dirsize, size, f_direction)
  .reduce(dirsize, [f_array{500}])
  .synthesize(f_marker(dirsize.f_array))
  .synthesize(ft_sample(dirsize.f_array, 100))
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->nic_program.layout.size(), 1u);
  const auto& slot = compiled->nic_program.layout[0];
  ASSERT_EQ(slot.synths.size(), 2u);
  EXPECT_EQ(slot.synths[0].fn, SynthFn::kMarker);
  EXPECT_EQ(slot.synths[1].fn, SynthFn::kSample);
  EXPECT_EQ(slot.Width(), 100u);
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), 100u);
}

TEST(CompileTest, StatesExpandedPerGranularity) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(host, channel)
  .reduce(size, [f_mean])
  .collect(pkt)
)"));
  ASSERT_TRUE(compiled.ok());
  // One mean state per granularity instance.
  EXPECT_EQ(compiled->nic_program.states.size(), 2u);
  EXPECT_GT(compiled->nic_program.StateBytesPerGroup(), 0u);
}

TEST(CompileTest, CostsCountDivisions) {
  auto compiled = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean, f_var])
  .collect(flow)
)"));
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->nic_program.DivisionsPerPacket(), 0u);
  EXPECT_GT(compiled->nic_program.AluOpsPerPacket(), 0u);
  EXPECT_GT(compiled->nic_program.MemWordsPerPacket(), 0u);
}

TEST(CompileTest, CgKeyBytesByGranularity) {
  auto host = Compile(Parse(R"(
pktstream
  .groupby(host)
  .reduce(size, [f_sum])
  .collect(host)
)"));
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host->switch_program.CgKeyBytes(), 4u);

  auto flow = Compile(Parse(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)"));
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(flow->switch_program.CgKeyBytes(), 13u);
}

// ---- Table 3: every app policy compiles to its published dimension ----

class AppDimensionTest : public ::testing::TestWithParam<int> {};

TEST_P(AppDimensionTest, MatchesTable3Dimension) {
  const AppPolicy app = AllAppPolicies()[GetParam()];
  auto compiled = Compile(app.policy);
  ASSERT_TRUE(compiled.ok()) << app.name << ": " << compiled.status().ToString();
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), app.paper_dimension) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppDimensionTest,
                         ::testing::Range(0, 10), [](const auto& info) {
                           std::string name = AllAppPolicies()[info.param].name;
                           for (auto& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace superfe
