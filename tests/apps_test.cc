#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/policies.h"
#include "core/runtime.h"
#include "net/attack_gen.h"
#include "net/trace_gen.h"
#include "policy/compile.h"

namespace superfe {
namespace {

TEST(AppPoliciesTest, AllTenPresent) {
  const auto apps = AllAppPolicies();
  ASSERT_EQ(apps.size(), 10u);
  std::set<std::string> names;
  for (const auto& app : apps) {
    names.insert(app.name);
  }
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(names.count("Kitsune"));
  EXPECT_TRUE(names.count("CUMUL"));
}

TEST(AppPoliciesTest, LookupByName) {
  auto app = AppPolicyByName("NPOD");
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app->paper_dimension, 37u);
  EXPECT_FALSE(AppPolicyByName("NoSuchApp").ok());
}

TEST(AppPoliciesTest, LocIsPositiveAndConcise) {
  for (const auto& app : AllAppPolicies()) {
    const int loc = app.policy.LinesOfCode();
    EXPECT_GT(loc, 3) << app.name;
    EXPECT_LT(loc, 120) << app.name;  // Concise (Table 3's point).
  }
}

TEST(AppPoliciesTest, WfpPoliciesAreSmallest) {
  // The paper's Table 3: AWF/DF/TF are the most concise (9 LoC).
  auto awf = AppPolicyByName("AWF");
  auto mptd = AppPolicyByName("MPTD");
  ASSERT_TRUE(awf.ok() && mptd.ok());
  EXPECT_LT(awf->policy.LinesOfCode(), mptd->policy.LinesOfCode());
}

// Every app policy must compile and run end-to-end over real traffic.
class AppEndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(AppEndToEndTest, CompilesAndRuns) {
  const AppPolicy app = AllAppPolicies()[GetParam()];
  RuntimeConfig config;
  auto runtime = SuperFeRuntime::Create(app.policy, config);
  ASSERT_TRUE(runtime.ok()) << app.name << ": " << runtime.status().ToString();

  const Trace trace = GenerateTrace(EnterpriseProfile(), 5000, 12 + GetParam());
  CollectingFeatureSink sink;
  const RunReport report = (*runtime)->Run(trace, &sink);

  EXPECT_GT(sink.vectors().size(), 0u) << app.name;
  const uint32_t dim = Compile(app.policy)->nic_program.FeatureDimension();
  for (const auto& v : sink.vectors()) {
    ASSERT_EQ(v.values.size(), dim) << app.name;
    for (double x : v.values) {
      EXPECT_TRUE(std::isfinite(x)) << app.name;
    }
  }
  EXPECT_GT(report.sustainable_gbps, 0.0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppEndToEndTest, ::testing::Range(0, 10),
                         [](const auto& info) {
                           std::string name = AllAppPolicies()[info.param].name;
                           for (auto& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(AppPoliciesTest, KitsuneVectorDimIs115) {
  auto compiled = Compile(KitsunePolicy());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->nic_program.FeatureDimension(), 115u);
  EXPECT_EQ(compiled->switch_program.chain.size(), 3u);
  EXPECT_TRUE(compiled->nic_program.collect.per_packet);
}

TEST(AppPoliciesTest, DirectionSequenceValuesAreSigns) {
  auto runtime = SuperFeRuntime::Create(TfPolicy(), RuntimeConfig{});
  ASSERT_TRUE(runtime.ok());
  const LabeledFlowSet sessions = GenerateWebsiteSessions(2, 2, 14);
  Trace trace;
  for (const auto& flow : sessions.flows) {
    for (const auto& pkt : flow) {
      trace.Add(pkt);
    }
  }
  trace.SortByTime();
  CollectingFeatureSink sink;
  (*runtime)->Run(trace, &sink);
  ASSERT_GT(sink.vectors().size(), 0u);
  for (const auto& v : sink.vectors()) {
    for (double x : v.values) {
      EXPECT_TRUE(x == 1.0 || x == -1.0 || x == 0.0);
    }
  }
}

}  // namespace
}  // namespace superfe
