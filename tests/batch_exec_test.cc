// Equivalence tests for the SoA batch execution path: UpdateGroupBatch vs
// per-cell UpdateGroup, and FeNic with batch kernels on vs off, under the
// exactness contract of streaming/batch.h (bit-identical for the NIC's
// integer/fixed-point kernels, same multiset of vectors end to end).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/feature_vector.h"
#include "nicsim/exec.h"
#include "nicsim/fe_nic.h"
#include "policy/compile.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

ExecPlan PlanFor(const std::string& source) {
  auto plan = ExecPlan::FromProgram(CompileSource(source).nic_program);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

MgpvCell Cell(const FiveTuple& tuple, double size, uint64_t ts_ns, Direction dir) {
  MgpvCell cell;
  cell.size = static_cast<uint16_t>(size);
  cell.full_timestamp_ns = ts_ns;
  cell.tstamp = static_cast<uint32_t>(ts_ns);
  cell.direction = dir;
  cell.fg_tuple = tuple;
  return cell;
}

// Random mixed-group report stream: `flows` five-tuples sharing a few hosts,
// interleaved cells with monotone timestamps and mixed directions.
std::vector<MgpvReport> MakeReports(uint64_t seed, int flows, int cells_per_report,
                                    int reports) {
  Rng rng(seed);
  std::vector<FiveTuple> tuples;
  for (int f = 0; f < flows; ++f) {
    tuples.push_back({static_cast<uint32_t>(0x0a000001 + f % 3),
                      static_cast<uint32_t>(0xac100001 + f % 5),
                      static_cast<uint16_t>(1000 + f), 80, kProtoTcp});
  }
  std::vector<MgpvReport> out;
  uint64_t ts = 1;
  for (int r = 0; r < reports; ++r) {
    MgpvReport report;
    report.cg_key = GroupKey::FromFgTuple(tuples[0], Granularity::kHost);
    report.hash = report.cg_key.Hash();
    for (int c = 0; c < cells_per_report; ++c) {
      const FiveTuple& t = tuples[rng.UniformU64(tuples.size())];
      ts += 1000 + rng.UniformU64(100000);
      const Direction dir =
          rng.Bernoulli(0.5) ? Direction::kForward : Direction::kBackward;
      report.cells.push_back(
          Cell(t, 64 + static_cast<double>(rng.UniformU64(1400)), ts, dir));
    }
    out.push_back(std::move(report));
  }
  return out;
}

const char* kRichPolicy = R"(
pktstream
  .groupby(host, socket)
  .map(one, _, f_one)
  .map(ipt, tstamp, f_ipt)
  .reduce(one, [f_sum], host)
  .reduce(size, [f_mean, f_var, f_min, f_max], host)
  .reduce(size, [f_mean, f_std], socket)
  .reduce(ipt, [f_mean, f_max], socket)
  .collect(socket)
)";

TEST(BatchExecTest, UpdateGroupBatchMatchesPerCellUpdates) {
  // One group's cells, applied per-cell vs as one batch run: identical
  // features under NIC arithmetic (integer Welford, exact integral sums).
  const ExecPlan plan = PlanFor(kRichPolicy);
  const ExecOptions options{};  // nic_arithmetic = true.
  const std::vector<MgpvReport> reports = MakeReports(7, /*flows=*/1, 64, 4);

  for (size_t gi = 0; gi < plan.per_granularity.size(); ++gi) {
    GroupState scalar = GroupState::Make(plan, gi, options);
    for (const auto& report : reports) {
      for (const auto& cell : report.cells) {
        UpdateGroup(plan, gi, scalar, cell);
      }
    }

    GroupState batch = GroupState::Make(plan, gi, options);
    PacketBatchSoA soa;
    soa.Assemble(reports.data(), reports.size());
    soa.SortByPrefix(
        PacketBatchSoA::KeyPrefixBytes(plan.per_granularity[gi].granularity));
    UpdateGroupBatch(plan, gi, batch, soa, 0, soa.rows());

    EXPECT_EQ(batch.packets, scalar.packets);
    EXPECT_EQ(batch.last_seen_ns, scalar.last_seen_ns);
    std::vector<double> from_scalar, from_batch;
    EmitGroupFeatures(plan, gi, scalar, from_scalar);
    EmitGroupFeatures(plan, gi, batch, from_batch);
    ASSERT_EQ(from_batch.size(), from_scalar.size());
    for (size_t i = 0; i < from_scalar.size(); ++i) {
      EXPECT_DOUBLE_EQ(from_batch[i], from_scalar[i])
          << "gi=" << gi << " feature " << i;
    }
  }
}

TEST(BatchExecTest, SoaSortKeepsPerGroupArrivalOrder) {
  // At every granularity prefix, the stable sort must keep each group's
  // internal cell order — arrival order, i.e. non-decreasing timestamps
  // here (the ipt/burst recurrences depend on it).
  const std::vector<MgpvReport> reports = MakeReports(11, /*flows=*/8, 32, 6);
  PacketBatchSoA soa;
  soa.Assemble(reports.data(), reports.size());
  ASSERT_EQ(soa.rows(), 6u * 32u);
  for (const Granularity g :
       {Granularity::kHost, Granularity::kChannel, Granularity::kFlow}) {
    const int prefix = PacketBatchSoA::KeyPrefixBytes(g);
    soa.SortByPrefix(prefix);
    for (size_t i = 1; i < soa.rows(); ++i) {
      if (soa.SamePrefix(i - 1, i, prefix)) {
        EXPECT_LE(soa.tstamp_ns[i - 1], soa.tstamp_ns[i])
            << "granularity prefix " << prefix << " row " << i;
      }
    }
  }
}

std::vector<FeatureVector> SortedVectors(CollectingFeatureSink& sink) {
  std::vector<FeatureVector> vs = sink.vectors();
  std::sort(vs.begin(), vs.end(), [](const FeatureVector& a, const FeatureVector& b) {
    if (a.group.length != b.group.length) {
      return a.group.length < b.group.length;
    }
    const int c = std::memcmp(a.group.bytes.data(), b.group.bytes.data(), a.group.length);
    if (c != 0) {
      return c < 0;
    }
    return a.timestamp_ns < b.timestamp_ns;
  });
  return vs;
}

void ExpectSameVectors(CollectingFeatureSink& batch_sink,
                       CollectingFeatureSink& scalar_sink) {
  const std::vector<FeatureVector> batch = SortedVectors(batch_sink);
  const std::vector<FeatureVector> scalar = SortedVectors(scalar_sink);
  ASSERT_EQ(batch.size(), scalar.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].group, scalar[i].group) << "vector " << i;
    ASSERT_EQ(batch[i].values.size(), scalar[i].values.size());
    for (size_t j = 0; j < batch[i].values.size(); ++j) {
      EXPECT_DOUBLE_EQ(batch[i].values[j], scalar[i].values[j])
          << "vector " << i << " value " << j;
    }
  }
}

void RunBothPaths(const char* policy_src, FeNicConfig base_config) {
  const CompiledPolicy compiled = CompileSource(policy_src);
  const std::vector<MgpvReport> reports = MakeReports(23, /*flows=*/10, 48, 8);

  FeNicConfig batch_config = base_config;
  batch_config.batch_kernels = true;
  CollectingFeatureSink batch_sink;
  auto batch_nic = std::move(FeNic::Create(compiled, batch_config, &batch_sink)).value();
  batch_nic->OnMgpvBatch(reports.data(), reports.size());
  batch_nic->Flush();

  FeNicConfig scalar_config = base_config;
  scalar_config.batch_kernels = false;
  CollectingFeatureSink scalar_sink;
  auto scalar_nic =
      std::move(FeNic::Create(compiled, scalar_config, &scalar_sink)).value();
  for (const auto& report : reports) {
    scalar_nic->OnMgpv(report);
  }
  scalar_nic->Flush();

  // The batch path runs the same number of cells through the same policy.
  EXPECT_EQ(batch_nic->stats().cells, scalar_nic->stats().cells);
  ExpectSameVectors(batch_sink, scalar_sink);
}

TEST(BatchExecTest, FeNicBatchAndScalarPathsEmitIdenticalVectors) {
  RunBothPaths(kRichPolicy, FeNicConfig{});
}

TEST(BatchExecTest, FeNicBatchMatchesScalarWithIdleTimeout) {
  // idle_timeout_ns > 0 forces per-report batches (eviction decisions are
  // report-boundary); results must still match the scalar path.
  FeNicConfig config;
  config.idle_timeout_ns = 50000;
  RunBothPaths(kRichPolicy, config);
}

TEST(BatchExecTest, FeNicBatchMatchesScalarOnCardinalityAndHistogram) {
  RunBothPaths(R"(
pktstream
  .groupby(host, flow)
  .map(one, _, f_one)
  .reduce(fgkey, [f_card], host)
  .reduce(size, [ft_hist{1600, 16}], flow)
  .reduce(size, [ft_percent{0.9}], flow)
  .collect(flow)
)",
               FeNicConfig{});
}

TEST(BatchExecTest, PerPacketCollectFallsBackToScalarPath) {
  // Per-packet collection emits a snapshot per cell; the batch router must
  // take the scalar path so snapshots stay per-cell. Just verify the two
  // configs agree (both run the scalar path).
  RunBothPaths(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)",
               FeNicConfig{});
}

}  // namespace
}  // namespace superfe
