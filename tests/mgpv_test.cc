#include <gtest/gtest.h>

#include "net/trace_gen.h"
#include "switchsim/fe_switch.h"
#include "switchsim/mgpv.h"
#include "switchsim/resources.h"
#include "policy/parser.h"
#include "policy/compile.h"

namespace superfe {
namespace {

class RecordingSink : public MgpvSink {
 public:
  void OnMgpv(const MgpvReport& report) override { reports.push_back(report); }
  void OnFgSync(const FgSyncMessage& sync) override { syncs.push_back(sync); }

  std::vector<MgpvReport> reports;
  std::vector<FgSyncMessage> syncs;

  size_t TotalCells() const {
    size_t n = 0;
    for (const auto& r : reports) {
      n += r.cells.size();
    }
    return n;
  }
};

MgpvConfig SmallConfig() {
  MgpvConfig config;
  config.short_buffers = 64;
  config.short_size = 4;
  config.long_buffers = 8;
  config.long_size = 20;
  config.fg_table_size = 64;
  config.aging_timeout_ns = 0;  // Off unless a test enables it.
  config.cg = Granularity::kFlow;
  config.fg = Granularity::kFlow;
  config.metadata_bytes_per_cell = 7;
  return config;
}

PacketRecord Pkt(uint32_t src, uint16_t sport, uint64_t ts, uint32_t bytes = 100) {
  PacketRecord pkt;
  pkt.tuple = {src, MakeIp(172, 16, 0, 1), sport, 80, kProtoTcp};
  pkt.timestamp_ns = ts;
  pkt.wire_bytes = bytes;
  pkt.direction = Direction::kForward;
  return pkt;
}

TEST(MgpvTest, NoEvictionUntilFlush) {
  RecordingSink sink;
  MgpvCache cache(SmallConfig(), &sink);
  for (int i = 0; i < 3; ++i) {
    cache.Insert(Pkt(1, 1000, i * 1000));
  }
  EXPECT_TRUE(sink.reports.empty());
  cache.Flush();
  ASSERT_EQ(sink.reports.size(), 1u);
  EXPECT_EQ(sink.reports[0].cells.size(), 3u);
  EXPECT_EQ(sink.reports[0].reason, EvictReason::kFlush);
}

TEST(MgpvTest, AllCellsAccountedFor) {
  RecordingSink sink;
  MgpvCache cache(SmallConfig(), &sink);
  const Trace trace = GenerateTrace(EnterpriseProfile(), 20000, 1);
  for (const auto& pkt : trace.packets()) {
    cache.Insert(pkt);
  }
  cache.Flush();
  EXPECT_EQ(sink.TotalCells(), trace.size());
  EXPECT_EQ(cache.stats().packets_in, trace.size());
  EXPECT_EQ(cache.stats().cells_out, trace.size());
}

TEST(MgpvTest, LongFlowGetsLongBuffer) {
  RecordingSink sink;
  MgpvCache cache(SmallConfig(), &sink);
  // 4 (short) + 20 (long) = 24 packets exactly fill short+long -> one
  // eviction with all 24 cells.
  for (int i = 0; i < 24; ++i) {
    cache.Insert(Pkt(1, 1000, i * 1000));
  }
  ASSERT_EQ(sink.reports.size(), 1u);
  EXPECT_EQ(sink.reports[0].cells.size(), 24u);
  EXPECT_EQ(sink.reports[0].reason, EvictReason::kLongFull);
  EXPECT_EQ(cache.stats().long_allocs, 1u);
}

TEST(MgpvTest, CellsStayChronological) {
  RecordingSink sink;
  MgpvCache cache(SmallConfig(), &sink);
  for (int i = 0; i < 24; ++i) {
    cache.Insert(Pkt(1, 1000, i * 1000));
  }
  ASSERT_EQ(sink.reports.size(), 1u);
  const auto& cells = sink.reports[0].cells;
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_GT(cells[i].full_timestamp_ns, cells[i - 1].full_timestamp_ns);
  }
}

TEST(MgpvTest, ShortFullEvictionWhenStackExhausted) {
  MgpvConfig config = SmallConfig();
  config.long_buffers = 1;  // Only one long buffer available.
  RecordingSink sink;
  MgpvCache cache(config, &sink);

  // Two flows that do NOT collide (distinct hash slots almost surely with
  // 64 slots; use many sources and accept the property statistically).
  // Flow A grabs the long buffer.
  for (int i = 0; i < 5; ++i) {
    cache.Insert(Pkt(1, 1000, i));
  }
  EXPECT_EQ(cache.stats().long_allocs, 1u);

  // Fill flows until some other flow fills its short buffer and fails to
  // get a long buffer.
  for (uint32_t src = 2; src < 30; ++src) {
    for (int i = 0; i < 4; ++i) {
      cache.Insert(Pkt(src, 1000, 1000 + src * 10 + i));
    }
  }
  EXPECT_GT(cache.stats().long_alloc_failures, 0u);
  EXPECT_GT(cache.stats().evictions[static_cast<int>(EvictReason::kShortFull)], 0u);
}

TEST(MgpvTest, CollisionEvictsOldGroup) {
  MgpvConfig config = SmallConfig();
  config.short_buffers = 1;  // Everything collides.
  RecordingSink sink;
  MgpvCache cache(config, &sink);
  cache.Insert(Pkt(1, 1000, 0));
  cache.Insert(Pkt(2, 2000, 1));  // Different flow -> collision.
  ASSERT_EQ(sink.reports.size(), 1u);
  EXPECT_EQ(sink.reports[0].reason, EvictReason::kCollision);
  EXPECT_EQ(sink.reports[0].cells.size(), 1u);
}

TEST(MgpvTest, AgingEvictsIdleEntries) {
  MgpvConfig config = SmallConfig();
  config.aging_timeout_ns = 1000000;  // 1 ms.
  config.aging_scan_per_packet = 64;  // Full scan per packet.
  RecordingSink sink;
  MgpvCache cache(config, &sink);

  cache.Insert(Pkt(1, 1000, 0));
  // A packet from another flow 10 ms later triggers the scan.
  cache.Insert(Pkt(2, 2000, 10000000));
  ASSERT_GE(sink.reports.size(), 1u);
  EXPECT_EQ(sink.reports[0].reason, EvictReason::kAging);
}

TEST(MgpvTest, AgingDisabledKeepsEntries) {
  MgpvConfig config = SmallConfig();
  config.aging_timeout_ns = 0;
  RecordingSink sink;
  MgpvCache cache(config, &sink);
  cache.Insert(Pkt(1, 1000, 0));
  cache.Insert(Pkt(2, 2000, 1000000000));
  EXPECT_TRUE(sink.reports.empty());
}

TEST(MgpvTest, FgSyncEmittedOncePerKey) {
  MgpvConfig config = SmallConfig();
  config.cg = Granularity::kHost;
  config.fg = Granularity::kSocket;
  config.multi_granularity = true;
  RecordingSink sink;
  MgpvCache cache(config, &sink);

  // Same socket, multiple packets: one sync.
  for (int i = 0; i < 5; ++i) {
    cache.Insert(Pkt(1, 1000, i));
  }
  EXPECT_EQ(sink.syncs.size(), 1u);
  // New socket from the same host: second sync.
  cache.Insert(Pkt(1, 1001, 10));
  EXPECT_EQ(sink.syncs.size(), 2u);
}

TEST(MgpvTest, FgIndexSharedAcrossCells) {
  MgpvConfig config = SmallConfig();
  config.cg = Granularity::kHost;
  config.fg = Granularity::kSocket;
  config.multi_granularity = true;
  RecordingSink sink;
  MgpvCache cache(config, &sink);
  for (int i = 0; i < 3; ++i) {
    cache.Insert(Pkt(1, 1000, i));
  }
  cache.Flush();
  ASSERT_EQ(sink.reports.size(), 1u);
  const auto& cells = sink.reports[0].cells;
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].fg_index, cells[1].fg_index);
  EXPECT_EQ(cells[1].fg_index, cells[2].fg_index);
}

TEST(MgpvTest, AggregationReducesMessages) {
  RecordingSink sink;
  MgpvConfig config;  // Full prototype geometry.
  config.cg = Granularity::kFlow;
  config.fg = Granularity::kFlow;
  config.metadata_bytes_per_cell = 7;
  MgpvCache cache(config, &sink);
  const Trace trace = GenerateTrace(MawiIxpProfile(), 100000, 2);
  for (const auto& pkt : trace.packets()) {
    cache.Insert(pkt);
  }
  cache.Flush();
  // The headline Fig 12 property: >80% reduction in rate and bytes.
  EXPECT_LT(cache.stats().MessageRatio(), 0.2);
  EXPECT_LT(cache.stats().ByteRatio(), 0.2);
}

TEST(MgpvTest, BufferEfficiencyAndOccupancy) {
  RecordingSink sink;
  MgpvCache cache(SmallConfig(), &sink);
  EXPECT_EQ(cache.Occupancy(), 0.0);
  cache.Insert(Pkt(1, 1000, 0));
  EXPECT_GT(cache.Occupancy(), 0.0);
  EXPECT_EQ(cache.BufferEfficiency(1000000), 1.0);
  // Advance time without touching flow 1.
  cache.Insert(Pkt(2, 2000, 100000000));
  EXPECT_LT(cache.BufferEfficiency(1000000), 1.0);
}

TEST(MgpvTest, MemoryFootprintScalesWithGeometry) {
  MgpvConfig small = SmallConfig();
  MgpvConfig big = SmallConfig();
  big.short_buffers *= 4;
  EXPECT_GT(big.MemoryFootprintBytes(), small.MemoryFootprintBytes());
  MgpvConfig multi = SmallConfig();
  multi.multi_granularity = true;
  EXPECT_GT(multi.MemoryFootprintBytes(), small.MemoryFootprintBytes());
}

TEST(FeSwitchTest, FilterDropsNonMatching) {
  auto policy = ParsePolicy("t", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok());
  auto compiled = Compile(*policy);
  ASSERT_TRUE(compiled.ok());

  RecordingSink sink;
  FeSwitch fe(*compiled, &sink);
  PacketRecord tcp = Pkt(1, 1000, 0);
  PacketRecord udp = Pkt(2, 2000, 1);
  udp.tuple.protocol = kProtoUdp;
  fe.OnPacket(tcp);
  fe.OnPacket(udp);
  EXPECT_EQ(fe.stats().packets_seen, 2u);
  EXPECT_EQ(fe.stats().packets_filtered, 1u);
  EXPECT_EQ(fe.stats().packets_batched, 1u);
}

TEST(FeSwitchTest, ConfigDerivedFromPolicy) {
  auto policy = ParsePolicy("t", R"(
pktstream
  .groupby(host, socket)
  .reduce(size, [f_mean])
  .collect(pkt)
)");
  ASSERT_TRUE(policy.ok());
  auto compiled = Compile(*policy);
  ASSERT_TRUE(compiled.ok());
  const MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
  EXPECT_EQ(config.cg, Granularity::kHost);
  EXPECT_EQ(config.fg, Granularity::kSocket);
  EXPECT_TRUE(config.multi_granularity);
}

TEST(ResourcesTest, UtilizationInPlausibleBands) {
  auto policy = ParsePolicy("t", R"(
pktstream
  .filter(tcp.exist)
  .groupby(flow)
  .map(one, _, f_one)
  .map(direction, one, f_direction)
  .reduce(direction, [f_array{5000}])
  .collect(flow)
)");
  ASSERT_TRUE(policy.ok());
  auto compiled = Compile(*policy);
  ASSERT_TRUE(compiled.ok());
  const MgpvConfig config = FeSwitch::DefaultConfig(*compiled);
  const SwitchResourceUsage usage = EstimateSwitchResources(*compiled, config);
  const TofinoCapacity cap;
  // Table 4 bands: tables ~25-35%, sALUs ~60-85%, SRAM ~10-30%.
  EXPECT_GT(usage.TablesFraction(cap), 0.15);
  EXPECT_LT(usage.TablesFraction(cap), 0.45);
  EXPECT_GT(usage.SalusFraction(cap), 0.5);
  EXPECT_LT(usage.SalusFraction(cap), 0.95);
  EXPECT_GT(usage.SramFraction(cap), 0.03);
  EXPECT_LT(usage.SramFraction(cap), 0.45);
}

TEST(ResourcesTest, MoreGranularitiesUseMoreResources) {
  auto one = Compile(*ParsePolicy("one", R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)"));
  auto three = Compile(*ParsePolicy("three", R"(
pktstream
  .groupby(host, channel, socket)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean])
  .reduce(ipt, [f_mean])
  .collect(pkt)
)"));
  ASSERT_TRUE(one.ok() && three.ok());
  const auto u1 = EstimateSwitchResources(*one, FeSwitch::DefaultConfig(*one));
  const auto u3 = EstimateSwitchResources(*three, FeSwitch::DefaultConfig(*three));
  EXPECT_GT(u3.salus, u1.salus);
  EXPECT_GT(u3.tables, u1.tables);
  EXPECT_GT(u3.sram_bytes, u1.sram_bytes);
}

}  // namespace
}  // namespace superfe
