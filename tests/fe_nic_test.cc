#include <gtest/gtest.h>

#include "core/feature_vector.h"
#include "nicsim/fe_nic.h"
#include "policy/compile.h"
#include "policy/parser.h"
#include "switchsim/fe_switch.h"

namespace superfe {
namespace {

CompiledPolicy CompileSource(const std::string& source) {
  auto policy = ParsePolicy("t", source);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  auto compiled = Compile(*policy);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

PacketRecord Pkt(uint32_t src, uint16_t sport, uint64_t ts, uint32_t bytes = 100,
                 Direction dir = Direction::kForward) {
  PacketRecord pkt;
  pkt.tuple = {src, MakeIp(172, 16, 0, 1), sport, 80, kProtoTcp};
  if (dir == Direction::kBackward) {
    pkt.tuple = pkt.tuple.Reversed();
  }
  pkt.direction = dir;
  pkt.timestamp_ns = ts;
  pkt.wire_bytes = bytes;
  return pkt;
}

// Full switch -> NIC pipeline harness.
struct Pipeline {
  explicit Pipeline(const CompiledPolicy& compiled, FeNicConfig config = {}) {
    nic = std::move(FeNic::Create(compiled, config, &sink)).value();
    fe_switch = std::make_unique<FeSwitch>(compiled, nic.get());
  }
  void Run(const std::vector<PacketRecord>& packets) {
    for (const auto& pkt : packets) {
      fe_switch->OnPacket(pkt);
    }
    fe_switch->Flush();
    nic->Flush();
  }

  CollectingFeatureSink sink;
  std::unique_ptr<FeNic> nic;
  std::unique_ptr<FeSwitch> fe_switch;
};

TEST(FeNicTest, PerFlowCollectEmitsOneVectorPerFlow) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .reduce(size, [f_mean])
  .collect(flow)
)");
  Pipeline pipeline(compiled);
  pipeline.Run({Pkt(1, 1000, 0, 100), Pkt(1, 1000, 10, 200), Pkt(2, 2000, 20, 300)});

  ASSERT_EQ(pipeline.sink.vectors().size(), 2u);
  // Find the flow with two packets.
  for (const auto& v : pipeline.sink.vectors()) {
    ASSERT_EQ(v.values.size(), 2u);
    if (v.values[0] == 2.0) {
      EXPECT_DOUBLE_EQ(v.values[1], 150.0);
    } else {
      EXPECT_DOUBLE_EQ(v.values[0], 1.0);
      EXPECT_DOUBLE_EQ(v.values[1], 300.0);
    }
  }
}

TEST(FeNicTest, PerPacketCollectEmitsPerCell) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(pkt)
)");
  Pipeline pipeline(compiled);
  pipeline.Run({Pkt(1, 1000, 0), Pkt(1, 1000, 10), Pkt(1, 1000, 20)});
  ASSERT_EQ(pipeline.sink.vectors().size(), 3u);
  // Running count snapshots: 1, 2, 3.
  EXPECT_DOUBLE_EQ(pipeline.sink.vectors()[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(pipeline.sink.vectors()[1].values[0], 2.0);
  EXPECT_DOUBLE_EQ(pipeline.sink.vectors()[2].values[0], 3.0);
}

TEST(FeNicTest, MultiGranularityVectorSpansChain) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host, socket)
  .map(one, _, f_one)
  .reduce(one, [f_sum], host)
  .reduce(one, [f_sum], socket)
  .collect(pkt)
)");
  Pipeline pipeline(compiled);
  // Two sockets from the same host.
  pipeline.Run({Pkt(1, 1000, 0), Pkt(1, 2000, 10), Pkt(1, 1000, 20)});
  ASSERT_EQ(pipeline.sink.vectors().size(), 3u);
  // Last packet: host has seen 3, its socket 2.
  const auto& last = pipeline.sink.vectors().back();
  ASSERT_EQ(last.values.size(), 2u);
  EXPECT_DOUBLE_EQ(last.values[0], 3.0);
  EXPECT_DOUBLE_EQ(last.values[1], 2.0);
}

TEST(FeNicTest, BidirectionalPacketsShareGroups) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(socket)
  .map(one, _, f_one)
  .reduce(one, [f_sum])
  .collect(socket)
)");
  Pipeline pipeline(compiled);
  pipeline.Run({Pkt(1, 1000, 0, 100, Direction::kForward),
                Pkt(1, 1000, 10, 100, Direction::kBackward),
                Pkt(1, 1000, 20, 100, Direction::kForward)});
  // One socket group despite the direction flip.
  ASSERT_EQ(pipeline.sink.vectors().size(), 1u);
  EXPECT_DOUBLE_EQ(pipeline.sink.vectors()[0].values[0], 3.0);
}

TEST(FeNicTest, StatsCountCellsAndReports) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_sum])
  .collect(flow)
)");
  Pipeline pipeline(compiled);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 100; ++i) {
    packets.push_back(Pkt(i % 5, 1000, i * 100));
  }
  pipeline.Run(packets);
  EXPECT_EQ(pipeline.nic->stats().cells, 100u);
  EXPECT_GT(pipeline.nic->stats().reports, 0u);
  EXPECT_LE(pipeline.nic->stats().reports, 100u);
  EXPECT_EQ(pipeline.nic->stats().vectors_emitted, 5u);
}

TEST(FeNicTest, PerfModelAccountsWork) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean, f_var])
  .collect(flow)
)");
  Pipeline pipeline(compiled);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 1000; ++i) {
    packets.push_back(Pkt(i % 7, 1000, i * 100));
  }
  pipeline.Run(packets);
  const auto& perf = pipeline.nic->perf();
  EXPECT_EQ(perf.cells(), 1000u);
  EXPECT_GT(perf.compute_cycles(), 0u);
  EXPECT_GT(perf.memory_cycles(), 0u);
  EXPECT_GT(perf.ThroughputPps(60), 0.0);
}

TEST(FeNicTest, ThroughputScalesNearLinearly) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean])
  .collect(flow)
)");
  Pipeline pipeline(compiled);
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 500; ++i) {
    packets.push_back(Pkt(i % 7, 1000, i * 100));
  }
  pipeline.Run(packets);
  const auto& perf = pipeline.nic->perf();
  const double t1 = perf.ThroughputPps(1);
  const double t60 = perf.ThroughputPps(60);
  const double t120 = perf.ThroughputPps(120);
  EXPECT_GT(t60, t1 * 50);    // Near-linear to 60 cores.
  EXPECT_GT(t120, t60 * 1.8);
  EXPECT_LT(t120, t1 * 120.5);  // Never super-linear.
}

TEST(FeNicTest, OptimizationsReduceCycles) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean, f_var])
  .collect(flow)
)");
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 1000; ++i) {
    packets.push_back(Pkt(i % 7, 1000, i * 100));
  }

  FeNicConfig no_opts;
  no_opts.optimizations = NicOptimizations::None();
  Pipeline slow(compiled, no_opts);
  slow.Run(packets);

  FeNicConfig all_opts;
  all_opts.optimizations = NicOptimizations::All();
  Pipeline fast(compiled, all_opts);
  fast.Run(packets);

  // The Fig 17 claim: all optimizations together gain severalfold.
  EXPECT_GT(fast.nic->perf().ThroughputPps(60), 3.0 * slow.nic->perf().ThroughputPps(60));
}

TEST(FeNicTest, DivisionEliminationDominates) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .reduce(size, [f_mean, f_var])
  .collect(flow)
)");
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 500; ++i) {
    packets.push_back(Pkt(i % 3, 1000, i * 100));
  }

  auto run_with = [&](NicOptimizations opts) {
    FeNicConfig config;
    config.optimizations = opts;
    Pipeline pipeline(compiled, config);
    pipeline.Run(packets);
    return pipeline.nic->perf().ThroughputPps(60);
  };

  NicOptimizations only_hash = NicOptimizations::None();
  only_hash.reuse_switch_hash = true;
  NicOptimizations only_div = NicOptimizations::None();
  only_div.eliminate_division = true;

  const double base = run_with(NicOptimizations::None());
  const double hash_gain = run_with(only_hash) / base;
  const double div_gain = run_with(only_div) / base;
  EXPECT_GT(div_gain, hash_gain);  // §8.5: division elimination dominates.
  EXPECT_GT(div_gain, 1.5);
}

TEST(FeNicTest, PlacementProducedForStates) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(flow)
  .map(ipt, tstamp, f_ipt)
  .reduce(size, [f_mean, f_var])
  .reduce(ipt, [ft_hist{1000, 32}])
  .collect(flow)
)");
  Pipeline pipeline(compiled);
  const auto& placement = pipeline.nic->placement();
  EXPECT_EQ(placement.assignment.size(), compiled.nic_program.states.size());
  uint64_t total = 0;
  for (uint64_t b : placement.level_bytes) {
    total += b;
  }
  EXPECT_EQ(total, compiled.nic_program.StateBytesPerGroup());
}

TEST(FeNicTest, GroupCountsTrackDistinctGroups) {
  const CompiledPolicy compiled = CompileSource(R"(
pktstream
  .groupby(host, socket)
  .reduce(size, [f_sum])
  .collect(pkt)
)");
  Pipeline pipeline(compiled);
  // 2 hosts, 3 sockets.
  std::vector<PacketRecord> packets = {Pkt(1, 1000, 0), Pkt(1, 2000, 1), Pkt(2, 3000, 2)};
  for (const auto& pkt : packets) {
    pipeline.fe_switch->OnPacket(pkt);
  }
  pipeline.fe_switch->Flush();
  const auto counts = pipeline.nic->GroupCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);  // Hosts.
  EXPECT_EQ(counts[1], 3u);  // Sockets.
}

}  // namespace
}  // namespace superfe
