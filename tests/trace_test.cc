#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_set>

#include "net/attack_gen.h"
#include "net/pcap.h"
#include "net/replay.h"
#include "net/trace_gen.h"

namespace superfe {
namespace {

class VectorSink : public PacketSink {
 public:
  void OnPacket(const PacketRecord& pkt) override { packets.push_back(pkt); }
  std::vector<PacketRecord> packets;
};

TEST(TraceTest, SortAndOrderCheck) {
  Trace trace;
  PacketRecord p;
  p.timestamp_ns = 10;
  trace.Add(p);
  p.timestamp_ns = 5;
  trace.Add(p);
  EXPECT_FALSE(trace.IsTimeOrdered());
  trace.SortByTime();
  EXPECT_TRUE(trace.IsTimeOrdered());
}

TEST(TraceTest, StatsCountFlowsAndBytes) {
  Trace trace;
  PacketRecord p;
  p.tuple = {1, 2, 3, 4, kProtoTcp};
  p.wire_bytes = 100;
  p.timestamp_ns = 0;
  trace.Add(p);
  p.tuple = p.tuple.Reversed();  // Same canonical flow.
  p.timestamp_ns = 1000000000;
  trace.Add(p);
  p.tuple = {9, 9, 9, 9, kProtoUdp};
  p.timestamp_ns = 2000000000;
  trace.Add(p);

  const TraceStats stats = trace.ComputeStats();
  EXPECT_EQ(stats.packet_count, 3u);
  EXPECT_EQ(stats.flow_count, 2u);
  EXPECT_EQ(stats.total_bytes, 300u);
  EXPECT_NEAR(stats.duration_seconds, 2.0, 1e-9);
}

// Property sweep: every paper profile must reproduce its Table 2 targets.
class ProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileTest, MatchesTable2Targets) {
  const TraceProfile profile = PaperProfiles()[GetParam()];
  const Trace trace = GenerateTrace(profile, 150000, 42);
  const TraceStats stats = trace.ComputeStats();

  EXPECT_GE(stats.packet_count, 150000u);
  // Flow length within 20% of the target (heavy-tailed draws need slack).
  EXPECT_NEAR(stats.avg_flow_length_pkts, profile.mean_flow_length_pkts,
              profile.mean_flow_length_pkts * 0.20);
  // Packet size within 5% of the Table 2 target (the mixes are calibrated
  // to include minimum-size TCP handshake packets).
  EXPECT_NEAR(stats.avg_packet_size_bytes, profile.target_mean_packet_size,
              profile.target_mean_packet_size * 0.05);
  EXPECT_TRUE(trace.IsTimeOrdered());
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           std::string name = PaperProfiles()[info.param].name;
                           for (auto& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(TraceGenTest, DeterministicForSeed) {
  const TraceProfile profile = EnterpriseProfile();
  const Trace a = GenerateTrace(profile, 5000, 7);
  const Trace b = GenerateTrace(profile, 5000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets()[i].tuple, b.packets()[i].tuple);
    EXPECT_EQ(a.packets()[i].timestamp_ns, b.packets()[i].timestamp_ns);
  }
}

TEST(TraceGenTest, DifferentSeedsDiffer) {
  const TraceProfile profile = EnterpriseProfile();
  const Trace a = GenerateTrace(profile, 2000, 1);
  const Trace b = GenerateTrace(profile, 2000, 2);
  bool different = a.size() != b.size();
  for (size_t i = 0; !different && i < a.size(); ++i) {
    different = !(a.packets()[i].tuple == b.packets()[i].tuple);
  }
  EXPECT_TRUE(different);
}

TEST(TraceGenTest, FlowsStartWithSyn) {
  FiveTuple tuple{1, 2, 3, 4, kProtoTcp};
  Rng rng(5);
  const auto flow = GenerateFlow(tuple, 10, 0, 100.0, {{512, 1.0}}, 0.6, rng);
  ASSERT_EQ(flow.size(), 10u);
  EXPECT_EQ(flow[0].tcp_flags, kTcpSyn);
  EXPECT_EQ(flow[0].direction, Direction::kForward);
  EXPECT_TRUE((flow.back().tcp_flags & kTcpFin) != 0);
}

TEST(TraceGenTest, BackwardPacketsReverseTuple) {
  FiveTuple tuple{1, 2, 3, 4, kProtoTcp};
  Rng rng(5);
  const auto flow = GenerateFlow(tuple, 200, 0, 100.0, {{512, 1.0}}, 0.5, rng);
  bool saw_backward = false;
  for (const auto& pkt : flow) {
    if (pkt.direction == Direction::kBackward) {
      saw_backward = true;
      EXPECT_EQ(pkt.tuple, tuple.Reversed());
    } else {
      EXPECT_EQ(pkt.tuple, tuple);
    }
  }
  EXPECT_TRUE(saw_backward);
}

TEST(AttackGenTest, OsScanTouchesManyDestinations) {
  AttackConfig config;
  config.type = AttackType::kOsScan;
  config.attack_packets = 5000;
  const LabeledTrace lt = GenerateAttackTrace(config, EnterpriseProfile(), 20000, 3);
  ASSERT_EQ(lt.trace.size(), lt.labels.size());

  std::unordered_set<uint64_t> attack_dsts;
  uint64_t attack_packets = 0;
  for (size_t i = 0; i < lt.trace.size(); ++i) {
    if (lt.labels[i] != 0) {
      ++attack_packets;
      attack_dsts.insert((static_cast<uint64_t>(lt.trace.packets()[i].tuple.dst_ip) << 16) |
                         lt.trace.packets()[i].tuple.dst_port);
    }
  }
  EXPECT_EQ(attack_packets, 5000u);
  EXPECT_GT(attack_dsts.size(), 1000u);  // Scan shape: many distinct targets.
  EXPECT_TRUE(lt.trace.IsTimeOrdered());
}

TEST(AttackGenTest, SsdpFloodConcentratesOnVictim) {
  AttackConfig config;
  config.type = AttackType::kSsdpFlood;
  config.attack_packets = 5000;
  const LabeledTrace lt = GenerateAttackTrace(config, EnterpriseProfile(), 10000, 4);
  std::unordered_set<uint32_t> victims;
  for (size_t i = 0; i < lt.trace.size(); ++i) {
    if (lt.labels[i] != 0) {
      victims.insert(lt.trace.packets()[i].tuple.dst_ip);
      EXPECT_EQ(lt.trace.packets()[i].tuple.src_port, 1900);
    }
  }
  EXPECT_EQ(victims.size(), 1u);  // Flood shape: single victim.
}

TEST(AttackGenTest, AttackStartsAfterPrefix) {
  AttackConfig config;
  config.type = AttackType::kSynDos;
  config.attack_packets = 1000;
  config.start_fraction = 0.5;
  const LabeledTrace lt = GenerateAttackTrace(config, EnterpriseProfile(), 10000, 5);
  uint64_t first_attack_ts = UINT64_MAX;
  uint64_t max_ts = 0;
  for (size_t i = 0; i < lt.trace.size(); ++i) {
    max_ts = std::max(max_ts, lt.trace.packets()[i].timestamp_ns);
    if (lt.labels[i] != 0) {
      first_attack_ts = std::min(first_attack_ts, lt.trace.packets()[i].timestamp_ns);
    }
  }
  EXPECT_GT(first_attack_ts, max_ts / 3);  // Clean training prefix exists.
}

TEST(AttackGenTest, WebsiteSessionsStableWithinSite) {
  const LabeledFlowSet set = GenerateWebsiteSessions(5, 4, 11);
  ASSERT_EQ(set.size(), 20u);
  // Sessions of the same site should have similar lengths; different sites
  // usually differ (template lengths are site-specific).
  std::vector<std::vector<size_t>> lengths(5);
  for (size_t i = 0; i < set.size(); ++i) {
    lengths[set.labels[i]].push_back(set.flows[i].size());
  }
  for (const auto& site : lengths) {
    ASSERT_EQ(site.size(), 4u);
    const double base = static_cast<double>(site[0]);
    for (size_t s = 1; s < site.size(); ++s) {
      EXPECT_NEAR(static_cast<double>(site[s]), base, base * 0.35);
    }
  }
}

TEST(AttackGenTest, CovertTimingBimodalGaps) {
  const LabeledFlowSet set = GenerateCovertTimingFlows(4, 200, 13);
  ASSERT_EQ(set.size(), 8u);
  for (size_t i = 0; i < set.size(); ++i) {
    if (set.labels[i] != 1) {
      continue;
    }
    // Covert flows: gaps cluster near 1 ms or 8 ms.
    int near_mode = 0;
    int total = 0;
    const auto& flow = set.flows[i];
    for (size_t k = 1; k < flow.size(); ++k) {
      const double gap_ms =
          static_cast<double>(flow[k].timestamp_ns - flow[k - 1].timestamp_ns) * 1e-6;
      ++total;
      if (std::abs(gap_ms - 1.0) < 0.3 || std::abs(gap_ms - 8.0) < 0.3) {
        ++near_mode;
      }
    }
    EXPECT_GT(near_mode, total * 9 / 10);
  }
}

TEST(PcapTest, RoundTrip) {
  const Trace original = GenerateTrace(EnterpriseProfile(), 2000, 21);
  const std::string path = ::testing::TempDir() + "/superfe_roundtrip.pcap";
  ASSERT_TRUE(WritePcap(path, original).ok());

  auto loaded = ReadPcap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->packets()[i].tuple, original.packets()[i].tuple);
    EXPECT_EQ(loaded->packets()[i].timestamp_ns, original.packets()[i].timestamp_ns);
    EXPECT_EQ(loaded->packets()[i].wire_bytes, original.packets()[i].wire_bytes);
  }
  std::remove(path.c_str());
}

TEST(PcapTest, DirectionReconstructedFromFirstSeen) {
  Trace trace;
  PacketRecord p;
  p.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 5555, 80, kProtoTcp};
  p.wire_bytes = 80;
  p.timestamp_ns = 1000;
  p.direction = Direction::kForward;
  trace.Add(p);
  PacketRecord q = p;
  q.tuple = p.tuple.Reversed();
  q.timestamp_ns = 2000;
  q.direction = Direction::kBackward;
  trace.Add(q);

  const std::string path = ::testing::TempDir() + "/superfe_dir.pcap";
  ASSERT_TRUE(WritePcap(path, trace).ok());
  auto loaded = ReadPcap(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->packets()[0].direction, Direction::kForward);
  EXPECT_EQ(loaded->packets()[1].direction, Direction::kBackward);
  std::remove(path.c_str());
}

TEST(PcapTest, MissingFileFails) {
  auto loaded = ReadPcap("/nonexistent/superfe.pcap");
  EXPECT_FALSE(loaded.ok());
}

TEST(ReplayTest, PreservesPacketCountWithoutAmplification) {
  const Trace trace = GenerateTrace(EnterpriseProfile(), 3000, 31);
  VectorSink sink;
  const ReplayReport report = Replay(trace, ReplayOptions{}, sink);
  EXPECT_EQ(report.packets, trace.size());
  EXPECT_EQ(sink.packets.size(), trace.size());
}

TEST(ReplayTest, AmplificationCreatesDistinctFlows) {
  Trace trace;
  PacketRecord p;
  p.tuple = {MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), 1111, 80, kProtoTcp};
  p.wire_bytes = 100;
  p.timestamp_ns = 0;
  trace.Add(p);

  VectorSink sink;
  ReplayOptions options;
  options.amplification = 4;
  const ReplayReport report = Replay(trace, options, sink);
  EXPECT_EQ(report.packets, 4u);
  std::unordered_set<uint32_t> src_ips;
  for (const auto& pkt : sink.packets) {
    src_ips.insert(pkt.tuple.src_ip);
  }
  EXPECT_EQ(src_ips.size(), 4u);
}

TEST(ReplayTest, SpeedupCompressesTime) {
  Trace trace;
  PacketRecord p;
  p.wire_bytes = 100;
  p.timestamp_ns = 0;
  trace.Add(p);
  p.timestamp_ns = 1000000000;
  trace.Add(p);

  VectorSink sink;
  ReplayOptions options;
  options.speedup = 10.0;
  Replay(trace, options, sink);
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.packets[1].timestamp_ns - sink.packets[0].timestamp_ns, 100000000u);
}

TEST(LabeledTraceTest, SortKeepsLabelsAligned) {
  LabeledTrace lt;
  PacketRecord p;
  p.timestamp_ns = 100;
  p.wire_bytes = 1;
  lt.Add(p, 1);
  p.timestamp_ns = 50;
  p.wire_bytes = 2;
  lt.Add(p, 0);
  lt.SortByTime();
  ASSERT_EQ(lt.labels.size(), 2u);
  EXPECT_EQ(lt.labels[0], 0);
  EXPECT_EQ(lt.trace.packets()[0].wire_bytes, 2u);
  EXPECT_EQ(lt.labels[1], 1);
}

}  // namespace
}  // namespace superfe
