#include <gtest/gtest.h>

#include "net/wire.h"

namespace superfe {
namespace {

PacketRecord MakeTcpPacket() {
  PacketRecord pkt;
  pkt.timestamp_ns = 123456789;
  pkt.tuple = {MakeIp(10, 0, 0, 1), MakeIp(172, 16, 0, 2), 43210, 443, kProtoTcp};
  pkt.wire_bytes = 120;
  pkt.tcp_flags = kTcpSyn;
  pkt.src_mac = 0x020000001234ull;
  pkt.dst_mac = 0x020000005678ull;
  return pkt;
}

TEST(WireTest, TcpRoundTrip) {
  const PacketRecord original = MakeTcpPacket();
  const auto frame = EncodeFrame(original);
  ASSERT_EQ(frame.size(), original.wire_bytes);

  auto parsed = ParseFrame(frame.data(), frame.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tuple, original.tuple);
  EXPECT_EQ(parsed->tcp_flags, original.tcp_flags);
  EXPECT_EQ(parsed->src_mac, original.src_mac);
  EXPECT_EQ(parsed->dst_mac, original.dst_mac);
  EXPECT_EQ(parsed->wire_bytes, original.wire_bytes);
}

TEST(WireTest, UdpRoundTrip) {
  PacketRecord pkt = MakeTcpPacket();
  pkt.tuple.protocol = kProtoUdp;
  pkt.tcp_flags = 0;
  const auto frame = EncodeFrame(pkt);
  auto parsed = ParseFrame(frame.data(), frame.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tuple, pkt.tuple);
  EXPECT_EQ(parsed->tcp_flags, 0);
}

TEST(WireTest, PadsToMinimumFrame) {
  PacketRecord pkt = MakeTcpPacket();
  pkt.wire_bytes = 10;  // Below the Ethernet minimum.
  const auto frame = EncodeFrame(pkt);
  EXPECT_EQ(frame.size(), kMinFrameLen);
}

TEST(WireTest, Ipv4ChecksumValid) {
  const auto frame = EncodeFrame(MakeTcpPacket());
  // Recomputing the checksum over the IPv4 header must yield zero.
  EXPECT_EQ(InternetChecksum(frame.data() + kEthHeaderLen, kIpv4MinHeaderLen), 0);
}

TEST(WireTest, RejectsTruncatedFrame) {
  const auto frame = EncodeFrame(MakeTcpPacket());
  auto parsed = ParseFrame(frame.data(), 20);
  EXPECT_FALSE(parsed.ok());
}

TEST(WireTest, RejectsNonIpv4) {
  auto frame = EncodeFrame(MakeTcpPacket());
  frame[12] = 0x86;  // EtherType -> IPv6.
  frame[13] = 0xdd;
  auto parsed = ParseFrame(frame.data(), frame.size());
  EXPECT_FALSE(parsed.ok());
}

TEST(WireTest, ChecksumKnownValue) {
  // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, csum 220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(WireTest, OddLengthChecksum) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // Manual: 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0xfbfd);
}

TEST(FiveTupleTest, CanonicalIsOrientationInvariant) {
  FiveTuple t{MakeIp(1, 2, 3, 4), MakeIp(5, 6, 7, 8), 1000, 80, kProtoTcp};
  EXPECT_EQ(t.Canonical(), t.Reversed().Canonical());
}

TEST(FiveTupleTest, ReversedSwapsEndpoints) {
  FiveTuple t{1, 2, 3, 4, kProtoUdp};
  const FiveTuple r = t.Reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 4);
  EXPECT_EQ(r.dst_port, 3);
}

TEST(FiveTupleTest, ToBytesLayout) {
  FiveTuple t{0x01020304, 0x05060708, 0x1122, 0x3344, kProtoTcp};
  const auto bytes = t.ToBytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
  EXPECT_EQ(bytes[4], 0x05);
  EXPECT_EQ(bytes[8], 0x11);
  EXPECT_EQ(bytes[10], 0x33);
  EXPECT_EQ(bytes[12], kProtoTcp);
}

TEST(FiveTupleTest, IpToStringDotted) {
  EXPECT_EQ(IpToString(MakeIp(192, 168, 1, 20)), "192.168.1.20");
}

TEST(PacketRecordTest, ChannelKeySymmetric) {
  PacketRecord a;
  a.tuple = {10, 20, 1, 2, kProtoTcp};
  a.direction = Direction::kForward;
  PacketRecord b;
  b.tuple = a.tuple.Reversed();
  b.direction = Direction::kBackward;
  EXPECT_EQ(a.ChannelKey(), b.ChannelKey());
  EXPECT_EQ(a.HostKey(), b.HostKey());
  EXPECT_EQ(a.HostKey(), 10u);  // The initiator's IP, from either direction.
}

TEST(PacketRecordTest, DirectionSign) {
  PacketRecord pkt;
  pkt.direction = Direction::kForward;
  EXPECT_EQ(pkt.DirectionSign(), 1);
  pkt.direction = Direction::kBackward;
  EXPECT_EQ(pkt.DirectionSign(), -1);
}

}  // namespace
}  // namespace superfe
